//! The simulated kernel: physical memory management, region policy, the
//! paging baseline, and the CARAT move/protection orchestration (paper
//! §4.3 — the kernel module's role).

use crate::arena::{ArenaStats, CapsuleArena};
use crate::buddy::BuddyAllocator;
use crate::dev::{DeviceBay, DmaCompletion, DmaDir, DmaError, DmaRequest};
use crate::faults::{FaultPlan, FaultPoint, KernelError};
use crate::loader::{load_signed, load_unsigned, LoadConfig, LoadError, ProcessImage};
use crate::pagetable::{PageTable, Pte};
use crate::phys::PhysicalMemory;
use crate::proc::{retarget_region, Pid, ProcTable, SharedId};
use crate::trace::{PagingEvent, PagingTrace};
use carat_core::sign::{SignedModule, SigningKey};
use carat_ir::Module;
use carat_runtime::{
    check_unpinned, perform_move_batch_journaled, perform_shared_move_journaled, AllocationTable,
    CostModel, MemAccess, MoveOutcome, MovePhase, MoveRequest, PatchMem, Perms, PinnedRange,
    Region, RegionTable, WorldStop, WorldStopError,
};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Bounded retries for a move-destination allocation before surfacing
/// [`KernelError::OutOfFrames`] (each retry compacts vacated ranges and
/// charges cost-model backoff).
const MOVE_ALLOC_RETRIES: u32 = 3;

/// Swap-slot ids are striped per process: process `i` (by slab index)
/// issues slots `local * SWAP_SLOT_STRIDE + i`, so no tenant's page-outs
/// can renumber another's poison addresses — a fault domain requirement
/// (one tenant's death must leave bystander counters bit-identical). A
/// kernel with no registered process (the solo machine) issues the plain
/// monotonic sequence, unchanged.
const SWAP_SLOT_STRIDE: u64 = 16_384;

/// The simulated kernel.
#[derive(Debug)]
pub struct SimKernel {
    /// Physical memory.
    pub mem: PhysicalMemory,
    /// Page-frame allocator.
    pub buddy: BuddyAllocator,
    /// MMU-notifier-style trace (Table 2 counters).
    pub trace: PagingTrace,
    /// Baseline page table (traditional model only).
    pub pagetable: PageTable,
    /// CARAT region set for the (single) process.
    pub regions: RegionTable,
    /// Machine cost model.
    pub cost: CostModel,
    /// Master region list behind `regions` (kept sorted; holes punched on
    /// moves).
    master: Vec<Region>,
    /// Page ranges vacated by moves, recycled as future move destinations
    /// ("frees the data at the old location", paper §4.2). Per-process
    /// state: this is the *current* process's list (or the solo
    /// machine's); a context switch parks it in the outgoing
    /// [`ProcEntry`] and installs the incoming one's.
    vacated: Vec<(u64, u64)>,
    /// Whole buddy blocks the current process obtained after admission
    /// (move/page-in/stack-growth destinations); parked per process like
    /// `vacated`, and freed on kill.
    owned_blocks: Vec<u64>,
    /// Swapped-out ranges by slot id: the paper's non-canonical-address
    /// encoding of "this data is in swap" (§2.2).
    swap: HashMap<u64, SwapEntry>,
    /// Next unissued local swap-slot ordinal and the recycled ordinals —
    /// per-process state swapped on context switch, like `vacated`. See
    /// [`SWAP_SLOT_STRIDE`].
    next_swap_slot: u64,
    free_swap_slots: BTreeSet<u64>,
    /// Externalized tenant capsules: checksummed serialized
    /// `TenantState` images parked in the pooled, size-classed capsule
    /// arena backing the simulated swap device. The checksum is
    /// verified on read, so a corrupted image surfaces as a typed
    /// (recoverable) error instead of a poisoned rehydrate. Slot ids
    /// are generation-tagged, so a killed tenant's stale id can never
    /// alias its successor's capsule.
    capsules: CapsuleArena,
    /// Last page passed to [`SimKernel::demand_touch`] — a one-entry
    /// cache shortcutting the per-access touched-set probe.
    last_touched_page: u64,
    trusted: Vec<SigningKey>,
    /// Injected fault schedule. `None` (the default) also disables the
    /// patch journal, so the fault-free fast path pays nothing.
    faults: Option<FaultPlan>,
    /// Host threads applying patch plans (1 = serial). Sharding is
    /// deterministic, so memory state and counters are identical at every
    /// setting; see [`SimKernel::set_move_workers`].
    move_workers: usize,
    /// Move-destination allocations that succeeded only after compaction
    /// and retry (OOM recoveries).
    pub oom_recoveries: u64,
    /// The process table (multi-tenant operation; empty for the classic
    /// single-process flows, which never register).
    pub procs: ProcTable,
    /// Simulated devices (timer + DMA engine). Travels with the kernel
    /// when it is lent to a VM for a slice.
    pub dev: DeviceBay,
    /// Pinned DMA ranges. Deliberately **global** (not parked per
    /// process on context switch): a pin is a property of physical
    /// memory that every device and every mover must see regardless of
    /// which process is scheduled. Per-tenant ownership is recorded in
    /// each range for kill-time reaping; address spaces are disjoint, so
    /// a mover only ever collides with the current process's own pins.
    pins: Vec<PinnedRange>,
    /// Lifetime pin accounting (fragmentation cost of pinned holes).
    pin_stats: PinStats,
}

/// Kernel-wide pin accounting: how often pinning happened and how much
/// compaction freedom it cost (moves and page-outs refused because the
/// victim range was pinned — the "pinned hole" fragmentation the paper's
/// model trades for free pins).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PinStats {
    /// Successful `pin_region` calls.
    pub pins: u64,
    /// Successful `unpin_region` calls.
    pub unpins: u64,
    /// Pins reaped at tenant kill (leaked by the tenant, reclaimed by
    /// the supervisor path).
    pub reaped: u64,
    /// Moves/page-outs refused with [`MoveError::Pinned`].
    pub denied_moves: u64,
    /// Bytes those refused operations wanted to relocate.
    pub denied_bytes: u64,
    /// High-water mark of simultaneously pinned bytes.
    pub peak_pinned_bytes: u64,
}

/// Why a pin or unpin request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinError {
    /// Zero-length pins are malformed.
    ZeroLen,
    /// The range lies in the poison (swapped-out) address space; there
    /// is no physical memory there to pin. Page it in first.
    Swapped {
        /// The offending address.
        addr: u64,
    },
    /// The range overlaps an existing pin.
    AlreadyPinned {
        /// Existing pin's start.
        start: u64,
        /// Existing pin's length.
        len: u64,
    },
    /// No pin matches the range to unpin (must match exactly).
    NotPinned {
        /// Requested start.
        start: u64,
        /// Requested length.
        len: u64,
    },
    /// `pin_region_for` named a pid whose slot was retired or recycled.
    StaleTenant {
        /// The stale pid.
        pid: Pid,
    },
    /// The tenant holds pinned DMA bytes, so an operation that would
    /// relocate or deschedule its memory wholesale (capsule
    /// externalization) was refused. Unpin first, or let kill-time
    /// reaping release the pins.
    PinnedTenant {
        /// The refusing tenant.
        pid: Pid,
        /// Pinned bytes it holds.
        bytes: u64,
    },
}

impl fmt::Display for PinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinError::ZeroLen => write!(f, "zero-length pin"),
            PinError::Swapped { addr } => {
                write!(f, "cannot pin swapped-out (poison) address {addr:#x}")
            }
            PinError::AlreadyPinned { start, len } => {
                write!(f, "range overlaps existing pin [{start:#x}, +{len:#x})")
            }
            PinError::NotPinned { start, len } => {
                write!(f, "no pin matches [{start:#x}, +{len:#x})")
            }
            PinError::StaleTenant { pid } => write!(f, "stale tenant pid: {pid}"),
            PinError::PinnedTenant { pid, bytes } => {
                write!(f, "tenant {pid} holds {bytes} pinned DMA bytes")
            }
        }
    }
}

impl std::error::Error for PinError {}

/// A move destination with its provenance, so an abandoned move can
/// release it to the right place.
#[derive(Debug, Clone, Copy)]
struct DstAlloc {
    addr: u64,
    len: u64,
    from_buddy: bool,
}

/// One swapped-out range.
#[derive(Debug, Clone)]
struct SwapEntry {
    len: u64,
    data: Vec<u8>,
}

/// FNV-1a 64-bit hash over `data` — the capsule checksum.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A [`MemAccess`] view that routes poison addresses into the swap store,
/// so pointer patching reaches cells whose backing data is swapped out.
pub struct SwapAwareMem<'a> {
    mem: &'a mut PhysicalMemory,
    swap: &'a mut HashMap<u64, SwapEntry>,
}

impl PatchMem for SwapAwareMem<'_> {
    fn cell_ptr(&mut self, addr: u64) -> Option<*mut u8> {
        if addr >= POISON_BASE {
            let slot = (addr - POISON_BASE) / POISON_SLOT_SPAN;
            let off = ((addr - POISON_BASE) % POISON_SLOT_SPAN) as usize;
            let e = self.swap.get_mut(&slot)?;
            // Out-of-bounds slot offsets decline the pointer, which sends
            // the whole plan down the serial path — matching write_u64's
            // silent-drop semantics would otherwise need a sentinel.
            (off + 8 <= e.data.len()).then(|| unsafe { e.data.as_mut_ptr().add(off) })
        } else {
            self.mem.cell_ptr(addr)
        }
    }
}

impl MemAccess for SwapAwareMem<'_> {
    fn read_u64(&self, addr: u64) -> u64 {
        if addr >= POISON_BASE {
            let slot = (addr - POISON_BASE) / POISON_SLOT_SPAN;
            let off = ((addr - POISON_BASE) % POISON_SLOT_SPAN) as usize;
            if let Some(e) = self.swap.get(&slot) {
                if off + 8 <= e.data.len() {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&e.data[off..off + 8]);
                    return u64::from_le_bytes(b);
                }
            }
            return 0;
        }
        self.mem.read_u64(addr)
    }

    fn write_u64(&mut self, addr: u64, val: u64) {
        if addr >= POISON_BASE {
            let slot = (addr - POISON_BASE) / POISON_SLOT_SPAN;
            let off = ((addr - POISON_BASE) % POISON_SLOT_SPAN) as usize;
            if let Some(e) = self.swap.get_mut(&slot) {
                if off + 8 <= e.data.len() {
                    e.data[off..off + 8].copy_from_slice(&val.to_le_bytes());
                }
            }
            return;
        }
        self.mem.write_u64(addr, val);
    }

    fn copy(&mut self, src: u64, dst: u64, len: u64) {
        assert!(
            src < POISON_BASE && dst < POISON_BASE,
            "bulk copies operate on resident memory"
        );
        self.mem.copy(src, dst, len);
    }
}

/// Base of the non-canonical ("poison") address space used to mark
/// swapped-out data. Any address at or above this cannot be a physical
/// address in the simulated machine; a guard that sees one faults to the
/// kernel, which brings the data back in.
pub const POISON_BASE: u64 = 0xFFFF_8000_0000_0000;
/// Poison address span reserved per swap slot.
pub const POISON_SLOT_SPAN: u64 = 1 << 24;

impl SimKernel {
    /// Boot a kernel over `mem_size` bytes of physical memory. The first
    /// 64 KiB are reserved (null-page trap + kernel image stand-in).
    pub fn new(mem_size: u64) -> SimKernel {
        let cost = CostModel::default();
        let page = cost.page_size;
        let reserved = 64 * 1024;
        let pages = (mem_size - reserved) / page;
        SimKernel {
            mem: PhysicalMemory::new(mem_size),
            buddy: BuddyAllocator::new(reserved, pages, page),
            trace: PagingTrace::new(4096),
            pagetable: PageTable::new(),
            regions: RegionTable::new(),
            cost,
            master: Vec::new(),
            vacated: Vec::new(),
            owned_blocks: Vec::new(),
            swap: HashMap::new(),
            next_swap_slot: 0,
            free_swap_slots: BTreeSet::new(),
            capsules: CapsuleArena::new(),
            last_touched_page: u64::MAX,
            trusted: Vec::new(),
            faults: None,
            move_workers: 1,
            oom_recoveries: 0,
            procs: ProcTable::new(),
            dev: DeviceBay::new(),
            pins: Vec::new(),
            pin_stats: PinStats::default(),
        }
    }

    /// A minimal kernel (a few frames of memory) used as the placeholder
    /// inside a descheduled VM: the multi-process scheduler swaps the one
    /// real kernel into whichever VM is running, and every parked VM holds
    /// one of these. Its cost model is the default — identical to a real
    /// kernel's, so anything computed from a parked VM's cost view (e.g.
    /// TLB geometry at construction) matches the live kernel exactly.
    pub fn placeholder() -> SimKernel {
        SimKernel::new(128 * 1024)
    }

    /// Install a fault-injection schedule. Also enables the patch journal
    /// for every subsequent move (crash consistency), even when the plan
    /// is empty — an empty plan is how the journal's zero-fault overhead
    /// is measured.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The installed fault plan, if any (for inspecting fired faults).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Set the move engine's worker count. `n` host threads apply every
    /// subsequent patch plan (deterministic sharding — memory state and
    /// counters are bit-identical at every setting), and the cost model's
    /// `patch_workers` is set to match, so modeled move cycles describe
    /// the same machine that is actually running.
    pub fn set_move_workers(&mut self, n: usize) {
        self.move_workers = n.max(1);
        self.cost.patch_workers = self.move_workers as u64;
    }

    /// Current move-engine worker count.
    pub fn move_workers(&self) -> usize {
        self.move_workers
    }

    /// Record an occurrence of `point` against the installed plan and
    /// report whether an armed fault fires. No plan → never fires.
    fn fire(&mut self, point: FaultPoint) -> bool {
        self.faults.as_mut().is_some_and(|p| p.should_fire(point))
    }

    /// Public face of the injection hook, for layers that own their own
    /// fault handling (e.g. the VM's tenant-OOM probe): record an
    /// occurrence of `point` and report whether an armed fault fires.
    pub fn poll_fault(&mut self, point: FaultPoint) -> bool {
        self.fire(point)
    }

    /// Whether `addr` encodes swapped-out data.
    pub fn is_poison(addr: u64) -> bool {
        addr >= POISON_BASE
    }

    /// Number of ranges currently in swap.
    pub fn swapped_ranges(&self) -> usize {
        self.swap.len()
    }

    /// Whether swap slot `slot` is live.
    pub fn has_swap_slot(&self, slot: u64) -> bool {
        self.swap.contains_key(&slot)
    }

    /// Debug aid: read a u64 through the swap-aware router without
    /// mutating anything.
    pub fn debug_read_routed(&self, addr: u64) -> u64 {
        if Self::is_poison(addr) {
            let slot = (addr - POISON_BASE) / POISON_SLOT_SPAN;
            let off = ((addr - POISON_BASE) % POISON_SLOT_SPAN) as usize;
            if let Some(e) = self.swap.get(&slot) {
                if off + 8 <= e.data.len() {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&e.data[off..off + 8]);
                    return u64::from_le_bytes(b);
                }
            }
            return 0;
        }
        if addr + 8 <= self.mem.size() {
            self.mem.read_uint(addr, 8)
        } else {
            0
        }
    }

    /// Test hook: corrupt swap slot `slot` by truncating its stored
    /// image, as a disk error would. Returns whether the slot existed.
    pub fn debug_corrupt_swap_slot(&mut self, slot: u64) -> bool {
        match self.swap.get_mut(&slot) {
            Some(e) => {
                e.data.truncate(e.data.len() / 2);
                true
            }
            None => false,
        }
    }

    /// Integrity scan of the swap store: slots whose stored image does not
    /// match its recorded length (corruption). Empty means healthy.
    pub fn corrupt_swap_slots(&self) -> Vec<u64> {
        let mut bad: Vec<u64> = self
            .swap
            .iter()
            .filter(|(_, e)| e.data.len() as u64 != e.len || e.len == 0)
            .map(|(&s, _)| s)
            .collect();
        bad.sort_unstable();
        bad
    }

    /// Debug aid: find occurrences of an 8-byte value inside swap images.
    /// Returns `(slot, byte offset)` pairs.
    pub fn debug_scan_swap(&self, needle: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (&slot, e) in &self.swap {
            for off in (0..e.data.len().saturating_sub(7)).step_by(8) {
                let mut b = [0u8; 8];
                b.copy_from_slice(&e.data[off..off + 8]);
                if u64::from_le_bytes(b) == needle {
                    out.push((slot, off as u64));
                }
            }
        }
        out
    }

    /// Park a serialized tenant capsule in the simulated swap device.
    /// The checksum is taken here, over exactly the bytes stored; a later
    /// [`SimKernel::capsule_read`] verifies it before handing the image
    /// back. The bytes land in a pooled arena slot (reusing a freed
    /// buffer of the same size class when one exists) and the
    /// generation-tagged slot id is returned. The caller keeps ownership
    /// of `data` — steady-state externalization churn with a pooled
    /// scratch buffer performs zero host allocations.
    ///
    /// # Errors
    ///
    /// [`KernelError::CapsuleWriteFailed`] when the injected
    /// [`FaultPoint::CapsuleWrite`] fires — the write never happened, no
    /// slot id is consumed, and the tenant stays resident.
    pub fn capsule_write_from(&mut self, data: &[u8]) -> Result<u64, KernelError> {
        if self.fire(FaultPoint::CapsuleWrite) {
            return Err(KernelError::CapsuleWriteFailed {
                len: data.len() as u64,
            });
        }
        let checksum = fnv1a(data);
        Ok(self.capsules.store(data, checksum))
    }

    /// [`SimKernel::capsule_write_from`] for callers that already hold
    /// an owned buffer.
    pub fn capsule_write(&mut self, data: Vec<u8>) -> Result<u64, KernelError> {
        self.capsule_write_from(&data)
    }

    /// Take capsule `slot` back out of the swap device into `out`
    /// (cleared first; its capacity is reused), verifying the checksum.
    /// The arena slot is consumed either way: a rehydrate is a move,
    /// not a copy, and a corrupted image is useless — the caller's only
    /// recovery is respawn-from-image, so holding the bytes would only
    /// leak them.
    ///
    /// # Errors
    ///
    /// [`KernelError::CapsuleMissing`] when `slot` was never written or
    /// already consumed; [`KernelError::CapsuleCorrupt`] when the stored
    /// image fails its checksum (disk corruption, or the injected
    /// [`FaultPoint::CapsuleCorrupt`] flipping a byte).
    pub fn capsule_read_into(&mut self, slot: u64, out: &mut Vec<u8>) -> Result<(), KernelError> {
        let Some(mut checksum) = self.capsules.read_consume(slot, out) else {
            return Err(KernelError::CapsuleMissing { slot });
        };
        if self.fire(FaultPoint::CapsuleCorrupt) {
            let mid = out.len() / 2;
            match out.get_mut(mid) {
                Some(b) => *b ^= 0xFF,
                // An empty image has no byte to flip; corrupt the
                // recorded checksum instead.
                None => checksum ^= 1,
            }
        }
        if fnv1a(out) != checksum {
            return Err(KernelError::CapsuleCorrupt { slot });
        }
        Ok(())
    }

    /// [`SimKernel::capsule_read_into`] returning a fresh buffer.
    pub fn capsule_read(&mut self, slot: u64) -> Result<Vec<u8>, KernelError> {
        let mut out = Vec::new();
        self.capsule_read_into(slot, &mut out)?;
        Ok(out)
    }

    /// Reap capsule `slot` without reading it (its tenant was killed);
    /// the slot's buffer returns to the arena pool. Returns whether the
    /// slot was live.
    pub fn capsule_free(&mut self, slot: u64) -> bool {
        self.capsules.free(slot, true)
    }

    /// Number of capsules currently parked in the swap device.
    pub fn capsule_count(&self) -> usize {
        self.capsules.count()
    }

    /// Total bytes of parked capsule images.
    pub fn capsule_bytes(&self) -> u64 {
        self.capsules.bytes()
    }

    /// Pool accounting for the capsule arena: live/pooled bytes,
    /// high-water marks, and alloc/reuse/reap counters.
    pub fn arena_stats(&self) -> ArenaStats {
        self.capsules.stats()
    }

    /// Test hook: corrupt capsule `slot` by flipping a stored byte, as a
    /// disk error would. Returns whether the slot existed.
    pub fn debug_corrupt_capsule(&mut self, slot: u64) -> bool {
        self.capsules.corrupt(slot)
    }

    /// The slot id the next page-out would use, without consuming it:
    /// the lowest recycled local ordinal, else the next fresh one, both
    /// striped by the current process's slab index (identity for the
    /// solo machine). Pair with [`SimKernel::commit_swap_slot`] once the
    /// episode is under way.
    fn peek_swap_slot(&self) -> u64 {
        let local = self
            .free_swap_slots
            .iter()
            .next()
            .copied()
            .unwrap_or(self.next_swap_slot);
        match self.procs.current() {
            Some(pid) => local * SWAP_SLOT_STRIDE + (pid.index() as u64) % SWAP_SLOT_STRIDE,
            None => local,
        }
    }

    /// Consume the slot id returned by [`SimKernel::peek_swap_slot`].
    fn commit_swap_slot(&mut self, slot: u64) {
        let local = match self.procs.current() {
            Some(_) => slot / SWAP_SLOT_STRIDE,
            None => slot,
        };
        if !self.free_swap_slots.remove(&local) {
            self.next_swap_slot = local + 1;
        }
    }

    /// Return a paged-in slot's local ordinal to the current process's
    /// recycle set, so its slot sequence stays compact and deterministic
    /// regardless of fleet interleaving. Solo slots are not recycled
    /// (the monotonic sequence is the historical solo behavior).
    fn release_swap_slot(&mut self, slot: u64) {
        if let Some(pid) = self.procs.current() {
            if slot % SWAP_SLOT_STRIDE == (pid.index() as u64) % SWAP_SLOT_STRIDE {
                self.free_swap_slots.insert(slot / SWAP_SLOT_STRIDE);
            }
        }
    }

    /// Record a freshly-issued buddy block as owned by the current
    /// process, so a supervised kill can reap it. Solo machines skip the
    /// bookkeeping (their blocks die with the kernel).
    fn commit_dst_block(&mut self, dst: &DstAlloc) {
        if dst.from_buddy && self.procs.current().is_some() {
            self.owned_blocks.push(dst.addr);
        }
    }

    /// One attempt to take a destination for `len` bytes: recycle a
    /// vacated range when one fits, else take fresh frames from the buddy
    /// allocator.
    fn try_take_dst(&mut self, len: u64) -> Option<DstAlloc> {
        let page = self.cost.page_size;
        if let Some(i) = self.vacated.iter().position(|&(_, l)| l >= len) {
            let (start, l) = self.vacated[i];
            if l == len {
                self.vacated.remove(i);
            } else {
                self.vacated[i] = (start + len, l - len);
            }
            return Some(DstAlloc {
                addr: start,
                len,
                from_buddy: false,
            });
        }
        self.buddy.alloc_pages(len / page).map(|addr| DstAlloc {
            addr,
            len,
            from_buddy: true,
        })
    }

    /// Merge adjacent/overlapping vacated ranges so fragments freed by
    /// earlier moves can satisfy larger requests (the OOM recovery path).
    fn compact_vacated(&mut self) {
        if self.vacated.len() < 2 {
            return;
        }
        self.vacated.sort_unstable_by_key(|&(start, _)| start);
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.vacated.len());
        for &(start, len) in &self.vacated {
            match merged.last_mut() {
                Some((ms, ml)) if *ms + *ml >= start => {
                    *ml = (*ml).max(start + len - *ms);
                }
                _ => merged.push((start, len)),
            }
        }
        self.vacated = merged;
    }

    /// Pick a destination for `len` bytes, with bounded recovery: on
    /// exhaustion, compact the vacated ranges and retry up to
    /// [`MOVE_ALLOC_RETRIES`] times, charging exponential cost-model
    /// backoff. Returns the destination and the backoff cycles incurred
    /// (zero on the first-try fast path).
    ///
    /// # Errors
    ///
    /// [`KernelError::OutOfFrames`] when every retry failed; aside from
    /// the (semantically neutral) vacated-range compaction, kernel state
    /// is untouched.
    fn alloc_move_dst(&mut self, len: u64) -> Result<(DstAlloc, u64), KernelError> {
        let mut backoff = 0u64;
        for attempt in 0..=MOVE_ALLOC_RETRIES {
            let dst = if self.fire(FaultPoint::MoveDstAlloc) {
                // Injected exhaustion: the vacated recycle list counts as
                // unusable, and the failure is routed through the frame
                // allocator so the whole path under test sees it.
                self.buddy.inject_alloc_failures(1);
                let page = self.cost.page_size;
                self.buddy.alloc_pages(len / page).map(|addr| DstAlloc {
                    addr,
                    len,
                    from_buddy: true,
                })
            } else {
                self.try_take_dst(len)
            };
            if let Some(dst) = dst {
                if attempt > 0 {
                    self.oom_recoveries += 1;
                }
                return Ok((dst, backoff));
            }
            if attempt < MOVE_ALLOC_RETRIES {
                self.compact_vacated();
                backoff += self.cost.move_alloc_fixed << attempt;
            }
        }
        Err(KernelError::OutOfFrames {
            pages: len.div_ceil(self.cost.page_size),
        })
    }

    /// Return an unused (or rolled-back) move destination to its source.
    fn release_move_dst(&mut self, dst: DstAlloc) {
        if dst.from_buddy {
            // The buddy handed this block out moments ago; a rejected free
            // here would mean kernel-internal corruption. Keep the
            // original fault as the surfaced error regardless.
            let freed = self.buddy.free_pages(dst.addr);
            debug_assert!(freed.is_ok(), "releasing a live buddy block");
        } else {
            self.vacated.push((dst.addr, dst.len));
        }
    }

    /// Drive the front half of a world-stop episode (signal, handler
    /// entry, first barrier, negotiation, patch computation), injecting
    /// thread stalls when armed.
    ///
    /// # Errors
    ///
    /// [`KernelError::WorldStop`] on a stall or ordering violation; the
    /// episode is aborted (threads released, machine idle) first.
    fn begin_stop(&mut self, threads: usize) -> Result<WorldStop, KernelError> {
        let mut world = WorldStop::new(threads);
        if let Err(e) = self.begin_stop_inner(&mut world, threads) {
            world.abort(&self.cost);
            return Err(e);
        }
        Ok(world)
    }

    fn begin_stop_inner(
        &mut self,
        world: &mut WorldStop,
        threads: usize,
    ) -> Result<(), KernelError> {
        world.signal_all(&self.cost)?;
        for entered in 0..threads {
            if self.fire(FaultPoint::WorldStopStall) {
                return Err(KernelError::WorldStop(WorldStopError::Stalled {
                    entered,
                    threads,
                }));
            }
            world.thread_entered()?;
        }
        world.barrier1(&self.cost)?;
        world.negotiated()?;
        world.patches_computed()?;
        Ok(())
    }

    /// Drive the back half of a world-stop episode (patched, moved,
    /// second barrier, completion).
    fn finish_stop(world: &mut WorldStop, cost: &CostModel) -> Result<(), KernelError> {
        world.patched()?;
        world.moved()?;
        world.barrier2(cost)?;
        world.complete()?;
        Ok(())
    }

    /// Run a journaled move inside an already-stopped world: the MidMove
    /// fault point is consulted between the patch and copy phases; when it
    /// fires, the journal restores a byte-identical pre-move state.
    fn journaled_move(
        &mut self,
        table: &mut AllocationTable,
        regs: &mut [u64],
        req: MoveRequest,
    ) -> Result<MoveOutcome, KernelError> {
        self.journaled_move_batch(table, regs, std::slice::from_ref(&req))
            .and_then(|mut outs| {
                outs.pop().ok_or(KernelError::MoveInterrupted {
                    src: req.src,
                    len: req.len,
                    dst: req.dst,
                })
            })
    }

    /// [`SimKernel::journaled_move`] over a whole batch of requests as one
    /// transaction: a MidMove fault rolls back every request's patches.
    fn journaled_move_batch(
        &mut self,
        table: &mut AllocationTable,
        regs: &mut [u64],
        reqs: &[MoveRequest],
    ) -> Result<Vec<MoveOutcome>, KernelError> {
        // Defense in depth: every caller screens its sources against the
        // pin registry before reaching here, but a pinned cell must never
        // be patched even if a new caller forgets — re-check each request
        // while nothing has been mutated yet.
        for req in reqs {
            check_unpinned(req.src, req.len, &self.pins).map_err(KernelError::Move)?;
        }
        // The hook needs the plan while the router borrows mem+swap; take
        // the plan out for the duration of the move.
        let mut plan = self.faults.take();
        let journal_on = plan.is_some();
        let mut hook = |phase: MovePhase| {
            phase == MovePhase::Patched
                && plan
                    .as_mut()
                    .is_some_and(|p| p.should_fire(FaultPoint::MidMove))
        };
        let workers = self.move_workers;
        let mut routed = SwapAwareMem {
            mem: &mut self.mem,
            swap: &mut self.swap,
        };
        let res = perform_move_batch_journaled(
            table,
            &mut routed,
            regs,
            reqs,
            &self.cost,
            workers,
            if journal_on { Some(&mut hook) } else { None },
        );
        self.faults = plan;
        res.map_err(|_| {
            let req = reqs[0];
            KernelError::MoveInterrupted {
                src: req.src,
                len: req.len,
                dst: req.dst,
            }
        })
    }

    /// Register a toolchain key the kernel trusts.
    pub fn trust(&mut self, key: SigningKey) {
        self.trusted.push(key);
    }

    /// Load a signed CARAT binary; installs the capsule region set and
    /// counts the initial page allocations.
    ///
    /// # Errors
    ///
    /// See [`LoadError`].
    pub fn load(
        &mut self,
        signed: &SignedModule,
        table: &mut AllocationTable,
        cfg: LoadConfig,
    ) -> Result<ProcessImage, LoadError> {
        // Injected in-flight corruption: flip a signature bit so the
        // verification path must catch and reject the image.
        let corrupted;
        let signed = if self.fire(FaultPoint::SignatureCorrupt) {
            let mut c = signed.clone();
            c.signature[0] ^= 0x01;
            corrupted = c;
            &corrupted
        } else {
            signed
        };
        let img = load_signed(
            signed,
            &self.trusted,
            &mut self.mem,
            &mut self.buddy,
            table,
            cfg,
        )?;
        self.install_image(&img);
        Ok(img)
    }

    /// Load an unsigned module (baseline mode and tests).
    ///
    /// # Errors
    ///
    /// See [`LoadError`].
    pub fn load_unsigned(
        &mut self,
        module: Module,
        table: &mut AllocationTable,
        cfg: LoadConfig,
    ) -> Result<ProcessImage, LoadError> {
        let img = load_unsigned(module, &mut self.mem, &mut self.buddy, table, cfg)?;
        self.install_image(&img);
        Ok(img)
    }

    /// Load an unsigned module from a shared handle (fleet spawn path:
    /// one `Rc<Module>` feeds thousands of tenants without cloning IR).
    ///
    /// # Errors
    ///
    /// See [`LoadError`].
    pub fn load_shared(
        &mut self,
        module: std::rc::Rc<Module>,
        table: &mut AllocationTable,
        cfg: LoadConfig,
    ) -> Result<ProcessImage, LoadError> {
        let img = crate::loader::load_shared(module, &mut self.mem, &mut self.buddy, table, cfg)?;
        self.install_image(&img);
        Ok(img)
    }

    /// [`SimKernel::load_shared`] for a module already verified and
    /// measured by a batch admission pass — skips `verify_module` and
    /// the `print_module` length walk. `text_len` must be the value the
    /// sequential path would compute, so the stamped image is
    /// bit-identical to its sequential counterpart.
    ///
    /// # Errors
    ///
    /// See [`LoadError`] (out-of-memory only on this path).
    pub fn load_shared_preverified(
        &mut self,
        module: std::rc::Rc<Module>,
        text_len: u64,
        table: &mut AllocationTable,
        cfg: LoadConfig,
    ) -> Result<ProcessImage, LoadError> {
        let img = crate::loader::load_shared_preverified(
            module,
            text_len,
            &mut self.mem,
            &mut self.buddy,
            table,
            cfg,
        )?;
        self.install_image(&img);
        Ok(img)
    }

    fn install_image(&mut self, img: &ProcessImage) {
        self.master = vec![img.capsule_region()];
        self.regions.set_regions(self.master.clone());
        // Initial pages (stack+data+code) are allocations at load time.
        let page = self.cost.page_size;
        for i in 0..img.initial_pages {
            self.trace.record_first_touch(img.stack.0 / page + i);
        }
    }

    /// Demand-allocate the page containing `addr` (CARAT mode: pure
    /// bookkeeping; the capsule already covers the arena). Returns whether
    /// this was a fresh page.
    pub fn demand_touch(&mut self, addr: u64) -> bool {
        let page = self.cost.page_of(addr);
        // Fast path for the VM's per-access call: the touched set only
        // grows, so a hit on the last touched page can never go stale.
        if page == self.last_touched_page {
            return false;
        }
        self.last_touched_page = page;
        self.trace.record_first_touch(page)
    }

    /// Baseline: translate-or-fault. Ensures `vpn` is mapped, allocating
    /// and mapping a fresh frame on first touch. Returns the PTE.
    ///
    /// # Errors
    ///
    /// [`KernelError::OutOfFrames`] when the frame allocator is exhausted.
    pub fn ensure_mapped(&mut self, vpn: u64) -> Result<Pte, KernelError> {
        if let Some(pte) = self.pagetable.translate(vpn) {
            return Ok(pte);
        }
        let frame = self
            .buddy
            .alloc_pages(1)
            .ok_or(KernelError::OutOfFrames { pages: 1 })?;
        let pte = Pte {
            ppn: frame / self.cost.page_size,
            writable: true,
        };
        self.pagetable.map(vpn, pte);
        self.trace.record(PagingEvent::Alloc { page: vpn });
        Ok(pte)
    }

    /// Change protections on a region of the process (paper: "a region
    /// change is a modification of a region entry"). `start..start+len`
    /// must already lie within the capsule.
    pub fn change_protection(&mut self, start: u64, len: u64, perms: Perms) {
        self.punch_hole(start, start + len);
        self.master.push(Region { start, len, perms });
        self.master.sort_by_key(|r| r.start);
        self.regions.set_regions(self.master.clone());
        self.trace.record(PagingEvent::Invalidate {
            first: start / self.cost.page_size,
            count: len.div_ceil(self.cost.page_size),
        });
    }

    fn punch_hole(&mut self, lo: u64, hi: u64) {
        let mut next = Vec::with_capacity(self.master.len() + 2);
        for r in self.master.drain(..) {
            let (rs, re) = (r.start, r.end());
            if re <= lo || rs >= hi {
                next.push(r);
                continue;
            }
            if rs < lo {
                next.push(Region {
                    start: rs,
                    len: lo - rs,
                    perms: r.perms,
                });
            }
            if re > hi {
                next.push(Region {
                    start: hi,
                    len: re - hi,
                    perms: r.perms,
                });
            }
        }
        self.master = next;
    }

    /// The worst-case page to move: the page-aligned address overlapping
    /// the allocation with the most live escapes (paper §4.4).
    pub fn worst_page(&self, table: &AllocationTable) -> Option<u64> {
        let page = self.cost.page_size;
        table
            .snapshot()
            .into_iter()
            // Swapped-out (poison-resident) allocations cannot be moved,
            // and pinned DMA targets must not be: plan around both.
            .filter(|&(start, len, _, _)| {
                !Self::is_poison(start) && check_unpinned(start, len, &self.pins).is_ok()
            })
            .max_by_key(|&(_, _, escapes_live, _)| escapes_live)
            .map(|(start, _, _, _)| start / page * page)
    }

    /// The move planner's victim list: up to `max` page-aligned addresses
    /// ordered worst-first by live escape count, deduplicated by page —
    /// the batch fed to [`SimKernel::move_pages_batch`] so several
    /// compaction victims share one world-stop.
    ///
    /// `worst_pages(table, 1)` always agrees with
    /// [`SimKernel::worst_page`]: ties are broken toward the higher start
    /// address, matching `max_by_key`'s last-maximum semantics over the
    /// table's ascending iteration order.
    pub fn worst_pages(&self, table: &AllocationTable, max: usize) -> Vec<u64> {
        let page = self.cost.page_size;
        let mut victims: Vec<(usize, u64)> = table
            .snapshot()
            .into_iter()
            .filter(|&(start, len, _, _)| {
                !Self::is_poison(start) && check_unpinned(start, len, &self.pins).is_ok()
            })
            .map(|(start, _, escapes_live, _)| (escapes_live, start))
            .collect();
        victims.sort_unstable_by(|a, b| b.cmp(a));
        let mut out: Vec<u64> = Vec::new();
        for (_, start) in victims {
            let p = start / page * page;
            if !out.contains(&p) {
                out.push(p);
                if out.len() == max {
                    break;
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // DMA pinning
    // ------------------------------------------------------------------

    /// Pin `[start, start+len)` for DMA on behalf of the currently
    /// scheduled process (kernel-owned when none is). Pinned memory is
    /// invisible to victim selection and refused by every mover until
    /// unpinned — the CARAT trade: the pin itself is O(1) (no page-table
    /// walk, physical addresses are already stable), but the pinned hole
    /// costs compaction freedom, accounted in [`SimKernel::pin_stats`].
    pub fn pin_region(&mut self, start: u64, len: u64) -> Result<(), PinError> {
        let owner = self.procs.current();
        self.pin_with_owner(owner, start, len)
    }

    /// Pin on behalf of `pid` (which need not be scheduled): the pin is
    /// reaped if that tenant is killed, and its accounting lands in that
    /// tenant's [`crate::ProcAccounting`].
    pub fn pin_region_for(&mut self, pid: Pid, start: u64, len: u64) -> Result<(), PinError> {
        if self.procs.get(pid).is_none() {
            return Err(PinError::StaleTenant { pid });
        }
        self.pin_with_owner(Some(pid), start, len)
    }

    fn pin_with_owner(&mut self, owner: Option<Pid>, start: u64, len: u64) -> Result<(), PinError> {
        if len == 0 {
            return Err(PinError::ZeroLen);
        }
        if Self::is_poison(start) {
            return Err(PinError::Swapped { addr: start });
        }
        if let Some(p) = self.pins.iter().find(|p| p.overlaps(start, len)) {
            return Err(PinError::AlreadyPinned {
                start: p.start,
                len: p.len,
            });
        }
        self.pins.push(PinnedRange {
            start,
            len,
            owner: owner.map(|p| p.index()),
        });
        self.pin_stats.pins += 1;
        let now = self.pinned_bytes();
        self.pin_stats.peak_pinned_bytes = self.pin_stats.peak_pinned_bytes.max(now);
        if let Some(pid) = owner {
            if let Some(e) = self.procs.get_mut(pid) {
                e.accounting.pins += 1;
                e.accounting.pinned_bytes += len;
            }
        }
        Ok(())
    }

    /// Unpin an exact previously pinned range. Partial unpins are
    /// rejected: a device owns the whole buffer or none of it.
    pub fn unpin_region(&mut self, start: u64, len: u64) -> Result<(), PinError> {
        let Some(idx) = self
            .pins
            .iter()
            .position(|p| p.start == start && p.len == len)
        else {
            return Err(PinError::NotPinned { start, len });
        };
        let pin = self.pins.swap_remove(idx);
        self.pin_stats.unpins += 1;
        if let Some(owner) = pin.owner {
            let owner_pid = self
                .procs
                .iter()
                .map(|e| e.pid)
                .find(|p| p.index() == owner);
            if let Some(e) = owner_pid.and_then(|p| self.procs.get_mut(p)) {
                e.accounting.unpins += 1;
                e.accounting.pinned_bytes = e.accounting.pinned_bytes.saturating_sub(len);
            }
        }
        Ok(())
    }

    /// The pin overlapping `[start, start+len)`, if any, as
    /// `(pin_start, pin_len)`.
    pub fn pinned_overlap(&self, start: u64, len: u64) -> Option<(u64, u64)> {
        self.pins
            .iter()
            .find(|p| p.overlaps(start, len))
            .map(|p| (p.start, p.len))
    }

    /// The live pin list (movers and tests inspect it; mutation goes
    /// through pin/unpin so accounting stays consistent).
    pub fn pins(&self) -> &[PinnedRange] {
        &self.pins
    }

    /// Total bytes currently pinned.
    pub fn pinned_bytes(&self) -> u64 {
        self.pins.iter().map(|p| p.len).sum()
    }

    /// Bytes currently pinned by `pid`.
    pub fn pinned_bytes_of(&self, pid: Pid) -> u64 {
        self.pins
            .iter()
            .filter(|p| p.owner == Some(pid.index()))
            .map(|p| p.len)
            .sum()
    }

    /// Lifetime pin accounting.
    pub fn pin_stats(&self) -> PinStats {
        self.pin_stats
    }

    /// Record a mover refusal against the pin ledger (fragmentation
    /// cost of the pinned hole).
    fn note_denied_move(&mut self, len: u64) {
        self.pin_stats.denied_moves += 1;
        self.pin_stats.denied_bytes += len;
    }

    // ------------------------------------------------------------------
    // DMA service
    // ------------------------------------------------------------------

    /// Service up to `max` pending DMA descriptors: validate each target
    /// against the pin registry (a transfer into unpinned memory is
    /// refused — the device will not race the move engine), perform the
    /// copy, and push a completion. Returns the completions produced by
    /// this call (they are also queued on the response ring).
    pub fn dma_service(&mut self, max: usize) -> Vec<DmaCompletion> {
        let mut done = Vec::with_capacity(max.min(8));
        for _ in 0..max {
            let Some(req) = self.dev.dma.pop_request() else {
                break;
            };
            let c = self.dma_execute(req);
            self.dev.dma.push_completion(c);
            done.push(c);
        }
        done
    }

    fn dma_execute(&mut self, req: DmaRequest) -> DmaCompletion {
        let fail = |err| DmaCompletion {
            id: req.id,
            err: Some(err),
            cycles: 0,
            checksum: 0,
        };
        if req.len == 0 {
            return fail(DmaError::ZeroLen);
        }
        if self.fire(FaultPoint::DmaService) {
            return fail(DmaError::DeviceFault);
        }
        if Self::is_poison(req.addr) {
            return fail(DmaError::Swapped { addr: req.addr });
        }
        let covered = self
            .pins
            .iter()
            .any(|p| p.start <= req.addr && req.addr + req.len <= p.start + p.len);
        if !covered {
            return fail(DmaError::NotPinned {
                addr: req.addr,
                len: req.len,
            });
        }
        let cycles = self.cost.dma_cost(req.len);
        let checksum = match req.dir {
            DmaDir::DeviceToMem => {
                // Deterministic device payload: a xorshift64* stream
                // seeded by the descriptor, so replays are bit-identical
                // and workloads can verify what "the wire" delivered.
                let mut x = req
                    .id
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(req.addr | 1);
                let mut buf = vec![0u8; req.len as usize];
                for chunk in buf.chunks_mut(8) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let b = x.to_le_bytes();
                    chunk.copy_from_slice(&b[..chunk.len()]);
                }
                self.mem.write_bytes(req.addr, &buf);
                self.dev.dma.account_bytes(DmaDir::DeviceToMem, req.len);
                fnv1a(&buf)
            }
            DmaDir::MemToDevice => {
                let data = self.mem.read_bytes(req.addr, req.len).to_vec();
                self.dev.dma.account_bytes(DmaDir::MemToDevice, req.len);
                fnv1a(&data)
            }
        };
        DmaCompletion {
            id: req.id,
            err: None,
            cycles,
            checksum,
        }
    }

    /// Execute a full CARAT page movement: world stop, negotiation,
    /// patching (escapes + registers), data copy, region update, resume.
    /// Returns the protocol record and the move outcome.
    ///
    /// `regs` is the register state of all threads, dumped by the signal
    /// handlers; `threads` its thread count.
    ///
    /// # Errors
    ///
    /// The operation is transactional: on any error the allocation table,
    /// registers, and physical memory are as they were before the call.
    /// [`KernelError::OutOfFrames`] when no destination exists (after
    /// compaction + retries); [`KernelError::WorldStop`] when the stop
    /// protocol stalls (the episode is aborted and threads released);
    /// [`KernelError::MoveInterrupted`] when the move was interrupted
    /// between patch and copy (the patch journal has rolled back).
    pub fn move_pages(
        &mut self,
        table: &mut AllocationTable,
        regs: &mut [u64],
        src: u64,
        pages: u64,
        threads: usize,
    ) -> Result<(WorldStop, MoveOutcome), KernelError> {
        self.move_pages_batch(table, regs, &[(src, pages)], threads)
            .and_then(|(world, mut outs)| {
                let out = outs.pop().ok_or(KernelError::MoveInterrupted {
                    src,
                    len: pages * self.cost.page_size,
                    dst: 0,
                })?;
                Ok((world, out))
            })
    }

    /// [`SimKernel::move_pages`] over a *batch* of `(src, pages)` requests
    /// coalesced into ONE world-stop: one signal+barrier round, one
    /// register-patch pass, and N region patches. A request whose expanded
    /// range overlaps an earlier accepted one is already covered by that
    /// move and is dropped; outcomes are returned for accepted requests in
    /// order. For pairwise-disjoint requests the resulting memory,
    /// registers, and table are bit-identical to issuing the moves
    /// sequentially — only the world-stop and register-pass cycles are
    /// amortized.
    ///
    /// # Errors
    ///
    /// Transactional across the whole batch, with the same error surface
    /// as [`SimKernel::move_pages`]: on any error every destination is
    /// released and every patch rolled back; no request takes effect.
    pub fn move_pages_batch(
        &mut self,
        table: &mut AllocationTable,
        regs: &mut [u64],
        moves: &[(u64, u64)],
        threads: usize,
    ) -> Result<(WorldStop, Vec<MoveOutcome>), KernelError> {
        let page = self.cost.page_size;
        // Pre-negotiate every request so each destination is large enough,
        // coalescing requests the expansion has already swallowed. A
        // request whose *expanded* range touches a pinned DMA buffer is
        // refused here — before anything is allocated or stopped — and
        // skipped like an alloc failure: batchmates still move, and the
        // typed error surfaces only when nothing in the batch survives.
        let mut pin_err: Option<KernelError> = None;
        let mut expanded: Vec<(u64, u64)> = Vec::with_capacity(moves.len());
        for &(src, pages) in moves {
            let len = pages * page;
            let (xsrc, xlen) =
                carat_runtime::expand_to_allocations(table, src / page * page, len, page);
            if expanded
                .iter()
                .any(|&(s, l)| xsrc < s + l && s < xsrc + xlen)
            {
                continue;
            }
            if let Err(e) = check_unpinned(xsrc, xlen, &self.pins) {
                self.note_denied_move(xlen);
                pin_err = Some(KernelError::Move(e));
                continue;
            }
            expanded.push((xsrc, xlen));
        }
        // Allocate every destination up front, publishing each accepted
        // source range to the vacated list as we go: destination k may
        // recycle the frames request j < k is about to vacate, exactly as
        // a sequence of per-move stops would — so physical placement (and
        // with it every address-dependent counter) is bit-identical to
        // sequential execution. The copies later run in request order, so
        // an earlier range is always evacuated before a later destination
        // lands in it. On failure nothing has been patched yet: restoring
        // the vacated list and freeing the buddy blocks is the whole
        // rollback.
        let vacated_before = self.vacated.clone();
        let mut dsts: Vec<(DstAlloc, u64)> = Vec::with_capacity(expanded.len());
        let mut accepted: Vec<(u64, u64)> = Vec::with_capacity(expanded.len());
        let release_all = |k: &mut Self, dsts: Vec<(DstAlloc, u64)>| {
            k.vacated = vacated_before.clone();
            for (d, _) in dsts {
                if d.from_buddy {
                    let freed = k.buddy.free_pages(d.addr);
                    debug_assert!(freed.is_ok(), "releasing a live buddy block");
                }
            }
        };
        // A request whose destination cannot be allocated is skipped, not
        // fatal to its batchmates — exactly as its stand-alone move would
        // have failed without affecting the next one. The error surfaces
        // only when *no* request gets a destination (so a batch of one
        // keeps `move_pages`'s error surface).
        let mut alloc_err = None;
        for &(xsrc, xlen) in &expanded {
            match self.alloc_move_dst(xlen) {
                Ok(d) => {
                    dsts.push(d);
                    accepted.push((xsrc, xlen));
                    self.vacated.push((xsrc, xlen));
                }
                Err(e) => alloc_err = Some(e),
            }
        }
        if dsts.is_empty() {
            // Nothing was taken or pre-published; only the (semantically
            // neutral) vacated-range compaction of the failed attempts
            // remains, as after a failed stand-alone move.
            // An empty `moves` batch reaches here with no allocation
            // error recorded; surface it as a zero-page frame failure
            // rather than panicking on a caller mistake. An allocation
            // failure outranks a pin refusal: the former is the signal
            // compaction callers act on.
            return Err(alloc_err
                .or(pin_err)
                .unwrap_or(KernelError::OutOfFrames { pages: 0 }));
        }

        let mut world = match self.begin_stop(threads) {
            Ok(w) => w,
            Err(e) => {
                release_all(self, dsts);
                return Err(e);
            }
        };
        let reqs: Vec<MoveRequest> = accepted
            .iter()
            .zip(&dsts)
            .map(|(&(xsrc, xlen), &(d, _))| MoveRequest {
                src: xsrc,
                len: xlen,
                dst: d.addr,
            })
            .collect();
        let mut outcomes = match self.journaled_move_batch(table, regs, &reqs) {
            Ok(outs) => outs,
            Err(e) => {
                world.abort(&self.cost);
                release_all(self, dsts);
                return Err(e);
            }
        };
        for (outcome, &(_, backoff)) in outcomes.iter_mut().zip(&dsts) {
            outcome.cost.alloc_and_move += backoff;
        }
        for (d, _) in &dsts {
            self.commit_dst_block(d);
        }
        Self::finish_stop(&mut world, &self.cost)?;

        // Region maintenance: each moved range leaves the capsule and its
        // destination becomes accessible. The vacated frames were already
        // published during destination allocation above. One region
        // rebuild covers the whole batch.
        for outcome in &outcomes {
            self.punch_hole(outcome.moved_src, outcome.moved_src + outcome.moved_len);
            self.master.push(Region {
                start: outcome.moved_dst,
                len: outcome.moved_len,
                perms: Perms::RW,
            });
            for p in 0..outcome.moved_len / page {
                self.trace.record(PagingEvent::Move {
                    from: outcome.moved_src / page + p,
                    to: outcome.moved_dst / page + p,
                });
            }
        }
        self.master.sort_by_key(|r| r.start);
        self.regions.set_regions(self.master.clone());
        Ok((world, outcomes))
    }

    /// Page a range out to swap (paper §2.2: "to make a page unavailable,
    /// we patch its affected pointers to a physical address that will
    /// cause a fault … the specific non-canonical address can be used to
    /// encode different conditions").
    ///
    /// Expands `page` to whole allocations, patches every escape and
    /// register pointing into the range to a poison address encoding the
    /// swap slot, copies the data to the swap store, revokes the region,
    /// and recycles the frames. Returns the slot id, or `Ok(None)` for a
    /// range the kernel declines to swap (too large, or already in swap).
    ///
    /// # Errors
    ///
    /// [`KernelError::WorldStop`] when the stop protocol stalls before
    /// any state was touched (the episode is aborted, the slot id is not
    /// consumed, and no data has been patched or copied).
    pub fn page_out(
        &mut self,
        table: &mut AllocationTable,
        regs: &mut [u64],
        page: u64,
        threads: usize,
    ) -> Result<Option<(WorldStop, u64, u64, u64)>, KernelError> {
        let pg = self.cost.page_size;
        let (src, len) = carat_runtime::expand_to_allocations(table, page / pg * pg, pg, pg);
        if len > POISON_SLOT_SPAN || Self::is_poison(src) {
            return Ok(None);
        }
        // A pinned DMA buffer can never be swapped: the device holds its
        // physical address. Typed refusal, nothing mutated.
        if let Err(e) = check_unpinned(src, len, &self.pins) {
            self.note_denied_move(len);
            return Err(KernelError::Move(e));
        }
        // The slot id is only consumed once the episode is under way.
        let slot = self.peek_swap_slot();
        let poison = POISON_BASE + slot * POISON_SLOT_SPAN;
        let delta = poison.wrapping_sub(src) as i64;

        // All mutations happen after the world has stopped; a stall here
        // leaves every byte as it was.
        let mut world = self.begin_stop(threads)?;
        self.commit_swap_slot(slot);

        // Patch escapes of every affected allocation to poison addresses
        // (cells may themselves live in other swapped ranges).
        let mut routed = SwapAwareMem {
            mem: &mut self.mem,
            swap: &mut self.swap,
        };
        for (start, info) in table.overlapping_infos(src, src + len) {
            let (lo, hi) = (start, start + info.len);
            for &cell in &info.escapes {
                let val = routed.read_u64(cell);
                if val >= lo && val < hi {
                    routed.write_u64(cell, val.wrapping_add(delta as u64));
                }
            }
        }
        for r in regs.iter_mut() {
            if *r >= src && *r < src + len {
                *r = r.wrapping_add(delta as u64);
            }
        }
        // Copy out, rebase tracking to the poison range, free the frames.
        let data = self.mem.read_bytes(src, len).to_vec();
        table.rebase_escape_cells(src, src + len, delta);
        for start in table.overlapping(src, src + len) {
            table.relocate(start, delta);
        }
        self.swap.insert(slot, SwapEntry { len, data });
        self.vacated.push((src, len));
        self.punch_hole(src, src + len);
        self.regions.set_regions(self.master.clone());
        self.trace.record(PagingEvent::Invalidate {
            first: src / pg,
            count: len / pg,
        });

        Self::finish_stop(&mut world, &self.cost)?;
        Ok(Some((world, slot, src, len)))
    }

    /// Service a fault on a poison address: bring the slot's data back
    /// into fresh frames, patch every poisoned pointer to the new
    /// location, and restore the region. Returns the new base address of
    /// the range, or `Ok(None)` when `poison_addr` does not name a live
    /// swap slot.
    ///
    /// # Errors
    ///
    /// [`KernelError::SwapReadFailed`] when the swap store cannot produce
    /// the slot (injected read failure or corrupted entry);
    /// [`KernelError::OutOfFrames`] when no destination frames exist;
    /// [`KernelError::WorldStop`] on a stop-protocol stall. In every
    /// case the swap entry is preserved so the fault can be retried —
    /// the data is never dropped on a failed page-in.
    pub fn page_in(
        &mut self,
        table: &mut AllocationTable,
        regs: &mut [u64],
        poison_addr: u64,
        threads: usize,
    ) -> Result<Option<(WorldStop, u64)>, KernelError> {
        if !Self::is_poison(poison_addr) {
            return Ok(None);
        }
        let slot = (poison_addr - POISON_BASE) / POISON_SLOT_SPAN;
        let Some(len) = self.swap.get(&slot).map(|e| e.len) else {
            return Ok(None);
        };
        if self.fire(FaultPoint::SwapRead) {
            return Err(KernelError::SwapReadFailed { slot });
        }
        let poison = POISON_BASE + slot * POISON_SLOT_SPAN;
        // Allocate before taking the entry out of the store: an OOM here
        // must not lose the swapped data.
        let (dst, backoff) = self.alloc_move_dst(len)?;
        let mut world = match self.begin_stop(threads) {
            Ok(w) => w,
            Err(e) => {
                self.release_move_dst(dst);
                return Err(e);
            }
        };
        world.cycles += backoff;
        let Some(entry) = self.swap.remove(&slot) else {
            // The slot vanished between the liveness probe and here —
            // impossible today, but a typed error keeps a future razed
            // invariant from taking the fleet down with it.
            world.abort(&self.cost);
            self.release_move_dst(dst);
            return Err(KernelError::SwapReadFailed { slot });
        };
        if entry.data.len() as u64 != entry.len {
            // Corrupted entry: keep it for post-mortem, release
            // everything else, surface a typed error.
            self.swap.insert(slot, entry);
            world.abort(&self.cost);
            self.release_move_dst(dst);
            return Err(KernelError::SwapReadFailed { slot });
        }
        self.page_in_stopped(table, regs, world, entry, dst, poison)
    }

    /// The body of [`SimKernel::page_in`] once the world is stopped and
    /// the entry + destination are in hand.
    fn page_in_stopped(
        &mut self,
        table: &mut AllocationTable,
        regs: &mut [u64],
        mut world: WorldStop,
        entry: SwapEntry,
        dst_alloc: DstAlloc,
        poison: u64,
    ) -> Result<Option<(WorldStop, u64)>, KernelError> {
        let dst = dst_alloc.addr;
        let delta = dst.wrapping_sub(poison) as i64;

        self.mem.write_bytes(dst, &entry.data);
        // Patch every escape cell holding a pointer into the poison range.
        let mut routed = SwapAwareMem {
            mem: &mut self.mem,
            swap: &mut self.swap,
        };
        for (start, info) in table.overlapping_infos(poison, poison + entry.len) {
            let (lo, hi) = (start, start + info.len);
            for &cell in &info.escapes {
                // Cells inside this slot were restored at dst; cells in
                // other slots are reached through the router.
                let cell = if cell >= poison && cell < poison + entry.len {
                    cell.wrapping_add(delta as u64)
                } else {
                    cell
                };
                let val = routed.read_u64(cell);
                if val >= lo && val < hi {
                    routed.write_u64(cell, val.wrapping_add(delta as u64));
                }
            }
        }
        for r in regs.iter_mut() {
            if *r >= poison && *r < poison + entry.len {
                *r = r.wrapping_add(delta as u64);
            }
        }
        table.rebase_escape_cells(poison, poison + entry.len, delta);
        for start in table.overlapping(poison, poison + entry.len) {
            table.relocate(start, delta);
        }
        self.punch_hole(dst, dst + entry.len);
        self.master.push(Region {
            start: dst,
            len: entry.len,
            perms: Perms::RW,
        });
        self.master.sort_by_key(|r| r.start);
        self.regions.set_regions(self.master.clone());
        let pg = self.cost.page_size;
        for p in 0..entry.len / pg {
            self.trace.record(PagingEvent::Alloc { page: dst / pg + p });
        }
        self.commit_dst_block(&dst_alloc);
        self.release_swap_slot((poison - POISON_BASE) / POISON_SLOT_SPAN);

        Self::finish_stop(&mut world, &self.cost)?;
        Ok(Some((world, dst)))
    }

    /// Seamless stack expansion (paper §2.2: "a failed guard involving the
    /// stack causes the kernel to be invoked; this provides a mechanism by
    /// which the kernel can implement seamless stack expansion").
    ///
    /// The stack is an ordinary tracked allocation, so the kernel grows it
    /// by *moving* it: allocate a block twice the size, relocate the live
    /// stack contents to its top (patching escapes and registers via the
    /// normal move engine), extend the allocation downward, and install
    /// the new region. Returns the move outcome, or `Ok(None)` when the
    /// stack already reached `max_stack` bytes.
    ///
    /// # Errors
    ///
    /// Transactional like [`SimKernel::move_pages`]: on
    /// [`KernelError::OutOfFrames`], [`KernelError::WorldStop`], or
    /// [`KernelError::MoveInterrupted`] the stack, table, and registers
    /// are exactly as before the call.
    pub fn expand_stack(
        &mut self,
        table: &mut AllocationTable,
        regs: &mut [u64],
        img: &mut ProcessImage,
        threads: usize,
        max_stack: u64,
    ) -> Result<Option<(WorldStop, MoveOutcome)>, KernelError> {
        let (old_start, old_len) = img.stack;
        let new_len = (old_len * 2).min(max_stack);
        if new_len <= old_len {
            return Ok(None);
        }
        // Stack growth relocates the old stack block; a pinned stack
        // range (a tenant DMA-ing from its own stack) blocks it, typed.
        if let Err(e) = check_unpinned(old_start, old_len, &self.pins) {
            self.note_denied_move(old_len);
            return Err(KernelError::Move(e));
        }
        let (dst, backoff) = self.alloc_move_dst(new_len)?;
        let dst_block = dst.addr;
        // Live data keeps its distance from the stack top: it lands at the
        // top of the new block.
        let data_dst = dst_block + new_len - old_len;

        let mut world = match self.begin_stop(threads) {
            Ok(w) => w,
            Err(e) => {
                self.release_move_dst(dst);
                return Err(e);
            }
        };
        world.cycles += backoff;
        let req = MoveRequest {
            src: old_start,
            len: old_len,
            dst: data_dst,
        };
        let outcome = match self.journaled_move(table, regs, req) {
            Ok(out) => out,
            Err(e) => {
                world.abort(&self.cost);
                self.release_move_dst(dst);
                return Err(e);
            }
        };
        self.commit_dst_block(&dst);
        Self::finish_stop(&mut world, &self.cost)?;

        // Extend the relocated stack allocation downward over the whole
        // new block.
        if let Some(info) = table.track_free(outcome.moved_dst) {
            table.track_alloc(dst_block, new_len, carat_runtime::AllocKind::Stack);
            table.adopt_escapes(dst_block, info.escapes, info.escapes_ever);
            // track_free recorded a death; neutralize the histogram entry
            // since the allocation logically lives on.
            if let Some(h) = table.stats.escape_histogram.get_mut(&info.escapes_ever) {
                *h = h.saturating_sub(1);
            }
        }

        // Regions: the old stack range is vacated; the new block (all of
        // it, including the fresh growth room) becomes the stack region.
        self.vacated.push((outcome.moved_src, outcome.moved_len));
        self.punch_hole(outcome.moved_src, outcome.moved_src + outcome.moved_len);
        self.punch_hole(dst_block, dst_block + new_len);
        self.master.push(Region {
            start: dst_block,
            len: new_len,
            perms: Perms::RW,
        });
        self.master.sort_by_key(|r| r.start);
        self.regions.set_regions(self.master.clone());
        self.trace.record(PagingEvent::Move {
            from: old_start / self.cost.page_size,
            to: data_dst / self.cost.page_size,
        });

        img.stack = (dst_block, new_len);
        Ok(Some((world, outcome)))
    }

    /// Update a process image's global bindings after a move (the kernel
    /// patches the code image's address constants).
    pub fn patch_globals(img: &mut ProcessImage, outcome: &MoveOutcome) {
        let (lo, hi) = (outcome.moved_src, outcome.moved_src + outcome.moved_len);
        let delta = outcome.moved_dst.wrapping_sub(outcome.moved_src);
        for g in &mut img.globals {
            if *g >= lo && *g < hi {
                *g = g.wrapping_add(delta);
            }
        }
    }

    // --- multi-process operation -----------------------------------------

    /// Register the most recently loaded image as a process: the capsule
    /// region set the load installed becomes the process's guard-region
    /// map, and the (empty at this point) live page table is parked with
    /// it. Call immediately after [`SimKernel::load`] /
    /// [`SimKernel::load_unsigned`] for each tenant; nothing is installed
    /// until the first [`SimKernel::proc_switch`].
    ///
    /// # Errors
    ///
    /// [`AdmissionError`] when the tenant quotas refuse the capsule. The
    /// refused tenant's capsule frames are released again — admission
    /// failure leaves the kernel exactly as it was before the load.
    pub fn register_proc(
        &mut self,
        name: &str,
        image: ProcessImage,
    ) -> Result<Pid, crate::proc::AdmissionError> {
        let regions = std::mem::take(&mut self.master);
        let pagetable = std::mem::replace(&mut self.pagetable, PageTable::new());
        self.regions.set_regions(Vec::new());
        let capsule_base = image.stack.0;
        match self
            .procs
            .spawn(name.to_string(), image, regions, pagetable, None)
        {
            Ok(pid) => Ok(pid),
            Err(e) => {
                // Roll the load back: the capsule is one contiguous buddy
                // block based at the stack bottom.
                let _ = self.buddy.free_pages(capsule_base);
                Err(e)
            }
        }
    }

    /// Set the fleet admission quotas (tenant count and resident bytes);
    /// see [`crate::TenantQuotas`]. Applies to future registrations only.
    pub fn set_quotas(&mut self, quotas: crate::proc::TenantQuotas) {
        self.procs.set_quotas(quotas);
    }

    /// Kill process `pid`: retire its slab slot (bumping the generation,
    /// so every outstanding copy of the pid goes stale), release its
    /// capsule frames *and* every buddy block its CARAT moves carried it
    /// into back to the allocator, drop its swap-device entries, and
    /// unmap it from any shared regions. Returns `false` for a stale pid.
    ///
    /// Because the vacated-range recycler is per-process, fragments of a
    /// victim's relocation blocks die with its entry — each owned block
    /// goes home to the buddy in one piece, with no risk of a recycled
    /// sub-range aliasing the freed frames.
    pub fn proc_kill(&mut self, pid: Pid) -> bool {
        let was_current = self.procs.current() == Some(pid);
        let Some(mut entry) = self.procs.kill(pid) else {
            return false;
        };
        if was_current {
            // The live master list and allocator state described the
            // victim; drop the regions and claim the per-process
            // allocator state as the victim's so the reap below sees it.
            self.master.clear();
            self.regions.set_regions(Vec::new());
            self.pagetable = PageTable::new();
            self.vacated.clear();
            entry.owned_blocks = std::mem::take(&mut self.owned_blocks);
            self.next_swap_slot = 0;
            self.free_swap_slots.clear();
        }
        let _ = self.buddy.free_pages(entry.image.stack.0);
        for base in entry.owned_blocks.drain(..) {
            let _ = self.buddy.free_pages(base);
        }
        // Striped swap slots carry the owner's lane in their low bits;
        // reap the victim's pages from the simulated device.
        let lane = (pid.index() as u64) % SWAP_SLOT_STRIDE;
        self.swap.retain(|&slot, _| slot % SWAP_SLOT_STRIDE != lane);
        // Reap the victim's DMA pins: a dead tenant must not leave holes
        // the compactor can never clear. (The slab generation was bumped
        // by `kill` above, so a recycled index cannot alias these.)
        let before = self.pins.len();
        self.pins.retain(|p| p.owner != Some(pid.index()));
        self.pin_stats.reaped += (before - self.pins.len()) as u64;
        true
    }

    /// Reserve a private pool of `pages` frames for process `pid`,
    /// seeded into its vacated-range recycler. Subsequent CARAT move
    /// destinations for the process are carved from the pool instead of
    /// the shared buddy allocator, so one tenant's allocation history
    /// cannot perturb another's move-destination addresses — the
    /// bystander-determinism guarantee the fleet fault domain relies on.
    /// The pool is reaped in full by [`SimKernel::proc_kill`].
    ///
    /// # Errors
    ///
    /// [`KernelError::StaleTenant`] for a dead pid;
    /// [`KernelError::OutOfFrames`] when the frame allocator cannot back
    /// the pool. Either way nothing is reserved.
    pub fn proc_reserve_pool(&mut self, pid: Pid, pages: u64) -> Result<(), KernelError> {
        if pages == 0 {
            return Ok(());
        }
        if self.procs.get(pid).is_none() {
            return Err(KernelError::StaleTenant { pid });
        }
        let base = self
            .buddy
            .alloc_pages(pages)
            .ok_or(KernelError::OutOfFrames { pages })?;
        let len = pages * self.cost.page_size;
        if self.procs.current() == Some(pid) {
            self.vacated.push((base, len));
            self.owned_blocks.push(base);
        } else {
            // `get` above proved the entry live.
            if let Some(e) = self.procs.get_mut(pid) {
                e.vacated.push((base, len));
                e.owned_blocks.push(base);
            }
        }
        Ok(())
    }

    /// Context switch to process `to`: park the outgoing process's guard
    /// regions and page table, install the incoming one's, and charge the
    /// mode-dependent cost to the incoming process's *kernel* accounting.
    ///
    /// CARAT pays [`CostModel::ctx_switch_carat`] — the fixed trap path
    /// plus a region-set install. There is no translation state, so
    /// nothing is flushed; the region generation bump alone invalidates
    /// every user-level guard fast path. Traditional pays
    /// [`CostModel::ctx_switch_traditional`] — the same fixed path plus a
    /// *modeled* TLB flush and amortized ASID-rollover refill. The flush
    /// is a kernel-side cycle charge, not a simulated-TLB clear: the
    /// per-process TLB contents model a tagged TLB whose coherence costs
    /// are exactly this charge, which keeps a process's own retired
    /// cycles identical between time-sliced and sequential execution.
    ///
    /// Returns the cycles charged (0 when `to` is already current).
    ///
    /// # Errors
    ///
    /// [`KernelError::StaleTenant`] when `to` no longer names a live
    /// process; the outgoing process (if any) is left installed.
    pub fn proc_switch(&mut self, to: Pid, traditional: bool) -> Result<u64, KernelError> {
        if self.procs.current() == Some(to) {
            return Ok(0);
        }
        if self.procs.get(to).is_none() {
            return Err(KernelError::StaleTenant { pid: to });
        }
        if let Some(e) = self.procs.current().and_then(|cur| self.procs.get_mut(cur)) {
            e.regions = std::mem::take(&mut self.master);
            e.pagetable = std::mem::replace(&mut self.pagetable, PageTable::new());
            e.vacated = std::mem::take(&mut self.vacated);
            e.owned_blocks = std::mem::take(&mut self.owned_blocks);
            e.next_swap_slot = std::mem::take(&mut self.next_swap_slot);
            e.free_swap_slots = std::mem::take(&mut self.free_swap_slots);
        }
        let e = self
            .procs
            .get_mut(to)
            .ok_or(KernelError::StaleTenant { pid: to })?;
        self.master = std::mem::take(&mut e.regions);
        self.pagetable = std::mem::replace(&mut e.pagetable, PageTable::new());
        self.vacated = std::mem::take(&mut e.vacated);
        self.owned_blocks = std::mem::take(&mut e.owned_blocks);
        self.next_swap_slot = std::mem::take(&mut e.next_swap_slot);
        self.free_swap_slots = std::mem::take(&mut e.free_swap_slots);
        self.regions.set_regions(self.master.clone());
        let cycles = if traditional {
            self.cost.ctx_switch_traditional()
        } else {
            self.cost.ctx_switch_carat()
        };
        let acc = &mut e.accounting;
        acc.ctx_switches += 1;
        acc.ctx_switch_cycles += cycles;
        if traditional {
            acc.tlb_flushes += 1;
        }
        self.procs.set_current(Some(to));
        Ok(cycles)
    }

    /// Deschedule the current process without scheduling a successor:
    /// park its guard regions, page table, and per-process allocator
    /// state back in its entry and leave the kernel with no process
    /// installed. Free bookkeeping — no switch cost is charged (the
    /// next [`SimKernel::proc_switch`] pays the full install).
    ///
    /// Call before any operation that treats the live master region
    /// list as scratch space — notably [`SimKernel::load`] /
    /// [`SimKernel::register_proc`] for a *new* process while another
    /// is installed: the loader builds the newcomer's region list in
    /// `master`, and an unparked incumbent's regions would be swept
    /// into the newcomer's entry. No-op when no process is current.
    pub fn proc_park(&mut self) {
        let Some(cur) = self.procs.current() else {
            return;
        };
        if let Some(e) = self.procs.get_mut(cur) {
            e.regions = std::mem::take(&mut self.master);
            e.pagetable = std::mem::replace(&mut self.pagetable, PageTable::new());
            e.vacated = std::mem::take(&mut self.vacated);
            e.owned_blocks = std::mem::take(&mut self.owned_blocks);
            e.next_swap_slot = std::mem::take(&mut self.next_swap_slot);
            e.free_swap_slots = std::mem::take(&mut self.free_swap_slots);
        }
        self.regions.set_regions(Vec::new());
        self.procs.set_current(None);
    }

    /// Allocate a page-aligned shared memory block of at least `len`
    /// bytes. The block belongs to no process until mapped
    /// ([`SimKernel::shared_map`]).
    ///
    /// # Errors
    ///
    /// [`KernelError::OutOfFrames`] when the frame allocator is exhausted.
    pub fn shared_create(&mut self, len: u64) -> Result<SharedId, KernelError> {
        let pg = self.cost.page_size;
        let len = len.div_ceil(pg) * pg;
        let pages = len / pg;
        let base = self
            .buddy
            .alloc_pages(pages)
            .ok_or(KernelError::OutOfFrames { pages })?;
        for p in 0..pages {
            self.trace.record(PagingEvent::Alloc {
                page: base / pg + p,
            });
        }
        Ok(self.procs.add_shared(base, len))
    }

    /// Map shared block `id` into process `pid`'s region set (its guard
    /// map gains an RW region over the block). The caller is responsible
    /// for tracking the block in the process's allocation table so moves
    /// can patch its pointers.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchShared`] for an unknown block id;
    /// [`KernelError::StaleTenant`] when `pid` no longer names a live
    /// process. Either way nothing is mapped.
    pub fn shared_map(&mut self, pid: Pid, id: SharedId) -> Result<(), KernelError> {
        let (base, len) = {
            let s = self
                .procs
                .shared(id)
                .ok_or(KernelError::NoSuchShared { id })?;
            (s.base, s.len)
        };
        let region = Region {
            start: base,
            len,
            perms: Perms::RW,
        };
        if self.procs.current() == Some(pid) {
            self.master.push(region);
            self.master.sort_by_key(|r| r.start);
            self.regions.set_regions(self.master.clone());
        } else {
            let e = self
                .procs
                .get_mut(pid)
                .ok_or(KernelError::StaleTenant { pid })?;
            e.regions.push(region);
            e.regions.sort_by_key(|r| r.start);
        }
        let shared = self.procs.shared_mut(id);
        if !shared.owners.contains(&pid) {
            shared.owners.push(pid);
        }
        Ok(())
    }

    /// [`SimKernel::journaled_move`] across several owner tables at once
    /// (shared-region move).
    fn journaled_shared_move(
        &mut self,
        tables: &mut [&mut AllocationTable],
        regs: &mut [u64],
        req: MoveRequest,
    ) -> Result<MoveOutcome, KernelError> {
        let mut plan = self.faults.take();
        let journal_on = plan.is_some();
        let mut hook = |phase: MovePhase| {
            phase == MovePhase::Patched
                && plan
                    .as_mut()
                    .is_some_and(|p| p.should_fire(FaultPoint::MidMove))
        };
        let workers = self.move_workers;
        let mut routed = SwapAwareMem {
            mem: &mut self.mem,
            swap: &mut self.swap,
        };
        let res = perform_shared_move_journaled(
            tables,
            &mut routed,
            regs,
            req,
            &self.cost,
            workers,
            if journal_on { Some(&mut hook) } else { None },
        );
        self.faults = plan;
        res.map_err(|_| KernelError::MoveInterrupted {
            src: req.src,
            len: req.len,
            dst: req.dst,
        })
    }

    /// Move shared block `id` to a fresh location, patching the escapes
    /// and dumped registers of *every* owner in one world stop, and
    /// updating every owner's guard-region map. `regs` is the
    /// concatenation of all owners' dumped thread registers; `threads`
    /// the total stopped thread count.
    ///
    /// Every owner's allocation table must be checked in (all owners
    /// descheduled — the scheduler quiesces them before a cross-process
    /// move).
    ///
    /// # Errors
    ///
    /// Transactional exactly like [`SimKernel::move_pages`]:
    /// [`KernelError::OutOfFrames`], [`KernelError::WorldStop`], or
    /// [`KernelError::MoveInterrupted`] leave every owner's memory,
    /// registers, and tables byte-identical to the pre-call state.
    pub fn move_shared(
        &mut self,
        id: SharedId,
        regs: &mut [u64],
        threads: usize,
    ) -> Result<(WorldStop, MoveOutcome), KernelError> {
        let (base, len, owners) = {
            let s = self
                .procs
                .shared(id)
                .ok_or(KernelError::NoSuchShared { id })?;
            (s.base, s.len, s.owners.clone())
        };
        // Pre-negotiate expansion across every owner so the destination
        // is big enough (fixed point, mirroring the patch engine).
        let pg = self.cost.page_size;
        let (mut xsrc, mut xlen) = (base, len);
        loop {
            let before = (xsrc, xlen);
            for &pid in &owners {
                if let Some(t) = self.procs.get(pid).and_then(|e| e.table.as_ref()) {
                    let (s, l) = carat_runtime::expand_to_allocations(t, xsrc, xlen, pg);
                    (xsrc, xlen) = (s, l);
                }
            }
            if (xsrc, xlen) == before {
                break;
            }
        }
        // Shared regions are the natural DMA-buffer vehicle, so this is
        // the mover most likely to meet a pin. Refuse before allocating.
        if let Err(e) = check_unpinned(xsrc, xlen, &self.pins) {
            self.note_denied_move(xlen);
            return Err(KernelError::Move(e));
        }
        let (dst, backoff) = self.alloc_move_dst(xlen)?;
        let mut world = match self.begin_stop(threads) {
            Ok(w) => w,
            Err(e) => {
                self.release_move_dst(dst);
                return Err(e);
            }
        };
        // Check out every owner's table; a missing one (stale owner, or a
        // table still checked out to a running tenant) aborts the episode
        // with everything restored.
        let mut tables: Vec<AllocationTable> = Vec::with_capacity(owners.len());
        let mut checked_out: Vec<Pid> = Vec::with_capacity(owners.len());
        for &p in &owners {
            match self.procs.checkout_table(p) {
                Some(t) => {
                    tables.push(t);
                    checked_out.push(p);
                }
                None => {
                    for (&q, t) in checked_out.iter().zip(tables) {
                        self.procs.checkin_table(q, t);
                    }
                    world.abort(&self.cost);
                    self.release_move_dst(dst);
                    return Err(KernelError::StaleTenant { pid: p });
                }
            }
        }
        let req = MoveRequest {
            src: xsrc,
            len: xlen,
            dst: dst.addr,
        };
        let res = {
            let mut refs: Vec<&mut AllocationTable> = tables.iter_mut().collect();
            self.journaled_shared_move(&mut refs, regs, req)
        };
        for (&p, t) in owners.iter().zip(tables) {
            self.procs.checkin_table(p, t);
        }
        let mut outcome = match res {
            Ok(out) => out,
            Err(e) => {
                world.abort(&self.cost);
                self.release_move_dst(dst);
                return Err(e);
            }
        };
        outcome.cost.alloc_and_move += backoff;
        self.commit_dst_block(&dst);
        Self::finish_stop(&mut world, &self.cost)?;

        // Region maintenance, for every owner: the moved range leaves its
        // map; the destination enters it. The current process's map is the
        // live master list.
        self.vacated.push((outcome.moved_src, outcome.moved_len));
        for &pid in &owners {
            if self.procs.current() == Some(pid) {
                retarget_region(
                    &mut self.master,
                    outcome.moved_src,
                    outcome.moved_len,
                    outcome.moved_dst,
                );
                self.regions.set_regions(self.master.clone());
            } else if let Some(e) = self.procs.get_mut(pid) {
                retarget_region(
                    &mut e.regions,
                    outcome.moved_src,
                    outcome.moved_len,
                    outcome.moved_dst,
                );
            }
        }
        for p in 0..outcome.moved_len / pg {
            self.trace.record(PagingEvent::Move {
                from: outcome.moved_src / pg + p,
                to: outcome.moved_dst / pg + p,
            });
        }
        let new_base = outcome
            .moved_dst
            .wrapping_add(base.wrapping_sub(outcome.moved_src));
        let shared = self.procs.shared_mut(id);
        shared.base = new_base;
        self.procs.shared_moves += 1;
        self.procs.shared_move_cycles += world.cycles + outcome.cost.total();
        Ok((world, outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{GlobalInit, ModuleBuilder, Type};
    use carat_runtime::{Access, GuardImpl};

    fn module_with_global() -> Module {
        let mut mb = ModuleBuilder::new("prog");
        mb.global(
            "buf",
            Type::Array(Box::new(Type::I64), 16),
            GlobalInit::Zero,
        );
        let f = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let c = b.const_i64(0);
            b.ret(Some(c));
        }
        mb.finish()
    }

    fn boot() -> (SimKernel, AllocationTable, ProcessImage) {
        let mut k = SimKernel::new(256 * 1024 * 1024);
        let mut table = AllocationTable::new();
        let img = k
            .load_unsigned(module_with_global(), &mut table, LoadConfig::default())
            .expect("loads");
        (k, table, img)
    }

    #[test]
    fn load_installs_capsule_and_counts_pages() {
        let (k, _, img) = boot();
        assert_eq!(k.regions.len(), 1);
        assert!(
            k.regions
                .check(GuardImpl::Mpx, img.globals[0], 8, Access::Write)
                .ok
        );
        assert_eq!(k.trace.allocs, img.initial_pages);
    }

    #[test]
    fn protection_change_splits_regions() {
        let (mut k, _, img) = boot();
        let g = img.globals[0];
        let page = k.cost.page_size;
        let page_start = g / page * page;
        k.change_protection(page_start, page, Perms::R);
        assert!(k.regions.len() >= 2, "capsule split around the page");
        assert!(k.regions.check(GuardImpl::IfTree, g, 8, Access::Read).ok);
        assert!(
            !k.regions.check(GuardImpl::IfTree, g, 8, Access::Write).ok,
            "write now denied"
        );
        assert_eq!(k.trace.invalidations, 1);
    }

    #[test]
    fn move_pages_end_to_end() {
        let (mut k, mut table, mut img) = boot();
        let g = img.globals[0];
        // Store a pointer to the global somewhere in the heap and track it.
        let cell = img.heap.0 + 64;
        k.mem.write_uint(cell, g + 8, 8);
        table.track_escape(cell);
        let snapshot = g + 8;
        table.flush_escapes(|_| snapshot);

        let mut regs = vec![g + 16, 0x0];
        let page = k.cost.page_size;
        let (world, outcome) = k
            .move_pages(&mut table, &mut regs, g / page * page, 1, 2)
            .expect("move succeeds");
        assert!(world.is_complete());
        assert!(outcome.escapes_patched >= 1);
        // The escape cell points at the new location.
        let new_ptr = k.mem.read_uint(cell, 8);
        assert_ne!(new_ptr, g + 8);
        // Register patched.
        assert_ne!(regs[0], g + 16);
        assert_eq!(regs[1], 0);
        // Old page is no longer a valid region; new one is.
        assert!(!k.regions.check(GuardImpl::IfTree, g, 8, Access::Read).ok);
        assert!(
            k.regions
                .check(GuardImpl::IfTree, new_ptr, 8, Access::Read)
                .ok
        );
        // Kernel patches the image's global table too.
        SimKernel::patch_globals(&mut img, &outcome);
        assert_eq!(img.globals[0], new_ptr - 8);
        assert!(k.trace.moves >= 1);
    }

    #[test]
    fn baseline_demand_mapping() {
        let (mut k, _, _) = boot();
        let before = k.trace.allocs;
        let pte1 = k.ensure_mapped(0x4000).unwrap();
        let pte2 = k.ensure_mapped(0x4000).unwrap();
        assert_eq!(pte1, pte2, "second touch reuses the mapping");
        assert_eq!(k.trace.allocs, before + 1);
        assert_eq!(k.pagetable.mapped, 1);
    }

    /// Boot two tenants through one kernel; returns their tables checked
    /// into the process table.
    fn boot_two_procs() -> (SimKernel, Pid, Pid, ProcessImage, ProcessImage) {
        let mut k = SimKernel::new(64 * 1024 * 1024);
        let cfg = LoadConfig {
            stack_size: 64 * 1024,
            heap_size: 1024 * 1024,
            page_size: 4096,
        };
        let mut t0 = AllocationTable::new();
        let img0 = k
            .load_unsigned(module_with_global(), &mut t0, cfg)
            .expect("loads");
        let p0 = k.register_proc("alpha", img0.clone()).expect("admitted");
        k.procs.checkin_table(p0, t0);
        let mut t1 = AllocationTable::new();
        let img1 = k
            .load_unsigned(module_with_global(), &mut t1, cfg)
            .expect("loads");
        let p1 = k.register_proc("beta", img1.clone()).expect("admitted");
        k.procs.checkin_table(p1, t1);
        (k, p0, p1, img0, img1)
    }

    #[test]
    fn proc_switch_installs_per_process_regions() {
        let (mut k, p0, p1, img0, img1) = boot_two_procs();
        assert_eq!(k.regions.len(), 0, "nothing installed before a switch");

        let c0 = k.proc_switch(p0, false).expect("live pid");
        assert_eq!(k.procs.current(), Some(p0));
        assert!(
            k.regions
                .check(GuardImpl::IfTree, img0.globals[0], 8, Access::Write)
                .ok,
            "own global accessible"
        );
        assert!(
            !k.regions
                .check(GuardImpl::IfTree, img1.globals[0], 8, Access::Read)
                .ok,
            "the other tenant's memory is not"
        );

        let c1 = k.proc_switch(p1, true).expect("live pid");
        assert!(
            k.regions
                .check(GuardImpl::IfTree, img1.globals[0], 8, Access::Write)
                .ok
        );
        assert!(
            !k.regions
                .check(GuardImpl::IfTree, img0.globals[0], 8, Access::Read)
                .ok
        );
        assert!(c0 < c1, "CARAT switch strictly cheaper than Traditional");
        assert_eq!(c0, k.cost.ctx_switch_carat());
        assert_eq!(c1, k.cost.ctx_switch_traditional());
        let a1 = k.procs.get(p1).unwrap().accounting;
        assert_eq!(a1.ctx_switches, 1);
        assert_eq!(a1.tlb_flushes, 1, "traditional switch flushed");
        assert_eq!(k.procs.get(p0).unwrap().accounting.tlb_flushes, 0);
        assert_eq!(k.proc_switch(p1, true), Ok(0), "switch to self is free");
    }

    #[test]
    fn shared_region_maps_into_both_owners() {
        let (mut k, p0, p1, _, _) = boot_two_procs();
        let id = k.shared_create(4096).expect("frames available");
        let base = k.procs.shared(id).unwrap().base;
        k.shared_map(p0, id).expect("maps");
        k.shared_map(p1, id).expect("maps");
        assert_eq!(k.procs.shared(id).unwrap().owners, vec![p0, p1]);
        for p in [p0, p1] {
            k.proc_switch(p, false).expect("live pid");
            assert!(
                k.regions
                    .check(GuardImpl::IfTree, base, 8, Access::Write)
                    .ok,
                "{p} can reach the shared block"
            );
        }
    }

    #[test]
    fn move_shared_patches_every_owner_and_region_map() {
        let (mut k, p0, p1, img0, img1) = boot_two_procs();
        let id = k.shared_create(4096).expect("frames available");
        let base = k.procs.shared(id).unwrap().base;
        k.shared_map(p0, id).expect("maps");
        k.shared_map(p1, id).expect("maps");
        // Each owner tracks the block and one escape cell in its own heap.
        let cells = [img0.heap.0 + 64, img1.heap.0 + 64];
        for (pid, cell) in [p0, p1].into_iter().zip(cells) {
            let mut t = k.procs.checkout_table(pid).unwrap();
            t.track_alloc(base, 4096, carat_runtime::AllocKind::Heap);
            k.mem.write_uint(cell, base + 8, 8);
            t.track_escape(cell);
            t.flush_escapes(|_| base + 8);
            k.procs.checkin_table(pid, t);
        }
        let mut regs = vec![base + 16, 0xdead];
        let (world, outcome) = k.move_shared(id, &mut regs, 2).expect("shared move");
        assert!(world.is_complete());
        assert_eq!(outcome.allocations, 2, "one tracked block per owner");
        assert_eq!(outcome.escapes_patched, 2, "one cell per owner");
        let new_base = k.procs.shared(id).unwrap().base;
        assert_ne!(new_base, base);
        assert_eq!(k.mem.read_uint(cells[0], 8), new_base + 8);
        assert_eq!(k.mem.read_uint(cells[1], 8), new_base + 8);
        assert_eq!(regs, vec![new_base + 16, 0xdead]);
        // Every owner's region map (and table) follows the block.
        for pid in [p0, p1] {
            k.proc_switch(pid, false).expect("live pid");
            assert!(
                !k.regions.check(GuardImpl::IfTree, base, 8, Access::Read).ok,
                "old location revoked for {pid}"
            );
            assert!(
                k.regions
                    .check(GuardImpl::IfTree, new_base, 8, Access::Read)
                    .ok,
                "new location mapped for {pid}"
            );
            let t = k.procs.get(pid).unwrap().table.as_ref().unwrap();
            assert!(t.info(new_base).is_some());
            assert!(t.info(base).is_none());
        }
    }

    #[test]
    fn interrupted_shared_move_is_transactional() {
        let (mut k, p0, p1, img0, _) = boot_two_procs();
        let id = k.shared_create(4096).expect("frames available");
        let base = k.procs.shared(id).unwrap().base;
        k.shared_map(p0, id).expect("maps");
        k.shared_map(p1, id).expect("maps");
        let cell = img0.heap.0 + 64;
        let mut t = k.procs.checkout_table(p0).unwrap();
        t.track_alloc(base, 4096, carat_runtime::AllocKind::Heap);
        k.mem.write_uint(cell, base + 8, 8);
        t.track_escape(cell);
        t.flush_escapes(|_| base + 8);
        k.procs.checkin_table(p0, t);

        let plan = crate::faults::FaultPlan::new().arm(crate::faults::FaultPoint::MidMove, 1);
        k.install_fault_plan(plan);
        let mut regs = vec![base + 16];
        let err = k.move_shared(id, &mut regs, 1).unwrap_err();
        assert!(matches!(err, KernelError::MoveInterrupted { .. }));
        assert!(err.is_recoverable());
        // Byte-identical: cell, regs, shared base, table all unchanged.
        assert_eq!(k.mem.read_uint(cell, 8), base + 8);
        assert_eq!(regs, vec![base + 16]);
        assert_eq!(k.procs.shared(id).unwrap().base, base);
        assert!(
            k.procs
                .get(p0)
                .unwrap()
                .table
                .as_ref()
                .unwrap()
                .info(base)
                .is_some(),
            "table checked back in, untouched"
        );
        // The fault is spent; the same move now succeeds.
        let (_, outcome) = k.move_shared(id, &mut regs, 1).expect("retry succeeds");
        assert_eq!(outcome.escapes_patched, 1);
    }

    /// A small kernel whose full physical memory is cheap to snapshot for
    /// byte-identity assertions.
    fn boot_small() -> (SimKernel, AllocationTable, ProcessImage) {
        let mut k = SimKernel::new(8 * 1024 * 1024);
        let mut table = AllocationTable::new();
        let cfg = LoadConfig {
            stack_size: 64 * 1024,
            heap_size: 1024 * 1024,
            page_size: 4096,
        };
        let img = k
            .load_unsigned(module_with_global(), &mut table, cfg)
            .expect("loads");
        (k, table, img)
    }

    /// Set up the escape + register fixture `move_pages_end_to_end` uses.
    fn track_pointer_to_global(
        k: &mut SimKernel,
        table: &mut AllocationTable,
        img: &ProcessImage,
    ) -> (u64, Vec<u64>) {
        let g = img.globals[0];
        let cell = img.heap.0 + 64;
        k.mem.write_uint(cell, g + 8, 8);
        table.track_escape(cell);
        let snapshot = g + 8;
        table.flush_escapes(|_| snapshot);
        (g, vec![g + 16, 0x0])
    }

    #[test]
    fn move_oom_surfaces_typed_error_and_leaves_state() {
        let (mut k, mut table, img) = boot_small();
        let (g, mut regs) = track_pointer_to_global(&mut k, &mut table, &img);
        k.install_fault_plan(FaultPlan::new().arm_persistent(FaultPoint::MoveDstAlloc, 1));
        let mem_before = k.mem.read_bytes(0, k.mem.size()).to_vec();
        let table_before = table.snapshot();
        let regs_before = regs.clone();
        let page = k.cost.page_size;
        let err = k
            .move_pages(&mut table, &mut regs, g / page * page, 1, 2)
            .unwrap_err();
        assert!(matches!(err, KernelError::OutOfFrames { .. }), "{err}");
        assert!(err.is_recoverable());
        assert_eq!(k.mem.read_bytes(0, k.mem.size()), &mem_before[..]);
        assert_eq!(table.snapshot(), table_before);
        assert_eq!(regs, regs_before);
    }

    #[test]
    fn move_oom_recovers_after_transient_exhaustion() {
        let (mut k, mut table, img) = boot_small();
        let (g, mut regs) = track_pointer_to_global(&mut k, &mut table, &img);
        // One-shot exhaustion: the compaction+retry path must recover.
        k.install_fault_plan(FaultPlan::new().arm(FaultPoint::MoveDstAlloc, 1));
        let page = k.cost.page_size;
        let (world, outcome) = k
            .move_pages(&mut table, &mut regs, g / page * page, 1, 2)
            .expect("retry recovers");
        assert!(world.is_complete());
        assert_eq!(k.oom_recoveries, 1);
        // The retry's backoff was charged to the move's cost breakdown.
        assert!(outcome.cost.alloc_and_move > k.cost.move_alloc_fixed + k.cost.copy_cost(page));
    }

    #[test]
    fn mid_move_fault_rolls_back_byte_identical() {
        let (mut k, mut table, img) = boot_small();
        let (g, mut regs) = track_pointer_to_global(&mut k, &mut table, &img);
        k.install_fault_plan(FaultPlan::new().arm(FaultPoint::MidMove, 1));
        let mem_before = k.mem.read_bytes(0, k.mem.size()).to_vec();
        let table_before = table.snapshot();
        let regs_before = regs.clone();
        let page = k.cost.page_size;
        let err = k
            .move_pages(&mut table, &mut regs, g / page * page, 1, 2)
            .unwrap_err();
        assert!(matches!(err, KernelError::MoveInterrupted { .. }), "{err}");
        // Byte-identical pre-move state across the whole machine.
        assert_eq!(k.mem.read_bytes(0, k.mem.size()), &mem_before[..]);
        assert_eq!(table.snapshot(), table_before);
        assert_eq!(regs, regs_before);
        assert!(k.regions.check(GuardImpl::IfTree, g, 8, Access::Read).ok);
        assert_eq!(k.fault_plan().unwrap().fired().len(), 1);
        // The machine is not poisoned: the same move now succeeds.
        let (world, outcome) = k
            .move_pages(&mut table, &mut regs, g / page * page, 1, 2)
            .expect("fault disarmed");
        assert!(world.is_complete());
        assert!(outcome.escapes_patched >= 1);
    }

    #[test]
    fn world_stop_stall_aborts_cleanly() {
        let (mut k, mut table, img) = boot_small();
        let (g, mut regs) = track_pointer_to_global(&mut k, &mut table, &img);
        k.install_fault_plan(FaultPlan::new().arm(FaultPoint::WorldStopStall, 2));
        let mem_before = k.mem.read_bytes(0, k.mem.size()).to_vec();
        let page = k.cost.page_size;
        let err = k
            .move_pages(&mut table, &mut regs, g / page * page, 1, 4)
            .unwrap_err();
        match err {
            KernelError::WorldStop(carat_runtime::WorldStopError::Stalled { entered, threads }) => {
                assert_eq!(entered, 1, "one thread made it before the stall");
                assert_eq!(threads, 4);
            }
            other => panic!("expected a stall, got {other:?}"),
        }
        assert_eq!(k.mem.read_bytes(0, k.mem.size()), &mem_before[..]);
        // Episode aborted, machine idle: the retry completes.
        let (world, _) = k
            .move_pages(&mut table, &mut regs, g / page * page, 1, 4)
            .expect("stall cleared");
        assert!(world.is_complete());
    }

    #[test]
    fn page_out_page_in_round_trip_preserves_bytes() {
        let (mut k, mut table, img) = boot_small();
        let g = img.globals[0];
        // Fill the global buffer with a recognizable pattern.
        for i in 0..16u64 {
            k.mem.write_uint(g + i * 8, 0xA5A5_0000 + i, 8);
        }
        let cell = img.heap.0 + 64;
        k.mem.write_uint(cell, g + 8, 8);
        table.track_escape(cell);
        table.flush_escapes(|_| g + 8);
        let mut regs = vec![g + 16, 0x0];
        let (world, slot, src, len) = k
            .page_out(&mut table, &mut regs, g, 2)
            .expect("no fault")
            .expect("swappable");
        assert!(world.is_complete());
        let pre_swap: Vec<u64> = (0..16u64).map(|i| 0xA5A5_0000 + i).collect();
        // Bring it back via the poisoned pointer the register now holds.
        let poisoned = regs[0];
        assert!(SimKernel::is_poison(poisoned));
        let (world, dst) = k
            .page_in(&mut table, &mut regs, poisoned, 2)
            .expect("no fault")
            .expect("slot live");
        assert!(world.is_complete());
        assert!(!k.has_swap_slot(slot));
        // The resumed program reads back the exact pre-swap bytes.
        let g2 = dst + (g - src);
        let back: Vec<u64> = (0..16u64).map(|i| k.mem.read_uint(g2 + i * 8, 8)).collect();
        assert_eq!(back, pre_swap);
        // Pointers chased through the patched escape land on the data.
        assert_eq!(k.mem.read_uint(cell, 8), g2 + 8);
        assert_eq!(regs[0], g2 + 16);
        assert_eq!(len % k.cost.page_size, 0);
    }

    #[test]
    fn page_in_of_missing_slot_is_none() {
        let (mut k, mut table, _) = boot_small();
        let mut regs = vec![0u64];
        let bogus = POISON_BASE + 7 * POISON_SLOT_SPAN;
        assert!(k
            .page_in(&mut table, &mut regs, bogus, 1)
            .expect("no fault")
            .is_none());
    }

    #[test]
    fn corrupted_swap_slot_is_a_typed_error_not_a_panic() {
        let (mut k, mut table, img) = boot_small();
        let g = img.globals[0];
        let mut regs = vec![g + 16];
        let (_, slot, _, _) = k
            .page_out(&mut table, &mut regs, g, 1)
            .expect("no fault")
            .expect("swappable");
        assert!(k.debug_corrupt_swap_slot(slot));
        assert_eq!(k.corrupt_swap_slots(), vec![slot]);
        let poisoned = regs[0];
        let err = k.page_in(&mut table, &mut regs, poisoned, 1).unwrap_err();
        assert_eq!(err, KernelError::SwapReadFailed { slot });
        // The (corrupt) entry is preserved for post-mortem, not dropped.
        assert!(k.has_swap_slot(slot));
    }

    #[test]
    fn failed_page_in_preserves_the_swap_entry_for_retry() {
        let (mut k, mut table, img) = boot_small();
        let g = img.globals[0];
        k.mem.write_uint(g, 0xFEED_FACE, 8);
        let mut regs = vec![g];
        let (_, slot, src, _) = k
            .page_out(&mut table, &mut regs, g, 1)
            .expect("no fault")
            .expect("swappable");
        let poisoned = regs[0];
        // First attempt: injected swap-read failure.
        k.install_fault_plan(FaultPlan::new().arm(FaultPoint::SwapRead, 1));
        let err = k.page_in(&mut table, &mut regs, poisoned, 1).unwrap_err();
        assert_eq!(err, KernelError::SwapReadFailed { slot });
        assert!(k.has_swap_slot(slot), "data survives the failed read");
        // Second attempt: injected destination OOM.
        k.install_fault_plan(FaultPlan::new().arm_persistent(FaultPoint::MoveDstAlloc, 1));
        let err = k.page_in(&mut table, &mut regs, poisoned, 1).unwrap_err();
        assert!(matches!(err, KernelError::OutOfFrames { .. }));
        assert!(k.has_swap_slot(slot), "OOM must not drop the swap entry");
        // Third attempt: clean — the exact bytes come back.
        k.install_fault_plan(FaultPlan::new());
        let (_, dst) = k
            .page_in(&mut table, &mut regs, poisoned, 1)
            .expect("no fault")
            .expect("slot live");
        assert_eq!(k.mem.read_uint(dst + (g - src), 8), 0xFEED_FACE);
    }

    #[test]
    fn signature_corruption_at_load_is_rejected_by_verification() {
        use carat_core::sign::{sign_module, SignatureError, SigningKey};
        let key = SigningKey::from_passphrase("carat-cc 0.1", "trusted toolchain");
        let signed = sign_module(&module_with_global(), &key);
        let mut k = SimKernel::new(256 * 1024 * 1024);
        k.trust(key.clone());
        k.install_fault_plan(FaultPlan::new().arm(FaultPoint::SignatureCorrupt, 1));
        let mut table = AllocationTable::new();
        let err = k
            .load(&signed, &mut table, LoadConfig::default())
            .unwrap_err();
        assert!(
            matches!(err, LoadError::Signature(SignatureError::Mismatch)),
            "corrupted image must fail verification, got {err:?}"
        );
        // The fault was one-shot: an intact reload succeeds.
        let mut table = AllocationTable::new();
        k.load(&signed, &mut table, LoadConfig::default())
            .expect("clean image verifies");
    }

    #[test]
    fn capsule_round_trip_is_byte_identical() {
        let mut k = SimKernel::new(1024 * 1024);
        let image: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
        let slot = k.capsule_write(image.clone()).expect("write accepted");
        assert_eq!(k.capsule_count(), 1);
        assert_eq!(k.capsule_bytes(), 4096);
        let back = k.capsule_read(slot).expect("checksum verifies");
        assert_eq!(back, image);
        // A read consumes the slot.
        assert_eq!(
            k.capsule_read(slot),
            Err(KernelError::CapsuleMissing { slot })
        );
        assert_eq!(k.capsule_count(), 0);
    }

    #[test]
    fn corrupted_capsule_fails_checksum_with_typed_error() {
        let mut k = SimKernel::new(1024 * 1024);
        let slot = k.capsule_write(vec![7u8; 512]).expect("write accepted");
        assert!(k.debug_corrupt_capsule(slot));
        let err = k.capsule_read(slot).expect_err("corruption detected");
        assert_eq!(err, KernelError::CapsuleCorrupt { slot });
        assert!(err.is_recoverable(), "capsule loss degrades one tenant");
        // The corrupted image is dropped, not left to be retried.
        assert_eq!(k.capsule_count(), 0);
    }

    #[test]
    fn armed_capsule_faults_fire_once_then_disarm() {
        let mut k = SimKernel::new(1024 * 1024);
        k.install_fault_plan(
            FaultPlan::new()
                .arm(FaultPoint::CapsuleWrite, 1)
                .arm(FaultPoint::CapsuleCorrupt, 1),
        );
        let err = k.capsule_write(vec![1u8; 64]).expect_err("armed write");
        assert_eq!(err, KernelError::CapsuleWriteFailed { len: 64 });
        assert_eq!(k.capsule_count(), 0, "failed write stored nothing");
        let slot = k.capsule_write(vec![2u8; 64]).expect("fault disarmed");
        let err = k
            .capsule_read(slot)
            .expect_err("armed corrupt flips a byte");
        assert_eq!(err, KernelError::CapsuleCorrupt { slot });
        let slot = k.capsule_write(vec![3u8; 64]).expect("write ok");
        assert_eq!(
            k.capsule_read(slot).expect("corrupt disarmed"),
            vec![3u8; 64]
        );
    }

    #[test]
    fn stale_pid_surfaces_typed_errors_not_panics() {
        let (mut k, p0, p1, _, _) = boot_two_procs();
        k.proc_switch(p0, false).expect("live pid");
        assert!(k.proc_kill(p1));
        assert_eq!(
            k.proc_switch(p1, false),
            Err(KernelError::StaleTenant { pid: p1 })
        );
        let id = k.shared_create(4096).expect("frames available");
        assert_eq!(
            k.shared_map(p1, id),
            Err(KernelError::StaleTenant { pid: p1 })
        );
        assert!(
            k.procs.shared(id).expect("live id").owners.is_empty(),
            "failed map did not half-register an owner"
        );
    }

    #[test]
    fn worst_page_picks_most_escaped_allocation() {
        let (mut k, mut table, img) = boot();
        // Heap allocation with 3 escapes vs the global with 1.
        let a = img.heap.0 + 0x1000;
        table.track_alloc(a, 128, carat_runtime::AllocKind::Heap);
        for i in 0..3u64 {
            let cell = img.heap.0 + 64 + i * 8;
            k.mem.write_uint(cell, a, 8);
            table.track_escape(cell);
        }
        table.flush_escapes(|c| k.mem.read_uint(c, 8));
        let page = k.cost.page_size;
        assert_eq!(k.worst_page(&table), Some(a / page * page));
    }
}
