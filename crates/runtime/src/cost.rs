//! The shared machine cost model (cycles).
//!
//! The reproduction's stand-in for the paper's Xeon testbeds: every
//! component that charges simulated cycles — the VM interpreter, the TLB
//! and pagewalk simulation, guard evaluation, tracking callbacks, and the
//! page-move protocol — draws its constants from here, so experiments and
//! ablations stay mutually consistent. Values are chosen to match the
//! magnitudes the paper reports (e.g. ~47-cycle average pagewalks, 1-cycle
//! MPX bounds checks) rather than any exact microarchitecture.

/// Cycle costs and structure sizes for the simulated machine.
///
/// All fields are scalars, so the model is `Copy`: hot paths (the VM's
/// data-access and intrinsic handlers) copy it to a local instead of
/// cloning through a heap-free but borrow-restricted reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    // --- core execution ---
    /// Simple ALU operation (add, compare, …).
    pub alu: u64,
    /// Floating-point operation.
    pub fpu: u64,
    /// Taken or not-taken branch (predicted; we do not model mispredicts).
    pub branch: u64,
    /// L1-hit load or store.
    pub mem_l1: u64,
    /// Additional cycles for an access that misses L1 (flat model).
    pub mem_l1_miss_extra: u64,
    /// L1 data hit rate numerator per 1024 accesses (flat probabilistic
    /// cache model, deterministic via access counting).
    pub l1_hit_per_1024: u64,
    /// Call/return overhead (prologue + epilogue).
    pub call: u64,

    // --- traditional model: TLB + pagewalk ---
    /// Page size in bytes.
    pub page_size: u64,
    /// L1 DTLB entries.
    pub dtlb_entries: usize,
    /// L1 DTLB associativity.
    pub dtlb_assoc: usize,
    /// STLB (L2 TLB) entries.
    pub stlb_entries: usize,
    /// STLB associativity.
    pub stlb_assoc: usize,
    /// Cycles for an STLB hit after a DTLB miss.
    pub stlb_hit: u64,
    /// Cycles for a full pagewalk (radix walk; the paper measures ~47 avg).
    pub pagewalk: u64,
    /// Kernel page-fault service cost (demand allocation, baseline mode).
    pub page_fault: u64,

    // --- CARAT guards ---
    /// MPX-style bounds check: single-cycle, no register pressure.
    pub guard_mpx: u64,
    /// Cost per probe step of a software range guard (compare+branch pair).
    pub guard_probe: u64,
    /// Fixed overhead of reaching the guard code (register save/restore
    /// pressure of the straightforward compare-and-branch technique).
    pub guard_software_fixed: u64,

    // --- CARAT tracking ---
    /// Allocation-table insert (red/black tree).
    pub track_alloc: u64,
    /// Allocation-table remove.
    pub track_free: u64,
    /// Queue one escape (batched processing).
    pub track_escape_enqueue: u64,
    /// Process one escape at flush time.
    pub track_escape_flush: u64,

    // --- page movement protocol ---
    /// Signal delivery + register dump per thread ("world stop" entry).
    pub move_signal_per_thread: u64,
    /// Barrier synchronization per thread.
    pub move_barrier_per_thread: u64,
    /// Finding/expanding allocations per affected allocation (Page Expand).
    pub move_expand_per_alloc: u64,
    /// Fixed page-expand overhead per move (range query on the table).
    pub move_expand_fixed: u64,
    /// Patch generation+execution per escape (Patch Gen. & Exec).
    pub move_patch_per_escape: u64,
    /// Register patch per inspected register (Register Patch).
    pub move_register_patch_per_reg: u64,
    /// Allocation of the destination block, fixed (Allocation & Movement).
    pub move_alloc_fixed: u64,
    /// Copy cost per byte moved (Allocation & Movement).
    pub move_copy_per_byte_milli: u64,
    /// Cores the modeled machine dedicates to the patch scan (the paper
    /// notes patching is embarrassingly parallel across allocations).
    /// 1 = the serial protocol; see [`CostModel::patch_cost`].
    pub patch_workers: u64,
    /// Fork/join synchronization charge per patch worker: dispatching a
    /// shard to a core and joining it at the patch barrier.
    pub patch_fork_join_per_worker: u64,

    // --- fleet admission + pressure scanning ---
    /// Verifying an admission image: signature walk plus IR
    /// verification. Paid once per admission *pass* — every spawn pays
    /// it sequentially; `MultiVm::spawn_batch` pays it once for the
    /// whole batch (the amortization that makes batch admission win).
    pub admit_verify: u64,
    /// Quota/backpressure bookkeeping per admission pass (also amortized
    /// to one charge per batch).
    pub admit_quota: u64,
    /// Stamping one tenant: capsule layout, zeroing, the initial patch,
    /// and the slab insert. Paid per tenant on both admission paths.
    pub admit_stamp: u64,
    /// Examining one fleet slot during an epoch-based pressure sweep
    /// (clock-hand advance + coldness compare). The sweep touches a
    /// bounded number of slots per pass, so per-slice pressure cost is
    /// `limit * this`, independent of fleet size.
    pub pressure_scan_per_slot: u64,

    // --- context switches (multi-process scheduling) ---
    /// Mode-independent switch overhead: trap entry, scheduler pick,
    /// callee-saved register save/restore, return to user.
    pub ctx_switch_fixed: u64,
    /// CARAT-only addition: installing the incoming process's guard
    /// region set (a handful of bounds registers / a region-table
    /// pointer swap — no address-translation state exists to flush).
    pub ctx_switch_region_swap: u64,
    /// Traditional-only addition: TLB flush on address-space switch
    /// (CR3 write + pipeline drain; the cost Yan et al. attribute to
    /// translation-coherence maintenance).
    pub tlb_flush: u64,
    /// Traditional-only addition: amortized ASID-rollover cost — the
    /// refill traffic paid when tagged-TLB generation counters wrap and
    /// every address space must re-walk its hot pages.
    pub asid_rollover_refill: u64,

    // --- devices: timer interrupts + DMA pinning ---
    /// Timer-interrupt delivery: trap entry, deadline comparator read,
    /// and handoff to the scheduler (both modes pay this).
    pub timer_irq: u64,
    /// Fixed cost of recording a pin/unpin in the kernel's pin registry
    /// (both modes pay this bookkeeping charge).
    pub pin_registry: u64,
    /// Traditional-only per-page pin cost: walk the page table, mark the
    /// PTE unevictable, and refcount the frame — the `get_user_pages`
    /// path. CARAT has no translation layer, so pinning is just the
    /// registry entry: physical addresses are already stable.
    pub pin_pte_per_page: u64,
    /// DMA engine setup per descriptor (doorbell write + fetch).
    pub dma_setup: u64,
    /// DMA transfer cost per byte, in milli-cycles (device-side; the
    /// CPU does not stall, but modeled completion time advances).
    pub dma_per_byte_milli: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            alu: 1,
            fpu: 3,
            branch: 1,
            mem_l1: 4,
            mem_l1_miss_extra: 40,
            l1_hit_per_1024: 983, // ~96% hit rate
            call: 6,
            page_size: 4096,
            dtlb_entries: 64,
            dtlb_assoc: 4,
            stlb_entries: 1536,
            stlb_assoc: 12,
            stlb_hit: 7,
            pagewalk: 47,
            page_fault: 1500,
            guard_mpx: 1,
            guard_probe: 3,
            guard_software_fixed: 2,
            track_alloc: 40,
            track_free: 40,
            track_escape_enqueue: 6,
            track_escape_flush: 14,
            move_signal_per_thread: 1200,
            move_barrier_per_thread: 300,
            move_expand_per_alloc: 350,
            move_expand_fixed: 2500,
            move_patch_per_escape: 120,
            move_register_patch_per_reg: 4,
            move_alloc_fixed: 800,
            move_copy_per_byte_milli: 250, // 0.25 cycles/byte
            patch_workers: 1,
            patch_fork_join_per_worker: 800,
            admit_verify: 18_000,
            admit_quota: 300,
            admit_stamp: 1_400,
            pressure_scan_per_slot: 12,
            ctx_switch_fixed: 250,
            ctx_switch_region_swap: 30,
            tlb_flush: 500,
            asid_rollover_refill: 600,
            timer_irq: 220,
            pin_registry: 60,
            pin_pte_per_page: 90,
            dma_setup: 400,
            dma_per_byte_milli: 120, // 0.12 cycles/byte, device-side
        }
    }
}

impl CostModel {
    /// Page number of `addr`. Pages are virtually always a power of two,
    /// in which case this is a shift — a 64-bit hardware divide here is
    /// measurable on the VM's per-access path.
    #[inline]
    pub fn page_of(&self, addr: u64) -> u64 {
        if self.page_size.is_power_of_two() {
            addr >> self.page_size.trailing_zeros()
        } else {
            addr / self.page_size
        }
    }

    /// Cycles to copy `bytes` bytes.
    pub fn copy_cost(&self, bytes: u64) -> u64 {
        (bytes * self.move_copy_per_byte_milli) / 1000
    }

    /// Cost of a software guard that performed `probes` probe steps.
    pub fn software_guard_cost(&self, probes: u64) -> u64 {
        self.guard_software_fixed + probes * self.guard_probe
    }

    /// Modeled cycles of the "Patch Gen. & Exec." phase over `escapes`
    /// cells. At one worker this is the serial scan
    /// (`escapes * move_patch_per_escape`); with `W = patch_workers > 1`
    /// the scan is sharded evenly and the critical path is
    /// `ceil(serial / W) + W * patch_fork_join_per_worker`.
    ///
    /// A pure function of the plan size and this model — never of host
    /// thread count, scheduling, or timing — so modeled cycles are
    /// identical across hosts and across host worker counts.
    pub fn patch_cost(&self, escapes: u64) -> u64 {
        let serial = escapes * self.move_patch_per_escape;
        let w = self.patch_workers.max(1);
        if w == 1 {
            serial
        } else {
            serial.div_ceil(w) + w * self.patch_fork_join_per_worker
        }
    }

    /// Number of 4KiB pages covering `bytes`.
    pub fn pages(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.page_size)
    }

    /// Modeled cycles to admit `n` tenants one spawn at a time: every
    /// spawn re-verifies the image and re-runs the quota pass.
    pub fn admit_sequential_cost(&self, n: u64) -> u64 {
        n * (self.admit_verify + self.admit_quota + self.admit_stamp)
    }

    /// Modeled cycles to admit `n` tenants in one batch pass: one
    /// verify, one quota pass, `n` stamps.
    pub fn admit_batch_cost(&self, n: u64) -> u64 {
        self.admit_verify + self.admit_quota + n * self.admit_stamp
    }

    /// Cycles for a CARAT-mode context switch: the fixed trap/scheduler
    /// path plus a guard-region-set install. Physical addressing means
    /// there is no translation state to invalidate.
    pub fn ctx_switch_carat(&self) -> u64 {
        self.ctx_switch_fixed + self.ctx_switch_region_swap
    }

    /// Cycles for a Traditional-mode context switch: the fixed path plus
    /// the TLB flush and amortized ASID-rollover refill that an
    /// address-space change costs under paging.
    pub fn ctx_switch_traditional(&self) -> u64 {
        self.ctx_switch_fixed + self.tlb_flush + self.asid_rollover_refill
    }

    /// Cycles to pin `pages` pages in CARAT mode: one registry entry,
    /// independent of the region size — physical addresses are already
    /// stable, so there is no per-page translation work to do. The price
    /// CARAT pays instead is compaction freedom (the pinned hole), which
    /// is accounted where moves are refused, not here.
    pub fn pin_cost_carat(&self, _pages: u64) -> u64 {
        self.pin_registry
    }

    /// Cycles to pin `pages` pages in Traditional mode: the registry
    /// entry plus a pagewalk and PTE pin per page (the
    /// `get_user_pages`-style path a paging kernel must take before any
    /// DMA target is safe).
    pub fn pin_cost_traditional(&self, pages: u64) -> u64 {
        self.pin_registry + pages * (self.pagewalk + self.pin_pte_per_page)
    }

    /// Device-side cycles for one DMA transfer of `bytes` bytes.
    pub fn dma_cost(&self, bytes: u64) -> u64 {
        self.dma_setup + (bytes * self.dma_per_byte_milli) / 1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_magnitudes() {
        let c = CostModel::default();
        assert_eq!(c.guard_mpx, 1, "MPX check is single-cycle");
        assert_eq!(c.pagewalk, 47, "average pagewalk from the paper");
        assert_eq!(c.dtlb_entries, 64, "modern Intel L1 DTLB");
        assert_eq!(c.stlb_entries, 1536, "current-generation STLB");
    }

    #[test]
    fn copy_cost_scales() {
        let c = CostModel::default();
        assert_eq!(c.copy_cost(4096), 1024);
        assert_eq!(c.copy_cost(0), 0);
    }

    #[test]
    fn software_guard_grows_with_probes() {
        let c = CostModel::default();
        assert!(c.software_guard_cost(10) > c.software_guard_cost(1));
        assert!(c.software_guard_cost(1) > c.guard_mpx);
    }

    #[test]
    fn carat_context_switch_strictly_cheaper() {
        let c = CostModel::default();
        assert!(
            c.ctx_switch_carat() < c.ctx_switch_traditional(),
            "CARAT switch must not pay the TLB flush/ASID costs"
        );
        // The gap is exactly the translation-coherence charge.
        assert_eq!(
            c.ctx_switch_traditional() - c.ctx_switch_carat(),
            c.tlb_flush + c.asid_rollover_refill - c.ctx_switch_region_swap
        );
    }

    #[test]
    fn patch_cost_serial_at_one_worker() {
        let c = CostModel::default();
        assert_eq!(c.patch_cost(1000), 1000 * c.move_patch_per_escape);
        assert_eq!(c.patch_cost(0), 0, "no escapes, no charge");
    }

    #[test]
    fn patch_cost_parallel_speedup_and_overhead() {
        let mut c = CostModel::default();
        let serial = c.patch_cost(1000);
        c.patch_workers = 4;
        let par = c.patch_cost(1000);
        assert_eq!(
            par,
            (1000 * c.move_patch_per_escape).div_ceil(4) + 4 * c.patch_fork_join_per_worker
        );
        assert!(
            serial >= 2 * par,
            "escape-heavy plans must see >=2x at 4 workers: {serial} vs {par}"
        );
        // Tiny plans are dominated by fork/join: parallelism can lose.
        let tiny_serial = CostModel::default().patch_cost(4);
        assert!(c.patch_cost(4) > tiny_serial);
    }

    #[test]
    fn carat_pin_is_flat_traditional_pin_is_linear() {
        let c = CostModel::default();
        assert_eq!(
            c.pin_cost_carat(1),
            c.pin_cost_carat(1024),
            "CARAT pin cost must not scale with region size"
        );
        assert!(
            c.pin_cost_traditional(1024) > 100 * c.pin_cost_traditional(1),
            "traditional pinning pays a pagewalk + PTE pin per page"
        );
        assert!(c.pin_cost_carat(1) < c.pin_cost_traditional(1));
    }

    #[test]
    fn dma_cost_scales_with_bytes() {
        let c = CostModel::default();
        assert_eq!(c.dma_cost(0), c.dma_setup);
        assert!(c.dma_cost(65536) > c.dma_cost(4096));
    }

    #[test]
    fn batch_admission_amortizes_verification() {
        let c = CostModel::default();
        // The acceptance bar: >=5x cheaper than sequential at n=10k.
        assert!(c.admit_sequential_cost(10_000) >= 5 * c.admit_batch_cost(10_000));
        // Even small batches win once the verify dominates.
        assert!(c.admit_sequential_cost(10) >= 5 * c.admit_batch_cost(10));
        // A batch of one still pays the full pass — no free lunch.
        assert_eq!(c.admit_batch_cost(1), c.admit_sequential_cost(1));
    }

    #[test]
    fn page_rounding() {
        let c = CostModel::default();
        assert_eq!(c.pages(1), 1);
        assert_eq!(c.pages(4096), 1);
        assert_eq!(c.pages(4097), 2);
    }
}
