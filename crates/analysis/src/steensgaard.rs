//! Flow-insensitive, field-insensitive Steensgaard-style points-to
//! analysis — one of the member analyses of the best-of-N alias chain
//! (the prototype combines 15, including Steensgaard's; paper §4.1.1).
//!
//! Every pointer value and every abstract object gets a node in a
//! union-find structure; each equivalence class has at most one pointee
//! class (Steensgaard's unification discipline), so the whole analysis is
//! near-linear. Two pointers may alias only if their pointee classes
//! unified; separate classes that never touched "unknown" memory are
//! provably disjoint.

use crate::alias::{AliasAnalysis, AliasResult, MemLoc};
use carat_ir::{Const, Function, Inst, Intrinsic, Type, ValueId};
use std::cell::RefCell;
use std::collections::HashMap;

/// Node index in the points-to graph.
type Node = usize;

#[derive(Debug)]
struct Uf {
    parent: Vec<Node>,
    /// The single pointee class of each class representative, if any.
    pointee: Vec<Option<Node>>,
    /// Whether the class includes memory of unknown provenance.
    unknown: Vec<bool>,
    /// Whether the class contains at least one concrete object.
    concrete: Vec<bool>,
}

impl Uf {
    fn new() -> Uf {
        Uf {
            parent: Vec::new(),
            pointee: Vec::new(),
            unknown: Vec::new(),
            concrete: Vec::new(),
        }
    }

    fn fresh(&mut self) -> Node {
        let n = self.parent.len();
        self.parent.push(n);
        self.pointee.push(None);
        self.unknown.push(false);
        self.concrete.push(false);
        n
    }

    fn find(&mut self, mut x: Node) -> Node {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unify two classes, recursively unifying their pointees
    /// (Steensgaard's join).
    fn union(&mut self, a: Node, b: Node) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        self.parent[rb] = ra;
        self.unknown[ra] |= self.unknown[rb];
        self.concrete[ra] |= self.concrete[rb];
        let (pa, pb) = (self.pointee[ra], self.pointee[rb]);
        match (pa, pb) {
            (Some(x), Some(y)) => {
                self.pointee[ra] = Some(x);
                self.union(x, y);
            }
            (None, Some(y)) => self.pointee[ra] = Some(y),
            _ => {}
        }
    }

    /// The pointee class of `x`, created on demand.
    fn deref(&mut self, x: Node) -> Node {
        let r = self.find(x);
        match self.pointee[r] {
            Some(p) => self.find(p),
            None => {
                let p = self.fresh();
                self.pointee[r] = Some(p);
                p
            }
        }
    }
}

/// Per-function points-to solution.
#[derive(Debug)]
pub struct Steensgaard {
    uf: RefCell<Uf>,
    value_node: HashMap<ValueId, Node>,
}

impl Steensgaard {
    /// Run the analysis over one function.
    pub fn compute(f: &Function) -> Steensgaard {
        let mut uf = Uf::new();
        let mut value_node: HashMap<ValueId, Node> = HashMap::new();
        // The class for everything of unknown provenance.
        let unknown = uf.fresh();
        uf.unknown[unknown] = true;
        // Unknown memory may point at more unknown memory.
        uf.pointee[unknown] = Some(unknown);

        let node_of = |uf: &mut Uf, value_node: &mut HashMap<ValueId, Node>, v: ValueId| -> Node {
            *value_node.entry(v).or_insert_with(|| uf.fresh())
        };

        // Arguments point at unknown caller memory.
        for i in 0..f.params.len() {
            if f.value_type(f.arg(i)) == Some(Type::Ptr) {
                let n = node_of(&mut uf, &mut value_node, f.arg(i));
                let p = uf.deref(n);
                uf.union(p, unknown);
            }
        }

        // One pass establishes every constraint; unification makes the
        // result order-independent.
        for (_, v, inst) in f.insts_in_layout_order() {
            match inst {
                Inst::Alloca(_) => {
                    // v points at a fresh concrete object.
                    let n = node_of(&mut uf, &mut value_node, v);
                    let obj = uf.deref(n);
                    let r = uf.find(obj);
                    uf.concrete[r] = true;
                }
                Inst::Const(Const::GlobalAddr(_)) => {
                    let n = node_of(&mut uf, &mut value_node, v);
                    let obj = uf.deref(n);
                    let r = uf.find(obj);
                    uf.concrete[r] = true;
                }
                Inst::CallIntrinsic {
                    intr: Intrinsic::Malloc,
                    ..
                } => {
                    let n = node_of(&mut uf, &mut value_node, v);
                    let obj = uf.deref(n);
                    let r = uf.find(obj);
                    uf.concrete[r] = true;
                }
                Inst::PtrAdd { base, .. } | Inst::FieldAddr { base, .. } => {
                    // Field-insensitive: derived pointer, same class.
                    let n = node_of(&mut uf, &mut value_node, v);
                    let b = node_of(&mut uf, &mut value_node, *base);
                    uf.union(n, b);
                }
                Inst::Cast { value, to, .. } if *to == Type::Ptr => {
                    // inttoptr: could point anywhere.
                    let n = node_of(&mut uf, &mut value_node, v);
                    let vn = node_of(&mut uf, &mut value_node, *value);
                    uf.union(n, vn);
                    let p = uf.deref(n);
                    uf.union(p, unknown);
                }
                Inst::Select {
                    if_true, if_false, ..
                } if f.value_type(v) == Some(Type::Ptr) => {
                    let n = node_of(&mut uf, &mut value_node, v);
                    let t = node_of(&mut uf, &mut value_node, *if_true);
                    let e = node_of(&mut uf, &mut value_node, *if_false);
                    uf.union(n, t);
                    uf.union(n, e);
                }
                Inst::Phi { ty, incomings } if *ty == Type::Ptr => {
                    let n = node_of(&mut uf, &mut value_node, v);
                    for (_, iv) in incomings {
                        let i = node_of(&mut uf, &mut value_node, *iv);
                        uf.union(n, i);
                    }
                }
                Inst::Load { ty, addr } if *ty == Type::Ptr => {
                    // v = *addr: v's class is what addr's pointee points at.
                    let n = node_of(&mut uf, &mut value_node, v);
                    let a = node_of(&mut uf, &mut value_node, *addr);
                    let mem = uf.deref(a);
                    let target = uf.deref(mem);
                    let vp = uf.deref(n);
                    uf.union(vp, target);
                    // Loaded pointers come from memory whose writers we may
                    // not have seen: conservatively unknown.
                    uf.union(vp, unknown);
                }
                Inst::Store { ty, addr, value } if *ty == Type::Ptr => {
                    // *addr = value: addr's pointee may point where value
                    // points.
                    let a = node_of(&mut uf, &mut value_node, *addr);
                    let val = node_of(&mut uf, &mut value_node, *value);
                    let mem = uf.deref(a);
                    let target = uf.deref(mem);
                    let vp = uf.deref(val);
                    uf.union(target, vp);
                }
                Inst::Call { args, ret_ty, .. } => {
                    // Intraprocedural: pointer arguments escape to unknown,
                    // pointer results come from unknown.
                    for &a in args {
                        if f.value_type(a) == Some(Type::Ptr) {
                            let n = node_of(&mut uf, &mut value_node, a);
                            let p = uf.deref(n);
                            uf.union(p, unknown);
                        }
                    }
                    if ret_ty == &Some(Type::Ptr) {
                        let n = node_of(&mut uf, &mut value_node, v);
                        let p = uf.deref(n);
                        uf.union(p, unknown);
                    }
                }
                _ => {}
            }
        }
        Steensgaard {
            uf: RefCell::new(uf),
            value_node,
        }
    }

    /// The pointee class of pointer `v`, if the analysis saw it.
    fn pointee_class(&self, v: ValueId) -> Option<(Node, bool)> {
        let n = *self.value_node.get(&v)?;
        let mut uf = self.uf.borrow_mut();
        let p = uf.deref(n);
        let r = uf.find(p);
        Some((r, uf.unknown[r]))
    }
}

impl AliasAnalysis for Steensgaard {
    fn alias(&self, _f: &Function, a: MemLoc, b: MemLoc) -> AliasResult {
        match (self.pointee_class(a.ptr), self.pointee_class(b.ptr)) {
            (Some((ca, ua)), Some((cb, ub))) => {
                if ca != cb && !ua && !ub {
                    AliasResult::No
                } else {
                    AliasResult::May
                }
            }
            _ => AliasResult::May,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{ModuleBuilder, Pred};

    fn loc(v: ValueId) -> MemLoc {
        MemLoc { ptr: v, size: 8 }
    }

    #[test]
    fn disjoint_heap_objects_do_not_alias_even_through_phis() {
        // Two mallocs selected through a phi vs a third: the phi'd class
        // merges the first two but stays disjoint from the third —
        // something trace_base (which punts on phis) cannot see.
        let mut mb = ModuleBuilder::new("m");
        let fid = mb.declare("f", vec![carat_ir::Type::I1], Some(carat_ir::Type::I64));
        let (pa, pb, pc, phi);
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            let t = b.block("t");
            let fl = b.block("fl");
            let j = b.block("j");
            b.switch_to(e);
            let sz = b.const_i64(64);
            pa = b.malloc(sz);
            pb = b.malloc(sz);
            pc = b.malloc(sz);
            b.br(b.arg(0), t, fl);
            b.switch_to(t);
            b.jmp(j);
            b.switch_to(fl);
            b.jmp(j);
            b.switch_to(j);
            phi = b.phi(carat_ir::Type::Ptr, vec![(t, pa), (fl, pb)]);
            let x = b.load(carat_ir::Type::I64, phi);
            b.ret(Some(x));
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let st = Steensgaard::compute(f);
        assert_eq!(st.alias(f, loc(phi), loc(pc)), AliasResult::No);
        assert_eq!(st.alias(f, loc(phi), loc(pa)), AliasResult::May);
        assert_eq!(st.alias(f, loc(phi), loc(pb)), AliasResult::May);
        assert_eq!(
            st.alias(f, loc(pa), loc(pb)),
            AliasResult::May,
            "unified by the phi"
        );
    }

    #[test]
    fn stored_and_reloaded_pointers_alias() {
        // q stored into a cell and reloaded: the reload may alias q.
        let mut mb = ModuleBuilder::new("m");
        let fid = mb.declare("f", vec![], Some(carat_ir::Type::I64));
        let (q, reload);
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            b.switch_to(e);
            let sz = b.const_i64(64);
            q = b.malloc(sz);
            let cell = b.alloca(carat_ir::Type::Ptr);
            b.store(carat_ir::Type::Ptr, cell, q);
            reload = b.load(carat_ir::Type::Ptr, cell);
            let x = b.load(carat_ir::Type::I64, reload);
            b.ret(Some(x));
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let st = Steensgaard::compute(f);
        assert_eq!(st.alias(f, loc(q), loc(reload)), AliasResult::May);
    }

    #[test]
    fn arguments_are_unknown() {
        let mut mb = ModuleBuilder::new("m");
        let fid = mb.declare(
            "f",
            vec![carat_ir::Type::Ptr, carat_ir::Type::Ptr],
            Some(carat_ir::Type::I64),
        );
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            b.switch_to(e);
            let x = b.load(carat_ir::Type::I64, b.arg(0));
            b.ret(Some(x));
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let st = Steensgaard::compute(f);
        assert_eq!(st.alias(f, loc(f.arg(0)), loc(f.arg(1))), AliasResult::May);
    }

    #[test]
    fn derived_pointers_stay_in_their_base_class() {
        let mut mb = ModuleBuilder::new("m");
        let fid = mb.declare("f", vec![carat_ir::Type::I64], Some(carat_ir::Type::I64));
        let (a1, a2, d1);
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            b.switch_to(e);
            a1 = b.alloca(carat_ir::Type::Array(Box::new(carat_ir::Type::I64), 8));
            a2 = b.alloca(carat_ir::Type::Array(Box::new(carat_ir::Type::I64), 8));
            d1 = b.ptr_add(a1, b.arg(0), carat_ir::Type::I64);
            let c = b.icmp(Pred::Eq, d1, a2);
            let ci = b.cast(carat_ir::CastKind::Zext, c, carat_ir::Type::I64);
            b.ret(Some(ci));
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let st = Steensgaard::compute(f);
        assert_eq!(st.alias(f, loc(d1), loc(a2)), AliasResult::No);
        assert_eq!(st.alias(f, loc(d1), loc(a1)), AliasResult::May);
    }
}
