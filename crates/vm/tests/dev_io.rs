//! Device & interrupt suite: timer-preemptive scheduling and
//! pinned-region-aware movers at the fleet level.
//!
//! The scheduling half is a differential: a fleet run under
//! [`SchedSource::Timer`] (CLINT-style cycle deadlines) must leave every
//! tenant's own [`PerfCounters`] bit-identical to the same fleet under
//! [`SchedSource::Quantum`] — preemption is a kernel concern, charged to
//! [`ProcAccounting`], never visible in guest-side state. At the `Vm`
//! level the equivalence is exact: replaying the cycle boundaries a
//! quantum run produced through `run_slice_cycles` retires the identical
//! stream.
//!
//! The device half drives the `io_server` pattern: a shared DMA buffer
//! pinned by its owner, a chaos storm with pressure compaction overhead,
//! and the invariant that nothing ever relocates the pinned block —
//! every collision is a typed refusal.

use carat_core::{CaratCompiler, CompileOptions};
use carat_ir::Module;
use carat_kernel::{DmaDir, DmaError, FaultPlan, KernelError, Pid, PinError};
use carat_runtime::MoveError;
use carat_vm::{
    MultiVm, MultiVmConfig, PerfCounters, ProcOutcome, ProcReport, ProcSpec, SchedSource,
    SliceExit, Vm, VmConfig, VmError,
};

/// The io_server tenant (self-contained copy of the workload): global
/// #0 is the DMA buffer pointer the host publishes via `shared_map`;
/// unhosted it stays null and the scan is skipped.
fn io_server_src(seed: i64) -> String {
    format!(
        "
int* dmabuf;
int main() {{
    int s = {seed};
    for (int p = 0; p < 6; p += 1) {{
        if (dmabuf != null) {{
            for (int i = 0; i < 16; i += 1) {{
                s += dmabuf[i];
                dmabuf[i] = (s + i) % 251;
            }}
        }}
        int* scratch = (int*) malloc(16 * sizeof(int));
        for (int i = 0; i < 16; i += 1) {{ scratch[i] = (s + i * 3) % 127; }}
        for (int i = 0; i < 16; i += 1) {{ s += scratch[i]; }}
        free(scratch);
    }}
    return s % 1000000;
}}
"
    )
}

/// Pointer-churn tenant: heap allocations with live escapes, the
/// compaction victim material.
fn churn_src(seed: i64) -> String {
    format!(
        "
int main() {{
    int n = 24;
    int* data = (int*) malloc(n * sizeof(int));
    int** cells = (int**) malloc(n * sizeof(int*));
    for (int i = 0; i < n; i += 1) {{
        data[i] = ({seed} + i * 7) % 97;
        cells[i] = &data[i];
    }}
    int s = 0;
    for (int p = 0; p < 10; p += 1) {{
        for (int i = 0; i < n; i += 1) {{ s += *cells[i]; }}
        data[p % n] = s % 89;
    }}
    free(data);
    free(cells);
    return s % 1000000;
}}
"
    )
}

fn instrument(name: &str, src: &str) -> Module {
    let m = carat_frontend::compile_cm(name, src).expect("compiles");
    CaratCompiler::new(CompileOptions::default())
        .compile(m)
        .expect("instruments")
        .module
}

fn fleet_specs() -> Vec<ProcSpec> {
    vec![
        ProcSpec {
            name: "io-a".into(),
            module: instrument("io_a", &io_server_src(3)),
            cfg: VmConfig::default(),
        },
        ProcSpec {
            name: "io-b".into(),
            module: instrument("io_b", &io_server_src(17)),
            cfg: VmConfig::default(),
        },
        ProcSpec {
            name: "churn".into(),
            module: instrument("churn", &churn_src(5)),
            cfg: VmConfig::default(),
        },
    ]
}

fn finished(r: &ProcReport) -> (i64, PerfCounters) {
    let ProcOutcome::Finished(rr) = &r.outcome else {
        panic!("{} did not finish: {:?}", r.name, r.outcome);
    };
    (rr.ret, rr.counters.clone())
}

#[test]
fn timer_and_quantum_fleets_agree_bit_exactly() {
    let quantum = MultiVm::new(
        fleet_specs(),
        MultiVmConfig {
            quantum: 700,
            ..MultiVmConfig::default()
        },
    )
    .expect("loads")
    .run();
    let timer = MultiVm::new(
        fleet_specs(),
        MultiVmConfig {
            sched: SchedSource::Timer,
            timer_interval: 2_500,
            ..MultiVmConfig::default()
        },
    )
    .expect("loads")
    .run();

    assert_eq!(quantum.len(), timer.len());
    for (q, t) in quantum.iter().zip(&timer) {
        assert_eq!(q.name, t.name);
        let (qret, qc) = finished(q);
        let (tret, tc) = finished(t);
        assert_eq!(qret, tret, "{}: return value differs", q.name);
        assert_eq!(
            qc, tc,
            "{}: guest counters are not scheduling-invariant",
            q.name
        );
        // The scheduling difference is visible exactly where it should
        // be: kernel-side accounting, never guest-side counters.
        assert_eq!(q.accounting.timer_preemptions, 0, "{}", q.name);
    }
    let preemptions: u64 = timer.iter().map(|r| r.accounting.timer_preemptions).sum();
    assert!(preemptions > 0, "the timer actually preempted someone");
}

#[test]
fn vm_replays_quantum_boundaries_identically_under_cycle_deadlines() {
    // Arm 1: instruction quanta, recording the modeled-cycle boundary of
    // every preemption.
    let module = instrument("io_solo", &io_server_src(9));
    let mut vm = Vm::new(module.clone(), VmConfig::default()).expect("loads");
    vm.start().expect("starts");
    let mut boundaries = Vec::new();
    let ret_q = loop {
        match vm.run_slice(400).expect("slices cleanly") {
            SliceExit::Quantum => boundaries.push(vm.counters().cycles),
            SliceExit::Finished(v) => break v,
        }
    };
    let counters_q = vm.counters().clone();
    assert!(boundaries.len() >= 2, "workload spans several slices");

    // Arm 2: a timer firing at exactly those cycle boundaries.
    let mut vm = Vm::new(module, VmConfig::default()).expect("loads");
    vm.start().expect("starts");
    for (i, &deadline) in boundaries.iter().enumerate() {
        match vm.run_slice_cycles(deadline).expect("slices cleanly") {
            SliceExit::Quantum => {
                assert_eq!(
                    vm.counters().cycles,
                    deadline,
                    "slice {i}: exits at the recorded boundary"
                );
            }
            SliceExit::Finished(_) => panic!("slice {i}: finished early"),
        }
    }
    let SliceExit::Finished(ret_t) = vm.run_slice_cycles(u64::MAX).expect("finishes") else {
        panic!("final slice must finish");
    };
    assert_eq!(ret_q, ret_t);
    assert_eq!(&counters_q, vm.counters(), "bit-identical replay");
}

#[test]
fn timer_device_records_interrupt_latency() {
    let mut mv = MultiVm::new(
        fleet_specs(),
        MultiVmConfig {
            sched: SchedSource::Timer,
            timer_interval: 1_500,
            ..MultiVmConfig::default()
        },
    )
    .expect("loads");
    mv.run_batch(u64::MAX);
    let s = mv.kernel.dev.timer.stats();
    assert!(s.armed > 0, "every timer slice arms the comparator");
    assert_eq!(
        s.dispatched + s.cancelled,
        s.armed,
        "every armed deadline is dispatched or cancelled"
    );
    assert!(s.dispatched > 0, "some slices were preempted");
    assert!(s.cancelled > 0, "finishing tenants cancel their deadline");
    // Preemption lands at the first safe boundary at or past the
    // deadline, so per-interrupt latency is finite and the percentile
    // machinery has samples to rank.
    assert!(mv.kernel.dev.timer.mean_latency() >= 0.0);
    assert!(
        mv.kernel.dev.timer.latency_percentile(99.0)
            >= mv.kernel.dev.timer.latency_percentile(50.0)
    );
    assert_eq!(s.latency_max, mv.kernel.dev.timer.latency_percentile(100.0));
}

/// Build the two-tenant io fleet with a mapped shared DMA buffer.
fn io_fleet(cfg: MultiVmConfig) -> (MultiVm, carat_kernel::SharedId, u64, u64) {
    let specs = vec![
        ProcSpec {
            name: "io-a".into(),
            module: instrument("io_a", &io_server_src(3)),
            cfg: VmConfig::default(),
        },
        ProcSpec {
            name: "io-b".into(),
            module: instrument("io_b", &io_server_src(17)),
            cfg: VmConfig::default(),
        },
    ];
    let mut mv = MultiVm::new(specs, cfg).expect("loads");
    let id = mv.shared_create(4096).expect("frames available");
    mv.shared_map(Pid(0), id, 0).expect("maps into io-a");
    mv.shared_map(Pid(1), id, 0).expect("maps into io-b");
    let (base, len) = mv.pin_shared(Pid(0), id).expect("pins");
    (mv, id, base, len)
}

#[test]
fn nothing_moves_a_pinned_shared_block() {
    let (mut mv, id, base, len) = io_fleet(MultiVmConfig {
        quantum: 300,
        pressure_every: 1,
        ..MultiVmConfig::default()
    });
    assert_eq!(mv.kernel.pinned_bytes(), len);

    // An explicit world-stop move of the pinned block: typed refusal,
    // block untouched.
    let err = mv.move_shared(id).expect_err("pinned block must not move");
    assert!(matches!(
        err,
        VmError::Kernel(KernelError::Move(MoveError::Pinned { .. }))
    ));
    assert_eq!(mv.kernel.procs.shared(id).unwrap().base, base);

    // A full fleet run with a pressure pass every slice: compaction
    // churns around the pinned hole but never relocates it.
    mv.run_batch(u64::MAX);
    assert_eq!(
        mv.kernel.procs.shared(id).unwrap().base,
        base,
        "pinned block never moved"
    );
    assert_eq!(mv.kernel.pins().len(), 1);
    assert_eq!(mv.kernel.pins()[0].start, base);

    // Unpinned, the same block moves on the first try.
    mv.unpin_shared(id).expect("unpins");
    let moved = mv.move_shared(id).expect("moves after unpin");
    assert_ne!(moved, base);
}

#[test]
fn chaos_storm_with_pinned_dma_yields_typed_errors_only() {
    let (mut mv, id, base, len) = io_fleet(MultiVmConfig {
        quantum: 250,
        pressure_every: 1,
        externalize_watermark: 0,
        ..MultiVmConfig::default()
    });
    mv.install_fault_plan(FaultPlan::from_seed_chaos(0xD3AD_10));

    // Drive slices and DMA traffic concurrently under the storm.
    let mut completions = 0u64;
    loop {
        let ran = mv.run_batch(4);
        mv.dma_submit(base, 128, DmaDir::DeviceToMem);
        mv.dma_submit(base, 128, DmaDir::MemToDevice);
        for c in mv.dma_service(4) {
            completions += 1;
            match &c.err {
                // The pin is live for the whole storm, so the only
                // failure the device may see is an injected fault.
                None | Some(DmaError::DeviceFault) => {}
                other => panic!("unexpected DMA outcome under live pin: {other:?}"),
            }
        }
        // The storm never relocates the pinned block.
        assert_eq!(mv.kernel.pins().len(), 1);
        assert_eq!(mv.kernel.pins()[0].start, base);
        assert_eq!(mv.kernel.pins()[0].len, len);
        assert_eq!(mv.kernel.procs.shared(id).unwrap().base, base);
        if ran == 0 {
            break;
        }
    }
    assert!(
        completions > 0,
        "the device made progress through the storm"
    );
    let dma = mv.kernel.dev.dma.stats();
    assert_eq!(dma.completed + dma.failed, completions);
}

#[test]
fn externalizing_a_pinned_tenant_is_refused_typed() {
    let (mut mv, id, _base, len) = io_fleet(MultiVmConfig::default());
    let err = mv
        .externalize_tenant(Pid(0))
        .expect_err("pinned tenant must stay resident");
    match err {
        VmError::Pin(PinError::PinnedTenant { pid, bytes }) => {
            assert_eq!(pid, Pid(0));
            assert_eq!(bytes, len);
        }
        other => panic!("expected PinnedTenant, got {other}"),
    }
    // The pin belongs to tenant 0: tenant 1 externalizes fine, and so
    // does tenant 0 once the pin is dropped.
    mv.externalize_tenant(Pid(1))
        .expect("unpinned tenant externalizes");
    mv.unpin_shared(id).expect("unpins");
    mv.externalize_tenant(Pid(0))
        .expect("externalizes after unpin");
}

#[test]
fn killing_a_tenant_reaps_its_pins() {
    let (mut mv, _id, base, len) = io_fleet(MultiVmConfig::default());
    assert_eq!(mv.kernel.pinned_bytes_of(Pid(0)), len);
    assert!(mv.kernel.proc_kill(Pid(0)));
    assert_eq!(mv.kernel.pins().len(), 0, "kill reaps the leaked pin");
    assert_eq!(mv.kernel.pinned_bytes(), 0);
    let s = mv.kernel.pin_stats();
    assert_eq!(s.reaped, 1);
    assert_eq!(s.pins, s.unpins + s.reaped, "accounting balances");
    // The reaped range is movable again.
    assert!(mv.kernel.pinned_overlap(base, len).is_none());
}
