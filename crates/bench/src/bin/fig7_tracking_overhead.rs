//! Figure 7 — time overhead of tracking allocations & escapes, normalized
//! to the uninstrumented baseline.

use carat_bench::{geomean, print_table, run_simple, scale_from_args, selected_workloads, Variant};

fn main() {
    let scale = scale_from_args();
    println!("Figure 7: time overhead of tracking ({scale:?} scale)\n");
    let mut rows = Vec::new();
    let mut overheads = Vec::new();
    for w in selected_workloads() {
        let base = run_simple(&w, scale, Variant::Baseline);
        let trk = run_simple(&w, scale, Variant::Tracking);
        let norm = trk.counters.normalized_to(&base.counters);
        overheads.push(norm);
        rows.push(vec![
            w.name.to_string(),
            "1.000".into(),
            format!("{norm:.3}"),
            format!("{}", trk.track_stats.allocs),
            format!("{}", trk.track_stats.escape_events),
        ]);
    }
    rows.push(vec![
        "Geo. Mean".into(),
        "1.000".into(),
        format!("{:.3}", geomean(&overheads)),
        String::new(),
        String::new(),
    ]);
    print_table(
        &[
            "benchmark",
            "Baseline",
            "CARAT",
            "allocs tracked",
            "escape events",
        ],
        &rows,
    );
}
