//! Demand paging / swap without page tables (paper §2.2): the kernel makes
//! a range unavailable by patching every pointer to it to a *non-canonical*
//! poison address that encodes the swap slot. The next guarded access
//! faults to the kernel, which pages the data back in and re-patches.
//!
//! ```sh
//! cargo run --example demand_paging
//! ```

use carat_core::{CaratCompiler, CompileOptions};
use carat_frontend::compile_cm;
use carat_vm::{SwapDriverConfig, Vm, VmConfig};

const PROGRAM: &str = r#"
struct rec { int key; int payload[6]; struct rec* next; };

int main() {
    // A hash-bucket-ish structure: records chained in lists.
    struct rec* heads[8];
    for (int b = 0; b < 8; b += 1) { heads[b] = (struct rec*) null; }
    for (int i = 0; i < 400; i += 1) {
        struct rec* r = (struct rec*) malloc(sizeof(struct rec));
        r->key = i;
        r->payload[i % 6] = i * 3;
        int b = i % 8;
        r->next = heads[b];
        heads[b] = r;
    }
    int sum = 0;
    for (int pass = 0; pass < 12; pass += 1) {
        for (int b = 0; b < 8; b += 1) {
            struct rec* r = heads[b];
            while (r != null) {
                sum += r->key + r->payload[r->key % 6];
                r = r->next;
            }
        }
    }
    return sum % 1000000;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = compile_cm("demand_paging", PROGRAM)?;
    let compiled = CaratCompiler::new(CompileOptions::default()).compile(module)?;

    let quiet = Vm::new(compiled.module.clone(), VmConfig::default())?.run()?;
    println!("reference result: {}", quiet.ret);

    // Page the hottest range out every 80k cycles; the program's own
    // accesses fault it back in.
    let cfg = VmConfig {
        swap_driver: Some(SwapDriverConfig {
            period_cycles: 80_000,
            max_swaps: 100,
        }),
        ..VmConfig::default()
    };
    let swapped = Vm::new(compiled.module, cfg)?.run()?;
    println!(
        "under swap:       {} ({} page-outs, {} demand page-ins)",
        swapped.ret, swapped.counters.swap_outs, swapped.counters.swap_ins
    );
    assert_eq!(quiet.ret, swapped.ret, "swap must be transparent");
    println!(
        "swap machinery cost {:.2}% of execution ({} of {} cycles)",
        swapped.counters.move_cycles as f64 * 100.0 / swapped.counters.cycles as f64,
        swapped.counters.move_cycles,
        swapped.counters.cycles
    );
    Ok(())
}
