//! The CARAT program loader (paper §2.2 "Run-time", load-time steps).
//!
//! At load the kernel: validates the binary's signature and decides
//! whether to trust the producing toolchain; selects regions for code,
//! globals (data + bss) and stack; copies code and initialized data;
//! zeroes bss and the stack; writes the allowed regions into the runtime's
//! landing zone; and performs the *initial patch* binding every global
//! address. Static allocations are registered with the runtime's
//! allocation table at this point.
//!
//! The layout follows the "dark capsule" single-region model (paper §3):
//! stack below data below code below heap, one contiguous run, so the
//! optimal single-region guard applies.

use crate::buddy::BuddyAllocator;
use crate::phys::PhysicalMemory;
use carat_core::sign::{verify_signature, SignatureError, SignedModule, SigningKey};
use carat_ir::{parse_module, GlobalInit, Module, ParseError, VerifyError};
use carat_runtime::{AllocKind, AllocationTable, Perms, Region};
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Loader failure.
#[derive(Debug)]
pub enum LoadError {
    /// Signature rejected.
    Signature(SignatureError),
    /// Module text failed to parse.
    Parse(ParseError),
    /// Module failed verification.
    Verify(VerifyError),
    /// Not enough physical memory.
    OutOfMemory,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Signature(e) => write!(f, "signature: {e}"),
            LoadError::Parse(e) => write!(f, "parse: {e}"),
            LoadError::Verify(e) => write!(f, "verify: {e}"),
            LoadError::OutOfMemory => write!(f, "out of physical memory"),
        }
    }
}

impl Error for LoadError {}

impl From<SignatureError> for LoadError {
    fn from(e: SignatureError) -> LoadError {
        LoadError::Signature(e)
    }
}
impl From<ParseError> for LoadError {
    fn from(e: ParseError) -> LoadError {
        LoadError::Parse(e)
    }
}
impl From<VerifyError> for LoadError {
    fn from(e: VerifyError) -> LoadError {
        LoadError::Verify(e)
    }
}

/// Loader sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Stack bytes.
    pub stack_size: u64,
    /// Heap arena bytes.
    pub heap_size: u64,
    /// Page size (must match the cost model).
    pub page_size: u64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            stack_size: 256 * 1024,
            heap_size: 32 * 1024 * 1024,
            page_size: 4096,
        }
    }
}

/// A loaded process image.
#[derive(Debug, Clone)]
pub struct ProcessImage {
    /// The program, shared rather than owned: a fleet of tenants spawned
    /// from one module clones the handle, not the IR (and the decoded
    /// code is shared the same way on the VM side).
    pub module: Rc<Module>,
    /// Physical address of each global, indexed by `GlobalId` — the
    /// patched constant pool (the loader's "initial patch"; updated again
    /// whenever the kernel moves a global).
    pub globals: Vec<u64>,
    /// Code range `(start, len)` — the copied text + runtime image.
    pub code: (u64, u64),
    /// Stack range `(start, len)`; the stack grows down from
    /// `start + len`.
    pub stack: (u64, u64),
    /// Heap arena `(start, len)`.
    pub heap: (u64, u64),
    /// Pages occupied at load completion (Table 2 "Initial Pages").
    pub initial_pages: u64,
    /// Static footprint in bytes (Table 2 "Static Footprint" is reported
    /// in pages of this).
    pub static_footprint: u64,
}

impl ProcessImage {
    /// Top of the initial stack (stacks grow down).
    pub fn stack_top(&self) -> u64 {
        self.stack.0 + self.stack.1
    }

    /// The single contiguous region covering the whole image.
    pub fn capsule_region(&self) -> Region {
        let start = self.stack.0;
        let end = self.heap.0 + self.heap.1;
        Region {
            start,
            len: end - start,
            perms: Perms::RW,
        }
    }

    /// A minimal placeholder image for process-table unit tests.
    #[cfg(test)]
    pub(crate) fn empty_for_tests() -> ProcessImage {
        ProcessImage {
            module: Rc::new(carat_ir::ModuleBuilder::new("empty").finish()),
            globals: Vec::new(),
            code: (0x2000, 0x1000),
            stack: (0x1000, 0x1000),
            heap: (0x3000, 0x1000),
            initial_pages: 3,
            static_footprint: 0x3000,
        }
    }
}

/// Load a signed module: verify provenance, lay out memory, copy and zero
/// sections, register static allocations, return the image.
///
/// # Errors
///
/// See [`LoadError`]. An untrusted or tampered binary never reaches the
/// parser (signature first, exactly as the paper orders the steps).
pub fn load_signed(
    signed: &SignedModule,
    trusted: &[SigningKey],
    mem: &mut PhysicalMemory,
    buddy: &mut BuddyAllocator,
    table: &mut AllocationTable,
    cfg: LoadConfig,
) -> Result<ProcessImage, LoadError> {
    let mut last: Option<SignatureError> = None;
    let ok = trusted.iter().any(|k| match verify_signature(signed, k) {
        Ok(()) => true,
        Err(e) => {
            last = Some(e);
            false
        }
    });
    if !ok {
        return Err(LoadError::Signature(last.unwrap_or(
            SignatureError::UntrustedToolchain("<no trusted keys>".into()),
        )));
    }
    let module = parse_module(&signed.text)?;
    carat_ir::verify_module(&module)?;
    load_image(
        Rc::new(module),
        signed.text.len() as u64,
        mem,
        buddy,
        table,
        cfg,
    )
}

/// Load an unverified module (baseline configurations and tests).
///
/// # Errors
///
/// [`LoadError::Verify`] / [`LoadError::OutOfMemory`].
pub fn load_unsigned(
    module: Module,
    mem: &mut PhysicalMemory,
    buddy: &mut BuddyAllocator,
    table: &mut AllocationTable,
    cfg: LoadConfig,
) -> Result<ProcessImage, LoadError> {
    load_shared(Rc::new(module), mem, buddy, table, cfg)
}

/// [`load_unsigned`] over an already-shared module handle: the fleet
/// spawn path, where thousands of tenants are loaded from one module
/// without cloning the IR per tenant.
///
/// # Errors
///
/// [`LoadError::Verify`] / [`LoadError::OutOfMemory`].
pub fn load_shared(
    module: Rc<Module>,
    mem: &mut PhysicalMemory,
    buddy: &mut BuddyAllocator,
    table: &mut AllocationTable,
    cfg: LoadConfig,
) -> Result<ProcessImage, LoadError> {
    carat_ir::verify_module(&module)?;
    let text_len = carat_ir::print_module(&module).len() as u64;
    load_image(module, text_len, mem, buddy, table, cfg)
}

/// [`load_shared`] for a module the caller has **already verified and
/// measured** — the batch-admission stamp path, where one verification
/// pass covers N tenants. `text_len` must be the
/// `carat_ir::print_module` length of this module (the batch entry point
/// computes it once); passing the same value the sequential path would
/// compute keeps per-tenant images bit-identical between the two paths.
///
/// # Errors
///
/// [`LoadError::OutOfMemory`]. Verification errors cannot occur here —
/// that is the point.
pub fn load_shared_preverified(
    module: Rc<Module>,
    text_len: u64,
    mem: &mut PhysicalMemory,
    buddy: &mut BuddyAllocator,
    table: &mut AllocationTable,
    cfg: LoadConfig,
) -> Result<ProcessImage, LoadError> {
    load_image(module, text_len, mem, buddy, table, cfg)
}

fn load_image(
    module: Rc<Module>,
    text_len: u64,
    mem: &mut PhysicalMemory,
    buddy: &mut BuddyAllocator,
    table: &mut AllocationTable,
    cfg: LoadConfig,
) -> Result<ProcessImage, LoadError> {
    let page = cfg.page_size;
    let round = |b: u64| b.div_ceil(page) * page;

    // Sizes: stack | data | code | heap, one contiguous capsule.
    let data_size: u64 = round(
        module
            .global_ids()
            .map(|g| {
                let gl = module.global(g);
                align_up(gl.ty.size().max(1), gl.ty.align().max(1)) + 16
            })
            .sum::<u64>()
            .max(1),
    );
    let stack_size = round(cfg.stack_size);
    let code_size = round(text_len.max(1));
    let heap_size = round(cfg.heap_size);
    let total_pages = (stack_size + data_size + code_size + heap_size) / page;
    let base = buddy
        .alloc_pages(total_pages)
        .ok_or(LoadError::OutOfMemory)?;

    let stack = (base, stack_size);
    let data_base = base + stack_size;
    let code = (data_base + data_size, code_size);
    let heap = (code.0 + code_size, heap_size);

    // Zero stack and data (bss semantics); "copy" code.
    mem.zero(stack.0, stack_size + data_size);

    // Place globals and perform the initial patch (bind addresses).
    let mut globals = Vec::with_capacity(module.num_globals());
    let mut cursor = data_base;
    for gid in module.global_ids() {
        let g = module.global(gid);
        cursor = align_up(cursor, g.ty.align().max(1));
        let addr = cursor;
        cursor += g.ty.size().max(1);
        match &g.init {
            GlobalInit::Zero => {}
            GlobalInit::Bytes(bs) => mem.write_bytes(addr, bs),
            GlobalInit::I64s(ws) => {
                for (i, w) in ws.iter().enumerate() {
                    mem.write_uint(addr + i as u64 * 8, *w as u64, 8);
                }
            }
            GlobalInit::F64s(ws) => {
                for (i, w) in ws.iter().enumerate() {
                    mem.write_f64(addr + i as u64 * 8, *w);
                }
            }
        }
        // Static allocations are recorded at load time (paper §4.1.2).
        table.track_alloc(addr, g.ty.size().max(1), AllocKind::Static);
        globals.push(addr);
    }

    // The initial stack is one allocation too (it can move).
    table.track_alloc(stack.0, stack.1, AllocKind::Stack);

    let static_footprint = module.static_footprint();
    let initial_pages = (stack_size + data_size + code_size) / page;
    Ok(ProcessImage {
        module,
        globals,
        code,
        stack,
        heap,
        initial_pages,
        static_footprint,
    })
}

fn align_up(v: u64, a: u64) -> u64 {
    v.div_ceil(a) * a
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_core::sign::sign_module;
    use carat_ir::{GlobalInit, ModuleBuilder, Type};

    fn sample_module() -> Module {
        let mut mb = ModuleBuilder::new("prog");
        mb.global(
            "zeros",
            Type::Array(Box::new(Type::I64), 100),
            GlobalInit::Zero,
        );
        mb.global(
            "init",
            Type::Array(Box::new(Type::I64), 4),
            GlobalInit::I64s(vec![1, 2, 3, 4]),
        );
        let f = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let c = b.const_i64(0);
            b.ret(Some(c));
        }
        mb.finish()
    }

    fn setup() -> (PhysicalMemory, BuddyAllocator, AllocationTable) {
        let mem = PhysicalMemory::new(128 * 1024 * 1024);
        let buddy = BuddyAllocator::new(0x10000, 16 * 1024, 4096);
        (mem, buddy, AllocationTable::new())
    }

    #[test]
    fn signed_load_roundtrip() {
        let key = SigningKey::from_passphrase("carat-cc", "k");
        let signed = sign_module(&sample_module(), &key);
        let (mut mem, mut buddy, mut table) = setup();
        let img = load_signed(
            &signed,
            &[key],
            &mut mem,
            &mut buddy,
            &mut table,
            LoadConfig::default(),
        )
        .expect("loads");
        // Initialized data visible at the bound global address.
        let init_addr = img.globals[1];
        assert_eq!(mem.read_uint(init_addr + 8, 8), 2);
        // Static allocations + the stack are tracked.
        assert_eq!(table.live(), 3);
        assert!(img.initial_pages > 0);
        assert_eq!(img.static_footprint, 100 * 8 + 4 * 8);
    }

    #[test]
    fn untrusted_signature_rejected() {
        let key = SigningKey::from_passphrase("carat-cc", "k");
        let evil = SigningKey::from_passphrase("carat-cc", "other");
        let signed = sign_module(&sample_module(), &evil);
        let (mut mem, mut buddy, mut table) = setup();
        let err = load_signed(
            &signed,
            &[key],
            &mut mem,
            &mut buddy,
            &mut table,
            LoadConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, LoadError::Signature(_)));
    }

    #[test]
    fn capsule_region_is_contiguous() {
        let (mut mem, mut buddy, mut table) = setup();
        let img = load_unsigned(
            sample_module(),
            &mut mem,
            &mut buddy,
            &mut table,
            LoadConfig::default(),
        )
        .expect("loads");
        let r = img.capsule_region();
        assert_eq!(r.start, img.stack.0);
        assert_eq!(r.start + r.len, img.heap.0 + img.heap.1);
        // stack < data < code < heap with no gaps.
        assert_eq!(
            img.stack.0 + img.stack.1 + /* data */ (img.code.0 - (img.stack.0 + img.stack.1)),
            img.code.0
        );
        assert_eq!(img.code.0 + img.code.1, img.heap.0);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut mem = PhysicalMemory::new(1024 * 1024);
        let mut buddy = BuddyAllocator::new(0, 4, 4096);
        let mut table = AllocationTable::new();
        let err = load_unsigned(
            sample_module(),
            &mut mem,
            &mut buddy,
            &mut table,
            LoadConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, LoadError::OutOfMemory));
    }
}
