//! Robustness properties: malformed input must produce errors, never
//! panics, for both front ends (Cm source and IR bitcode text).

use carat_suite::frontend::{compile_cm, parse_program};
use carat_suite::ir::parse_module;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII never panics the Cm parser.
    #[test]
    fn cm_parser_never_panics(src in "[ -~\\n]{0,400}") {
        let _ = parse_program(&src);
    }

    /// Arbitrary "bitcode" text never panics the IR parser.
    #[test]
    fn ir_parser_never_panics(src in "[ -~\\n]{0,400}") {
        let _ = parse_module(&src);
    }

    /// Cm-token soup (valid tokens, random arrangement) never panics the
    /// full front end, and failures carry a line number.
    #[test]
    fn cm_token_soup_fails_cleanly(toks in proptest::collection::vec(
        prop_oneof![
            Just("int"), Just("double"), Just("struct"), Just("if"),
            Just("while"), Just("return"), Just("("), Just(")"),
            Just("{"), Just("}"), Just(";"), Just("="), Just("+"),
            Just("*"), Just("x"), Just("main"), Just("1"), Just("2.5"),
            Just("->"), Just("&&"), Just("[" ), Just("]"), Just(","),
        ], 0..60)) {
        let src = toks.join(" ");
        if let Err(e) = compile_cm("fuzz", &src) {
            let msg = format!("{e}");
            prop_assert!(!msg.is_empty());
        }
    }

    /// Mutating one byte of valid bitcode either reparses to an
    /// equivalent-printing module or errors — never panics.
    #[test]
    fn bitcode_mutation_is_safe(pos in 0usize..2000, byte in 32u8..127) {
        let m = compile_cm(
            "seed",
            "int main() { int s = 0; for (int i = 0; i < 9; i += 1) { s += i; } return s; }",
        ).expect("valid program");
        let mut text = carat_suite::ir::print_module(&m).into_bytes();
        if pos < text.len() {
            text[pos] = byte;
        }
        if let Ok(s) = String::from_utf8(text) {
            let _ = parse_module(&s);
        }
    }
}
