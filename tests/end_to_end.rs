//! Cross-crate integration tests: source → CARAT compiler → signed binary
//! → kernel load → execution, with protection and mapping exercised the
//! way the paper's prototype exercises them.

use carat_suite::core::{CaratCompiler, CompileOptions, OptPreset, SigningKey};
use carat_suite::frontend::compile_cm;
use carat_suite::runtime::GuardImpl;
use carat_suite::vm::{Mode, MoveDriverConfig, SwapDriverConfig, Vm, VmConfig, VmError};

fn run_src(src: &str, options: CompileOptions, cfg: VmConfig) -> Result<i64, VmError> {
    let module = compile_cm("t", src).expect("frontend");
    let compiled = CaratCompiler::new(options).compile(module).expect("carat");
    Ok(Vm::new(compiled.module, cfg)?.run()?.ret)
}

#[test]
fn full_trust_chain_from_source_to_execution() {
    let src = r#"
        int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
        int main() { return fib(15); }
    "#;
    let key = SigningKey::from_passphrase("carat-cc", "integration");
    let module = compile_cm("fib", src).unwrap();
    let compiled = CaratCompiler::new(CompileOptions {
        signing: Some(key.clone()),
        ..CompileOptions::default()
    })
    .compile(module)
    .unwrap();
    let signed = compiled.signed.expect("signed");
    // The signed text is real, parseable bitcode.
    assert!(signed.text.contains("func @fib"));
    let vm = Vm::load_signed(&signed, vec![key], VmConfig::default()).unwrap();
    assert_eq!(vm.run().unwrap().ret, 610);
}

#[test]
fn tampered_binary_never_runs() {
    let key = SigningKey::from_passphrase("carat-cc", "integration");
    let module = compile_cm("t", "int main() { return 1; }").unwrap();
    let compiled = CaratCompiler::new(CompileOptions {
        signing: Some(key.clone()),
        ..CompileOptions::default()
    })
    .compile(module)
    .unwrap();
    let mut signed = compiled.signed.unwrap();
    assert!(signed.text.contains("const i64 1"), "tamper target present");
    signed.text = signed.text.replace("const i64 1", "const i64 2");
    assert!(matches!(
        Vm::load_signed(&signed, vec![key], VmConfig::default()),
        Err(VmError::Load(_))
    ));
}

#[test]
fn identical_results_across_all_configurations() {
    // A program exercising heap, globals, structs, recursion and floats.
    let src = r#"
        struct cell { double v; struct cell* next; };
        double acc[16];
        struct cell* push(struct cell* head, double v) {
            struct cell* c = (struct cell*) malloc(sizeof(struct cell));
            c->v = v; c->next = head;
            return c;
        }
        int main() {
            struct cell* head = (struct cell*) null;
            for (int i = 0; i < 64; i += 1) {
                head = push(head, i * 0.5);
            }
            double total = 0.0;
            while (head != null) {
                acc[(int) head->v % 16] += head->v;
                total += head->v;
                head = head->next;
            }
            for (int i = 0; i < 16; i += 1) { total += acc[i]; }
            return (int) total;
        }
    "#;
    let mut results = Vec::new();
    for options in [
        CompileOptions::baseline(),
        CompileOptions::guards_only(OptPreset::None),
        CompileOptions::guards_only(OptPreset::General),
        CompileOptions::guards_only(OptPreset::CaratSpecific),
        CompileOptions::tracking_only(),
        CompileOptions::default(),
    ] {
        results.push(run_src(src, options, VmConfig::default()).unwrap());
    }
    assert!(
        results.windows(2).all(|w| w[0] == w[1]),
        "all configurations agree: {results:?}"
    );
    // Also across guard mechanisms and in traditional mode.
    for guard_impl in [GuardImpl::BinarySearch, GuardImpl::IfTree, GuardImpl::Mpx] {
        let r = run_src(
            src,
            CompileOptions::default(),
            VmConfig {
                guard_impl,
                ..VmConfig::default()
            },
        )
        .unwrap();
        assert_eq!(r, results[0]);
    }
    let trad = run_src(
        src,
        CompileOptions::baseline(),
        VmConfig {
            mode: Mode::Traditional,
            ..VmConfig::default()
        },
    )
    .unwrap();
    assert_eq!(trad, results[0], "paging and CARAT compute the same thing");
}

#[test]
fn page_moves_are_transparent_under_stress() {
    let src = r#"
        struct node { int v; struct node* n; };
        int main() {
            struct node* head = (struct node*) null;
            int expect = 0;
            for (int i = 0; i < 500; i += 1) {
                struct node* x = (struct node*) malloc(sizeof(struct node));
                x->v = i; x->n = head; head = x;
                expect += i;
            }
            int got = 0;
            for (int pass = 0; pass < 20; pass += 1) {
                struct node* c = head;
                got = 0;
                while (c != null) { got += c->v; c = c->n; }
                if (got != expect) { return -1; }
            }
            return got;
        }
    "#;
    let r = run_src(
        src,
        CompileOptions::default(),
        VmConfig {
            move_driver: Some(MoveDriverConfig {
                period_cycles: 15_000,
                max_moves: 100,
            }),
            ..VmConfig::default()
        },
    )
    .unwrap();
    assert_eq!(r, (0..500).sum::<i64>(), "program self-check passed");
}

#[test]
fn stack_expansion_swap_and_moves_together() {
    // Deep recursion (forces stack expansion) over a linked structure
    // (exercises escape patching) while both the move and swap drivers
    // fire — every mapping mechanism at once.
    let src = r#"
        struct frame_link { int depth; struct frame_link* prev; };
        int descend(struct frame_link* prev, int depth) {
            if (depth == 0) { return 0; }
            struct frame_link* me = (struct frame_link*) malloc(sizeof(struct frame_link));
            me->depth = depth;
            me->prev = prev;
            int below = descend(me, depth - 1);
            int d = me->depth;
            free(me);
            return d + below;
        }
        int main() {
            int total = 0;
            for (int round = 0; round < 3; round += 1) {
                total += descend((struct frame_link*) null, 6000);
            }
            return total % 1000000;
        }
    "#;
    let quiet = run_src(src, CompileOptions::default(), VmConfig::default()).unwrap();
    let module = compile_cm("stress", src).unwrap();
    let compiled = CaratCompiler::new(CompileOptions::default())
        .compile(module)
        .unwrap();
    let vm = Vm::new(
        compiled.module,
        VmConfig {
            move_driver: Some(MoveDriverConfig {
                period_cycles: 120_000,
                max_moves: 40,
            }),
            swap_driver: Some(SwapDriverConfig {
                period_cycles: 200_000,
                max_swaps: 15,
            }),
            ..VmConfig::default()
        },
    )
    .unwrap();
    let r = vm.run().unwrap();
    assert_eq!(r.ret, quiet);
    assert!(r.counters.stack_expansions >= 1, "stack grew");
}

#[test]
fn guard_fault_on_use_after_free_of_whole_region() {
    // After the kernel revokes the moved-out hole, reads there fault. We
    // emulate a stray pointer via int->ptr casting (a CARAT restriction
    // violation that guards catch at run time).
    let src = r#"
        int main() {
            int* stray = (int*) 0x6fff0000;
            return *stray;
        }
    "#;
    let err = run_src(
        src,
        CompileOptions::guards_only(OptPreset::CaratSpecific),
        VmConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, VmError::GuardFault { .. }));
}

#[test]
fn traditional_mode_reports_translation_costs() {
    let src = r#"
        int main() {
            int n = 65536;
            char* big = (char*) malloc(n * 16);
            int sum = 0;
            for (int i = 0; i < n; i += 1) { big[(i * 4099) % (n * 16)] = (char) i; }
            for (int i = 0; i < n * 16; i += 4096) { sum += big[i]; }
            free(big);
            return sum % 1000;
        }
    "#;
    let module = compile_cm("t", src).unwrap();
    let compiled = CaratCompiler::new(CompileOptions::baseline())
        .compile(module)
        .unwrap();
    let r = Vm::new(
        compiled.module,
        VmConfig {
            mode: Mode::Traditional,
            ..VmConfig::default()
        },
    )
    .unwrap()
    .run()
    .unwrap();
    assert!(r.dtlb_misses > 1000, "random writes thrash the DTLB");
    assert!(r.pagewalks > 0);
    assert!(r.counters.translation_cycles > 0);
    assert!(r.page_allocs > r.initial_pages);
}

#[test]
fn carat_census_matches_static_guard_count() {
    let src = r#"
        double a[256];
        int main() {
            double s = 0.0;
            for (int i = 0; i < 256; i += 1) { s += a[i]; }
            for (int i = 0; i < 256; i += 1) { a[i] = s; }
            return (int) s;
        }
    "#;
    let module = compile_cm("t", src).unwrap();
    let compiled = CaratCompiler::new(CompileOptions::guards_only(OptPreset::CaratSpecific))
        .compile(module)
        .unwrap();
    let c = compiled.census;
    assert_eq!(c.total, c.untouched + c.hoisted + c.merged + c.eliminated);
    assert!(
        c.merged >= 2,
        "both loops' guards merge into range guards: {c:?}"
    );
}
