//! Figure 2 — level-1 DTLB misses per 1000 instructions, per benchmark,
//! under the traditional paging model.

use carat_bench::{print_table, run_simple, scale_from_args, selected_workloads, Variant};

fn main() {
    let scale = scale_from_args();
    println!(
        "Figure 2: L1 DTLB misses per 1000 instructions (traditional model, {scale:?} scale)\n"
    );
    let mut rows = Vec::new();
    for w in selected_workloads() {
        let r = run_simple(&w, scale, Variant::Traditional);
        rows.push(vec![
            w.name.to_string(),
            format!("{:.4}", r.dtlb_mpki),
            format!("{}", r.dtlb_misses),
            format!("{}", r.pagewalks),
            format!(
                "{:.4}",
                r.pagewalks as f64 * 1000.0 / r.counters.instructions as f64
            ),
        ]);
    }
    print_table(
        &[
            "benchmark",
            "DTLB MPKI",
            "DTLB misses",
            "pagewalks",
            "walks/1K instr",
        ],
        &rows,
    );
}
