//! Multi-process differential suite: a time-sliced [`MultiVm`] must be
//! observationally identical, per process, to sequential execution —
//! every [`PerfCounters`] field, across every engine and both worlds.
//! Kernel-side scheduling costs (context switches, TLB flushes,
//! compaction) live in [`ProcAccounting`] and must never leak into a
//! process's own counters.
//!
//! Also the isolation and fault-soak halves of the process model:
//! a cross-tenant access is a typed `ProtectionFault` (never a panic),
//! and an injected mid-move fault during a cross-process shared-region
//! move rolls every owner back and is retryable.

use carat_core::{CaratCompiler, CompileOptions};
use carat_ir::{CastKind, GlobalInit, Module, ModuleBuilder, Pred, Type};
use carat_kernel::{FaultPlan, FaultPoint, KernelError, Pid};
use carat_vm::{
    Engine, Mode, MultiVm, MultiVmConfig, ProcOutcome, ProcReport, ProcSpec, Vm, VmConfig, VmError,
};

/// sum of i for i in 0..n over a heap array: alloc, fill, sum, free.
fn array_sum_module(n: i64) -> Module {
    let mut mb = ModuleBuilder::new("array_sum");
    let f = mb.declare("main", vec![], Some(Type::I64));
    {
        let mut b = mb.define(f);
        let e = b.block("entry");
        let h1 = b.block("fill.h");
        let b1 = b.block("fill.b");
        let h2 = b.block("sum.h");
        let b2 = b.block("sum.b");
        let x = b.block("exit");
        b.switch_to(e);
        let nn = b.const_i64(n);
        let bytes = b.const_i64(n * 8);
        let a = b.malloc(bytes);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.jmp(h1);
        b.switch_to(h1);
        let i = b.phi(Type::I64, vec![(e, zero)]);
        let c = b.icmp(Pred::Slt, i, nn);
        b.br(c, b1, h2);
        b.switch_to(b1);
        let ai = b.ptr_add(a, i, Type::I64);
        b.store(Type::I64, ai, i);
        let i2 = b.add(i, one);
        b.phi_add_incoming(i, b1, i2);
        b.jmp(h1);
        b.switch_to(h2);
        let j = b.phi(Type::I64, vec![(h1, zero)]);
        let s = b.phi(Type::I64, vec![(h1, zero)]);
        let c2 = b.icmp(Pred::Slt, j, nn);
        b.br(c2, b2, x);
        b.switch_to(b2);
        let aj = b.ptr_add(a, j, Type::I64);
        let v = b.load(Type::I64, aj);
        let s2 = b.add(s, v);
        let j2 = b.add(j, one);
        b.phi_add_incoming(j, b2, j2);
        b.phi_add_incoming(s, b2, s2);
        b.jmp(h2);
        b.switch_to(x);
        b.free(a);
        b.ret(Some(s));
    }
    mb.finish()
}

/// Register-only loop: sum of i for i in 0..k, no memory traffic.
fn compute_module(k: i64) -> Module {
    let mut mb = ModuleBuilder::new("compute");
    let f = mb.declare("main", vec![], Some(Type::I64));
    {
        let mut b = mb.define(f);
        let e = b.block("entry");
        let h = b.block("loop.h");
        let l = b.block("loop.b");
        let x = b.block("exit");
        b.switch_to(e);
        let kk = b.const_i64(k);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.jmp(h);
        b.switch_to(h);
        let i = b.phi(Type::I64, vec![(e, zero)]);
        let s = b.phi(Type::I64, vec![(e, zero)]);
        let c = b.icmp(Pred::Slt, i, kk);
        b.br(c, l, x);
        b.switch_to(l);
        let s2 = b.add(s, i);
        let i2 = b.add(i, one);
        b.phi_add_incoming(i, l, i2);
        b.phi_add_incoming(s, l, s2);
        b.jmp(h);
        b.switch_to(x);
        b.ret(Some(s));
    }
    mb.finish()
}

/// Stores a heap pointer into a global cell (one escape), reads it back
/// through the cell, writes 7 through it, returns the loaded 7.
fn escape_module() -> Module {
    let mut mb = ModuleBuilder::new("escape");
    let cell = mb.global("cell", Type::Ptr, GlobalInit::Zero);
    let f = mb.declare("main", vec![], Some(Type::I64));
    {
        let mut b = mb.define(f);
        let e = b.block("entry");
        b.switch_to(e);
        let size = b.const_i64(64);
        let p = b.malloc(size);
        let ga = b.global_addr(cell);
        b.store(Type::Ptr, ga, p);
        let p2 = b.load(Type::Ptr, ga);
        let seven = b.const_i64(7);
        b.store(Type::I64, p2, seven);
        let v = b.load(Type::I64, p2);
        b.ret(Some(v));
    }
    mb.finish()
}

/// Two page-sized heap blocks, each published into its own global cell
/// (two escapes on two distinct pages — enough for the pressure planner
/// to coalesce a two-move batch). Loops storing/loading through both
/// cells so relocations are exercised mid-run; returns sum 2i over
/// i in 0..n = n*(n-1).
fn two_page_escape_module(n: i64) -> Module {
    let mut mb = ModuleBuilder::new("two_page_escape");
    let cell_a = mb.global("cell_a", Type::Ptr, GlobalInit::Zero);
    let cell_b = mb.global("cell_b", Type::Ptr, GlobalInit::Zero);
    let f = mb.declare("main", vec![], Some(Type::I64));
    {
        let mut b = mb.define(f);
        let e = b.block("entry");
        let h = b.block("loop.h");
        let l = b.block("loop.b");
        let x = b.block("exit");
        b.switch_to(e);
        let nn = b.const_i64(n);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let size = b.const_i64(4096);
        let pa = b.malloc(size);
        let pb = b.malloc(size);
        let ga = b.global_addr(cell_a);
        let gb = b.global_addr(cell_b);
        b.store(Type::Ptr, ga, pa);
        b.store(Type::Ptr, gb, pb);
        b.jmp(h);
        b.switch_to(h);
        let i = b.phi(Type::I64, vec![(e, zero)]);
        let s = b.phi(Type::I64, vec![(e, zero)]);
        let c = b.icmp(Pred::Slt, i, nn);
        b.br(c, l, x);
        b.switch_to(l);
        let qa = b.load(Type::Ptr, ga);
        b.store(Type::I64, qa, i);
        let qb = b.load(Type::Ptr, gb);
        b.store(Type::I64, qb, i);
        let va = b.load(Type::I64, qa);
        let vb = b.load(Type::I64, qb);
        let s2 = b.add(s, va);
        let s3 = b.add(s2, vb);
        let i2 = b.add(i, one);
        b.phi_add_incoming(i, l, i2);
        b.phi_add_incoming(s, l, s3);
        b.jmp(h);
        b.switch_to(x);
        b.ret(Some(s));
    }
    mb.finish()
}

/// Sums the first four u64s of the shared block published in global 0.
fn shared_reader_module() -> Module {
    let mut mb = ModuleBuilder::new("shared_reader");
    let cell = mb.global("shm", Type::Ptr, GlobalInit::Zero);
    let f = mb.declare("main", vec![], Some(Type::I64));
    {
        let mut b = mb.define(f);
        let e = b.block("entry");
        b.switch_to(e);
        let ga = b.global_addr(cell);
        let p = b.load(Type::Ptr, ga);
        let mut sum = b.const_i64(0);
        for i in 0..4i64 {
            let idx = b.const_i64(i);
            let pi = b.ptr_add(p, idx, Type::I64);
            let v = b.load(Type::I64, pi);
            sum = b.add(sum, v);
        }
        b.ret(Some(sum));
    }
    mb.finish()
}

fn instrument(m: Module) -> Module {
    CaratCompiler::new(CompileOptions::default())
        .compile(m)
        .expect("instruments")
        .module
}

/// The four-tenant mix: two array sweeps, a register-only loop, and an
/// escape-carrying program. Instrumented for CARAT, raw for traditional.
fn tenant_specs(engine: Engine, mode: Mode) -> Vec<ProcSpec> {
    let modules = vec![
        ("sweep-large", array_sum_module(240)),
        ("compute", compute_module(500)),
        ("escape", escape_module()),
        ("sweep-small", array_sum_module(90)),
    ];
    modules
        .into_iter()
        .map(|(name, m)| ProcSpec {
            name: name.to_string(),
            module: if mode == Mode::Carat {
                instrument(m)
            } else {
                m
            },
            cfg: VmConfig {
                engine,
                mode,
                ..VmConfig::default()
            },
        })
        .collect()
}

const EXPECTED: [i64; 4] = [28680, 124750, 7, 4005];

fn run_mix(engine: Engine, mode: Mode, quantum: u64) -> Vec<ProcReport> {
    let mv = MultiVm::new(
        tenant_specs(engine, mode),
        MultiVmConfig {
            quantum,
            ..MultiVmConfig::default()
        },
    )
    .expect("loads");
    mv.run()
}

#[test]
fn sliced_equals_sequential_for_every_engine_and_mode() {
    for engine in [Engine::Fused, Engine::Decoded, Engine::Reference] {
        for mode in [Mode::Carat, Mode::Traditional] {
            // Prime quantum: slice boundaries land mid-block, mid-loop,
            // mid-fused-pair. The sequential arm is the same kernel with
            // an unbounded quantum (identical load addresses).
            let sliced = run_mix(engine, mode, 97);
            let seq = run_mix(engine, mode, u64::MAX);
            assert_eq!(sliced.len(), 4);
            let switches =
                |rs: &[ProcReport]| rs.iter().map(|r| r.accounting.ctx_switches).sum::<u64>();
            assert!(
                switches(&sliced) > switches(&seq),
                "{engine:?}/{mode:?}: slicing switches more often overall"
            );
            for (s, q) in sliced.iter().zip(&seq) {
                let (ProcOutcome::Finished(rs), ProcOutcome::Finished(rq)) =
                    (&s.outcome, &q.outcome)
                else {
                    panic!("{engine:?}/{mode:?} {}: both arms finish", s.name);
                };
                assert_eq!(
                    rs.ret, rq.ret,
                    "{engine:?}/{mode:?} {}: results agree",
                    s.name
                );
                assert_eq!(
                    rs.counters, rq.counters,
                    "{engine:?}/{mode:?} {}: per-process counters must be \
                     identical under time slicing",
                    s.name
                );
                assert!(
                    s.accounting.ctx_switches >= q.accounting.ctx_switches,
                    "{engine:?}/{mode:?} {}: slicing never switches less",
                    s.name
                );
            }
            for (r, want) in sliced.iter().zip(EXPECTED) {
                let ProcOutcome::Finished(rr) = &r.outcome else {
                    unreachable!()
                };
                assert_eq!(rr.ret, want, "{}: correct result", r.name);
            }
        }
    }
}

#[test]
fn pid0_under_scheduler_matches_a_solo_vm() {
    for mode in [Mode::Carat, Mode::Traditional] {
        let m = array_sum_module(240);
        let m = if mode == Mode::Carat {
            instrument(m)
        } else {
            m
        };
        let cfg = VmConfig {
            mode,
            ..VmConfig::default()
        };
        let solo = Vm::new(m, cfg).unwrap().run().unwrap();
        let reports = run_mix(Engine::Fused, mode, 97);
        let ProcOutcome::Finished(multi) = &reports[0].outcome else {
            panic!("pid0 finishes");
        };
        // Same 512 MiB kernel, same first buddy allocation, so pid0 sees
        // the same addresses a dedicated machine would — and therefore
        // byte-identical counters.
        assert_eq!(multi.ret, solo.ret, "{mode:?}");
        assert_eq!(multi.counters, solo.counters, "{mode:?}");
    }
}

#[test]
fn carat_context_switches_undercut_traditional_in_kernel_accounting() {
    let carat = run_mix(Engine::Fused, Mode::Carat, 97);
    let trad = run_mix(Engine::Fused, Mode::Traditional, 97);
    let cost = carat_runtime::CostModel::default();
    for (c, t) in carat.iter().zip(&trad) {
        assert!(c.accounting.ctx_switches >= 1, "{}: switched in", c.name);
        assert_eq!(
            c.accounting.ctx_switch_cycles,
            c.accounting.ctx_switches * cost.ctx_switch_carat(),
            "{}: CARAT pays fixed + region swap, nothing else",
            c.name
        );
        assert_eq!(
            t.accounting.ctx_switch_cycles,
            t.accounting.ctx_switches * cost.ctx_switch_traditional(),
            "{}: traditional pays the modeled flush + ASID refill",
            t.name
        );
        assert_eq!(c.accounting.tlb_flushes, 0, "no TLB exists to flush");
        assert_eq!(t.accounting.tlb_flushes, t.accounting.ctx_switches);
        assert!(
            cost.ctx_switch_carat() < cost.ctx_switch_traditional(),
            "per-switch CARAT cost is strictly below traditional"
        );
    }
}

/// Compact loader sizing so five tenants fit one arena (a default 32 MiB
/// heap makes every capsule round up to a 64 MiB buddy block).
fn small_load() -> carat_kernel::LoadConfig {
    carat_kernel::LoadConfig {
        stack_size: 256 * 1024,
        heap_size: 4 * 1024 * 1024,
        page_size: 4096,
    }
}

#[test]
fn cross_tenant_access_is_a_typed_protection_fault_not_a_panic() {
    let offender_module = |foreign: u64| {
        // Offender: forges a pointer into tenant 0's memory and loads.
        let mut mb = ModuleBuilder::new("offender");
        let f = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let bad = b.const_i64(foreign as i64);
            let p = b.cast(CastKind::IntToPtr, bad, Type::Ptr);
            let v = b.load(Type::I64, p);
            b.ret(Some(v));
        }
        instrument(mb.finish())
    };
    let five_specs = |engine: Engine, foreign: u64| {
        let mut specs = tenant_specs(engine, Mode::Carat);
        specs.push(ProcSpec {
            name: "offender".to_string(),
            module: offender_module(foreign),
            cfg: VmConfig {
                engine,
                mode: Mode::Carat,
                ..VmConfig::default()
            },
        });
        for s in &mut specs {
            s.cfg.load = small_load();
        }
        specs
    };
    for engine in [Engine::Fused, Engine::Decoded, Engine::Reference] {
        // Learn where pid0's capsule lands: loads are deterministic, and
        // pid0 loads first, so a probe admission with a placeholder
        // offender sees the same addresses the real run will.
        let probe =
            MultiVm::new(five_specs(engine, 0x10), MultiVmConfig::default()).expect("probe loads");
        let foreign = {
            let r = probe
                .kernel
                .procs
                .get(Pid(0))
                .unwrap()
                .image
                .capsule_region();
            r.start + r.len / 2
        };
        let reports = MultiVm::new(five_specs(engine, foreign), MultiVmConfig::default())
            .expect("loads")
            .run();
        let off = &reports[4];
        let ProcOutcome::Fault(fault) = &off.outcome else {
            panic!(
                "{engine:?}: offender dies of a typed fault, got {:?}",
                off.outcome
            );
        };
        assert_eq!(fault.pid, Pid(4));
        assert_eq!(fault.addr, foreign);
        assert!(!fault.write);
        assert_eq!(off.accounting.protection_faults, 1);
        // The victim and every bystander run to completion, unperturbed.
        for (r, want) in reports.iter().take(4).zip(EXPECTED) {
            let ProcOutcome::Finished(rr) = &r.outcome else {
                panic!("{engine:?} {}: bystander survives", r.name);
            };
            assert_eq!(rr.ret, want, "{engine:?} {}", r.name);
        }
    }
}

fn shared_pair(fault_plan: Option<FaultPlan>) -> (MultiVm, carat_kernel::SharedId) {
    let specs = vec![
        ProcSpec {
            name: "reader-a".to_string(),
            module: instrument(shared_reader_module()),
            cfg: VmConfig {
                fault_plan: fault_plan.clone(),
                ..VmConfig::default()
            },
        },
        ProcSpec {
            name: "reader-b".to_string(),
            module: instrument(shared_reader_module()),
            cfg: VmConfig::default(),
        },
    ];
    let mut mv = MultiVm::new(specs, MultiVmConfig::default()).expect("loads");
    let id = mv.shared_create(4096).expect("frames available");
    let base = mv.kernel.procs.shared(id).unwrap().base;
    for (i, v) in [11u64, 22, 33, 44].into_iter().enumerate() {
        mv.kernel.mem.write_uint(base + 8 * i as u64, v, 8);
    }
    mv.shared_map(Pid(0), id, 0).expect("maps into live tenant");
    mv.shared_map(Pid(1), id, 0).expect("maps into live tenant");
    (mv, id)
}

#[test]
fn shared_region_moves_patch_every_owner() {
    let (mut mv, id) = shared_pair(None);
    let before = mv.kernel.procs.shared(id).unwrap().base;
    let after = mv.move_shared(id).expect("clean move");
    assert_ne!(before, after, "the block actually moved");
    assert_eq!(mv.kernel.procs.shared_moves, 1);
    assert!(mv.kernel.procs.shared_move_cycles > 0);
    let reports = mv.run();
    for r in &reports {
        let ProcOutcome::Finished(rr) = &r.outcome else {
            panic!("{}: finishes", r.name);
        };
        assert_eq!(
            rr.ret,
            11 + 22 + 33 + 44,
            "{}: reads through the moved block",
            r.name
        );
    }
}

#[test]
fn interrupted_shared_move_rolls_back_every_owner_and_is_retryable() {
    // Arm one mid-move fault: it fires after the patch phase of the
    // first cross-process move, exercising the multi-owner journal.
    let plan = FaultPlan::new().arm(FaultPoint::MidMove, 1);
    let (mut mv, id) = shared_pair(Some(plan));
    let base = mv.kernel.procs.shared(id).unwrap().base;
    let cell0 = mv.kernel.procs.get(Pid(0)).unwrap().image.globals[0];
    use carat_runtime::MemAccess;
    let held = mv.kernel.mem.read_u64(cell0);
    assert_eq!(held, base, "global cell publishes the shared base");

    let err = mv.move_shared(id).expect_err("armed fault fires");
    let VmError::Kernel(k) = &err else {
        panic!("typed kernel error, got {err:?}");
    };
    assert!(
        matches!(k, KernelError::MoveInterrupted { .. }),
        "mid-move fault surfaces as MoveInterrupted, got {k:?}"
    );
    assert!(k.is_recoverable());
    // Transactional: the block, the published pointer, and the region
    // maps are byte-identical to the pre-move state.
    assert_eq!(mv.kernel.procs.shared(id).unwrap().base, base);
    assert_eq!(mv.kernel.mem.read_u64(cell0), base);
    assert_eq!(mv.kernel.procs.shared_moves, 0);

    // Retry (plan exhausted) succeeds, and both owners read the data
    // through their patched pointers.
    let after = mv.move_shared(id).expect("retry is clean");
    assert_ne!(after, base);
    assert_eq!(mv.kernel.mem.read_u64(cell0), after);
    let reports = mv.run();
    for r in &reports {
        let ProcOutcome::Finished(rr) = &r.outcome else {
            panic!("{}: finishes after the soak", r.name);
        };
        assert_eq!(rr.ret, 11 + 22 + 33 + 44, "{}", r.name);
    }
}

#[test]
fn pressure_compaction_relocates_tenants_transparently() {
    let specs: Vec<ProcSpec> = vec![
        ("sweep", instrument(array_sum_module(240)), 28680i64),
        ("escape", instrument(escape_module()), 7),
        ("sweep2", instrument(array_sum_module(90)), 4005),
        ("compute", instrument(compute_module(500)), 124750),
    ]
    .into_iter()
    .map(|(name, module, _)| ProcSpec {
        name: name.to_string(),
        module,
        cfg: VmConfig::default(),
    })
    .collect();
    let mv = MultiVm::new(
        specs,
        MultiVmConfig {
            quantum: 97,
            pressure_every: 2,
            ..MultiVmConfig::default()
        },
    )
    .expect("loads");
    let reports = mv.run();
    let expected = [28680i64, 7, 4005, 124750];
    let mut compaction_work = 0u64;
    for (r, want) in reports.iter().zip(expected) {
        let ProcOutcome::Finished(rr) = &r.outcome else {
            panic!("{}: survives compaction, got {:?}", r.name, r.outcome);
        };
        assert_eq!(rr.ret, want, "{}: compaction is transparent", r.name);
        compaction_work += r.accounting.pressure_moves + r.accounting.pressure_page_outs;
    }
    assert!(
        compaction_work > 0,
        "the pressure pass actually moved or paged something"
    );
}

/// Run the four-tenant pressure mix with the move planner coalescing up
/// to two victim pages per pass, either batched into one world-stop or
/// issued as sequential per-move stops.
fn pressure_mix_reports(batch_stops: bool) -> Vec<ProcReport> {
    let specs: Vec<ProcSpec> = [
        ("sweep", array_sum_module(240)),
        ("two-page", two_page_escape_module(150)),
        ("sweep2", array_sum_module(90)),
        ("compute", compute_module(500)),
    ]
    .into_iter()
    .map(|(name, module)| ProcSpec {
        name: name.to_string(),
        module: instrument(module),
        cfg: VmConfig::default(),
    })
    .collect();
    let mv = MultiVm::new(
        specs,
        MultiVmConfig {
            quantum: 97,
            pressure_every: 2,
            pressure_batch: 2,
            batch_stops,
            ..MultiVmConfig::default()
        },
    )
    .expect("loads");
    mv.run()
}

/// Batched pressure compaction must equal sequential per-move compaction
/// bit-for-bit from the guest's point of view — same returns, same
/// PerfCounters — while doing the same moves for fewer kernel cycles
/// (one signal+barrier round and one register pass per batch instead of
/// per move).
#[test]
fn batched_pressure_compaction_matches_sequential_per_move() {
    let batched = pressure_mix_reports(true);
    let sequential = pressure_mix_reports(false);
    let expected = [28680i64, 150 * 149, 4005, 124750];
    let (mut moves_b, mut moves_s, mut cycles_b, mut cycles_s) = (0u64, 0u64, 0u64, 0u64);
    for ((b, s), want) in batched.iter().zip(&sequential).zip(expected) {
        let (ProcOutcome::Finished(rb), ProcOutcome::Finished(rs)) = (&b.outcome, &s.outcome)
        else {
            panic!(
                "{}: both arms finish, got {:?} / {:?}",
                b.name, b.outcome, s.outcome
            );
        };
        assert_eq!(
            rb.ret, want,
            "{}: batched arm returns the right value",
            b.name
        );
        assert_eq!(
            rs.ret, want,
            "{}: sequential arm returns the right value",
            s.name
        );
        assert_eq!(
            rb.counters, rs.counters,
            "{}: guest counters must not see the batching strategy",
            b.name
        );
        moves_b += b.accounting.pressure_moves;
        moves_s += s.accounting.pressure_moves;
        cycles_b += b.accounting.compaction_cycles;
        cycles_s += s.accounting.compaction_cycles;
    }
    assert!(
        moves_b > 0,
        "the batched pressure pass actually moved pages (batched={moves_b} sequential={moves_s})"
    );
    assert_eq!(
        moves_b, moves_s,
        "both arms walk the same victim lists and execute the same moves"
    );
    assert!(
        cycles_b < cycles_s,
        "batching amortizes the world-stop: batched={cycles_b} sequential={cycles_s}"
    );
}
