//! Host-side interpreter throughput: wall-clock ns per retired IR
//! instruction and MIPS for the threaded and superinstruction (fused)
//! engines, with the pre-decoded engine and the retained reference
//! interpreter as the comparison points, across the whole workload suite.
//!
//! Unlike every other experiment (which reports *simulated* cycles), this
//! one measures the *host* cost of simulation itself — the number the
//! decoded-engine refactor, the fusion pass, and the threaded tier exist
//! to improve.
//!
//! Two sections:
//!
//! 1. **Uninstrumented** (`Variant::Baseline`): all four engines on bare
//!    workloads, isolating the interpreter loop itself. The threaded tier
//!    has no guards to elide here, so its edge over fused is superblock
//!    chaining alone.
//! 2. **Guard elision** (`Variant::GuardsNaive`): fused vs threaded on
//!    guard-instrumented builds with no compile-time guard optimization —
//!    the substrate where every per-iteration loop guard survives to
//!    decode time, so the threaded tier's proof-driven elision, hoisting,
//!    and fast-tier strength reduction carry the full optimization burden.
//!    Both engines run the *same program*, so
//!    MIPS is work-normalized: ns divided by the fused engine's retired
//!    instruction count for both columns.
//!
//! Usage: `interp_throughput [--scale test|small|full] [--only a,b]
//! [--engine reference|decoded|fused|threaded] [--reference] [--out PATH]`.
//! `--engine X` times only engine X, after verifying its counters against
//! the reference interpreter (a divergence panics — this is the CI smoke
//! mode). `--reference` is a legacy alias for `--engine reference`. The
//! default times all four engines with interleaved reps and reports the
//! speedup columns. Results are also written as JSON (default
//! `BENCH_interp.json`).

use std::time::Instant;

use carat_bench::{compile, print_table, scale_from_args, selected_workloads, Variant, LOOP_HEAVY};
use carat_ir::Module;
use carat_vm::{Engine, RunResult, Vm, VmConfig};

/// Wall-clock one run; returns (elapsed ns, full run result).
fn time_run(module: Module, engine: Engine) -> (f64, RunResult) {
    let cfg = VmConfig {
        engine,
        ..VmConfig::default()
    };
    let vm = Vm::new(module, cfg).expect("load");
    let start = Instant::now();
    let r = vm.run().expect("run");
    let ns = start.elapsed().as_nanos() as f64;
    (ns, r)
}

/// Best-of-N for all four engines, reps interleaved so a noisy stretch
/// of host time degrades every measurement instead of biasing one.
/// Asserts that every engine retires the same instructions with the same
/// simulated counters — on an uninstrumented build the threaded tier has
/// nothing to elide, so even it must match the reference exactly.
#[allow(clippy::type_complexity)]
fn best_of_quad(module: &Module, reps: usize) -> (f64, f64, f64, f64, u64, f64) {
    let mut best_ref = f64::INFINITY;
    let mut best_dec = f64::INFINITY;
    let mut best_fus = f64::INFINITY;
    let mut best_thr = f64::INFINITY;
    let mut insts = 0;
    let mut fused_fraction = 0.0;
    for _ in 0..reps {
        let (ns, r) = time_run(module.clone(), Engine::Reference);
        best_ref = best_ref.min(ns);
        insts = r.counters.instructions;
        let base = r.counters;
        let (ns, r) = time_run(module.clone(), Engine::Decoded);
        best_dec = best_dec.min(ns);
        assert_eq!(base, r.counters, "decoded engine diverged from reference");
        let (ns, r) = time_run(module.clone(), Engine::Fused);
        best_fus = best_fus.min(ns);
        assert_eq!(base, r.counters, "fused engine diverged from reference");
        fused_fraction = r.fusion.fused_instructions() as f64 / insts.max(1) as f64;
        let (ns, r) = time_run(module.clone(), Engine::Threaded);
        best_thr = best_thr.min(ns);
        assert_eq!(base, r.counters, "threaded engine diverged from reference");
    }
    (
        best_ref,
        best_dec,
        best_fus,
        best_thr,
        insts,
        fused_fraction,
    )
}

/// Time a single engine, best-of-N, after one counter-verification run
/// against the reference interpreter. Panics on divergence.
fn best_of_single(module: &Module, reps: usize, engine: Engine) -> (f64, u64) {
    if engine != Engine::Reference {
        let (_, base) = time_run(module.clone(), Engine::Reference);
        let (_, r) = time_run(module.clone(), engine);
        assert_eq!(
            base.counters, r.counters,
            "{engine:?} engine diverged from reference"
        );
    }
    let mut best = f64::INFINITY;
    let mut insts = 0;
    for _ in 0..reps {
        let (ns, r) = time_run(module.clone(), engine);
        best = best.min(ns);
        insts = r.counters.instructions;
    }
    (best, insts)
}

struct Row {
    name: String,
    insts: u64,
    reference_ns_per_inst: f64,
    decoded_ns_per_inst: f64,
    fused_ns_per_inst: f64,
    threaded_ns_per_inst: f64,
    fused_fraction: f64,
}

impl Row {
    fn mips(ns_per_inst: f64) -> f64 {
        1e3 / ns_per_inst
    }
}

/// One workload of the guard-elision section: fused vs threaded on a
/// `GuardsNaive` build. `work_insts` is the fused engine's retired
/// instruction count — the common denominator for both MIPS columns.
struct GuardRow {
    name: String,
    loop_heavy: bool,
    work_insts: u64,
    fused_ns: f64,
    threaded_ns: f64,
    guards_executed_fused: u64,
    guards_executed_threaded: u64,
    guards_elided: u64,
    guards_hoisted: u64,
}

/// Fused vs threaded on a guard-instrumented module: interleaved
/// best-of-N timing plus a full semantic + guard-accounting check.
///
/// The accounting invariant (checked every rep): every guard the fused
/// stream executes is either executed by the threaded stream too, or
/// counted as elided; hoisted preheader checks are the only additions.
/// `fused.guards == threaded.guards + elided − hoisted`.
fn best_of_guard_pair(module: &Module, reps: usize, name: &str) -> GuardRow {
    let mut best_fus = f64::INFINITY;
    let mut best_thr = f64::INFINITY;
    let mut fus_last: Option<RunResult> = None;
    let mut thr_last: Option<RunResult> = None;
    for _ in 0..reps {
        let (ns, f) = time_run(module.clone(), Engine::Fused);
        best_fus = best_fus.min(ns);
        let (ns, t) = time_run(module.clone(), Engine::Threaded);
        best_thr = best_thr.min(ns);
        assert_eq!(f.ret, t.ret, "{name}: return value diverged");
        assert_eq!(f.output, t.output, "{name}: output diverged");
        assert_eq!(f.counters.loads, t.counters.loads, "{name}: loads");
        assert_eq!(f.counters.stores, t.counters.stores, "{name}: stores");
        assert_eq!(f.counters.calls, t.counters.calls, "{name}: calls");
        assert_eq!(
            f.counters.guards_executed,
            t.counters.guards_executed + t.counters.guards_elided - t.counters.guards_hoisted,
            "{name}: guard accounting broken"
        );
        fus_last = Some(f);
        thr_last = Some(t);
    }
    let f = fus_last.expect("reps >= 1");
    let t = thr_last.expect("reps >= 1");
    GuardRow {
        name: name.to_string(),
        loop_heavy: LOOP_HEAVY.contains(&name),
        work_insts: f.counters.instructions,
        fused_ns: best_fus,
        threaded_ns: best_thr,
        guards_executed_fused: f.counters.guards_executed,
        guards_executed_threaded: t.counters.guards_executed,
        guards_elided: t.counters.guards_elided,
        guards_hoisted: t.counters.guards_hoisted,
    }
}

fn parse_engine(args: &[String]) -> Option<Engine> {
    if args.iter().any(|a| a == "--reference") {
        return Some(Engine::Reference);
    }
    let val = args.windows(2).find(|w| w[0] == "--engine").map(|w| &w[1]);
    match val {
        None => None,
        Some(s) => match Engine::parse(s) {
            Some(e) => Some(e),
            None => {
                eprintln!("error: unknown engine '{s}' (want reference|decoded|fused|threaded)");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let single_engine = parse_engine(&args);
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_interp.json".to_string());
    let scale = scale_from_args();
    let reps = 7;

    let selected = selected_workloads();
    if selected.is_empty() {
        eprintln!("error: --only matched no workloads");
        std::process::exit(2);
    }

    if let Some(engine) = single_engine {
        // A/B and CI smoke mode: one engine, counters verified against
        // the reference interpreter, no JSON artifact. The threaded
        // engine additionally runs the guard-elision check on a
        // GuardsNaive build (its raison d'être — an uninstrumented
        // smoke alone would never execute the elision paths).
        println!("Interpreter throughput ({scale:?} scale, {engine:?} only, best of {reps})\n");
        let mut table = Vec::new();
        for w in &selected {
            let m = compile(w, scale, Variant::Baseline);
            let (ns, insts) = best_of_single(&m, reps, engine);
            let per = ns / insts.max(1) as f64;
            table.push(vec![
                w.name.to_string(),
                format!("{insts}"),
                format!("{per:.1}"),
                format!("{:.1}", Row::mips(per)),
            ]);
        }
        print_table(&["workload", "IR insts", "ns/inst", "MIPS"], &table);
        println!("\ncounters verified against reference: OK");
        if engine == Engine::Threaded {
            let mut elided_total = 0u64;
            for w in &selected {
                let m = compile(w, scale, Variant::GuardsNaive);
                let g = best_of_guard_pair(&m, 1, w.name);
                elided_total += g.guards_elided;
            }
            println!(
                "guard accounting verified on GuardsNaive builds: OK \
                 ({elided_total} guards elided)"
            );
        }
        return;
    }

    println!("Interpreter throughput ({scale:?} scale, best of {reps})\n");
    let mut rows: Vec<Row> = Vec::new();
    for w in &selected {
        let m = compile(w, scale, Variant::Baseline);
        let (ref_ns, dec_ns, fus_ns, thr_ns, insts, fused_fraction) = best_of_quad(&m, reps);
        let per = |ns: f64| ns / insts.max(1) as f64;
        rows.push(Row {
            name: w.name.to_string(),
            insts,
            reference_ns_per_inst: per(ref_ns),
            decoded_ns_per_inst: per(dec_ns),
            fused_ns_per_inst: per(fus_ns),
            threaded_ns_per_inst: per(thr_ns),
            fused_fraction,
        });
    }

    let mut table = Vec::new();
    let mut dec_vs_ref = Vec::new();
    let mut fus_vs_ref = Vec::new();
    let mut fus_vs_dec = Vec::new();
    let mut thr_vs_fus_bare = Vec::new();
    let mut at_least_3x = 0usize;
    for r in &rows {
        let dvr = r.reference_ns_per_inst / r.decoded_ns_per_inst;
        let fvr = r.reference_ns_per_inst / r.fused_ns_per_inst;
        let fvd = r.decoded_ns_per_inst / r.fused_ns_per_inst;
        let tvf = r.fused_ns_per_inst / r.threaded_ns_per_inst;
        if fvr >= 3.0 {
            at_least_3x += 1;
        }
        dec_vs_ref.push(dvr);
        fus_vs_ref.push(fvr);
        fus_vs_dec.push(fvd);
        thr_vs_fus_bare.push(tvf);
        table.push(vec![
            r.name.clone(),
            format!("{}", r.insts),
            format!("{:.1}", r.reference_ns_per_inst),
            format!("{:.1}", r.decoded_ns_per_inst),
            format!("{:.1}", r.fused_ns_per_inst),
            format!("{:.1}", r.threaded_ns_per_inst),
            format!("{:.0}%", r.fused_fraction * 100.0),
            format!("{fvr:.2}x"),
            format!("{tvf:.2}x"),
        ]);
    }
    print_table(
        &[
            "workload", "IR insts", "ref ns/i", "dec ns/i", "fus ns/i", "thr ns/i", "fused",
            "fus/ref", "thr/fus",
        ],
        &table,
    );
    println!(
        "\nGeomean fused speedup {:.2}x vs reference ({:.2}x vs decoded, decoded alone {:.2}x); >=3x on {}/{} workloads",
        carat_bench::geomean(&fus_vs_ref),
        carat_bench::geomean(&fus_vs_dec),
        carat_bench::geomean(&dec_vs_ref),
        at_least_3x,
        rows.len()
    );
    println!(
        "Geomean threaded speedup {:.2}x vs fused on uninstrumented builds (chaining only)",
        carat_bench::geomean(&thr_vs_fus_bare),
    );

    // Guard-elision section: the threaded tier's actual target. Under
    // the generic guard preset the per-iteration loop guards survive to
    // decode time, and the proof-driven elision + hoisting removes them.
    println!("\nGuard elision (GuardsNaive builds, fused vs threaded, best of {reps})\n");
    let mut grows: Vec<GuardRow> = Vec::new();
    for w in &selected {
        let m = compile(w, scale, Variant::GuardsNaive);
        grows.push(best_of_guard_pair(&m, reps, w.name));
    }
    let mut gtable = Vec::new();
    let mut thr_vs_fus_all = Vec::new();
    let mut thr_vs_fus_loop = Vec::new();
    for g in &grows {
        let per = |ns: f64| ns / g.work_insts.max(1) as f64;
        let speedup = g.fused_ns / g.threaded_ns;
        thr_vs_fus_all.push(speedup);
        if g.loop_heavy {
            thr_vs_fus_loop.push(speedup);
        }
        let elided_pct = 100.0 * g.guards_elided as f64 / g.guards_executed_fused.max(1) as f64;
        gtable.push(vec![
            g.name.clone(),
            if g.loop_heavy { "*".into() } else { "".into() },
            format!("{}", g.guards_executed_fused),
            format!("{}", g.guards_elided),
            format!("{}", g.guards_hoisted),
            format!("{elided_pct:.0}%"),
            format!("{:.1}", per(g.fused_ns)),
            format!("{:.1}", per(g.threaded_ns)),
            format!("{speedup:.2}x"),
        ]);
    }
    print_table(
        &[
            "workload", "loop", "guards", "elided", "hoisted", "% gone", "fus ns/i", "thr ns/i",
            "speedup",
        ],
        &gtable,
    );
    println!(
        "\nGeomean threaded speedup vs fused: {:.2}x overall, {:.2}x on the {} loop-heavy workloads",
        carat_bench::geomean(&thr_vs_fus_all),
        carat_bench::geomean(&thr_vs_fus_loop),
        thr_vs_fus_loop.len(),
    );

    // Hand-rolled JSON: no serde in the dependency closure. Legacy
    // field names (decoded vs reference) are preserved so older tooling
    // keeps parsing; fused and threaded columns are additive.
    let mut json = String::from("{\n  \"scale\": \"");
    json.push_str(&format!("{scale:?}"));
    json.push_str("\",\n  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ir_instructions\": {}, \
             \"reference_ns_per_inst\": {:.3}, \"reference_mips\": {:.3}, \
             \"decoded_ns_per_inst\": {:.3}, \"decoded_mips\": {:.3}, \
             \"fused_ns_per_inst\": {:.3}, \"fused_mips\": {:.3}, \
             \"threaded_ns_per_inst\": {:.3}, \"threaded_mips\": {:.3}, \
             \"fused_fraction\": {:.4}, \
             \"speedup\": {:.3}, \"fused_speedup_vs_reference\": {:.3}, \
             \"fused_speedup_vs_decoded\": {:.3}, \
             \"threaded_speedup_vs_fused\": {:.3}}}{}\n",
            r.name,
            r.insts,
            r.reference_ns_per_inst,
            Row::mips(r.reference_ns_per_inst),
            r.decoded_ns_per_inst,
            Row::mips(r.decoded_ns_per_inst),
            r.fused_ns_per_inst,
            Row::mips(r.fused_ns_per_inst),
            r.threaded_ns_per_inst,
            Row::mips(r.threaded_ns_per_inst),
            r.fused_fraction,
            r.reference_ns_per_inst / r.decoded_ns_per_inst,
            r.reference_ns_per_inst / r.fused_ns_per_inst,
            r.decoded_ns_per_inst / r.fused_ns_per_inst,
            r.fused_ns_per_inst / r.threaded_ns_per_inst,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    // The dedup outlier investigation (ISSUE 3 satellite): profiling
    // showed the old per-instruction scheduler rotation scan — not a
    // hashing hot spot — cost dedup ~33% of its host time (16.8 ns/inst,
    // 1.77x). The instruction-quantum scheduler (`VmConfig::sched_quantum`)
    // fixed it; the "after" is dedup's row above.
    let dedup_after = rows.iter().find(|r| r.name == "dedup");
    json.push_str(&format!(
        "  ],\n  \"dedup_outlier_fix\": {{\"before_ns_per_inst\": 16.8, \
         \"before_speedup\": 1.77, \"after_ns_per_inst\": {}, \
         \"cause\": \"per-instruction scheduler rotation scan\", \
         \"fix\": \"instruction-quantum round-robin (sched_quantum)\"}},\n",
        dedup_after
            .map(|r| format!("{:.3}", r.fused_ns_per_inst))
            .unwrap_or_else(|| "null".into()),
    ));
    // Guard-elision section: MIPS here is work-normalized (ns over the
    // fused engine's retired instruction count for both engines).
    json.push_str("  \"guard_elision\": [\n");
    for (i, g) in grows.iter().enumerate() {
        let per = |ns: f64| ns / g.work_insts.max(1) as f64;
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"loop_heavy\": {}, \"work_instructions\": {}, \
             \"guards_executed_fused\": {}, \"guards_executed_threaded\": {}, \
             \"guards_elided\": {}, \"guards_hoisted\": {}, \
             \"fused_ns_per_inst\": {:.3}, \"fused_mips\": {:.3}, \
             \"threaded_ns_per_inst\": {:.3}, \"threaded_mips\": {:.3}, \
             \"threaded_speedup_vs_fused\": {:.3}}}{}\n",
            g.name,
            g.loop_heavy,
            g.work_insts,
            g.guards_executed_fused,
            g.guards_executed_threaded,
            g.guards_elided,
            g.guards_hoisted,
            per(g.fused_ns),
            Row::mips(per(g.fused_ns)),
            per(g.threaded_ns),
            Row::mips(per(g.threaded_ns)),
            g.fused_ns / g.threaded_ns,
            if i + 1 < grows.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"geomean_speedup\": {:.3},\n  \"fused_geomean_vs_reference\": {:.3},\n  \
         \"fused_geomean_vs_decoded\": {:.3},\n  \"workloads_at_3x\": {},\n  \
         \"threaded_geomean_vs_fused_uninstrumented\": {:.3},\n  \
         \"threaded_geomean_vs_fused_guards\": {:.3},\n  \
         \"threaded_geomean_vs_fused_guards_loop_heavy\": {:.3}\n}}\n",
        carat_bench::geomean(&dec_vs_ref),
        carat_bench::geomean(&fus_vs_ref),
        carat_bench::geomean(&fus_vs_dec),
        at_least_3x,
        carat_bench::geomean(&thr_vs_fus_bare),
        carat_bench::geomean(&thr_vs_fus_all),
        carat_bench::geomean(&thr_vs_fus_loop),
    ));
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");
}
