//! Multi-tenant scheduling: N CARAT processes time-sliced on one
//! simulated kernel.
//!
//! The single-process [`Vm`] owns its kernel outright. Here the real
//! kernel is shared, and a descheduled tenant is *not* a parked `Vm`: it
//! is a compact [`TenantState`] (frame stack, thread slots, counters,
//! decoded-code handle) in a slab slot, plus its allocation table checked
//! into the kernel's process table. A context switch goes through
//! [`SimKernel::proc_switch`] — which installs the incoming tenant's
//! guard-region map (CARAT) or page table (traditional) and charges the
//! modeled switch cost into kernel-side [`ProcAccounting`] — and then
//! materializes a `Vm` around the real kernel with O(1) field moves
//! ([`Vm::from_tenant`]). At slice end the `Vm` is dismantled again
//! ([`Vm::into_tenant`]). Nothing scales with fleet size: no per-tenant
//! kernel, no per-tenant decoded program (tenants spawned from one
//! shared module share one decoded copy), no whole-`SimKernel` swap.
//!
//! The accounting split is unchanged: a tenant's own counters never see
//! scheduling charges, so a time-sliced process retires exactly the
//! instruction stream and cycles a sequential run would (the
//! multi-process differential suite pins this down).
//!
//! Isolation is the paper's: in CARAT mode every access is guarded
//! against the owning process's region set, so a stray pointer into
//! another tenant surfaces as a typed [`ProtectionFault`] that kills the
//! offender and leaves every other process running — never a panic.
//! Lifecycle errors are typed too: spawning past the configured
//! [`TenantQuotas`] yields [`VmError::Admission`], and looking up a
//! killed or recycled pid yields [`TenancyError::NoSuchTenant`].

use std::fmt;
use std::rc::Rc;

use crate::counters::PerfCounters;
use crate::decode::DecodedProgram;
use crate::machine::{Mode, RunResult, SliceExit, TenantState, Vm, VmConfig, VmError};
use carat_ir::Module;
use carat_kernel::{
    Pid, ProcAccounting, ProcState, ProtectionFault, SharedId, SimKernel, TenantQuotas,
    POISON_BASE, POISON_SLOT_SPAN,
};
use carat_runtime::{AllocKind, AllocationTable, MemAccess};

/// One tenant to admit into a [`MultiVm`].
pub struct ProcSpec {
    /// Process name (workload name in the benches).
    pub name: String,
    /// Its program.
    pub module: Module,
    /// Its VM configuration (mode, engine, load sizing …).
    pub cfg: VmConfig,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct MultiVmConfig {
    /// Time-slice length in retired instructions. `u64::MAX` degenerates
    /// to running each process to completion in pid order — the
    /// "sequential" arm of the differential tests, on the same kernel
    /// and the same load addresses as the sliced arm.
    pub quantum: u64,
    /// Physical arena of the shared kernel in bytes.
    pub kernel_mem: u64,
    /// Run a memory-pressure compaction pass every this many slices
    /// (0 disables): pick the victim process whose allocation table
    /// carries the most live escapes, and relocate its worst pages with
    /// journaled CARAT moves plus a `page_out` — all while it is
    /// descheduled, charged to its kernel-side accounting.
    pub pressure_every: u64,
    /// Compaction victims relocated per pressure pass (the batch the
    /// kernel's move planner coalesces; clamped to at least 1).
    pub pressure_batch: usize,
    /// Coalesce the pass's moves into ONE world-stop via
    /// [`SimKernel::move_pages_batch`] (default). `false` issues the same
    /// victim list as sequential per-move stops — the slower arm of the
    /// batching differential.
    pub batch_stops: bool,
    /// Host threads for the shared kernel's move engine (1 = serial);
    /// see [`SimKernel::set_move_workers`].
    pub move_workers: usize,
    /// Admission quotas for the fleet (default unlimited): spawns past
    /// the tenant-count or resident-byte ceiling fail with a typed
    /// [`VmError::Admission`] instead of exhausting the kernel arena.
    pub quotas: TenantQuotas,
}

impl Default for MultiVmConfig {
    fn default() -> MultiVmConfig {
        MultiVmConfig {
            quantum: 4096,
            kernel_mem: 512 * 1024 * 1024,
            pressure_every: 0,
            pressure_batch: 1,
            batch_stops: true,
            move_workers: 1,
            quotas: TenantQuotas::default(),
        }
    }
}

/// Typed tenant-lookup failure: the pid does not name a live tenant —
/// never admitted, already killed, or its slab slot was recycled (the
/// generation tag in the pid went stale). Lookups on retired pids return
/// this; they never panic and never alias a successor tenant in the same
/// slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenancyError {
    /// No live tenant answers to this pid.
    NoSuchTenant(Pid),
}

impl fmt::Display for TenancyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenancyError::NoSuchTenant(pid) => write!(f, "no such tenant: {pid}"),
        }
    }
}

impl std::error::Error for TenancyError {}

/// How one tenant ended.
///
/// One value exists per process per run, so the size skew of carrying
/// the full [`RunResult`] inline is irrelevant.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum ProcOutcome {
    /// `main` returned; the full single-process result.
    Finished(RunResult),
    /// Killed by an isolation violation (the typed fault, not a panic).
    Fault(ProtectionFault),
    /// Died on another VM error (step limit, OOM, trap …).
    Error(VmError),
}

/// Final report for one tenant.
#[derive(Debug)]
pub struct ProcReport {
    /// Its pid.
    pub pid: Pid,
    /// Its name.
    pub name: String,
    /// How it ended.
    pub outcome: ProcOutcome,
    /// Kernel-side scheduling/compaction accounting.
    pub accounting: ProcAccounting,
}

/// One slab slot of the fleet: the descheduled execution state plus the
/// scheduler-side facts about the tenant. `state` is `None` only while
/// the tenant is materialized as a `Vm` inside a scheduling operation.
struct Tenant {
    pid: Pid,
    name: String,
    traditional: bool,
    state: Option<TenantState>,
    outcome: Option<ProcOutcome>,
}

/// N processes time-sliced on one shared simulated kernel.
pub struct MultiVm {
    /// The real kernel — parked here between slices, moved into the
    /// scheduled tenant's materialized `Vm` for the duration of its
    /// slice (public for post-run inspection, like [`Vm::kernel`]).
    pub kernel: SimKernel,
    /// ONE reusable placeholder kernel: whenever the real kernel moves
    /// into a `Vm`, this stands in at `self.kernel` so the field is never
    /// empty; it also backs pressure/shared-move materializations of
    /// descheduled tenants. `None` only inside those operations.
    spare: Option<SimKernel>,
    /// Tenant slots, indexed by `pid.index()` — the same slab indices as
    /// the kernel's process table, so both sides recycle in lock-step.
    slots: Vec<Option<Tenant>>,
    /// Decoded-program cache for [`MultiVm::spawn_shared`]: every tenant
    /// spawned from the same `Rc<Module>` shares one decoded copy.
    programs: Vec<(Rc<Module>, Rc<DecodedProgram>)>,
    cfg: MultiVmConfig,
    /// Slices executed so far (drives the pressure cadence across
    /// [`MultiVm::run_batch`] calls).
    slices: u64,
}

impl MultiVm {
    /// Build a fleet over one shared kernel and admit every spec (in pid
    /// order), exactly like calling [`MultiVm::spawn`] for each.
    ///
    /// # Errors
    ///
    /// Loader failures, a module without `main`, or a quota refusal
    /// ([`VmError::Admission`]).
    pub fn new(specs: Vec<ProcSpec>, cfg: MultiVmConfig) -> Result<MultiVm, VmError> {
        let mut kernel = SimKernel::new(cfg.kernel_mem);
        kernel.set_move_workers(cfg.move_workers);
        kernel.set_quotas(cfg.quotas);
        let mut mv = MultiVm {
            kernel,
            spare: Some(SimKernel::placeholder()),
            slots: Vec::new(),
            programs: Vec::new(),
            cfg,
            slices: 0,
        };
        for spec in specs {
            mv.spawn(spec)?;
        }
        Ok(mv)
    }

    /// Number of live tenants (admitted and not yet killed; exited
    /// tenants still count until the fleet is torn down).
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no tenant is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit one tenant: load its module into the shared kernel, decode
    /// its program, register it with the kernel's process table
    /// (admission-checked against the quotas), and park it descheduled
    /// and runnable. O(program + capsule) — nothing about this scales
    /// with the number of tenants already resident.
    ///
    /// # Errors
    ///
    /// Loader failures ([`VmError::Load`]), a module without `main`, or
    /// a quota refusal ([`VmError::Admission`]). Refused spawns roll the
    /// kernel back completely — capsule frames freed, no pid burned.
    pub fn spawn(&mut self, spec: ProcSpec) -> Result<Pid, VmError> {
        let ProcSpec { name, module, cfg } = spec;
        self.admit(&name, Rc::new(module), cfg, false)
    }

    /// Admit one tenant from a shared module: every tenant spawned from
    /// the same `Rc<Module>` shares one decoded program, so a 10k-tenant
    /// fleet of one workload holds ONE decoded copy of its code. Same
    /// admission path and errors as [`MultiVm::spawn`].
    ///
    /// # Errors
    ///
    /// See [`MultiVm::spawn`].
    pub fn spawn_shared(
        &mut self,
        name: &str,
        module: Rc<Module>,
        cfg: VmConfig,
    ) -> Result<Pid, VmError> {
        self.admit(name, module, cfg, true)
    }

    fn admit(
        &mut self,
        name: &str,
        module: Rc<Module>,
        cfg: VmConfig,
        share_program: bool,
    ) -> Result<Pid, VmError> {
        if let Some(plan) = cfg.fault_plan.clone() {
            self.kernel.install_fault_plan(plan);
        }
        let mut table = AllocationTable::new();
        let image = self
            .kernel
            .load_shared(module.clone(), &mut table, cfg.load)?;
        let pid = self.kernel.register_proc(name, image.clone())?;
        self.kernel.procs.checkin_table(pid, table);
        let program = if share_program {
            self.decoded(&module)
        } else {
            Rc::new(DecodedProgram::decode(&module))
        };
        let traditional = cfg.mode == Mode::Traditional;
        // Assemble the tenant around the spare placeholder: `start` only
        // builds host-side frame state, so the real kernel is not needed.
        let spare = self.spare.take().expect("spare kernel parked");
        let mut vm = Vm::assemble(spare, AllocationTable::new(), image, cfg, program);
        let started = vm.start();
        let (spare, _empty, state) = vm.into_tenant();
        self.spare = Some(spare);
        if let Err(e) = started {
            self.kernel.proc_kill(pid);
            return Err(e);
        }
        let idx = pid.index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        debug_assert!(
            self.slots[idx].is_none(),
            "kernel slab and fleet slots recycle in lock-step"
        );
        self.slots[idx] = Some(Tenant {
            pid,
            name: name.to_string(),
            traditional,
            state: Some(state),
            outcome: None,
        });
        Ok(pid)
    }

    /// Look up the shared decoded program for `module`, decoding it on
    /// first sight. Cache entries die with their last tenant (pruned in
    /// [`MultiVm::kill`]).
    fn decoded(&mut self, module: &Rc<Module>) -> Rc<DecodedProgram> {
        for (m, p) in &self.programs {
            if Rc::ptr_eq(m, module) {
                return p.clone();
            }
        }
        let p = Rc::new(DecodedProgram::decode(module));
        self.programs.push((module.clone(), p.clone()));
        p
    }

    /// Kill tenant `pid`: retire its kernel slab slot (generation bump —
    /// every outstanding copy of the pid goes stale), free its capsule
    /// frames, and drop its descheduled state. Returns `false` for a
    /// stale pid — killing twice is a no-op, never a panic.
    pub fn kill(&mut self, pid: Pid) -> bool {
        let live = self
            .slots
            .get(pid.index())
            .and_then(|s| s.as_ref())
            .is_some_and(|t| t.pid == pid);
        if !live {
            return false;
        }
        self.kernel.proc_kill(pid);
        self.slots[pid.index()] = None;
        // Drop decoded programs whose last tenant just died (the cache
        // holds the only remaining module handle).
        self.programs.retain(|(m, _)| Rc::strong_count(m) > 1);
        true
    }

    fn tenant(&self, pid: Pid) -> Result<&Tenant, TenancyError> {
        self.slots
            .get(pid.index())
            .and_then(|s| s.as_ref())
            .filter(|t| t.pid == pid)
            .ok_or(TenancyError::NoSuchTenant(pid))
    }

    /// The live performance counters of tenant `pid` (the differential
    /// comparison target — kernel-side scheduling charges never appear
    /// here).
    ///
    /// # Errors
    ///
    /// [`TenancyError::NoSuchTenant`] for a killed or recycled pid.
    pub fn counters(&self, pid: Pid) -> Result<&PerfCounters, TenancyError> {
        Ok(self
            .tenant(pid)?
            .state
            .as_ref()
            .expect("descheduled tenant holds its state")
            .counters())
    }

    /// Host bytes pinned by tenant `pid` while descheduled — the fleet
    /// bench's per-tenant memory-overhead metric. Capsule bytes live in
    /// kernel physical memory and the decoded program is shared, so this
    /// is the true marginal cost of keeping one more tenant parked.
    ///
    /// # Errors
    ///
    /// [`TenancyError::NoSuchTenant`] for a killed or recycled pid.
    pub fn descheduled_bytes(&self, pid: Pid) -> Result<usize, TenancyError> {
        Ok(self
            .tenant(pid)?
            .state
            .as_ref()
            .expect("descheduled tenant holds its state")
            .footprint_bytes())
    }

    /// Create a shared memory block of at least `len` bytes (page
    /// aligned up), mapped into no process yet.
    ///
    /// # Errors
    ///
    /// [`VmError::Kernel`] when no frames are left.
    pub fn shared_create(&mut self, len: u64) -> Result<SharedId, VmError> {
        Ok(self.kernel.shared_create(len)?)
    }

    /// Map shared block `id` into process `pid`'s region set and publish
    /// its base pointer into the storage of that process's global
    /// `global` — the block becomes a tracked allocation in the owner's
    /// table and the global's cell a registered escape, so a later
    /// kernel move of the block patches this owner's pointer too.
    pub fn shared_map(&mut self, pid: Pid, id: SharedId, global: usize) {
        self.kernel.shared_map(pid, id);
        let (base, len) = {
            let s = self.kernel.procs.shared(id).expect("live shared id");
            (s.base, s.len)
        };
        let cell = self
            .tenant(pid)
            .expect("live tenant")
            .state
            .as_ref()
            .expect("descheduled tenant holds its state")
            .image()
            .globals[global];
        self.kernel.mem.write_uint(cell, base, 8);
        let mut table = self
            .kernel
            .procs
            .checkout_table(pid)
            .expect("shared_map between slices: table checked in");
        // Kernel-side setup, not guest instrumentation: track and resolve
        // directly against the table, charging the guest nothing.
        table.track_alloc(base, len, AllocKind::Heap);
        table.track_escape(cell);
        let mem = &self.kernel.mem;
        table.flush_escapes(|c| mem.read_u64(c));
        self.kernel.procs.checkin_table(pid, table);
    }

    /// Move shared block `id` to a fresh location in one world stop:
    /// every owner's escapes, dumped registers, heap bookkeeping, and
    /// guard-region map are patched. Callable between slices (every
    /// process quiesced). Returns the new base.
    ///
    /// # Errors
    ///
    /// Transactional: a typed kernel error (frame exhaustion, injected
    /// mid-move fault …) leaves every owner byte-identical to the
    /// pre-call state and is retryable.
    pub fn move_shared(&mut self, id: SharedId) -> Result<u64, VmError> {
        let owners = {
            let s = self.kernel.procs.shared(id).expect("live shared id");
            s.owners.clone()
        };
        // Quiesced by construction: escapes were flushed when each owner
        // was descheduled, and setup escapes were resolved eagerly. Each
        // owner is materialized briefly (O(1) field moves around the
        // spare kernel) to dump and later patch its registers.
        let mut regs: Vec<u64> = Vec::new();
        let mut spans = Vec::with_capacity(owners.len());
        let mut threads = 0usize;
        for &pid in &owners {
            let (vm, _slot) = self.materialize(pid);
            let (r, map) = vm.snapshot_regs();
            spans.push((pid, regs.len(), r.len(), map));
            regs.extend(r);
            threads += vm.live_threads();
            self.park(pid, vm);
        }
        let (_world, outcome) = self.kernel.move_shared(id, &mut regs, threads)?;
        let delta = outcome.moved_dst.wrapping_sub(outcome.moved_src) as i64;
        for (pid, off, n, map) in &spans {
            let (mut vm, _slot) = self.materialize(*pid);
            vm.writeback_regs(&regs[*off..*off + *n], map);
            vm.apply_relocation(outcome.moved_src, outcome.moved_len, delta);
            self.park(*pid, vm);
        }
        Ok(self.kernel.procs.shared(id).expect("live shared id").base)
    }

    /// Materialize descheduled tenant `pid` around the spare placeholder
    /// kernel and an empty table — for kernel-side work on its host
    /// state (register dumps, relocation patching) while the real kernel
    /// stays home. Pure field moves. Pair with [`MultiVm::park`].
    fn materialize(&mut self, pid: Pid) -> (Vm, usize) {
        let idx = pid.index();
        let state = self.slots[idx]
            .as_mut()
            .expect("live tenant")
            .state
            .take()
            .expect("descheduled tenant holds its state");
        let spare = self.spare.take().expect("spare kernel parked");
        (Vm::from_tenant(spare, AllocationTable::new(), state), idx)
    }

    /// Undo [`MultiVm::materialize`]: park the tenant state back in its
    /// slot and the spare kernel back in the scheduler.
    fn park(&mut self, pid: Pid, vm: Vm) {
        let (spare, _empty, state) = vm.into_tenant();
        self.spare = Some(spare);
        self.slots[pid.index()].as_mut().expect("live tenant").state = Some(state);
    }

    /// Run ONE time slice for tenant `pid`: context-switch the kernel's
    /// view (regions or page table — the modeled cost lands in kernel
    /// accounting), materialize the tenant around the real kernel, run
    /// up to the quantum, dismantle, and record any terminal outcome.
    fn run_one_slice(&mut self, pid: Pid) {
        let idx = pid.index();
        let traditional = self.slots[idx]
            .as_ref()
            .expect("scheduled tenant")
            .traditional;
        self.kernel.proc_switch(pid, traditional);
        let table = self
            .kernel
            .procs
            .checkout_table(pid)
            .expect("descheduled process holds its table");
        let state = self.slots[idx]
            .as_mut()
            .expect("scheduled tenant")
            .state
            .take()
            .expect("descheduled tenant holds its state");
        // The real kernel moves into the tenant's Vm; the spare
        // placeholder stands in at `self.kernel` for the slice.
        let spare = self.spare.take().expect("spare kernel parked");
        let kernel = std::mem::replace(&mut self.kernel, spare);
        let mut vm = Vm::from_tenant(kernel, table, state);
        let res = vm.run_slice(self.cfg.quantum);
        // Fold the final result while the real kernel and table are
        // still in the VM (the flush and audit need them).
        let done = match res {
            Ok(SliceExit::Quantum) => None,
            Ok(SliceExit::Finished(v)) => Some(ProcOutcome::Finished(vm.finish_run(v))),
            // Typed isolation violation: recorded below, after the
            // kernel is home (it owns the process table).
            Err(VmError::GuardFault { addr, len, write }) => {
                Some(ProcOutcome::Fault(ProtectionFault {
                    pid,
                    addr,
                    len,
                    write,
                }))
            }
            Err(e) => Some(ProcOutcome::Error(e)),
        };
        // Flush the slice's pending escapes (so a cross-process move
        // while descheduled sees every pointer cell), then dismantle.
        vm.flush_escapes();
        let (kernel, table, state) = vm.into_tenant();
        self.spare = Some(std::mem::replace(&mut self.kernel, kernel));
        self.kernel.procs.checkin_table(pid, table);
        self.slots[idx].as_mut().expect("scheduled tenant").state = Some(state);
        if let Some(outcome) = done {
            match &outcome {
                ProcOutcome::Fault(f) => {
                    self.kernel
                        .procs
                        .record_protection_fault(pid, f.addr, f.len, f.write);
                }
                ProcOutcome::Finished(rr) => {
                    self.kernel.procs.set_state(pid, ProcState::Exited(rr.ret));
                }
                ProcOutcome::Error(_) => {
                    // Dead either way; `Exited(-1)` retires the pid so
                    // the scheduler never picks it again.
                    self.kernel.procs.set_state(pid, ProcState::Exited(-1));
                }
            }
            self.slots[idx].as_mut().expect("scheduled tenant").outcome = Some(outcome);
        }
        self.slices += 1;
        if self.cfg.pressure_every != 0 && self.slices.is_multiple_of(self.cfg.pressure_every) {
            self.pressure_pass();
        }
    }

    /// Run up to `max_slices` time slices (run-queue order), stopping
    /// early when no tenant is runnable. Returns the slices executed —
    /// the incremental driver behind [`MultiVm::run`], and the fleet
    /// bench's probe for steady-state per-slice cost: spawn/kill between
    /// batches, then keep slicing.
    pub fn run_batch(&mut self, max_slices: u64) -> u64 {
        let mut ran = 0u64;
        while ran < max_slices {
            let Some(pid) = self.kernel.procs.next_runnable() else {
                break;
            };
            self.run_one_slice(pid);
            ran += 1;
        }
        ran
    }

    /// Round-robin every runnable process to completion (or death) and
    /// report per-process outcomes. Infallible: every per-process error
    /// is captured in its report — an isolation violation in one tenant
    /// never stops the others. Tenants removed by [`MultiVm::kill`] are
    /// not reported; everyone else is, in slot (spawn) order.
    pub fn run(mut self) -> Vec<ProcReport> {
        self.run_batch(u64::MAX);
        self.reports()
    }

    /// Background compaction under memory pressure: pick the victim with
    /// the most live escapes and relocate its worst page (journaled CARAT
    /// move) plus page its most-escaped allocation out. Kernel work on a
    /// descheduled tenant — charged to its [`ProcAccounting`], never its
    /// own counters. Recoverable kernel errors (frame exhaustion, world
    /// stops, injected faults) skip the pass; the kernel's transactional
    /// guarantees keep the victim intact.
    fn pressure_pass(&mut self) {
        let Some(victim) = self.kernel.procs.pick_compaction_victim() else {
            return;
        };
        // Compaction is a CARAT mechanism: moves rely on the victim's
        // tracking state and page-outs on its guards to page data back
        // in. A traditional-mode tenant has neither; leave it alone.
        let traditional = self.slots[victim.index()]
            .as_ref()
            .expect("victim is live")
            .traditional;
        if traditional {
            return;
        }
        // Install the victim's region map: the move retargets the live
        // master list.
        self.kernel.proc_switch(victim, traditional);
        let Some(mut table) = self.kernel.procs.checkout_table(victim) else {
            return;
        };
        let (mut moves, mut outs, mut cycles) = (0u64, 0u64, 0u64);
        // The victim's host state (registers, TLB, heap bookkeeping) is
        // patched through a brief materialization on the spare kernel;
        // the real kernel stays home and drives the moves.
        let (mut vm, _idx) = self.materialize(victim);
        let threads = vm.live_threads();
        // The move planner picks up to `pressure_batch` victim pages; the
        // batched arm coalesces them into one world-stop, the sequential
        // arm walks the same list with a stop per move.
        let victims = self
            .kernel
            .worst_pages(&table, self.cfg.pressure_batch.max(1));
        if self.cfg.batch_stops {
            if !victims.is_empty() {
                let reqs: Vec<(u64, u64)> = victims.iter().map(|&p| (p, 1)).collect();
                let (mut regs, map) = vm.snapshot_regs();
                if let Ok((world, outcomes)) = self
                    .kernel
                    .move_pages_batch(&mut table, &mut regs, &reqs, threads)
                {
                    vm.writeback_regs(&regs, &map);
                    cycles += world.cycles;
                    for outcome in &outcomes {
                        let delta = outcome.moved_dst.wrapping_sub(outcome.moved_src) as i64;
                        vm.apply_relocation(outcome.moved_src, outcome.moved_len, delta);
                        moves += 1;
                        cycles += outcome.cost.total();
                    }
                }
            }
        } else {
            for &page in &victims {
                let (mut regs, map) = vm.snapshot_regs();
                if let Ok((world, outcome)) = self
                    .kernel
                    .move_pages(&mut table, &mut regs, page, 1, threads)
                {
                    vm.writeback_regs(&regs, &map);
                    let delta = outcome.moved_dst.wrapping_sub(outcome.moved_src) as i64;
                    vm.apply_relocation(outcome.moved_src, outcome.moved_len, delta);
                    moves += 1;
                    cycles += world.cycles + outcome.cost.total();
                }
            }
        }
        let page_size = self.kernel.cost.page_size;
        let target = table
            .snapshot()
            .into_iter()
            .filter(|&(start, _, _, _)| !SimKernel::is_poison(start))
            .max_by_key(|&(_, _, escapes_live, _)| escapes_live)
            .map(|(start, _, _, _)| start / page_size * page_size);
        if let Some(page) = target {
            let (mut regs, map) = vm.snapshot_regs();
            if let Ok(Some((world, slot, src, len))) =
                self.kernel.page_out(&mut table, &mut regs, page, threads)
            {
                vm.writeback_regs(&regs, &map);
                let base = POISON_BASE + slot * POISON_SLOT_SPAN;
                vm.apply_relocation(src, len, base.wrapping_sub(src) as i64);
                outs += 1;
                cycles += world.cycles;
            }
        }
        self.park(victim, vm);
        self.kernel.procs.checkin_table(victim, table);
        if let Some(e) = self.kernel.procs.get_mut(victim) {
            e.accounting.pressure_moves += moves;
            e.accounting.pressure_page_outs += outs;
            e.accounting.compaction_cycles += cycles;
        }
    }

    fn reports(mut self) -> Vec<ProcReport> {
        let mut reports = Vec::new();
        for slot in self.slots.drain(..) {
            let Some(tenant) = slot else { continue };
            let e = self
                .kernel
                .procs
                .get(tenant.pid)
                .expect("live tenant is registered");
            reports.push(ProcReport {
                pid: tenant.pid,
                name: tenant.name,
                outcome: tenant.outcome.unwrap_or(ProcOutcome::Error(VmError::Trap(
                    "process never completed a slice".into(),
                ))),
                accounting: e.accounting,
            });
        }
        reports
    }
}
