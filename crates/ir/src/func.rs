//! Functions and basic blocks.

use crate::inst::{BlockId, Inst, ValueId};
use crate::types::Type;

/// How a value came to exist.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueDef {
    /// The `index`-th formal parameter.
    Arg {
        /// Parameter position.
        index: u32,
        /// Parameter type.
        ty: Type,
    },
    /// Result of (or placeholder for) an instruction placed in `block`.
    Inst {
        /// The instruction.
        inst: Inst,
        /// The block the instruction lives in.
        block: BlockId,
    },
}

/// A basic block: a straight-line run of instructions ending in a terminator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// Human-readable label (unique within the function).
    pub name: String,
    /// Instruction sequence, as [`ValueId`]s into the function's arena.
    pub insts: Vec<ValueId>,
}

/// A function: parameters, a return type, and a CFG of basic blocks over an
/// arena of values.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (unique within the module).
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type, or `None` for void.
    pub ret: Option<Type>,
    blocks: Vec<Block>,
    values: Vec<ValueDef>,
}

impl Function {
    /// Create an empty function (no blocks yet). Parameters are
    /// pre-registered as the first `params.len()` values.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret: Option<Type>) -> Function {
        let values = params
            .iter()
            .enumerate()
            .map(|(i, ty)| ValueDef::Arg {
                index: i as u32,
                ty: ty.clone(),
            })
            .collect();
        Function {
            name: name.into(),
            params,
            ret,
            blocks: Vec::new(),
            values,
        }
    }

    /// The value representing formal parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn arg(&self, i: usize) -> ValueId {
        assert!(i < self.params.len(), "argument index out of range");
        ValueId(i as u32)
    }

    /// The entry block (the first block added).
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks.
    pub fn entry(&self) -> BlockId {
        assert!(
            !self.blocks.is_empty(),
            "function {} has no blocks",
            self.name
        );
        BlockId(0)
    }

    /// Append a new, empty block.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            name: name.into(),
            insts: Vec::new(),
        });
        id
    }

    /// All block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of values in the arena (args + instructions).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Borrow a block.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutably borrow a block.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Borrow a value definition.
    pub fn def(&self, v: ValueId) -> &ValueDef {
        &self.values[v.index()]
    }

    /// The instruction behind `v`, or `None` if `v` is an argument.
    pub fn inst(&self, v: ValueId) -> Option<&Inst> {
        match &self.values[v.index()] {
            ValueDef::Inst { inst, .. } => Some(inst),
            ValueDef::Arg { .. } => None,
        }
    }

    /// Mutable access to the instruction behind `v`.
    pub fn inst_mut(&mut self, v: ValueId) -> Option<&mut Inst> {
        match &mut self.values[v.index()] {
            ValueDef::Inst { inst, .. } => Some(inst),
            ValueDef::Arg { .. } => None,
        }
    }

    /// The block containing the instruction `v`, or `None` for arguments.
    pub fn block_of(&self, v: ValueId) -> Option<BlockId> {
        match &self.values[v.index()] {
            ValueDef::Inst { block, .. } => Some(*block),
            ValueDef::Arg { .. } => None,
        }
    }

    /// Register `inst` in the arena and append it to block `b`.
    pub fn append(&mut self, b: BlockId, inst: Inst) -> ValueId {
        let id = self.push_value(inst, b);
        self.blocks[b.index()].insts.push(id);
        id
    }

    /// Register `inst` in the arena and insert it into block `b` at
    /// position `pos` (index into the block's instruction list).
    ///
    /// # Panics
    ///
    /// Panics if `pos > len`.
    pub fn insert_at(&mut self, b: BlockId, pos: usize, inst: Inst) -> ValueId {
        let id = self.push_value(inst, b);
        self.blocks[b.index()].insts.insert(pos, id);
        id
    }

    /// Insert `inst` immediately before the existing instruction `before`
    /// within its block.
    ///
    /// # Panics
    ///
    /// Panics if `before` is not an instruction present in its block's list.
    pub fn insert_before(&mut self, before: ValueId, inst: Inst) -> ValueId {
        let b = self
            .block_of(before)
            .expect("insert_before target must be an instruction");
        let pos = self.blocks[b.index()]
            .insts
            .iter()
            .position(|&v| v == before)
            .expect("instruction not found in its block");
        self.insert_at(b, pos, inst)
    }

    /// Remove instruction `v` from its block's list. The arena slot remains
    /// (ids are stable) but the instruction no longer executes.
    pub fn remove_from_block(&mut self, v: ValueId) {
        if let Some(b) = self.block_of(v) {
            self.blocks[b.index()].insts.retain(|&x| x != v);
        }
    }

    /// Move instruction `v` to block `to` at position `pos`, updating its
    /// recorded block. Used by guard hoisting.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an instruction or `pos` is out of range.
    pub fn move_inst(&mut self, v: ValueId, to: BlockId, pos: usize) {
        self.remove_from_block(v);
        match &mut self.values[v.index()] {
            ValueDef::Inst { block, .. } => *block = to,
            ValueDef::Arg { .. } => panic!("cannot move an argument"),
        }
        self.blocks[to.index()].insts.insert(pos, v);
    }

    fn push_value(&mut self, inst: Inst, block: BlockId) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueDef::Inst { inst, block });
        id
    }

    /// Replace this function's arena and block contents with parsed data.
    ///
    /// Used by the textual parser to reconstruct a function whose value ids
    /// must match the printed ids exactly. `values` holds the defs for ids
    /// `params.len()..`, and `block_lists[i]` the instruction sequence of
    /// block `i` (which must already exist).
    ///
    /// # Panics
    ///
    /// Panics if `block_lists` does not match the number of blocks.
    pub fn install_parsed(&mut self, values: Vec<ValueDef>, block_lists: Vec<Vec<ValueId>>) {
        assert_eq!(
            block_lists.len(),
            self.blocks.len(),
            "block list count mismatch"
        );
        self.values.truncate(self.params.len());
        self.values.extend(values);
        for (b, insts) in self.blocks.iter_mut().zip(block_lists) {
            b.insts = insts;
        }
    }

    /// The terminator of block `b`, if its last instruction is one.
    pub fn terminator(&self, b: BlockId) -> Option<&Inst> {
        let last = *self.blocks[b.index()].insts.last()?;
        let inst = self.inst(last)?;
        inst.is_terminator().then_some(inst)
    }

    /// Successor blocks of `b`.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        self.terminator(b).map(Inst::successors).unwrap_or_default()
    }

    /// Compute the predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.successors(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// The type of value `v`, resolving operand-dependent instructions
    /// (integer binops, selects) through their operands.
    ///
    /// Returns `None` for void-producing instructions.
    pub fn value_type(&self, v: ValueId) -> Option<Type> {
        match &self.values[v.index()] {
            ValueDef::Arg { ty, .. } => Some(ty.clone()),
            ValueDef::Inst { inst, .. } => match inst {
                Inst::Bin { op, lhs, .. } if !op.is_float() => self.value_type(*lhs),
                Inst::Select { if_true, .. } => self.value_type(*if_true),
                other => other.result_ty(),
            },
        }
    }

    /// Iterate over `(BlockId, ValueId, &Inst)` for every instruction in
    /// layout order.
    pub fn insts_in_layout_order(&self) -> impl Iterator<Item = (BlockId, ValueId, &Inst)> + '_ {
        self.block_ids().flat_map(move |b| {
            self.block(b)
                .insts
                .iter()
                .filter_map(move |&v| self.inst(v).map(|inst| (b, v, inst)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Const};
    use crate::types::IntTy;

    fn sample() -> Function {
        let mut f = Function::new("f", vec![Type::I64, Type::I64], Some(Type::I64));
        let bb = f.add_block("entry");
        let a = f.arg(0);
        let b = f.arg(1);
        let sum = f.append(
            bb,
            Inst::Bin {
                op: BinOp::Add,
                lhs: a,
                rhs: b,
            },
        );
        f.append(bb, Inst::Ret { value: Some(sum) });
        f
    }

    #[test]
    fn args_are_first_values() {
        let f = sample();
        assert_eq!(f.arg(0), ValueId(0));
        assert_eq!(f.arg(1), ValueId(1));
        assert_eq!(f.value_type(f.arg(0)), Some(Type::I64));
        assert!(f.inst(f.arg(0)).is_none());
    }

    #[test]
    fn append_and_terminator() {
        let f = sample();
        let bb = f.entry();
        assert_eq!(f.block(bb).insts.len(), 2);
        assert!(matches!(f.terminator(bb), Some(Inst::Ret { .. })));
        assert!(f.successors(bb).is_empty());
    }

    #[test]
    fn int_binop_type_follows_operands() {
        let f = sample();
        let sum = f.block(f.entry()).insts[0];
        assert_eq!(f.value_type(sum), Some(Type::I64));
    }

    #[test]
    fn insert_before_places_correctly() {
        let mut f = sample();
        let bb = f.entry();
        let ret = *f.block(bb).insts.last().unwrap();
        let c = f.insert_before(ret, Inst::Const(Const::Int(7, IntTy::I64)));
        let insts = &f.block(bb).insts;
        assert_eq!(insts.len(), 3);
        assert_eq!(insts[1], c);
        assert_eq!(insts[2], ret);
    }

    #[test]
    fn remove_from_block_keeps_arena() {
        let mut f = sample();
        let bb = f.entry();
        let sum = f.block(bb).insts[0];
        f.remove_from_block(sum);
        assert_eq!(f.block(bb).insts.len(), 1);
        assert!(f.inst(sum).is_some(), "arena slot survives removal");
    }

    #[test]
    fn predecessors_of_diamond() {
        let mut f = Function::new("g", vec![Type::I1], None);
        let e = f.add_block("entry");
        let t = f.add_block("t");
        let fl = f.add_block("f");
        let j = f.add_block("join");
        let cond = f.arg(0);
        f.append(
            e,
            Inst::Br {
                cond,
                if_true: t,
                if_false: fl,
            },
        );
        f.append(t, Inst::Jmp { target: j });
        f.append(fl, Inst::Jmp { target: j });
        f.append(j, Inst::Ret { value: None });
        let preds = f.predecessors();
        assert_eq!(preds[j.index()], vec![t, fl]);
        assert_eq!(preds[e.index()], Vec::<BlockId>::new());
    }
}
