//! Run every table/figure binary's logic (convenience driver for
//! regenerating EXPERIMENTS.md numbers). Each experiment is also
//! available as its own binary; see DESIGN.md.
//!
//! `--jobs N` runs up to N experiments concurrently (output is captured
//! and printed in the original order); other flags are passed through.

use std::process::Command;
use std::sync::Mutex;

/// One spawnable experiment: binary name plus extra leading args.
struct Job {
    exe: &'static str,
    prefix: &'static [&'static str],
}

fn main() {
    let exes = [
        "fig2_dtlb_misses",
        "table1_guard_opts",
        "fig3_guard_overhead",
        "fig4_region_guards",
        "table2_paging_rates",
        "fig5_escape_histogram",
        "fig6_memory_overhead",
        "fig7_tracking_overhead",
        "fig9_move_overhead",
        "table3_move_breakdown",
        "region_fragmentation",
        "fault_overhead",
        "multiproc_isolation",
        "move_parallel",
        "fleet_scaling",
        "chaos_soak",
    ];
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = match args.iter().position(|a| a == "--jobs") {
        Some(i) if i + 1 < args.len() => {
            let n = args[i + 1].parse::<usize>().unwrap_or(1).max(1);
            args.drain(i..=i + 1);
            n
        }
        Some(i) => {
            args.remove(i);
            1
        }
        None => 1,
    };
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir").to_path_buf();

    let mut queue: Vec<Job> = Vec::new();
    for exe in exes {
        if exe == "fig3_guard_overhead" {
            // Two sub-figures, each its own job.
            queue.push(Job {
                exe,
                prefix: &["general"],
            });
            queue.push(Job {
                exe,
                prefix: &["carat"],
            });
        } else {
            queue.push(Job { exe, prefix: &[] });
        }
    }

    // Work-stealing pool over scoped threads: each worker claims the next
    // unclaimed job; outputs are stored by index and printed in order.
    type JobOutput = (bool, Vec<u8>, Vec<u8>);
    let next = Mutex::new(0usize);
    let results: Vec<Mutex<Option<JobOutput>>> = queue.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.min(queue.len()) {
            s.spawn(|| loop {
                let i = {
                    let mut n = next.lock().expect("queue lock");
                    if *n >= queue.len() {
                        return;
                    }
                    *n += 1;
                    *n - 1
                };
                let job = &queue[i];
                let mut cmd_args: Vec<String> = job.prefix.iter().map(|s| s.to_string()).collect();
                cmd_args.extend(args.iter().cloned());
                let out = Command::new(dir.join(job.exe))
                    .args(&cmd_args)
                    .output()
                    .expect("spawn");
                *results[i].lock().expect("result lock") =
                    Some((out.status.success(), out.stdout, out.stderr));
            });
        }
    });

    let mut failed = Vec::new();
    for (job, slot) in queue.iter().zip(&results) {
        let title: String = std::iter::once(job.exe)
            .chain(job.prefix.iter().copied())
            .collect::<Vec<_>>()
            .join(" ");
        println!("\n=== {title} ===\n");
        let (ok, stdout, stderr) = slot
            .lock()
            .expect("result lock")
            .take()
            .expect("every job ran");
        print!("{}", String::from_utf8_lossy(&stdout));
        eprint!("{}", String::from_utf8_lossy(&stderr));
        if !ok {
            failed.push(title);
        }
    }
    assert!(failed.is_empty(), "experiments failed: {failed:?}");
    println!("\nAll experiments completed.");
}
