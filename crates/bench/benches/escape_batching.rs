//! Ablation: batched vs immediate escape processing (the prototype batches
//! escape-map maintenance; the Allocation Map updates immediately).

use carat_runtime::{AllocKind, AllocationTable};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;

const EVENTS: u64 = 8192;

fn run(batch: u64) -> u64 {
    let mut t = AllocationTable::new();
    for i in 0..64u64 {
        t.track_alloc(0x100000 + i * 0x1000, 0x1000, AllocKind::Heap);
    }
    // Memory image: cell i holds a pointer into allocation i % 64.
    let mem: HashMap<u64, u64> = (0..EVENTS)
        .map(|i| (0x900000 + i * 8, 0x100000 + (i % 64) * 0x1000 + 64))
        .collect();
    let mut resolved = 0;
    for i in 0..EVENTS {
        t.track_escape(0x900000 + i * 8);
        if t.pending_escapes() as u64 >= batch {
            resolved += t.flush_escapes(|c| mem[&c]);
        }
    }
    resolved += t.flush_escapes(|c| mem[&c]);
    resolved as u64
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("escape_batching");
    for &batch in &[1u64, 16, 64, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| run(batch))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
