//! MMU-notifier-style paging event trace (paper §3, "Typical Mappings
//! Change Slowly with Time").
//!
//! The feasibility study instruments Linux with an MMU-notifier kernel
//! module to count page allocations and page moves; this is the simulated
//! kernel's equivalent, feeding Table 2.

use carat_runtime::FastSet;

/// One paging event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagingEvent {
    /// A physical page was allocated (demand paging, CoW resolution,
    /// initial load…). `page` is the page-aligned address (CARAT) or VPN
    /// (traditional).
    Alloc {
        /// Page identifier.
        page: u64,
    },
    /// A page's contents moved to a different physical page.
    Move {
        /// Source page.
        from: u64,
        /// Destination page.
        to: u64,
    },
    /// A TLB-invalidation-style event over a page range.
    Invalidate {
        /// First page.
        first: u64,
        /// Number of pages.
        count: u64,
    },
}

/// Event counters plus a bounded event log.
#[derive(Debug, Clone, Default)]
pub struct PagingTrace {
    /// Total page allocations.
    pub allocs: u64,
    /// Total page moves.
    pub moves: u64,
    /// Total invalidation events.
    pub invalidations: u64,
    /// Distinct pages ever allocated.
    touched: FastSet<u64>,
    log: Vec<PagingEvent>,
    log_cap: usize,
}

impl PagingTrace {
    /// Trace keeping at most `log_cap` raw events (counters are exact
    /// regardless).
    pub fn new(log_cap: usize) -> PagingTrace {
        PagingTrace {
            log_cap,
            ..PagingTrace::default()
        }
    }

    /// Record an event.
    pub fn record(&mut self, e: PagingEvent) {
        match e {
            PagingEvent::Alloc { page } => {
                self.allocs += 1;
                self.touched.insert(page);
            }
            PagingEvent::Move { .. } => self.moves += 1,
            PagingEvent::Invalidate { .. } => self.invalidations += 1,
        }
        if self.log.len() < self.log_cap {
            self.log.push(e);
        }
    }

    /// Record an allocation only the first time `page` is touched;
    /// returns whether it was new (a demand-paging "fault").
    pub fn record_first_touch(&mut self, page: u64) -> bool {
        if self.touched.contains(&page) {
            return false;
        }
        self.record(PagingEvent::Alloc { page });
        true
    }

    /// Distinct pages allocated.
    pub fn distinct_pages(&self) -> usize {
        self.touched.len()
    }

    /// The retained event log.
    pub fn log(&self) -> &[PagingEvent] {
        &self.log
    }

    /// Allocation rate given elapsed simulated seconds.
    pub fn alloc_rate(&self, seconds: f64) -> f64 {
        if seconds > 0.0 {
            self.allocs as f64 / seconds
        } else {
            0.0
        }
    }

    /// Move rate given elapsed simulated seconds.
    pub fn move_rate(&self, seconds: f64) -> f64 {
        if seconds > 0.0 {
            self.moves as f64 / seconds
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_log() {
        let mut t = PagingTrace::new(2);
        t.record(PagingEvent::Alloc { page: 1 });
        t.record(PagingEvent::Alloc { page: 2 });
        t.record(PagingEvent::Move { from: 1, to: 3 });
        assert_eq!(t.allocs, 2);
        assert_eq!(t.moves, 1);
        assert_eq!(t.log().len(), 2, "log capped");
        assert_eq!(t.distinct_pages(), 2);
    }

    #[test]
    fn first_touch_counts_once() {
        let mut t = PagingTrace::new(0);
        assert!(t.record_first_touch(7));
        assert!(!t.record_first_touch(7));
        assert!(t.record_first_touch(8));
        assert_eq!(t.allocs, 2);
    }

    #[test]
    fn rates() {
        let mut t = PagingTrace::new(0);
        for p in 0..100 {
            t.record_first_touch(p);
        }
        assert!((t.alloc_rate(10.0) - 10.0).abs() < 1e-9);
        assert_eq!(t.move_rate(10.0), 0.0);
        assert_eq!(t.alloc_rate(0.0), 0.0, "no division by zero");
    }
}
