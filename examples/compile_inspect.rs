//! Compiler-pipeline inspection: print the IR of a small function before
//! and after CARAT instrumentation and optimization, to see exactly what
//! guard injection, hoisting, merging and AC/DC do.
//!
//! ```sh
//! cargo run --example compile_inspect
//! ```

use carat_core::{count_guards, CaratCompiler, CompileOptions, OptPreset};
use carat_frontend::compile_cm;
use carat_ir::print_module;
use carat_vm::{Vm, VmConfig};

const PROGRAM: &str = r#"
double dot(double* xs, double* ys, int n) {
    double acc = 0.0;
    for (int i = 0; i < n; i += 1) {
        acc += xs[i] * ys[i];
    }
    return acc;
}
int main() {
    double* xs = (double*) malloc(512 * sizeof(double));
    double* ys = (double*) malloc(512 * sizeof(double));
    for (int i = 0; i < 512; i += 1) { xs[i] = 1.0; ys[i] = 2.0; }
    double d = dot(xs, ys, 512);
    free(xs); free(ys);
    return (int) d;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = compile_cm("inspect", PROGRAM)?;
    println!("==== front-end output ====\n");
    println!("{}", print_module(&module));

    let naive =
        CaratCompiler::new(CompileOptions::guards_only(OptPreset::None)).compile(module.clone())?;
    println!(
        "==== guards injected, unoptimized ({} static guards) ====\n",
        count_guards(&naive.module)
    );
    println!("{}", print_module(&naive.module));

    let optimized = CaratCompiler::new(CompileOptions::guards_only(OptPreset::CaratSpecific))
        .compile(module)?;
    let c = optimized.census;
    println!(
        "==== CARAT-optimized ({} static guards; census: {} hoisted / {} merged / {} eliminated of {}) ====\n",
        count_guards(&optimized.module),
        c.hoisted,
        c.merged,
        c.eliminated,
        c.total
    );
    println!("{}", print_module(&optimized.module));

    // Run it and print the dynamic per-opcode instruction mix the decoded
    // engine's counters record — what the program actually *executes*, as
    // opposed to the static IR printed above.
    let result = Vm::new(optimized.module, VmConfig::default())?.run()?;
    println!(
        "==== dynamic opcode mix ({} instructions retired, ret {}) ====\n",
        result.counters.instructions, result.ret
    );
    for (op, n) in result.counters.opcode_mix.sorted() {
        let pct = 100.0 * n as f64 / result.counters.instructions as f64;
        println!("  {:<14} {n:>8}  ({pct:4.1}%)", format!("{op:?}"));
    }
    Ok(())
}
