//! Bitcode (textual IR) round-trip over the whole workload suite, in every
//! instrumentation configuration — the property the kernel loader relies
//! on: what the compiler signs is exactly what the kernel executes.

use carat_suite::core::{CaratCompiler, CompileOptions, OptPreset};
use carat_suite::ir::{parse_module, print_module, verify_module};
use carat_suite::vm::{Vm, VmConfig};
use carat_suite::workloads::{all_workloads, Scale};

#[test]
fn every_workload_roundtrips_through_bitcode() {
    for w in all_workloads() {
        let m = w.module(Scale::Test).expect("compiles");
        let text = print_module(&m);
        let reparsed =
            parse_module(&text).unwrap_or_else(|e| panic!("{}: reparse failed: {e}", w.name));
        assert_eq!(
            print_module(&reparsed),
            text,
            "{}: round-trip must be exact",
            w.name
        );
        verify_module(&reparsed).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    }
}

#[test]
fn instrumented_workloads_roundtrip_and_run_identically() {
    for w in all_workloads().into_iter().take(6) {
        let m = w.module(Scale::Test).expect("compiles");
        let compiled = CaratCompiler::new(CompileOptions::guards_only(OptPreset::CaratSpecific))
            .compile(m)
            .expect("carat");
        let direct = Vm::new(compiled.module.clone(), VmConfig::default())
            .unwrap()
            .run()
            .unwrap_or_else(|e| panic!("{}: direct run: {e}", w.name));
        // Serialize, reparse, run again: identical result AND counters.
        let text = print_module(&compiled.module);
        let reloaded = parse_module(&text).expect("reparse");
        let indirect = Vm::new(reloaded, VmConfig::default())
            .unwrap()
            .run()
            .unwrap_or_else(|e| panic!("{}: reloaded run: {e}", w.name));
        assert_eq!(direct.ret, indirect.ret, "{}", w.name);
        assert_eq!(
            direct.counters.instructions, indirect.counters.instructions,
            "{}: the reloaded binary is instruction-identical",
            w.name
        );
        assert_eq!(
            direct.counters.guards_executed, indirect.counters.guards_executed,
            "{}",
            w.name
        );
    }
}
