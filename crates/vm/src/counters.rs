//! Performance counters collected during a run — the raw numbers behind
//! every figure of the evaluation.

use carat_ir::Opcode;
use carat_runtime::MoveCostBreakdown;

/// Counters for one program execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfCounters {
    /// Instructions retired (IR instructions, excluding injected
    /// instrumentation when classifying, see `instrumentation_insts`).
    pub instructions: u64,
    /// Of which: guard + tracking intrinsics and their operand setup.
    pub instrumentation_insts: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Calls executed.
    pub calls: u64,

    // --- guards ---
    /// Guard checks executed.
    pub guards_executed: u64,
    /// Cycles spent in guard checks.
    pub guard_cycles: u64,
    /// Probe steps across all software guard checks.
    pub guard_probes: u64,
    /// Guard checks the threaded tier removed with a static in-region
    /// proof (counted per dynamic guard the fused stream would have run).
    pub guards_elided: u64,
    /// Widened range-guards executed at loop preheaders by the threaded
    /// tier, each standing in for a whole loop trip of per-access guards.
    pub guards_hoisted: u64,

    // --- tracking ---
    /// Tracking callbacks executed (alloc/free/escape enqueue).
    pub track_events: u64,
    /// Cycles spent in tracking (including batch flushes).
    pub track_cycles: u64,

    // --- translation (baseline mode) ---
    /// Cycles spent in address translation beyond the L1 path.
    pub translation_cycles: u64,

    // --- moves ---
    /// Seamless stack expansions performed by the kernel.
    pub stack_expansions: u64,
    /// Ranges paged out to swap.
    pub swap_outs: u64,
    /// Poison faults serviced by paging data back in.
    pub swap_ins: u64,
    /// Page-move episodes driven.
    pub moves: u64,
    /// Cycles spent in move protocol + patching + copy.
    pub move_cycles: u64,
    /// Summed per-phase move costs (Table 3 numerators).
    pub move_breakdown: MoveBreakdownSum,

    // --- instruction mix ---
    /// Executed instructions by opcode (phi batches count once, matching
    /// `instructions`). Recorded identically by both execution engines.
    pub opcode_mix: OpcodeMix,
}

/// Per-opcode executed-instruction histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpcodeMix(pub [u64; Opcode::COUNT]);

impl OpcodeMix {
    /// Count one executed instruction of `op`.
    #[inline]
    pub fn record(&mut self, op: Opcode) {
        self.0[op.index()] += 1;
    }

    /// The count for `op`.
    pub fn count(&self, op: Opcode) -> u64 {
        self.0[op.index()]
    }

    /// Total instructions recorded.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// `(opcode, count)` pairs with nonzero counts, descending by count.
    pub fn sorted(&self) -> Vec<(Opcode, u64)> {
        let mut v: Vec<(Opcode, u64)> = Opcode::ALL
            .iter()
            .map(|&op| (op, self.count(op)))
            .filter(|&(_, n)| n > 0)
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        v
    }
}

/// Accumulated move-phase costs plus counts for averaging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoveBreakdownSum {
    /// Σ page-expand cycles.
    pub page_expand: u64,
    /// Σ patch-gen-and-exec cycles.
    pub patch_gen_exec: u64,
    /// Σ register-patch cycles.
    pub register_patch: u64,
    /// Σ allocation-and-movement cycles.
    pub alloc_and_move: u64,
    /// Episodes summed.
    pub episodes: u64,
}

impl MoveBreakdownSum {
    /// Fold in one episode.
    pub fn add(&mut self, b: &MoveCostBreakdown) {
        self.page_expand += b.page_expand;
        self.patch_gen_exec += b.patch_gen_exec;
        self.register_patch += b.register_patch;
        self.alloc_and_move += b.alloc_and_move;
        self.episodes += 1;
    }

    /// Per-episode averages `(expand, patch, regs, alloc_move)`.
    pub fn averages(&self) -> (f64, f64, f64, f64) {
        if self.episodes == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let n = self.episodes as f64;
        (
            self.page_expand as f64 / n,
            self.patch_gen_exec as f64 / n,
            self.register_patch as f64 / n,
            self.alloc_and_move as f64 / n,
        )
    }
}

impl PerfCounters {
    /// Simulated wall-clock seconds at `freq_hz`.
    pub fn seconds(&self, freq_hz: f64) -> f64 {
        self.cycles as f64 / freq_hz
    }

    /// Runtime normalized against a baseline run (the y-axis of Figures 3,
    /// 6, 7 and 9).
    pub fn normalized_to(&self, baseline: &PerfCounters) -> f64 {
        if baseline.cycles == 0 {
            return 0.0;
        }
        self.cycles as f64 / baseline.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        let base = PerfCounters {
            cycles: 1000,
            ..PerfCounters::default()
        };
        let run = PerfCounters {
            cycles: 1100,
            ..PerfCounters::default()
        };
        assert!((run.normalized_to(&base) - 1.1).abs() < 1e-12);
        assert_eq!(run.normalized_to(&PerfCounters::default()), 0.0);
    }

    #[test]
    fn breakdown_averages() {
        let mut s = MoveBreakdownSum::default();
        s.add(&MoveCostBreakdown {
            page_expand: 10,
            patch_gen_exec: 20,
            register_patch: 2,
            alloc_and_move: 100,
        });
        s.add(&MoveCostBreakdown {
            page_expand: 30,
            patch_gen_exec: 40,
            register_patch: 4,
            alloc_and_move: 200,
        });
        let (e, p, r, m) = s.averages();
        assert_eq!((e, p, r, m), (20.0, 30.0, 3.0, 150.0));
    }

    #[test]
    fn seconds_at_frequency() {
        let c = PerfCounters {
            cycles: 2_300_000_000,
            ..PerfCounters::default()
        };
        assert!((c.seconds(2.3e9) - 1.0).abs() < 1e-12);
    }
}
