//! Block/NIC-style DMA engine with descriptor queues.
//!
//! Software submits [`DmaRequest`] descriptors to a request ring; the
//! device (serviced by `SimKernel::dma_service`, which owns the memory
//! the engine reads and writes) consumes them, validates that the target
//! buffer is **pinned** — a DMA into movable memory is exactly the
//! use-after-move hazard pinning exists to prevent — performs the
//! transfer, and pushes a [`DmaCompletion`] onto the response ring.
//!
//! The device itself holds no memory reference; it is a pair of rings
//! plus accounting. That keeps borrows simple (the kernel mutates memory
//! while popping descriptors by value) and mirrors how a real descriptor
//! ring lives in device registers, not in the host address space.

use std::collections::VecDeque;
use std::fmt;

/// Transfer direction, named from the device's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDir {
    /// Device writes into guest memory (a NIC receive, a block read).
    DeviceToMem,
    /// Device reads from guest memory (a NIC transmit, a block write).
    MemToDevice,
}

/// One submitted descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaRequest {
    /// Completion-matching id, assigned at submit time.
    pub id: u64,
    /// Target buffer start (a guest physical address).
    pub addr: u64,
    /// Transfer length in bytes.
    pub len: u64,
    /// Direction of the transfer.
    pub dir: DmaDir,
}

/// Why the device refused a descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// The buffer is not (fully) covered by a pinned range — the device
    /// will not race the move engine.
    NotPinned {
        /// Requested buffer start.
        addr: u64,
        /// Requested length.
        len: u64,
    },
    /// The buffer address is a swap poison value: the memory is paged
    /// out, there is nothing physical to DMA into.
    Swapped {
        /// The poisoned address.
        addr: u64,
    },
    /// Zero-length transfers are malformed descriptors.
    ZeroLen,
    /// Injected device fault (chaos testing).
    DeviceFault,
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::NotPinned { addr, len } => {
                write!(f, "DMA target [{addr:#x}, +{len:#x}) is not pinned")
            }
            DmaError::Swapped { addr } => {
                write!(f, "DMA target {addr:#x} is swapped out (poison)")
            }
            DmaError::ZeroLen => write!(f, "zero-length DMA descriptor"),
            DmaError::DeviceFault => write!(f, "injected device fault"),
        }
    }
}

impl std::error::Error for DmaError {}

/// One response descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaCompletion {
    /// Matches the request's id.
    pub id: u64,
    /// `None` on success, the typed refusal otherwise.
    pub err: Option<DmaError>,
    /// Device-side modeled cycles the transfer consumed.
    pub cycles: u64,
    /// FNV-1a checksum of the bytes transferred (both directions), so
    /// workloads can verify payload integrity end to end. Zero on error.
    pub checksum: u64,
}

impl DmaCompletion {
    /// Did the transfer succeed?
    pub fn ok(&self) -> bool {
        self.err.is_none()
    }
}

/// Aggregate DMA statistics (monotone over the device's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Descriptors submitted.
    pub submitted: u64,
    /// Transfers completed successfully.
    pub completed: u64,
    /// Descriptors refused with a typed error.
    pub failed: u64,
    /// Bytes the device wrote into memory.
    pub bytes_in: u64,
    /// Bytes the device read out of memory.
    pub bytes_out: u64,
    /// Device-side modeled cycles consumed by transfers.
    pub device_cycles: u64,
}

/// The DMA engine: request ring, response ring, id allocator, stats.
#[derive(Debug, Default)]
pub struct DmaDevice {
    requests: VecDeque<DmaRequest>,
    completions: VecDeque<DmaCompletion>,
    next_id: u64,
    stats: DmaStats,
}

impl DmaDevice {
    /// An idle engine with empty rings.
    pub fn new() -> DmaDevice {
        DmaDevice::default()
    }

    /// Submit a descriptor; returns its completion-matching id.
    pub fn submit(&mut self, addr: u64, len: u64, dir: DmaDir) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.stats.submitted += 1;
        self.requests.push_back(DmaRequest { id, addr, len, dir });
        id
    }

    /// Pop the oldest pending descriptor (service side).
    pub fn pop_request(&mut self) -> Option<DmaRequest> {
        self.requests.pop_front()
    }

    /// Push a response descriptor (service side), folding its outcome
    /// into the lifetime stats. Transferred bytes are accounted
    /// separately via [`DmaDevice::account_bytes`] by the service loop,
    /// which knows the exact count.
    pub fn push_completion(&mut self, c: DmaCompletion) {
        if c.ok() {
            self.stats.completed += 1;
            self.stats.device_cycles += c.cycles;
        } else {
            self.stats.failed += 1;
        }
        self.completions.push_back(c);
    }

    /// Pop the oldest response, if any (software side).
    pub fn pop_completion(&mut self) -> Option<DmaCompletion> {
        self.completions.pop_front()
    }

    /// Drain every pending response (software side).
    pub fn drain_completions(&mut self) -> Vec<DmaCompletion> {
        self.completions.drain(..).collect()
    }

    /// Pending (unserviced) request count.
    pub fn pending_requests(&self) -> usize {
        self.requests.len()
    }

    /// Unconsumed response count.
    pub fn pending_completions(&self) -> usize {
        self.completions.len()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> DmaStats {
        self.stats
    }

    /// Record transferred bytes for a successful completion. Kept
    /// separate from [`DmaDevice::push_completion`] so the service loop
    /// can report exact byte counts rather than a cycles-derived guess.
    pub fn account_bytes(&mut self, dir: DmaDir, bytes: u64) {
        match dir {
            DmaDir::DeviceToMem => self.stats.bytes_in += bytes,
            DmaDir::MemToDevice => self.stats.bytes_out += bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_ids_are_sequential_and_fifo() {
        let mut d = DmaDevice::new();
        let a = d.submit(0x1000, 64, DmaDir::DeviceToMem);
        let b = d.submit(0x2000, 64, DmaDir::MemToDevice);
        assert_eq!((a, b), (0, 1));
        assert_eq!(d.pending_requests(), 2);
        assert_eq!(d.pop_request().unwrap().id, a, "FIFO order");
        assert_eq!(d.pop_request().unwrap().id, b);
        assert!(d.pop_request().is_none());
    }

    #[test]
    fn completion_stats_split_ok_and_failed() {
        let mut d = DmaDevice::new();
        d.push_completion(DmaCompletion {
            id: 0,
            err: None,
            cycles: 100,
            checksum: 7,
        });
        d.push_completion(DmaCompletion {
            id: 1,
            err: Some(DmaError::ZeroLen),
            cycles: 0,
            checksum: 0,
        });
        let s = d.stats();
        assert_eq!((s.completed, s.failed, s.device_cycles), (1, 1, 100));
        let drained = d.drain_completions();
        assert_eq!(drained.len(), 2);
        assert!(drained[0].ok() && !drained[1].ok());
        assert_eq!(d.pending_completions(), 0);
    }

    #[test]
    fn errors_render() {
        let e = DmaError::NotPinned {
            addr: 0x1000,
            len: 0x40,
        };
        assert!(e.to_string().contains("not pinned"));
        assert!(DmaError::Swapped { addr: 0xffff }
            .to_string()
            .contains("poison"));
    }
}
