//! Compiler-pipeline inspection: print the IR of a small function before
//! and after CARAT instrumentation and optimization, to see exactly what
//! guard injection, hoisting, merging and AC/DC do.
//!
//! ```sh
//! cargo run --example compile_inspect
//! ```

use carat_core::{count_guards, CaratCompiler, CompileOptions, OptPreset};
use carat_frontend::compile_cm;
use carat_ir::print_module;
use carat_vm::{DecodedProgram, Engine, FusedKind, ThreadedOpts, Vm, VmConfig};
use carat_workloads::{all_workloads, Scale};

const PROGRAM: &str = r#"
double dot(double* xs, double* ys, int n) {
    double acc = 0.0;
    for (int i = 0; i < n; i += 1) {
        acc += xs[i] * ys[i];
    }
    return acc;
}
int main() {
    double* xs = (double*) malloc(512 * sizeof(double));
    double* ys = (double*) malloc(512 * sizeof(double));
    for (int i = 0; i < 512; i += 1) { xs[i] = 1.0; ys[i] = 2.0; }
    double d = dot(xs, ys, 512);
    free(xs); free(ys);
    return (int) d;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = compile_cm("inspect", PROGRAM)?;
    println!("==== front-end output ====\n");
    println!("{}", print_module(&module));

    let naive =
        CaratCompiler::new(CompileOptions::guards_only(OptPreset::None)).compile(module.clone())?;
    println!(
        "==== guards injected, unoptimized ({} static guards) ====\n",
        count_guards(&naive.module)
    );
    println!("{}", print_module(&naive.module));

    let optimized = CaratCompiler::new(CompileOptions::guards_only(OptPreset::CaratSpecific))
        .compile(module)?;
    let c = optimized.census;
    println!(
        "==== CARAT-optimized ({} static guards; census: {} hoisted / {} merged / {} eliminated of {}) ====\n",
        count_guards(&optimized.module),
        c.hoisted,
        c.merged,
        c.eliminated,
        c.total
    );
    println!("{}", print_module(&optimized.module));

    // Run it and print the dynamic per-opcode instruction mix the decoded
    // engine's counters record — what the program actually *executes*, as
    // opposed to the static IR printed above.
    let decoded = DecodedProgram::decode(&optimized.module);
    let result = Vm::new(optimized.module, VmConfig::default())?.run()?;
    println!(
        "==== dynamic opcode mix ({} instructions retired, ret {}) ====\n",
        result.counters.instructions, result.ret
    );
    for (op, n) in result.counters.opcode_mix.sorted() {
        let pct = 100.0 * n as f64 / result.counters.instructions as f64;
        println!("  {:<14} {n:>8}  ({pct:4.1}%)", format!("{op:?}"));
    }

    // Fusion statistics for the same run: what the decode-time peephole
    // pass created (static sites), and how much of the dynamic stream
    // actually retired through fused dispatches.
    println!(
        "\n==== fusion ({} static sites; {} pairs executed, {:.1}% of dynamic instructions fused) ====\n",
        decoded.fusion.total(),
        result.fusion.fused_pairs(),
        100.0 * result.fusion.fused_instructions() as f64 / result.counters.instructions as f64
    );
    for (kind, n) in result.fusion.sorted() {
        println!(
            "  {:<14} {n:>8}  ({} static sites)",
            kind.name(),
            decoded.fusion.sites[kind as usize]
        );
    }

    // And the same two numbers for every workload in the suite, with the
    // top fused pairs that dominate each one.
    println!("\n==== per-workload fusion statistics (Test scale, Carat build) ====\n");
    println!(
        "  {:<14} {:>6} {:>7}  top fused pairs",
        "workload", "sites", "fused%"
    );
    for w in all_workloads() {
        let module = w.module(Scale::Test)?;
        let compiled = CaratCompiler::new(CompileOptions::default()).compile(module)?;
        let decoded = DecodedProgram::decode(&compiled.module);
        let cfg = VmConfig {
            engine: Engine::Fused,
            ..VmConfig::default()
        };
        let r = Vm::new(compiled.module, cfg)?.run()?;
        let frac =
            100.0 * r.fusion.fused_instructions() as f64 / r.counters.instructions.max(1) as f64;
        let top: Vec<String> = r
            .fusion
            .sorted()
            .into_iter()
            .take(5)
            .map(|(k, n): (FusedKind, u64)| format!("{} {n}", k.name()))
            .collect();
        println!(
            "  {:<14} {:>6} {:>6.1}%  {}",
            w.name,
            decoded.fusion.total(),
            frac,
            top.join(", ")
        );
    }

    // The threaded tier's decode-time transform on the inspect program:
    // which loop guards the whole-trip prover elides (and why the ones it
    // keeps survive), where the widened checks land, and what was
    // strength-reduced. The substrate is the *unoptimized* guard build —
    // the proofs do all the work at decode time.
    let naive = CaratCompiler::new(CompileOptions::guards_only(OptPreset::None))
        .compile(compile_cm("inspect", PROGRAM)?)?;
    let threaded = DecodedProgram::decode_with(&naive.module, Some(ThreadedOpts::default()));
    let rep = threaded.threaded.as_ref().expect("threaded report");
    println!(
        "\n==== threaded tier (per-loop decisions; {} elided, {} hoisted, {} dup-marked, \
         {} fast-tier guards, {} dead consts, {} chains) ====\n",
        rep.elided_sites,
        rep.hoisted_sites,
        rep.dup_guard_sites,
        rep.fast_guard_sites,
        rep.dead_consts,
        rep.chains
    );
    for lp in &rep.loops {
        println!("  {} bb{}:", lp.func, lp.header);
        for d in &lp.decisions {
            println!("    + {d}");
        }
        for r in &lp.rejected {
            println!("    - kept: {r}");
        }
    }
    for s in &rep.skipped_loops {
        println!("  skipped {s}");
    }

    // And the per-workload census of the same transform: how much guard
    // work the proofs remove from each workload's naive guard build.
    println!("\n==== per-workload threaded-tier census (Test scale, naive guard build) ====\n");
    println!(
        "  {:<14} {:>7} {:>7} {:>7} {:>7}  skipped loops (reason)",
        "workload", "elided", "hoisted", "fast", "dup"
    );
    for w in all_workloads() {
        let module = w.module(Scale::Test)?;
        let compiled =
            CaratCompiler::new(CompileOptions::guards_only(OptPreset::None)).compile(module)?;
        let prog = DecodedProgram::decode_with(&compiled.module, Some(ThreadedOpts::default()));
        let rep = prog.threaded.as_ref().expect("threaded report");
        let skipped = if rep.skipped_loops.is_empty() {
            String::new()
        } else {
            rep.skipped_loops.join("; ")
        };
        println!(
            "  {:<14} {:>7} {:>7} {:>7} {:>7}  {}",
            w.name,
            rep.elided_sites,
            rep.hoisted_sites,
            rep.fast_guard_sites,
            rep.dup_guard_sites,
            skipped
        );
    }
    Ok(())
}
