//! Deterministic, seeded fault injection for the kernel and runtime.
//!
//! The paper's thesis is that memory events are *signals the kernel can
//! respond to*, not crashes (§2.2: poison addresses "encode different
//! conditions"). This module makes that claim testable: a [`FaultPlan`]
//! arms specific [`FaultPoint`]s to fire on their Nth dynamic occurrence,
//! and every fired fault must surface as a typed [`KernelError`] with the
//! machine left in a consistent, recoverable state — never a panic.
//!
//! Determinism rules:
//!
//! * An un-armed plan (or an armed point that has not yet reached its
//!   trigger count) has **no side effects** on kernel behavior — counters
//!   of a run whose faults never fire are identical to a fault-free run.
//! * Firing is a pure function of the occurrence count, so the same plan
//!   over the same workload fires at exactly the same instant every time.

use carat_runtime::{MoveError, WorldStopError};
use std::error::Error;
use std::fmt;

pub use crate::buddy::BuddyError;

/// A site in the kernel/runtime where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Buddy/vacated-frame exhaustion when allocating a move destination
    /// (`move_pages`, `page_in`, `expand_stack`).
    MoveDstAlloc,
    /// Interruption of a move between its patch and copy phases — the
    /// crash window the patch journal must cover.
    MidMove,
    /// A thread stalls and never reaches its world-stop signal handler.
    WorldStopStall,
    /// The swap store fails to read a slot back on `page_in`.
    SwapRead,
    /// The signed image is corrupted in flight, so signature verification
    /// at `load` must reject it.
    SignatureCorrupt,
    /// The capsule device fails to persist an externalized tenant capsule
    /// (`capsule_write`): the write is refused before any bytes land, so
    /// the tenant simply stays resident.
    CapsuleWrite,
    /// An externalized capsule rots at rest: the stored bytes are flipped
    /// so the checksum verification on `capsule_read` must reject them.
    CapsuleCorrupt,
    /// A tenant's heap allocation is refused as if its arena were
    /// exhausted — the per-tenant OOM a supervisor must absorb.
    TenantOom,
    /// The DMA engine faults while servicing a descriptor: the transfer
    /// is refused with a typed device error, no bytes move, and the
    /// completion ring still advances (I/O-storm chaos testing).
    DmaService,
}

impl FaultPoint {
    /// All injectable points, for building seed matrices.
    pub const ALL: [FaultPoint; 9] = [
        FaultPoint::MoveDstAlloc,
        FaultPoint::MidMove,
        FaultPoint::WorldStopStall,
        FaultPoint::SwapRead,
        FaultPoint::SignatureCorrupt,
        FaultPoint::CapsuleWrite,
        FaultPoint::CapsuleCorrupt,
        FaultPoint::TenantOom,
        FaultPoint::DmaService,
    ];

    /// The single-VM points [`FaultPlan::from_seed`] draws from — the
    /// original five, kept stable so seeded single-VM soak schedules are
    /// reproducible across releases. The capsule/tenant points only make
    /// sense under a fleet scheduler and are drawn by
    /// [`FaultPlan::from_seed_chaos`].
    pub const CLASSIC: [FaultPoint; 5] = [
        FaultPoint::MoveDstAlloc,
        FaultPoint::MidMove,
        FaultPoint::WorldStopStall,
        FaultPoint::SwapRead,
        FaultPoint::SignatureCorrupt,
    ];

    fn index(self) -> usize {
        match self {
            FaultPoint::MoveDstAlloc => 0,
            FaultPoint::MidMove => 1,
            FaultPoint::WorldStopStall => 2,
            FaultPoint::SwapRead => 3,
            FaultPoint::SignatureCorrupt => 4,
            FaultPoint::CapsuleWrite => 5,
            FaultPoint::CapsuleCorrupt => 6,
            FaultPoint::TenantOom => 7,
            FaultPoint::DmaService => 8,
        }
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultPoint::MoveDstAlloc => "move-dst-alloc",
            FaultPoint::MidMove => "mid-move",
            FaultPoint::WorldStopStall => "world-stop-stall",
            FaultPoint::SwapRead => "swap-read",
            FaultPoint::SignatureCorrupt => "signature-corrupt",
            FaultPoint::CapsuleWrite => "capsule-write",
            FaultPoint::CapsuleCorrupt => "capsule-corrupt",
            FaultPoint::TenantOom => "tenant-oom",
            FaultPoint::DmaService => "dma-service",
        };
        f.write_str(s)
    }
}

/// One armed trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Arm {
    point: FaultPoint,
    /// Fires on the `at`-th dynamic occurrence (1-based).
    at: u64,
    /// One-shot arms disarm after firing; persistent arms keep firing on
    /// every occurrence from `at` onward (e.g. an exhaustion that stays
    /// exhausted through the kernel's compaction retries).
    persistent: bool,
}

/// A deterministic schedule of injected faults.
///
/// An empty plan never fires but still switches the kernel onto the
/// journaled move path, which is how the zero-fault journal overhead is
/// measured (`carat-bench --bin fault_overhead`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    arms: Vec<Arm>,
    /// Dynamic occurrence count per fault point.
    counts: [u64; FaultPoint::ALL.len()],
    /// Log of fired faults: `(point, occurrence)` in firing order.
    fired: Vec<(FaultPoint, u64)>,
}

impl FaultPlan {
    /// An empty plan: journaling on, no faults armed.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arm `point` to fire once, on its `nth` dynamic occurrence
    /// (1-based).
    pub fn arm(mut self, point: FaultPoint, nth: u64) -> FaultPlan {
        self.arms.push(Arm {
            point,
            at: nth.max(1),
            persistent: false,
        });
        self
    }

    /// Arm `point` to fire on its `nth` occurrence and every occurrence
    /// after it (a condition that persists through retries).
    pub fn arm_persistent(mut self, point: FaultPoint, nth: u64) -> FaultPlan {
        self.arms.push(Arm {
            point,
            at: nth.max(1),
            persistent: true,
        });
        self
    }

    /// Derive a pseudo-random schedule from `seed` (xorshift64*): one or
    /// two armed points with small trigger counts. The same seed always
    /// produces the same schedule.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut plan = FaultPlan::new();
        let n_arms = 1 + (next() % 2);
        for _ in 0..n_arms {
            let point = FaultPoint::CLASSIC[(next() % 5) as usize];
            let nth = 1 + next() % 3;
            // Exhaustion that clears itself mid-retry would make the run
            // diverge from the fault-free counters without erroring;
            // keep MoveDstAlloc persistent so it always surfaces.
            plan = if point == FaultPoint::MoveDstAlloc {
                plan.arm_persistent(point, nth)
            } else {
                plan.arm(point, nth)
            };
        }
        plan
    }

    /// Derive a fleet-scale fault storm from `seed`: several armed points
    /// drawn from the full set — including the capsule and per-tenant
    /// points — with trigger counts spread across a wider occurrence
    /// range, so faults land throughout a long fleet run rather than all
    /// at the start. Deterministic: the same seed always produces the
    /// same storm.
    pub fn from_seed_chaos(seed: u64) -> FaultPlan {
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut plan = FaultPlan::new();
        let n_arms = 3 + (next() % 4);
        for _ in 0..n_arms {
            let point = FaultPoint::ALL[(next() % FaultPoint::ALL.len() as u64) as usize];
            let nth = 1 + next() % 64;
            plan = if point == FaultPoint::MoveDstAlloc {
                plan.arm_persistent(point, nth)
            } else {
                plan.arm(point, nth)
            };
        }
        plan
    }

    /// The points with at least one live arm (deduplicated, in
    /// [`FaultPoint::ALL`] order) — what a soak harness consults to know
    /// which typed errors a schedule may legitimately surface.
    pub fn armed_points(&self) -> Vec<FaultPoint> {
        FaultPoint::ALL
            .into_iter()
            .filter(|p| self.arms.iter().any(|a| a.point == *p))
            .collect()
    }

    /// Record one dynamic occurrence of `point` and report whether an arm
    /// fires. Occurrence counting is the only state this mutates when
    /// nothing fires.
    pub fn should_fire(&mut self, point: FaultPoint) -> bool {
        let i = point.index();
        self.counts[i] += 1;
        let occurrence = self.counts[i];
        let mut fire = false;
        self.arms.retain(|a| {
            if a.point != point || occurrence < a.at {
                return true;
            }
            fire = true;
            a.persistent
        });
        if fire {
            self.fired.push((point, occurrence));
        }
        fire
    }

    /// Dynamic occurrences of `point` observed so far.
    pub fn occurrences(&self, point: FaultPoint) -> u64 {
        self.counts[point.index()]
    }

    /// Faults fired so far, in order.
    pub fn fired(&self) -> &[(FaultPoint, u64)] {
        &self.fired
    }

    /// Whether any point is still armed.
    pub fn is_armed(&self) -> bool {
        !self.arms.is_empty()
    }
}

/// A kernel operation failed. Every variant is a clean, typed outcome:
/// the kernel's allocation table, physical memory, and swap store are
/// consistent when one of these is returned (transactional operations
/// roll back first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// No frames for a move/page-in destination, even after compacting
    /// vacated ranges and retrying with backoff.
    OutOfFrames {
        /// Pages that were requested.
        pages: u64,
    },
    /// The world-stop protocol failed (stall or ordering violation); the
    /// episode was aborted and the threads released.
    WorldStop(WorldStopError),
    /// A move was interrupted between patch and copy; the patch journal
    /// rolled every cell and register back to its pre-move value.
    MoveInterrupted {
        /// Expanded source range start.
        src: u64,
        /// Expanded source range length.
        len: u64,
        /// The destination that was abandoned (released back).
        dst: u64,
    },
    /// The swap store could not produce slot `slot` (read failure or
    /// corrupted entry). The slot's metadata is preserved for retry
    /// where possible.
    SwapReadFailed {
        /// The unreadable slot.
        slot: u64,
    },
    /// The frame allocator rejected an operation (e.g. double free) —
    /// a sign of kernel-internal inconsistency.
    Buddy(BuddyError),
    /// The capsule device refused to persist an externalized tenant
    /// capsule (injected [`FaultPoint::CapsuleWrite`]). No bytes landed;
    /// the tenant stays resident and the write can be retried.
    CapsuleWriteFailed {
        /// Capsule bytes that were being written.
        len: u64,
    },
    /// An externalized capsule failed its checksum on rehydrate: the
    /// stored bytes no longer hash to the checksum recorded at write. The
    /// rotten image is discarded — the tenant's execution state is lost —
    /// but the fault is *recoverable at the fleet level*: the supervisor
    /// respawns the tenant from its admitted image.
    CapsuleCorrupt {
        /// The corrupt capsule slot.
        slot: u64,
    },
    /// A capsule slot that was never written (or already consumed) was
    /// asked for — a stale externalization handle.
    CapsuleMissing {
        /// The missing slot.
        slot: u64,
    },
    /// A shared-region operation named an id with no live region.
    NoSuchShared {
        /// The stale id.
        id: crate::proc::SharedId,
    },
    /// A process-table operation named a pid whose slot was retired or
    /// recycled (the generation tag went stale).
    StaleTenant {
        /// The stale pid.
        pid: crate::proc::Pid,
    },
    /// A mover refused to touch a pinned DMA range. Decided before the
    /// world stops, so nothing was mutated; the caller plans around the
    /// pinned hole (pick a different victim, or wait for the unpin).
    Move(MoveError),
}

impl KernelError {
    /// Whether the caller can retry or continue after this error.
    /// Transient conditions (exhaustion, stalls, interrupted moves, swap
    /// and capsule I/O, stale handles) are recoverable: kernel state is
    /// intact and the operation can be reattempted — or, for a corrupt
    /// capsule, the tenant respawned from its image. [`KernelError::Buddy`]
    /// is fatal — it indicates the kernel's own bookkeeping is
    /// inconsistent.
    pub fn is_recoverable(&self) -> bool {
        !matches!(self, KernelError::Buddy(_))
    }
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::OutOfFrames { pages } => {
                write!(
                    f,
                    "out of frames for {pages} page(s), even after compaction"
                )
            }
            KernelError::WorldStop(e) => write!(f, "world-stop failed: {e}"),
            KernelError::MoveInterrupted { src, len, dst } => write!(
                f,
                "move of [{src:#x},+{len:#x}) -> {dst:#x} interrupted; rolled back"
            ),
            KernelError::SwapReadFailed { slot } => {
                write!(f, "swap store failed to read slot {slot}")
            }
            KernelError::Buddy(e) => write!(f, "frame allocator: {e}"),
            KernelError::CapsuleWriteFailed { len } => {
                write!(f, "capsule device refused a {len}-byte write")
            }
            KernelError::CapsuleCorrupt { slot } => {
                write!(f, "capsule slot {slot} failed its checksum on rehydrate")
            }
            KernelError::CapsuleMissing { slot } => {
                write!(
                    f,
                    "capsule slot {slot} was never written or already consumed"
                )
            }
            KernelError::NoSuchShared { id } => write!(f, "no such shared region: {id}"),
            KernelError::StaleTenant { pid } => write!(f, "stale tenant pid: {pid}"),
            KernelError::Move(e) => write!(f, "{e}"),
        }
    }
}

impl Error for KernelError {}

impl From<MoveError> for KernelError {
    fn from(e: MoveError) -> KernelError {
        KernelError::Move(e)
    }
}

impl From<WorldStopError> for KernelError {
    fn from(e: WorldStopError) -> KernelError {
        KernelError::WorldStop(e)
    }
}

impl From<BuddyError> for KernelError {
    fn from(e: BuddyError) -> KernelError {
        KernelError::Buddy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_never_fires_but_counts() {
        let mut p = FaultPlan::new();
        for _ in 0..10 {
            assert!(!p.should_fire(FaultPoint::MidMove));
        }
        assert_eq!(p.occurrences(FaultPoint::MidMove), 10);
        assert!(p.fired().is_empty());
    }

    #[test]
    fn one_shot_arm_fires_exactly_once_at_nth() {
        let mut p = FaultPlan::new().arm(FaultPoint::SwapRead, 3);
        assert!(!p.should_fire(FaultPoint::SwapRead));
        assert!(!p.should_fire(FaultPoint::SwapRead));
        assert!(p.should_fire(FaultPoint::SwapRead), "third occurrence");
        assert!(
            !p.should_fire(FaultPoint::SwapRead),
            "disarmed after firing"
        );
        assert_eq!(p.fired(), &[(FaultPoint::SwapRead, 3)]);
    }

    #[test]
    fn persistent_arm_keeps_firing() {
        let mut p = FaultPlan::new().arm_persistent(FaultPoint::MoveDstAlloc, 2);
        assert!(!p.should_fire(FaultPoint::MoveDstAlloc));
        assert!(p.should_fire(FaultPoint::MoveDstAlloc));
        assert!(p.should_fire(FaultPoint::MoveDstAlloc));
        assert!(p.is_armed());
    }

    #[test]
    fn points_count_independently() {
        let mut p = FaultPlan::new().arm(FaultPoint::MidMove, 1);
        assert!(!p.should_fire(FaultPoint::SwapRead));
        assert!(p.should_fire(FaultPoint::MidMove));
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_varied() {
        for seed in 0..32u64 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
            assert!(FaultPlan::from_seed(seed).is_armed());
        }
        // Different seeds do not all produce the same schedule.
        let distinct: std::collections::HashSet<String> = (0..32u64)
            .map(|s| format!("{:?}", FaultPlan::from_seed(s)))
            .collect();
        assert!(distinct.len() > 4);
    }

    #[test]
    fn chaos_schedules_cover_capsule_points() {
        for seed in 0..64u64 {
            assert_eq!(
                FaultPlan::from_seed_chaos(seed),
                FaultPlan::from_seed_chaos(seed)
            );
            assert!(FaultPlan::from_seed_chaos(seed).is_armed());
        }
        // Across a modest seed range, the chaos generator reaches the
        // capsule/tenant points the classic generator never arms.
        let mut reached = std::collections::HashSet::new();
        for seed in 0..256u64 {
            for p in FaultPlan::from_seed_chaos(seed).armed_points() {
                reached.insert(format!("{p}"));
            }
        }
        for p in ["capsule-write", "capsule-corrupt", "tenant-oom"] {
            assert!(reached.contains(p), "chaos seeds never armed {p}");
        }
    }

    #[test]
    fn classic_seeds_never_arm_fleet_points() {
        for seed in 0..256u64 {
            for p in FaultPlan::from_seed(seed).armed_points() {
                assert!(
                    FaultPoint::CLASSIC.contains(&p),
                    "single-VM seed {seed} armed fleet-only point {p}"
                );
            }
        }
    }

    #[test]
    fn armed_points_deduplicates() {
        let p = FaultPlan::new()
            .arm(FaultPoint::CapsuleCorrupt, 1)
            .arm(FaultPoint::CapsuleCorrupt, 5)
            .arm(FaultPoint::TenantOom, 2);
        assert_eq!(
            p.armed_points(),
            vec![FaultPoint::CapsuleCorrupt, FaultPoint::TenantOom]
        );
    }

    #[test]
    fn capsule_errors_are_recoverable() {
        assert!(KernelError::CapsuleWriteFailed { len: 128 }.is_recoverable());
        assert!(KernelError::CapsuleCorrupt { slot: 3 }.is_recoverable());
        assert!(KernelError::CapsuleMissing { slot: 9 }.is_recoverable());
        assert!(KernelError::NoSuchShared {
            id: crate::proc::SharedId(7)
        }
        .is_recoverable());
        assert!(KernelError::StaleTenant {
            pid: crate::proc::Pid(1)
        }
        .is_recoverable());
    }

    #[test]
    fn pinned_move_refusals_are_recoverable() {
        let e = KernelError::Move(MoveError::Pinned {
            src: 0x1000,
            len: 0x1000,
            pin_start: 0x1800,
            pin_len: 0x100,
        });
        assert!(e.is_recoverable(), "a pinned hole is planned around");
        assert!(e.to_string().contains("pinned"));
    }

    #[test]
    fn recoverability_classification() {
        assert!(KernelError::OutOfFrames { pages: 1 }.is_recoverable());
        assert!(KernelError::SwapReadFailed { slot: 0 }.is_recoverable());
        assert!(KernelError::MoveInterrupted {
            src: 0,
            len: 0,
            dst: 0
        }
        .is_recoverable());
        assert!(KernelError::WorldStop(WorldStopError::Stalled {
            entered: 1,
            threads: 2
        })
        .is_recoverable());
        assert!(!KernelError::Buddy(BuddyError::UnallocatedFree { addr: 0 }).is_recoverable());
    }
}
