//! Figure 6 — memory overhead of allocation/escape tracking: peak program
//! footprint with tracking state, normalized to the baseline footprint.

use carat_bench::{geomean, print_table, run_simple, scale_from_args, selected_workloads, Variant};

fn main() {
    let scale = scale_from_args();
    println!("Figure 6: memory overhead of tracking ({scale:?} scale)\n");
    let mut rows = Vec::new();
    let mut overheads = Vec::new();
    for w in selected_workloads() {
        let base = run_simple(&w, scale, Variant::Baseline);
        let trk = run_simple(&w, scale, Variant::Tracking);
        // Program footprint: static + peak heap (+ stack, identical in both).
        let program = (base.static_footprint + base.peak_heap_bytes).max(4096);
        let with_tracking = program + trk.tracking_bytes as u64;
        let norm = with_tracking as f64 / program as f64;
        overheads.push(norm);
        rows.push(vec![
            w.name.to_string(),
            format!("{:.1} KiB", program as f64 / 1024.0),
            format!("{:.1} KiB", trk.tracking_bytes as f64 / 1024.0),
            format!("{norm:.3}"),
        ]);
    }
    rows.push(vec![
        "Geo. Mean".into(),
        String::new(),
        String::new(),
        format!("{:.3}", geomean(&overheads)),
    ]);
    print_table(
        &[
            "benchmark",
            "program footprint",
            "tracking state",
            "normalized",
        ],
        &rows,
    );
}
