//! Global value numbering for pure expressions.
//!
//! A readily-available optimization (part of any `-O3` pipeline, so it
//! belongs to the paper's "general optimizations" of Figure 3a): identical
//! pure computations — address arithmetic above all — are shared, so later
//! CARAT passes (dedup in hoisting, AC/DC redundancy elimination) see
//! repeated accesses to one pointer *definition* instead of many
//! structurally identical ones.
//!
//! Dominator-based: a computation is replaced by an equivalent earlier one
//! only when the earlier definition dominates the later use site.

use carat_analysis::{Cfg, DomTree};
use carat_ir::{BlockId, Const, Function, Inst, ValueId};
use std::collections::HashMap;

/// Hashable key for a pure instruction after operand canonicalization.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Const(ConstKey),
    Bin(carat_ir::BinOp, ValueId, ValueId),
    Icmp(carat_ir::Pred, ValueId, ValueId),
    Fcmp(carat_ir::Pred, ValueId, ValueId),
    Cast(carat_ir::CastKind, ValueId, carat_ir::Type),
    Select(ValueId, ValueId, ValueId),
    PtrAdd(ValueId, ValueId, carat_ir::Type),
    FieldAddr(ValueId, carat_ir::Type, u32),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ConstKey {
    Int(i64, carat_ir::IntTy),
    F64(u64),
    Null,
    Global(carat_ir::GlobalId),
}

fn key_of(inst: &Inst) -> Option<Key> {
    Some(match inst {
        Inst::Const(c) => Key::Const(match c {
            Const::Int(v, w) => ConstKey::Int(*v, *w),
            Const::F64(x) => ConstKey::F64(x.to_bits()),
            Const::Null => ConstKey::Null,
            Const::GlobalAddr(g) => ConstKey::Global(*g),
        }),
        Inst::Bin { op, lhs, rhs } => {
            // Canonicalize commutative operands by id order.
            use carat_ir::BinOp::*;
            let (l, r) = if matches!(op, Add | Mul | And | Or | Xor | Fadd | Fmul) && rhs < lhs {
                (*rhs, *lhs)
            } else {
                (*lhs, *rhs)
            };
            Key::Bin(*op, l, r)
        }
        Inst::Icmp { pred, lhs, rhs } => Key::Icmp(*pred, *lhs, *rhs),
        Inst::Fcmp { pred, lhs, rhs } => Key::Fcmp(*pred, *lhs, *rhs),
        Inst::Cast { kind, value, to } => Key::Cast(*kind, *value, to.clone()),
        Inst::Select {
            cond,
            if_true,
            if_false,
        } => Key::Select(*cond, *if_true, *if_false),
        Inst::PtrAdd { base, index, elem } => Key::PtrAdd(*base, *index, elem.clone()),
        Inst::FieldAddr {
            base,
            struct_ty,
            field,
        } => Key::FieldAddr(*base, struct_ty.clone(), *field),
        // Loads, calls, allocas, phis, terminators: not pure or not
        // position-independent.
        _ => return None,
    })
}

/// Run GVN on `f`; returns the number of instructions eliminated.
pub fn run(f: &mut Function) -> usize {
    let cfg = Cfg::compute(f);
    let dt = DomTree::compute(f, &cfg);
    // Leaders per key; a leader is usable if its block dominates the use
    // block (or is the same block, where earlier position is guaranteed by
    // our forward walk).
    let mut leaders: HashMap<Key, Vec<(ValueId, BlockId)>> = HashMap::new();
    let mut replace: HashMap<ValueId, ValueId> = HashMap::new();
    let mut removed: Vec<ValueId> = Vec::new();

    let blocks: Vec<BlockId> = cfg.rpo.clone();
    for &b in &blocks {
        let insts = f.block(b).insts.clone();
        for v in insts {
            // Rewrite operands through the replacement map first.
            if let Some(inst) = f.inst_mut(v) {
                inst.map_operands(|op| *replace.get(&op).unwrap_or(&op));
            }
            let Some(inst) = f.inst(v) else { continue };
            let Some(key) = key_of(inst) else { continue };
            let usable = leaders.get(&key).and_then(|cands| {
                cands
                    .iter()
                    .find(|(_, lb)| *lb == b || dt.dominates(*lb, b))
                    .map(|(lv, _)| *lv)
            });
            match usable {
                Some(leader) => {
                    replace.insert(v, leader);
                    removed.push(v);
                }
                None => {
                    leaders.entry(key).or_default().push((v, b));
                }
            }
        }
    }
    // Rewrite any remaining uses (instructions processed before their
    // operands' replacements were discovered cannot exist in RPO for
    // dominating defs, but phis reference across back edges).
    if !replace.is_empty() {
        let n = f.num_values();
        for i in 0..n {
            let vid = ValueId(i as u32);
            if let Some(inst) = f.inst_mut(vid) {
                inst.map_operands(|op| *replace.get(&op).unwrap_or(&op));
            }
        }
    }
    for v in &removed {
        f.remove_from_block(*v);
    }
    removed.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{verify_module, ModuleBuilder, Pred, Type};

    #[test]
    fn dedups_identical_address_computation() {
        let mut mb = ModuleBuilder::new("m");
        let fid = mb.declare("f", vec![Type::Ptr, Type::I64], Some(Type::I64));
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            b.switch_to(e);
            // Two identical GEPs (as a frontend without CSE emits them).
            let a1 = b.ptr_add(b.arg(0), b.arg(1), Type::I64);
            let x = b.load(Type::I64, a1);
            let a2 = b.ptr_add(b.arg(0), b.arg(1), Type::I64);
            let y = b.load(Type::I64, a2);
            let s = b.add(x, y);
            b.ret(Some(s));
        }
        let mut m = mb.finish();
        let f = m.func_mut(carat_ir::FuncId(0));
        let n = run(f);
        assert_eq!(n, 1, "second GEP eliminated");
        verify_module(&m).unwrap();
        let f = m.func(carat_ir::FuncId(0));
        // Both loads now use the same address value.
        let addrs: Vec<_> = f
            .insts_in_layout_order()
            .filter_map(|(_, _, i)| match i {
                Inst::Load { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        assert_eq!(addrs[0], addrs[1]);
    }

    #[test]
    fn does_not_merge_across_non_dominating_blocks() {
        let mut mb = ModuleBuilder::new("m");
        let fid = mb.declare("f", vec![Type::I1, Type::I64], Some(Type::I64));
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            let t = b.block("t");
            let fl = b.block("fl");
            let j = b.block("j");
            b.switch_to(e);
            b.br(b.arg(0), t, fl);
            b.switch_to(t);
            let x = b.add(b.arg(1), b.arg(1));
            b.jmp(j);
            b.switch_to(fl);
            let y = b.add(b.arg(1), b.arg(1));
            b.jmp(j);
            b.switch_to(j);
            let p = b.phi(Type::I64, vec![(t, x), (fl, y)]);
            b.ret(Some(p));
        }
        let mut m = mb.finish();
        let n = run(m.func_mut(carat_ir::FuncId(0)));
        assert_eq!(n, 0, "sibling branches do not dominate each other");
        verify_module(&m).unwrap();
    }

    #[test]
    fn entry_computation_dominates_loop_use() {
        let mut mb = ModuleBuilder::new("m");
        let fid = mb.declare("f", vec![Type::I64], Some(Type::I64));
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            let h = b.block("h");
            let body = b.block("body");
            let x = b.block("x");
            b.switch_to(e);
            let two = b.const_i64(2);
            let n2a = b.mul(b.arg(0), two);
            b.jmp(h);
            b.switch_to(h);
            let zero = b.const_i64(0);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(Pred::Slt, i, n2a);
            b.br(c, body, x);
            b.switch_to(body);
            // Recomputation of n*2 inside the loop.
            let n2b = b.mul(b.arg(0), two);
            let one = b.const_i64(1);
            let step = b.bin(carat_ir::BinOp::Sdiv, n2b, n2b);
            let i2 = b.add(i, step);
            let _ = one;
            b.phi_add_incoming(i, body, i2);
            b.jmp(h);
            b.switch_to(x);
            b.ret(Some(i));
        }
        let mut m = mb.finish();
        let n = run(m.func_mut(carat_ir::FuncId(0)));
        assert!(n >= 1, "loop recomputation folded into entry def");
        verify_module(&m).unwrap();
    }

    #[test]
    fn commutative_operands_canonicalize() {
        let mut mb = ModuleBuilder::new("m");
        let fid = mb.declare("f", vec![Type::I64, Type::I64], Some(Type::I64));
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            b.switch_to(e);
            let x = b.add(b.arg(0), b.arg(1));
            let y = b.add(b.arg(1), b.arg(0));
            let s = b.mul(x, y);
            b.ret(Some(s));
        }
        let mut m = mb.finish();
        let n = run(m.func_mut(carat_ir::FuncId(0)));
        assert_eq!(n, 1, "a+b == b+a");
        verify_module(&m).unwrap();
    }

    #[test]
    fn loads_are_never_merged() {
        let mut mb = ModuleBuilder::new("m");
        let fid = mb.declare("f", vec![Type::Ptr], Some(Type::I64));
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            b.switch_to(e);
            let x = b.load(Type::I64, b.arg(0));
            let c = b.const_i64(1);
            b.store(Type::I64, b.arg(0), c);
            let y = b.load(Type::I64, b.arg(0));
            let s = b.add(x, y);
            b.ret(Some(s));
        }
        let mut m = mb.finish();
        let n = run(m.func_mut(carat_ir::FuncId(0)));
        assert_eq!(n, 0, "loads have memory effects");
    }
}
