//! Scalar-evolution analysis for canonical counted loops.
//!
//! CARAT's Opt 2 (guard merging) needs to know, for a guarded address in a
//! loop, the full range of addresses the guard will check across the loop's
//! lifetime. This module recognizes *canonical loops* — a single induction
//! variable `iv = phi(init, iv + step)` bounded by a loop-invariant `N`
//! through `icmp slt/sle` — and classifies addresses as affine functions of
//! the induction variable.

use crate::invariance::LoopInvariance;
use crate::loops::Loop;
use carat_ir::{BinOp, Const, Function, Inst, Pred, Type, ValueId};

/// A recognized `for (iv = init; iv < bound; iv += step)` loop.
#[derive(Debug, Clone)]
pub struct LoopTripInfo {
    /// The induction variable (a header phi).
    pub iv: ValueId,
    /// Initial value of `iv`, flowing in from outside the loop.
    pub init: ValueId,
    /// Constant increment per iteration (positive).
    pub step: i64,
    /// Loop-invariant bound value.
    pub bound: ValueId,
    /// Bound predicate: `Slt` (`iv < bound`) or `Sle` (`iv <= bound`).
    pub bound_pred: Pred,
}

/// An index affine in the canonical induction variable:
/// `index = coeff * iv + inv + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineIndex {
    /// Multiplier of the induction variable (positive).
    pub coeff: i64,
    /// Optional loop-invariant summand.
    pub inv: Option<ValueId>,
    /// Constant summand.
    pub offset: i64,
}

/// How an in-loop address evolves with the induction variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PtrEvolution {
    /// Loop-invariant address.
    Invariant,
    /// `base + index * elem.stride()` with `base` loop-invariant and
    /// `index` affine in the canonical induction variable.
    Affine {
        /// Loop-invariant base pointer.
        base: ValueId,
        /// Element type scaling the index.
        elem: Type,
        /// The affine index expression.
        index: AffineIndex,
    },
    /// Anything else.
    Unknown,
}

/// Recognize the canonical induction structure of `lp`, if it has one.
///
/// Requirements: a header phi with exactly one in-loop incoming that is
/// `add(phi, c)` with constant `c > 0`; a header terminator
/// `br (icmp slt/sle phi, N), <in-loop>, <out-of-loop>` with `N`
/// loop-invariant.
pub fn canonical_loop_info(f: &Function, lp: &Loop, inv: &LoopInvariance) -> Option<LoopTripInfo> {
    // Header terminator must be a conditional branch guarding loop entry.
    let term = f.terminator(lp.header)?;
    let Inst::Br {
        cond,
        if_true,
        if_false,
    } = term
    else {
        return None;
    };
    // The "continue" edge goes into the loop, the other leaves it.
    let (continue_in_true, _exit) = match (lp.contains(*if_true), lp.contains(*if_false)) {
        (true, false) => (true, *if_false),
        (false, true) => (false, *if_true),
        _ => return None,
    };
    let Some(Inst::Icmp { pred, lhs, rhs }) = f.inst(*cond) else {
        return None;
    };
    // Normalize to `iv < bound` controlling loop continuation.
    let (iv, bound, bound_pred) = if continue_in_true {
        match pred {
            Pred::Slt | Pred::Sle => (*lhs, *rhs, *pred),
            Pred::Sgt => (*rhs, *lhs, Pred::Slt),
            Pred::Sge => (*rhs, *lhs, Pred::Sle),
            _ => return None,
        }
    } else {
        // Loop continues when the condition is FALSE: `iv >= bound` exits.
        match pred {
            Pred::Sge => (*lhs, *rhs, Pred::Slt),
            Pred::Sgt => (*lhs, *rhs, Pred::Sle),
            _ => return None,
        }
    };
    if !inv.is_invariant(f, lp, bound) {
        return None;
    }
    // iv must be a header phi of the form phi(init_outside, iv + c).
    let Some(Inst::Phi { incomings, .. }) = f.inst(iv) else {
        return None;
    };
    if f.block_of(iv) != Some(lp.header) {
        return None;
    }
    let mut init = None;
    let mut step = None;
    for (pb, pv) in incomings {
        if lp.contains(*pb) {
            // In-loop incoming must be iv + const.
            let Some(Inst::Bin { op, lhs, rhs }) = f.inst(*pv) else {
                return None;
            };
            let c = match (op, *lhs == iv, *rhs == iv) {
                (BinOp::Add, true, false) => const_i64(f, *rhs)?,
                (BinOp::Add, false, true) => const_i64(f, *lhs)?,
                _ => return None,
            };
            if c <= 0 || step.is_some_and(|s| s != c) {
                return None;
            }
            step = Some(c);
        } else {
            if init.is_some_and(|i| i != *pv) {
                return None;
            }
            init = Some(*pv);
        }
    }
    Some(LoopTripInfo {
        iv,
        init: init?,
        step: step?,
        bound,
        bound_pred,
    })
}

/// Classify how `addr` evolves over `lp` given its canonical `trip` info.
pub fn ptr_evolution(
    f: &Function,
    lp: &Loop,
    inv: &LoopInvariance,
    trip: &LoopTripInfo,
    addr: ValueId,
) -> PtrEvolution {
    if inv.is_invariant(f, lp, addr) {
        return PtrEvolution::Invariant;
    }
    let Some(Inst::PtrAdd { base, index, elem }) = f.inst(addr) else {
        return PtrEvolution::Unknown;
    };
    if !inv.is_invariant(f, lp, *base) {
        return PtrEvolution::Unknown;
    }
    match affine_index(f, lp, inv, trip, *index) {
        Some(index) if index.coeff > 0 => PtrEvolution::Affine {
            base: *base,
            elem: elem.clone(),
            index,
        },
        _ => PtrEvolution::Unknown,
    }
}

/// Decompose `idx` into `coeff * iv + inv + offset` with at most one
/// loop-invariant SSA summand. Returns `None` when the expression is not
/// affine in the induction variable (or has two symbolic summands, which
/// the range-guard emitter cannot rebuild without more code).
pub fn affine_index(
    f: &Function,
    lp: &Loop,
    inv: &LoopInvariance,
    trip: &LoopTripInfo,
    idx: ValueId,
) -> Option<AffineIndex> {
    // Strip integer casts.
    let mut v = idx;
    while let Some(Inst::Cast { value, .. }) = f.inst(v) {
        v = *value;
    }
    if v == trip.iv {
        return Some(AffineIndex {
            coeff: 1,
            inv: None,
            offset: 0,
        });
    }
    if let Some(c) = const_i64(f, v) {
        return Some(AffineIndex {
            coeff: 0,
            inv: None,
            offset: c,
        });
    }
    if inv.is_invariant(f, lp, v) {
        return Some(AffineIndex {
            coeff: 0,
            inv: Some(v),
            offset: 0,
        });
    }
    let Some(Inst::Bin { op, lhs, rhs }) = f.inst(v) else {
        return None;
    };
    match op {
        BinOp::Add => {
            let a = affine_index(f, lp, inv, trip, *lhs)?;
            let b = affine_index(f, lp, inv, trip, *rhs)?;
            let merged_inv = match (a.inv, b.inv) {
                (x, None) => x,
                (None, y) => y,
                (Some(_), Some(_)) => return None,
            };
            Some(AffineIndex {
                coeff: a.coeff.checked_add(b.coeff)?,
                inv: merged_inv,
                offset: a.offset.checked_add(b.offset)?,
            })
        }
        BinOp::Sub => {
            let a = affine_index(f, lp, inv, trip, *lhs)?;
            let b = affine_index(f, lp, inv, trip, *rhs)?;
            if b.inv.is_some() {
                return None; // would need emitted negation
            }
            Some(AffineIndex {
                coeff: a.coeff.checked_sub(b.coeff)?,
                inv: a.inv,
                offset: a.offset.checked_sub(b.offset)?,
            })
        }
        BinOp::Mul => {
            let (expr, c) = if let Some(c) = const_i64(f, *rhs) {
                (*lhs, c)
            } else if let Some(c) = const_i64(f, *lhs) {
                (*rhs, c)
            } else {
                return None;
            };
            let a = affine_index(f, lp, inv, trip, expr)?;
            if a.inv.is_some() {
                return None; // would need emitted multiply of the symbol
            }
            Some(AffineIndex {
                coeff: a.coeff.checked_mul(c)?,
                inv: None,
                offset: a.offset.checked_mul(c)?,
            })
        }
        _ => None,
    }
}

fn const_i64(f: &Function, v: ValueId) -> Option<i64> {
    match f.inst(v) {
        Some(Inst::Const(Const::Int(x, _))) => Some(*x),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias::ChainedAlias;
    use crate::cfg::Cfg;
    use crate::dom::DomTree;
    use crate::loops::LoopForest;
    use carat_ir::{ModuleBuilder, Type};

    /// for (i = 0; i < n; i += step) { use a[i]; use p }
    fn build(step: i64, pred: Pred) -> (carat_ir::Module, [ValueId; 3]) {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr, Type::Ptr, Type::I64], None);
        let ids;
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let h = b.block("header");
            let body = b.block("body");
            let x = b.block("exit");
            b.switch_to(e);
            let zero = b.const_i64(0);
            let stepc = b.const_i64(step);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(pred, i, b.arg(2));
            b.br(c, body, x);
            b.switch_to(body);
            let ai = b.ptr_add(b.arg(0), i, Type::F64);
            let v = b.load(Type::F64, ai);
            b.store(Type::F64, b.arg(1), v);
            let i2 = b.add(i, stepc);
            b.phi_add_incoming(i, body, i2);
            b.jmp(h);
            b.switch_to(x);
            b.ret(None);
            ids = [i, ai, b.arg(1)];
        }
        (mb.finish(), ids)
    }

    fn analyze(m: &carat_ir::Module) -> (&carat_ir::Function, crate::loops::Loop, LoopInvariance) {
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dt);
        let lp = forest.loops[0].clone();
        let aa = ChainedAlias::new();
        let inv = LoopInvariance::compute(f, &lp, &aa);
        (f, lp, inv)
    }

    #[test]
    fn recognizes_canonical_loop() {
        let (m, [i, _, _]) = build(1, Pred::Slt);
        let (f, lp, inv) = analyze(&m);
        let trip = canonical_loop_info(f, &lp, &inv).expect("canonical");
        assert_eq!(trip.iv, i);
        assert_eq!(trip.step, 1);
        assert_eq!(trip.bound, f.arg(2));
        assert_eq!(trip.bound_pred, Pred::Slt);
    }

    #[test]
    fn recognizes_strided_loop_and_sle() {
        let (m, _) = build(4, Pred::Sle);
        let (f, lp, inv) = analyze(&m);
        let trip = canonical_loop_info(f, &lp, &inv).expect("canonical");
        assert_eq!(trip.step, 4);
        assert_eq!(trip.bound_pred, Pred::Sle);
    }

    #[test]
    fn classifies_address_evolutions() {
        let (m, [_, ai, p]) = build(1, Pred::Slt);
        let (f, lp, inv) = analyze(&m);
        let trip = canonical_loop_info(f, &lp, &inv).unwrap();
        match ptr_evolution(f, &lp, &inv, &trip, ai) {
            PtrEvolution::Affine { base, elem, index } => {
                assert_eq!(base, f.arg(0));
                assert_eq!(elem, Type::F64);
                assert_eq!(
                    index,
                    AffineIndex {
                        coeff: 1,
                        inv: None,
                        offset: 0
                    }
                );
            }
            other => panic!("expected affine, got {other:?}"),
        }
        assert_eq!(
            ptr_evolution(f, &lp, &inv, &trip, p),
            PtrEvolution::Invariant
        );
    }

    #[test]
    fn rejects_non_canonical_condition() {
        let (m, _) = build(1, Pred::Eq);
        let (f, lp, inv) = analyze(&m);
        assert!(canonical_loop_info(f, &lp, &inv).is_none());
    }

    /// Affine decomposition of composite index expressions.
    #[test]
    fn affine_index_composites() {
        use carat_ir::{BinOp, ModuleBuilder};
        // for (i = 0; i < n; i++) { use a[i*4 + m + 2]; use a[m - i]; }
        let mut mb = ModuleBuilder::new("m");
        let fid = mb.declare("f", vec![Type::Ptr, Type::I64, Type::I64], None);
        let (idx_good, idx_negcoeff, idx_two_syms);
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            let h = b.block("h");
            let body = b.block("body");
            let x = b.block("x");
            b.switch_to(e);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(Pred::Slt, i, b.arg(1));
            b.br(c, body, x);
            b.switch_to(body);
            let four = b.const_i64(4);
            let two = b.const_i64(2);
            let i4 = b.mul(i, four);
            let i4m = b.add(i4, b.arg(2));
            idx_good = b.add(i4m, two); // 4*i + m + 2
            idx_negcoeff = b.sub(b.arg(2), i); // m - i (coeff -1)
            idx_two_syms = b.add(b.arg(1), b.arg(2)); // invariant (single sym? two syms but whole expr invariant)
            let _ = b.bin(BinOp::Xor, idx_good, idx_good);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, body, i2);
            b.jmp(h);
            b.switch_to(x);
            b.ret(None);
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dt);
        let lp = forest.loops[0].clone();
        let aa = ChainedAlias::new();
        let inv = LoopInvariance::compute(f, &lp, &aa);
        let trip = canonical_loop_info(f, &lp, &inv).expect("canonical");
        let a = affine_index(f, &lp, &inv, &trip, idx_good).expect("affine");
        assert_eq!(a.coeff, 4);
        assert_eq!(a.inv, Some(f.arg(2)));
        assert_eq!(a.offset, 2);
        // m - i: coeff -1 is representable by affine_index (Sub), but
        // ptr_evolution rejects non-positive coefficients.
        let neg = affine_index(f, &lp, &inv, &trip, idx_negcoeff).expect("affine");
        assert_eq!(neg.coeff, -1);
        // n + m is loop-invariant: the whole expression is one symbol.
        let inv_expr = affine_index(f, &lp, &inv, &trip, idx_two_syms).expect("invariant expr");
        assert_eq!(inv_expr.coeff, 0);
        assert_eq!(inv_expr.inv, Some(idx_two_syms));
    }
}
