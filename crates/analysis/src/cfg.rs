//! Control-flow-graph utilities: orders and reachability.

use carat_ir::{BlockId, Function};

/// Precomputed CFG orderings for a function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks in reverse postorder (entry first).
    pub rpo: Vec<BlockId>,
    /// `rpo_index[b] = position of b in rpo`, or `usize::MAX` if unreachable.
    pub rpo_index: Vec<usize>,
    /// Predecessor lists (indexed by block).
    pub preds: Vec<Vec<BlockId>>,
    /// Successor lists (indexed by block).
    pub succs: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Compute CFG structure for `f`.
    pub fn compute(f: &Function) -> Cfg {
        let n = f.num_blocks();
        let mut succs = vec![Vec::new(); n];
        for b in f.block_ids() {
            succs[b.index()] = f.successors(b);
        }
        let mut preds = vec![Vec::new(); n];
        for b in f.block_ids() {
            for &s in &succs[b.index()] {
                preds[s.index()].push(b);
            }
        }
        // Iterative DFS postorder from entry.
        let mut post = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let entry = f.entry();
        // stack of (block, next successor index)
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg {
            rpo,
            rpo_index,
            preds,
            succs,
        }
    }

    /// Whether `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{Inst, ModuleBuilder, Type};

    fn diamond() -> carat_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::I1], None);
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let t = b.block("t");
            let fl = b.block("f");
            let j = b.block("join");
            b.switch_to(e);
            b.br(b.arg(0), t, fl);
            b.switch_to(t);
            b.jmp(j);
            b.switch_to(fl);
            b.jmp(j);
            b.switch_to(j);
            b.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn rpo_starts_at_entry_ends_at_exit() {
        let m = diamond();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        assert_eq!(cfg.rpo.first(), Some(&f.entry()));
        assert_eq!(cfg.rpo.last(), Some(&BlockId(3)));
        assert_eq!(cfg.rpo.len(), 4);
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let mut m = diamond();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func_mut(fid);
        let dead = f.add_block("dead");
        f.append(dead, Inst::Ret { value: None });
        let cfg = Cfg::compute(f);
        assert!(!cfg.is_reachable(dead));
        assert!(cfg.is_reachable(f.entry()));
    }

    #[test]
    fn preds_and_succs_agree() {
        let m = diamond();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        for b in f.block_ids() {
            for &s in &cfg.succs[b.index()] {
                assert!(cfg.preds[s.index()].contains(&b));
            }
        }
    }
}
