//! The Cm sources of the workload suite.
//!
//! Each program models the *memory behavior* of one benchmark from the
//! paper's suites (Mantevo, NAS, PARSEC, SPEC2017) — footprint, access
//! pattern, allocation rate, and escape density — at a size controlled by
//! [`Scale`](crate::Scale). Every `main` returns a checksum so semantics
//! preservation under instrumentation and page movement is testable.

/// HPCCG (Mantevo): 27-point-stencil-flavored sparse CG iteration —
/// regular strided access over medium arrays, dot products.
pub fn hpccg(n: i64, iters: i64) -> String {
    format!(
        r#"
double xs[{n}];
double rs[{n}];
double ps[{n}];
int main() {{
    int n = {n};
    for (int i = 0; i < n; i += 1) {{
        xs[i] = 0.0;
        rs[i] = 1.0 + (i % 7);
        ps[i] = rs[i];
    }}
    double rtrans = 0.0;
    for (int it = 0; it < {iters}; it += 1) {{
        /* sparse matvec: tridiagonal-ish stencil */
        for (int i = 1; i < n - 1; i += 1) {{
            xs[i] = 2.0 * ps[i] - 0.5 * ps[i - 1] - 0.5 * ps[i + 1];
        }}
        double alpha_den = 0.0;
        for (int i = 0; i < n; i += 1) {{ alpha_den += ps[i] * xs[i]; }}
        rtrans = 0.0;
        for (int i = 0; i < n; i += 1) {{ rtrans += rs[i] * rs[i]; }}
        double alpha = rtrans / (alpha_den + 1.0);
        for (int i = 0; i < n; i += 1) {{
            rs[i] -= alpha * xs[i];
            ps[i] = rs[i] + 0.5 * ps[i];
        }}
    }}
    return (int) (rtrans * 1000.0);
}}
"#
    )
}

/// NAS CG: sparse matrix-vector products with an indirection (column
/// index) array — scattered reads over a large footprint.
pub fn cg(rows: i64, nz_per_row: i64, iters: i64) -> String {
    format!(
        r#"
int main() {{
    int rows = {rows};
    int nz = {nz_per_row};
    int* colidx = (int*) malloc(rows * nz * sizeof(int));
    double* a = (double*) malloc(rows * nz * sizeof(double));
    double* x = (double*) malloc(rows * sizeof(double));
    double* y = (double*) malloc(rows * sizeof(double));
    for (int i = 0; i < rows; i += 1) {{
        x[i] = 1.0;
        for (int k = 0; k < nz; k += 1) {{
            colidx[i * nz + k] = (i * 31 + k * 97) % rows;
            a[i * nz + k] = 0.01 * ((i + k) % 13);
        }}
    }}
    double norm = 0.0;
    for (int it = 0; it < {iters}; it += 1) {{
        for (int i = 0; i < rows; i += 1) {{
            double s = 0.0;
            for (int k = 0; k < nz; k += 1) {{
                s += a[i * nz + k] * x[colidx[i * nz + k]];
            }}
            y[i] = s;
        }}
        norm = 0.0;
        for (int i = 0; i < rows; i += 1) {{ norm += y[i] * y[i]; x[i] = y[i] / 10.0 + 0.5; }}
    }}
    free(colidx); free(a); free(x); free(y);
    return (int) (norm * 100.0);
}}
"#
    )
}

/// NAS EP: embarrassingly parallel random-number crunching — almost no
/// memory traffic, tiny footprint.
pub fn ep(samples: i64) -> String {
    format!(
        r#"
int main() {{
    int inside = 0;
    for (int i = 0; i < {samples}; i += 1) {{
        int rx = rand() % 10000;
        int ry = rand() % 10000;
        double fx = rx / 10000.0;
        double fy = ry / 10000.0;
        if (fx * fx + fy * fy < 1.0) {{ inside += 1; }}
    }}
    return inside;
}}
"#
    )
}

/// NAS FT: FFT-style passes over large global arrays — bit-reversal
/// scatter followed by strided butterfly sweeps (global bss arrays, like
/// the paper's note that FT's footprint is almost entirely static).
pub fn ft(log_n: u32, iters: i64) -> String {
    let n = 1i64 << log_n;
    format!(
        r#"
double re[{n}];
double im[{n}];
int main() {{
    int n = {n};
    for (int i = 0; i < n; i += 1) {{ re[i] = (i % 17) * 0.25; im[i] = 0.0; }}
    double check = 0.0;
    for (int it = 0; it < {iters}; it += 1) {{
        /* bit-reversal-flavored scatter */
        for (int i = 0; i < n; i += 1) {{
            int j = (i * 2654435761) % n;
            if (j < 0) {{ j = -j; }}
            if (i < j) {{
                double t = re[i]; re[i] = re[j]; re[j] = t;
            }}
        }}
        /* butterfly passes at growing strides */
        for (int stride = 1; stride < n; stride *= 2) {{
            for (int i = 0; i + stride < n; i += 2 * stride) {{
                double a = re[i];
                double b = re[i + stride];
                re[i] = a + b;
                re[i + stride] = a - b;
                im[i] += 0.5 * b;
            }}
        }}
        check = re[0] + im[n / 2];
        for (int i = 0; i < n; i += 1) {{ re[i] = re[i] / 2.0 + 0.125; }}
    }}
    return (int) check;
}}
"#
    )
}

/// NAS LU: dense blocked triangular sweeps — perfectly regular nested
/// loops over a global matrix (fully hoistable/mergeable guards).
pub fn lu(dim: i64, iters: i64) -> String {
    format!(
        r#"
double m[{sq}];
int main() {{
    int n = {dim};
    for (int i = 0; i < n; i += 1) {{
        for (int j = 0; j < n; j += 1) {{
            m[i * n + j] = 1.0 / (1.0 + i + j);
        }}
    }}
    double sum = 0.0;
    for (int it = 0; it < {iters}; it += 1) {{
        for (int k = 0; k < n - 1; k += 1) {{
            for (int i = k + 1; i < n; i += 1) {{
                double f = m[i * n + k] / (m[k * n + k] + 1.0);
                for (int j = k; j < n; j += 1) {{
                    m[i * n + j] -= f * m[k * n + j];
                }}
            }}
        }}
        sum = 0.0;
        for (int d = 0; d < n; d += 1) {{ sum += m[d * n + d]; }}
    }}
    return (int) (sum * 100.0);
}}
"#,
        sq = dim * dim
    )
}

/// PARSEC blackscholes: independent per-option math over an array of
/// structs — exp/log/sqrt heavy, streaming reads.
pub fn blackscholes(options: i64, iters: i64) -> String {
    format!(
        r#"
struct option {{ double spot; double strike; double rate; double vol; double time; }};
double cnd(double x) {{
    double a = x;
    if (a < 0.0) {{ a = -a; }}
    double k = 1.0 / (1.0 + 0.2316419 * a);
    double w = 0.3989423 * exp(-0.5 * a * a)
        * k * (0.3193815 + k * (-0.3565638 + k * 1.7814779));
    if (x < 0.0) {{ return w; }}
    return 1.0 - w;
}}
int main() {{
    int n = {options};
    struct option* opts = (struct option*) malloc(n * sizeof(struct option));
    for (int i = 0; i < n; i += 1) {{
        opts[i].spot = 90.0 + (i % 21);
        opts[i].strike = 100.0;
        opts[i].rate = 0.02;
        opts[i].vol = 0.2 + 0.01 * (i % 5);
        opts[i].time = 0.5 + 0.1 * (i % 4);
    }}
    double acc = 0.0;
    for (int it = 0; it < {iters}; it += 1) {{
        for (int i = 0; i < n; i += 1) {{
            double s = opts[i].spot;
            double x = opts[i].strike;
            double t = opts[i].time;
            double v = opts[i].vol;
            double r = opts[i].rate;
            double d1 = (log(s / x) + (r + 0.5 * v * v) * t) / (v * sqrt(t));
            double d2 = d1 - v * sqrt(t);
            acc += s * cnd(d1) - x * exp(-r * t) * cnd(d2);
        }}
    }}
    free(opts);
    return (int) acc;
}}
"#
    )
}

/// PARSEC canneal: random element swaps across a large array — the
/// worst-case random access pattern (high DTLB miss rate).
pub fn canneal(elements: i64, swaps: i64) -> String {
    format!(
        r#"
int main() {{
    int n = {elements};
    int* net = (int*) malloc(n * sizeof(int));
    for (int i = 0; i < n; i += 1) {{ net[i] = i; }}
    int cost = 0;
    for (int s = 0; s < {swaps}; s += 1) {{
        int a = rand() % n;
        int b = rand() % n;
        int t = net[a];
        net[a] = net[b];
        net[b] = t;
        cost += net[a] % 7 - net[b] % 5;
    }}
    int check = cost;
    for (int i = 0; i < n; i += 271) {{ check += net[i]; }}
    free(net);
    return check;
}}
"#
    )
}

/// PARSEC fluidanimate: grid-of-cells neighbor sweeps — mostly regular
/// with short-range neighbor access.
pub fn fluidanimate(grid: i64, steps: i64) -> String {
    format!(
        r#"
int main() {{
    int g = {grid};
    int cells = g * g;
    double* density = (double*) malloc(cells * sizeof(double));
    double* next = (double*) malloc(cells * sizeof(double));
    for (int i = 0; i < cells; i += 1) {{ density[i] = (i % 9) * 0.125; }}
    for (int s = 0; s < {steps}; s += 1) {{
        for (int y = 1; y < g - 1; y += 1) {{
            for (int x = 1; x < g - 1; x += 1) {{
                int c = y * g + x;
                next[c] = 0.2 * (density[c] + density[c - 1] + density[c + 1]
                    + density[c - g] + density[c + g]);
            }}
        }}
        double* t = density; density = next; next = t;
    }}
    double sum = 0.0;
    for (int i = 0; i < cells; i += 1) {{ sum += density[i]; }}
    free(density); free(next);
    return (int) (sum * 10.0);
}}
"#
    )
}

/// PARSEC freqmine: FP-tree-style linked structure built from many small
/// allocations — each node escapes into its parent's child list.
pub fn freqmine(transactions: i64, depth: i64) -> String {
    format!(
        r#"
struct node {{ int item; int count; struct node* child; struct node* sibling; }};
struct node* find_or_add(struct node* parent, int item) {{
    struct node* c = parent->child;
    while (c != null) {{
        if (c->item == item) {{ c->count += 1; return c; }}
        c = c->sibling;
    }}
    struct node* fresh = (struct node*) malloc(sizeof(struct node));
    fresh->item = item;
    fresh->count = 1;
    fresh->child = null;
    fresh->sibling = parent->child;
    parent->child = fresh;
    return fresh;
}}
int count_tree(struct node* n) {{
    if (n == null) {{ return 0; }}
    return n->count + count_tree(n->child) + count_tree(n->sibling);
}}
int main() {{
    struct node* root = (struct node*) malloc(sizeof(struct node));
    root->item = -1; root->count = 0; root->child = null; root->sibling = null;
    for (int t = 0; t < {transactions}; t += 1) {{
        struct node* cur = root;
        for (int d = 0; d < {depth}; d += 1) {{
            int item = (t * 7 + d * 13) % 23;
            cur = find_or_add(cur, item);
        }}
    }}
    return count_tree(root);
}}
"#
    )
}

/// PARSEC streamcluster: distance evaluations over a point set — many
/// escapes early (each point's coordinate block pointer), then pure
/// compute, matching the paper's observation.
pub fn streamcluster(points: i64, dims: i64, rounds: i64) -> String {
    format!(
        r#"
struct point {{ double* coords; double weight; }};
int main() {{
    int n = {points};
    int d = {dims};
    struct point* pts = (struct point*) malloc(n * sizeof(struct point));
    for (int i = 0; i < n; i += 1) {{
        pts[i].coords = (double*) malloc(d * sizeof(double));
        pts[i].weight = 1.0;
        for (int k = 0; k < d; k += 1) {{ pts[i].coords[k] = ((i * 31 + k) % 11) * 0.3; }}
    }}
    double total = 0.0;
    for (int r = 0; r < {rounds}; r += 1) {{
        int center = r % n;
        for (int i = 0; i < n; i += 1) {{
            double dist = 0.0;
            for (int k = 0; k < d; k += 1) {{
                double diff = pts[i].coords[k] - pts[center].coords[k];
                dist += diff * diff;
            }}
            total += dist * pts[i].weight;
        }}
    }}
    for (int i = 0; i < n; i += 1) {{ free(pts[i].coords); }}
    free(pts);
    return (int) total;
}}
"#
    )
}

/// PARSEC swaptions: an HJM-style simulation allocating one simulation
/// path per trial and keeping them all live — the paper's tracking-memory
/// outlier (its absolute tracking overhead was the suite's largest).
pub fn swaptions(trials: i64, path_len: i64) -> String {
    format!(
        r#"
double* paths[{trials}];
int main() {{
    double acc = 0.0;
    for (int t = 0; t < {trials}; t += 1) {{
        double* path = (double*) malloc({path_len} * sizeof(double));
        paths[t] = path;
        path[0] = 0.05;
        for (int i = 1; i < {path_len}; i += 1) {{
            path[i] = path[i - 1] + 0.0001 * (rand() % 100 - 50);
        }}
        acc += path[{path_len} - 1];
    }}
    /* batched pricing pass over every retained path */
    for (int t = 0; t < {trials}; t += 1) {{
        acc += paths[t][{path_len} / 2] * 0.001;
    }}
    for (int t = 0; t < {trials}; t += 1) {{ free(paths[t]); }}
    return (int) (acc * 1000.0);
}}
"#
    )
}

/// PARSEC x264 (and SPEC x264_s): block-based frame processing — copies
/// and SAD computations over 16x16 blocks of a frame buffer.
pub fn x264(width: i64, height: i64, frames: i64) -> String {
    format!(
        r#"
int main() {{
    int w = {width};
    int h = {height};
    char* cur = (char*) malloc(w * h);
    char* ref = (char*) malloc(w * h);
    for (int i = 0; i < w * h; i += 1) {{ cur[i] = (char) (i % 251); ref[i] = (char) ((i * 3) % 251); }}
    int sad_total = 0;
    for (int f = 0; f < {frames}; f += 1) {{
        for (int by = 0; by + 16 <= h; by += 16) {{
            for (int bx = 0; bx + 16 <= w; bx += 16) {{
                int sad = 0;
                for (int y = 0; y < 16; y += 1) {{
                    for (int x = 0; x < 16; x += 1) {{
                        int a = cur[(by + y) * w + bx + x];
                        int b = ref[(by + y) * w + bx + x];
                        int diff = a - b;
                        if (diff < 0) {{ diff = -diff; }}
                        sad += diff;
                    }}
                }}
                sad_total += sad;
                if (sad < 64) {{
                    memcpy(ref + (by * w + bx), cur + (by * w + bx), 16);
                }}
            }}
        }}
        char* t = cur; cur = ref; ref = t;
    }}
    free(cur); free(ref);
    return sad_total;
}}
"#
    )
}

/// SPEC deepsjeng_s: transposition-table probing — random hash lookups
/// into a large table with occasional replacement.
pub fn deepsjeng(table_bits: u32, probes: i64) -> String {
    let size = 1i64 << table_bits;
    format!(
        r#"
struct entry {{ int key; int depth; int score; int flags; }};
int main() {{
    int size = {size};
    struct entry* tt = (struct entry*) malloc(size * sizeof(struct entry));
    for (int i = 0; i < size; i += 1) {{ tt[i].key = -1; tt[i].depth = 0; }}
    int hits = 0;
    int h = 88172645;
    for (int p = 0; p < {probes}; p += 1) {{
        h = h * 1103515245 + 12345;
        int idx = h % size;
        if (idx < 0) {{ idx = -idx; }}
        if (tt[idx].key == h % 1000) {{
            hits += tt[idx].score;
        }} else {{
            tt[idx].key = h % 1000;
            tt[idx].depth = p % 32;
            tt[idx].score = h % 97;
            tt[idx].flags = 3;
        }}
    }}
    free(tt);
    return hits;
}}
"#
    )
}

/// SPEC lbm_s: lattice-Boltzmann streaming — huge working set swept
/// linearly every step (high steady DTLB pressure like the paper's lbm).
pub fn lbm(cells: i64, steps: i64) -> String {
    format!(
        r#"
int main() {{
    int n = {cells};
    double* src = (double*) malloc(n * sizeof(double));
    double* dst = (double*) malloc(n * sizeof(double));
    for (int i = 0; i < n; i += 1) {{ src[i] = (i % 19) * 0.05; }}
    for (int s = 0; s < {steps}; s += 1) {{
        for (int i = 1; i < n - 1; i += 1) {{
            dst[i] = 0.6 * src[i] + 0.2 * src[i - 1] + 0.2 * src[i + 1];
        }}
        double* t = src; src = dst; dst = t;
    }}
    double sum = 0.0;
    for (int i = 0; i < n; i += 257) {{ sum += src[i]; }}
    free(src); free(dst);
    return (int) (sum * 10.0);
}}
"#
    )
}

/// SPEC mcf_s: network-simplex pointer chasing — arcs and nodes as linked
/// records, irregular traversal (guards largely unoptimizable, like the
/// paper's mcf row in Table 1).
pub fn mcf(nodes: i64, arcs_per_node: i64, sweeps: i64) -> String {
    format!(
        r#"
struct arc {{ int cost; struct nodeT* head; struct arc* next; }};
struct nodeT {{ int potential; struct arc* first; struct nodeT* link; }};
int main() {{
    int n = {nodes};
    struct nodeT* all = (struct nodeT*) malloc(n * sizeof(struct nodeT));
    for (int i = 0; i < n; i += 1) {{
        all[i].potential = i % 100;
        all[i].first = null;
        all[i].link = null;
    }}
    for (int i = 0; i + 1 < n; i += 1) {{ all[i].link = &all[i + 1]; }}
    for (int i = 0; i < n; i += 1) {{
        for (int k = 0; k < {arcs_per_node}; k += 1) {{
            struct arc* a = (struct arc*) malloc(sizeof(struct arc));
            a->cost = (i * 7 + k * 3) % 50 - 25;
            a->head = &all[(i * 31 + k * 17 + 1) % n];
            a->next = all[i].first;
            all[i].first = a;
        }}
    }}
    int total = 0;
    for (int s = 0; s < {sweeps}; s += 1) {{
        struct nodeT* nd = &all[0];
        while (nd != null) {{
            struct arc* a = nd->first;
            while (a != null) {{
                int reduced = a->cost + nd->potential - a->head->potential;
                if (reduced < 0) {{ a->head->potential += 1; total += 1; }}
                a = a->next;
            }}
            nd = nd->link;
        }}
    }}
    return total;
}}
"#
    )
}

/// SPEC nab_s: molecular dynamics-ish — one structure accumulating MANY
/// escapes (the paper's Figure 5 outlier with up to 47-escape allocations).
pub fn nab(atoms: i64, steps: i64) -> String {
    format!(
        r#"
struct atom {{ double x; double y; double z; double fx; double fy; }};
struct ref {{ struct atom* target; struct ref* next; }};
int main() {{
    int n = {atoms};
    struct atom* atomsv = (struct atom*) malloc(n * sizeof(struct atom));
    for (int i = 0; i < n; i += 1) {{
        atomsv[i].x = (i % 13) * 0.5;
        atomsv[i].y = (i % 7) * 0.25;
        atomsv[i].z = (i % 5) * 0.125;
    }}
    /* neighbor lists: many cells escape pointers to the same atom block */
    struct ref* lists = null;
    for (int i = 0; i < n; i += 1) {{
        struct ref* r = (struct ref*) malloc(sizeof(struct ref));
        r->target = &atomsv[(i * 17 + 1) % n];
        r->next = lists;
        lists = r;
    }}
    double energy = 0.0;
    for (int s = 0; s < {steps}; s += 1) {{
        struct ref* r = lists;
        while (r != null) {{
            struct atom* a = r->target;
            double d = a->x * a->x + a->y * a->y + a->z * a->z + 1.0;
            energy += 1.0 / d;
            a->fx += 0.001;
            r = r->next;
        }}
    }}
    return (int) (energy * 100.0);
}}
"#
    )
}

/// SPEC namd_r: pairwise force computation over fixed particle arrays —
/// compute bound, modest memory.
pub fn namd(particles: i64, steps: i64) -> String {
    format!(
        r#"
double px[{particles}];
double py[{particles}];
double fx[{particles}];
int main() {{
    int n = {particles};
    for (int i = 0; i < n; i += 1) {{ px[i] = (i % 29) * 0.1; py[i] = (i % 31) * 0.2; }}
    double virial = 0.0;
    for (int s = 0; s < {steps}; s += 1) {{
        for (int i = 0; i < n; i += 1) {{
            double f = 0.0;
            for (int j = i + 1; j < n; j += 8) {{
                double dx = px[i] - px[j];
                double dy = py[i] - py[j];
                double r2 = dx * dx + dy * dy + 0.5;
                f += 1.0 / r2;
            }}
            fx[i] = f;
            virial += f;
        }}
    }}
    return (int) virial;
}}
"#
    )
}

/// SPEC xalancbmk_s: DOM-tree construction and traversal — node records
/// with child/sibling pointers, many small allocations.
pub fn xalancbmk(fanout: i64, levels: i64, traversals: i64) -> String {
    format!(
        r#"
struct elem {{ int tag; struct elem* first_child; struct elem* next_sibling; }};
struct elem* build(int level, int tag) {{
    struct elem* e = (struct elem*) malloc(sizeof(struct elem));
    e->tag = tag;
    e->first_child = null;
    e->next_sibling = null;
    if (level > 0) {{
        for (int c = 0; c < {fanout}; c += 1) {{
            struct elem* child = build(level - 1, tag * {fanout} + c);
            child->next_sibling = e->first_child;
            e->first_child = child;
        }}
    }}
    return e;
}}
int walk(struct elem* e) {{
    if (e == null) {{ return 0; }}
    return e->tag % 1009 + walk(e->first_child) + walk(e->next_sibling);
}}
int main() {{
    struct elem* root = build({levels}, 1);
    int check = 0;
    for (int t = 0; t < {traversals}; t += 1) {{ check += walk(root) % 65536; }}
    return check;
}}
"#
    )
}

/// SPEC xz_s: LZ-style match finding and copying over byte buffers —
/// char-granularity loads/stores with data-dependent copies.
pub fn xz(input_len: i64, passes: i64) -> String {
    format!(
        r#"
int main() {{
    int n = {input_len};
    char* buf = (char*) malloc(n);
    char* out = (char*) malloc(n);
    for (int i = 0; i < n; i += 1) {{ buf[i] = (char) ((i * i + i / 3) % 17); }}
    int emitted = 0;
    for (int p = 0; p < {passes}; p += 1) {{
        int pos = 4;
        emitted = 0;
        while (pos < n - 4) {{
            /* look for a match 4 bytes back */
            int len = 0;
            while (len < 4 && pos + len < n && buf[pos + len] == buf[pos + len - 4]) {{
                len += 1;
            }}
            if (len >= 3) {{
                /* copy the match */
                for (int k = 0; k < len; k += 1) {{ out[emitted + k] = buf[pos + k - 4]; }}
                emitted += len;
                pos += len;
            }} else {{
                out[emitted] = buf[pos];
                emitted += 1;
                pos += 1;
            }}
        }}
        buf[p % n] = (char) (p % 120);
    }}
    int check = emitted;
    for (int i = 0; i < emitted; i += 97) {{ check += out[i]; }}
    free(buf); free(out);
    return check;
}}
"#
    )
}

/// PARSEC bodytrack: multi-stage image-pyramid-style passes over a few
/// medium buffers with per-frame temporary allocations.
pub fn bodytrack(width: i64, frames: i64) -> String {
    format!(
        r#"
int main() {{
    int w = {width};
    int size = w * w;
    double* image = (double*) malloc(size * sizeof(double));
    for (int i = 0; i < size; i += 1) {{ image[i] = (i % 23) * 0.04; }}
    double likelihood = 0.0;
    for (int f = 0; f < {frames}; f += 1) {{
        /* per-frame temporary pyramid level */
        double* half = (double*) malloc((size / 4) * sizeof(double));
        for (int y = 0; y < w / 2; y += 1) {{
            for (int x = 0; x < w / 2; x += 1) {{
                half[y * (w / 2) + x] = 0.25 * (
                    image[2 * y * w + 2 * x] + image[2 * y * w + 2 * x + 1]
                    + image[(2 * y + 1) * w + 2 * x] + image[(2 * y + 1) * w + 2 * x + 1]);
            }}
        }}
        for (int i = 0; i < size / 4; i += 1) {{ likelihood += half[i] * 0.001; }}
        free(half);
        image[f % size] += 0.5;
    }}
    free(image);
    return (int) (likelihood * 100.0);
}}
"#
    )
}

/// PARSEC dedup: pipeline-parallel chunking/compression model — worker
/// threads (on heap-allocated stacks, paper §2.2) hash disjoint slices of
/// a shared buffer while the main thread merges.
pub fn dedup(chunk: i64, workers_chunks: i64) -> String {
    format!(
        r#"
char* buffer;
int chunk_hashes[{total}];

int worker(int wid) {{
    int base = wid * {workers_chunks};
    for (int c = 0; c < {workers_chunks}; c += 1) {{
        int h = 0;
        int off = (base + c) * {chunk};
        for (int i = 0; i < {chunk}; i += 1) {{
            h = h * 131 + buffer[off + i];
        }}
        chunk_hashes[base + c] = h;
    }}
    return base;
}}

int main() {{
    int total_chunks = {total};
    buffer = (char*) malloc(total_chunks * {chunk});
    for (int i = 0; i < total_chunks * {chunk}; i += 1) {{
        buffer[i] = (char) ((i * 7 + i / 13) % 101);
    }}
    int t0 = spawn(worker, 0);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    int r3 = worker(3);
    int sync = join(t0) + join(t1) + join(t2) + r3;
    /* dedup: count distinct neighboring hashes */
    int distinct = 1;
    for (int c = 1; c < total_chunks; c += 1) {{
        if (chunk_hashes[c] != chunk_hashes[c - 1]) {{ distinct += 1; }}
    }}
    free(buffer);
    return distinct + sync % 7;
}}
"#,
        total = 4 * workers_chunks,
    )
}

/// The chaos tenant: the fleet tenant's storm-hardened sibling. Same
/// microservice-sized capsule, but its allocation sites stay hot for
/// the whole run — every pass mallocs (and frees) a scratch block, so a
/// `TenantOom` injection can land at any point in the tenant's life,
/// not just at startup — and its pointer list keeps live escapes in
/// every pass (compaction-victim and move-fault material). The result
/// is a pure function of `(slots, passes, seed)`, so a supervised
/// respawn-from-image must reproduce it exactly.
pub fn chaos_tenant(slots: i64, passes: i64, seed: i64) -> String {
    format!(
        r#"
struct node {{ int v; struct node* n; }};
int main() {{
    int n = {slots};
    struct node* head = (struct node*) null;
    for (int i = 0; i < n; i += 1) {{
        struct node* x = (struct node*) malloc(sizeof(struct node));
        x->v = ({seed} + i * 7) % 97;
        x->n = head;
        head = x;
    }}
    int s = 0;
    for (int p = 0; p < {passes}; p += 1) {{
        int* scratch = (int*) malloc(8 * sizeof(int));
        for (int i = 0; i < 8; i += 1) {{ scratch[i] = p + i; }}
        struct node* c = head;
        while (c != null) {{ s += c->v; c = c->n; }}
        for (int i = 0; i < 8; i += 1) {{ s += scratch[i]; }}
        free(scratch);
    }}
    return s % 1000000;
}}
"#
    )
}

/// The fleet tenant: a microservice-sized program for the 10k-tenant
/// scaling curve — tiny capsule, a handful of heap allocations, and a
/// pointer-cell array so every tenant carries live escapes (compaction
/// material). The seed differentiates tenants so a fleet of one module
/// still produces distinct, checkable results.
pub fn fleet_tenant(slots: i64, passes: i64, seed: i64) -> String {
    format!(
        r#"
int main() {{
    int n = {slots};
    int* data = (int*) malloc(n * sizeof(int));
    int** cells = (int**) malloc(n * sizeof(int*));
    for (int i = 0; i < n; i += 1) {{
        data[i] = ({seed} + i * 7) % 97;
        cells[i] = &data[i];
    }}
    int s = 0;
    for (int p = 0; p < {passes}; p += 1) {{
        for (int i = 0; i < n; i += 1) {{ s += *cells[i]; }}
        data[p % n] = s % 89;
    }}
    free(data);
    free(cells);
    return s % 1000000;
}}
"#
    )
}

/// The I/O server tenant: the `io_latency` bench's request/response
/// worker. Its first global (`dmabuf`, index 0) is published by the
/// host via `shared_map`, pointing at a pinned shared block the modeled
/// DMA device fills between slices. Each pass scans the buffer
/// (consuming whatever the device last wrote), folds it into a running
/// checksum, and writes a response pattern back for the device's
/// mem-to-device leg — plus a little heap churn so compaction pressure
/// has non-pinned material to chew on around the pinned hole.
pub fn io_server(words: i64, passes: i64, seed: i64) -> String {
    format!(
        r#"
int* dmabuf;
int main() {{
    int s = {seed};
    for (int p = 0; p < {passes}; p += 1) {{
        if (dmabuf != null) {{
            for (int i = 0; i < {words}; i += 1) {{
                s += dmabuf[i];
                dmabuf[i] = (s + i) % 251;
            }}
        }}
        int* scratch = (int*) malloc({words} * sizeof(int));
        for (int i = 0; i < {words}; i += 1) {{ scratch[i] = (s + i * 3) % 127; }}
        for (int i = 0; i < {words}; i += 1) {{ s += scratch[i]; }}
        free(scratch);
    }}
    return s % 1000000;
}}
"#
    )
}
