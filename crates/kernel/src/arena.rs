//! The pooled capsule arena: slab-style, size-classed slot storage for
//! externalized tenant capsules.
//!
//! Before this arena, every capsule externalization allocated a fresh
//! host `Vec<u8>` and parked it in a `HashMap` — at 100k descheduled
//! tenants that is 100k live host allocations plus per-entry map
//! overhead, churned on every externalize/rehydrate cycle. The arena
//! replaces that with power-of-two **size classes** over a slot slab:
//!
//! * a freed slot's buffer goes on its class's intrusive free list and
//!   is reused by the next capsule of that class — steady-state
//!   externalization churn performs **zero** host allocations;
//! * slot ids are generation-tagged (like [`Pid`](crate::Pid)), so a
//!   stale id from a killed tenant can never alias a successor's
//!   capsule;
//! * high-water accounting ([`ArenaStats`]) exposes the pool's true
//!   footprint to the fleet bench (`BENCH_fleet.json` arena columns);
//! * kill-time reap returns the victim's slot to the pool (tracked
//!   separately as [`ArenaStats::reaps`]).
//!
//! The arena stores bytes plus the checksum the kernel computed; the
//! checksum contract (FNV-1a verified on read, typed
//! `KernelError::CapsuleCorrupt` on mismatch) stays in
//! [`SimKernel`](crate::SimKernel), which owns fault injection.

/// Smallest slot class, as a shift: 256-byte slots.
const MIN_CLASS_SHIFT: u32 = 8;
/// Number of power-of-two classes: 256 B … 2 GiB.
const NUM_CLASSES: usize = 24;
/// Free-list terminator.
const NIL: u32 = u32::MAX;

/// Pool accounting for the capsule arena. All counters are cumulative
/// except the `*_live` pair; the high-water fields are monotone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Slots currently holding a live capsule.
    pub slots_live: u64,
    /// Bytes of live capsule images (stored lengths, not slot capacity).
    pub bytes_live: u64,
    /// Total buffer capacity the pool holds, live and free slots alike —
    /// the arena's true host-memory footprint.
    pub pooled_bytes: u64,
    /// High-water mark of `pooled_bytes` (monotone: the pool never
    /// shrinks, it only recycles).
    pub high_water_bytes: u64,
    /// High-water mark of `bytes_live`.
    pub high_water_live_bytes: u64,
    /// High-water mark of `slots_live`.
    pub high_water_slots: u64,
    /// Fresh host allocations (a store that found its class free list
    /// empty).
    pub allocs: u64,
    /// Stores satisfied from a class free list — no host allocation.
    pub reuses: u64,
    /// Slots returned to the pool by consuming reads or explicit frees.
    pub frees: u64,
    /// Slots returned by kill-time reaping specifically (a subset
    /// counted separately from `frees`).
    pub reaps: u64,
}

/// One slab slot: a pooled buffer whose capacity is its class size.
#[derive(Debug)]
struct ArenaSlot {
    /// Bumped on every free, so retired ids go stale instead of
    /// aliasing the slot's next occupant.
    generation: u32,
    /// Next slot in this class's free list (`NIL` = end / live).
    next_free: u32,
    /// Size class index; fixed for the slot's lifetime.
    class: u8,
    /// Whether the slot holds a live capsule.
    live: bool,
    /// Checksum recorded by the kernel at store time.
    checksum: u64,
    /// The pooled buffer. While live, `data.len()` is the image length;
    /// capacity stays at (at least) the class size across reuse.
    data: Vec<u8>,
}

/// Slab of size-classed capsule slots with per-class free lists.
#[derive(Debug)]
pub struct CapsuleArena {
    slots: Vec<ArenaSlot>,
    /// Head of each class's intrusive free list.
    free_heads: [u32; NUM_CLASSES],
    stats: ArenaStats,
}

/// The class whose slot size (`256 << class`) covers `len` bytes.
/// Oversize images (past the top class) share the top class, whose
/// slots grow to fit — in practice capsules are a few KiB.
fn class_of(len: usize) -> usize {
    let rounded = len.max(1).next_power_of_two();
    let shift = rounded.trailing_zeros().max(MIN_CLASS_SHIFT);
    ((shift - MIN_CLASS_SHIFT) as usize).min(NUM_CLASSES - 1)
}

/// Slot capacity of `class`.
fn class_size(class: usize) -> usize {
    1usize << (MIN_CLASS_SHIFT as usize + class)
}

impl Default for CapsuleArena {
    fn default() -> CapsuleArena {
        CapsuleArena::new()
    }
}

impl CapsuleArena {
    /// An empty arena: no slots, nothing pooled.
    pub fn new() -> CapsuleArena {
        CapsuleArena {
            slots: Vec::new(),
            free_heads: [NIL; NUM_CLASSES],
            stats: ArenaStats::default(),
        }
    }

    /// Store `data` (and its kernel-computed `checksum`) in a pooled
    /// slot of the matching size class, reusing a freed buffer when one
    /// exists. Returns the generation-tagged slot id.
    pub fn store(&mut self, data: &[u8], checksum: u64) -> u64 {
        let class = class_of(data.len());
        let idx = match self.free_heads[class] {
            NIL => {
                let cap = class_size(class).max(data.len());
                self.slots.push(ArenaSlot {
                    generation: 0,
                    next_free: NIL,
                    class: class as u8,
                    live: false,
                    checksum: 0,
                    data: Vec::with_capacity(cap),
                });
                self.stats.allocs += 1;
                self.stats.pooled_bytes += cap as u64;
                (self.slots.len() - 1) as u32
            }
            head => {
                self.free_heads[class] = self.slots[head as usize].next_free;
                self.stats.reuses += 1;
                head
            }
        };
        let slot = &mut self.slots[idx as usize];
        debug_assert!(!slot.live, "free list handed out a live slot");
        slot.next_free = NIL;
        slot.data.clear();
        if slot.data.capacity() < data.len() {
            // Only reachable for top-class oversize images: the slot
            // grows and the pool footprint grows with it.
            let grow = (data.len() - slot.data.capacity()) as u64;
            self.stats.pooled_bytes += grow;
            slot.data.reserve_exact(data.len() - slot.data.capacity());
        }
        slot.data.extend_from_slice(data);
        slot.checksum = checksum;
        slot.live = true;
        let id = ((slot.generation as u64) << 32) | idx as u64;
        self.stats.slots_live += 1;
        self.stats.bytes_live += data.len() as u64;
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(self.stats.pooled_bytes);
        self.stats.high_water_live_bytes =
            self.stats.high_water_live_bytes.max(self.stats.bytes_live);
        self.stats.high_water_slots = self.stats.high_water_slots.max(self.stats.slots_live);
        id
    }

    /// Resolve `id` to its slab index when it names a live capsule.
    fn resolve(&self, id: u64) -> Option<usize> {
        let idx = (id & 0xFFFF_FFFF) as usize;
        let generation = (id >> 32) as u32;
        let slot = self.slots.get(idx)?;
        (slot.live && slot.generation == generation).then_some(idx)
    }

    /// Copy the capsule at `id` into `out` (cleared first, capacity
    /// reused) and free the slot — a rehydrate is a move, not a copy.
    /// Returns the stored checksum, or `None` for a stale or
    /// never-issued id (the slot is untouched in that case).
    pub fn read_consume(&mut self, id: u64, out: &mut Vec<u8>) -> Option<u64> {
        let idx = self.resolve(id)?;
        out.clear();
        out.extend_from_slice(&self.slots[idx].data);
        let checksum = self.slots[idx].checksum;
        self.release(idx, false);
        Some(checksum)
    }

    /// Free the capsule at `id` without reading it. `reap` marks the
    /// free as kill-time reaping in the stats. Returns whether the id
    /// was live.
    pub fn free(&mut self, id: u64, reap: bool) -> bool {
        match self.resolve(id) {
            Some(idx) => {
                self.release(idx, reap);
                true
            }
            None => false,
        }
    }

    /// Return slot `idx` to its class free list with a bumped
    /// generation.
    fn release(&mut self, idx: usize, reap: bool) {
        let class = {
            let slot = &mut self.slots[idx];
            slot.live = false;
            slot.generation = slot.generation.wrapping_add(1);
            slot.checksum = 0;
            self.stats.slots_live -= 1;
            self.stats.bytes_live -= slot.data.len() as u64;
            slot.class as usize
        };
        self.slots[idx].next_free = self.free_heads[class];
        self.free_heads[class] = idx as u32;
        self.stats.frees += 1;
        if reap {
            self.stats.reaps += 1;
        }
    }

    /// Flip a stored byte of the capsule at `id` (its middle byte; an
    /// empty image flips the checksum instead) — the disk-corruption
    /// test hook. Returns whether the id was live.
    pub fn corrupt(&mut self, id: u64) -> bool {
        let Some(idx) = self.resolve(id) else {
            return false;
        };
        let slot = &mut self.slots[idx];
        let mid = slot.data.len() / 2;
        match slot.data.get_mut(mid) {
            Some(b) => *b ^= 0xFF,
            None => slot.checksum ^= 1,
        }
        true
    }

    /// Live capsules in the arena.
    pub fn count(&self) -> usize {
        self.stats.slots_live as usize
    }

    /// Bytes of live capsule images.
    pub fn bytes(&self) -> u64 {
        self.stats.bytes_live
    }

    /// The pool accounting snapshot.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn classes_round_up_to_powers_of_two() {
        assert_eq!(class_of(0), 0);
        assert_eq!(class_of(1), 0);
        assert_eq!(class_of(256), 0);
        assert_eq!(class_of(257), 1);
        assert_eq!(class_of(512), 1);
        assert_eq!(class_of(4096), 4);
        assert_eq!(class_size(0), 256);
        assert_eq!(class_size(4), 4096);
        // Oversize clamps to the top class instead of indexing past it.
        assert_eq!(class_of(usize::MAX / 4), NUM_CLASSES - 1);
    }

    #[test]
    fn store_read_round_trips_and_recycles() {
        let mut a = CapsuleArena::new();
        let image = vec![7u8; 1000];
        let id = a.store(&image, 42);
        assert_eq!(a.count(), 1);
        assert_eq!(a.bytes(), 1000);
        let mut out = Vec::new();
        assert_eq!(a.read_consume(id, &mut out), Some(42));
        assert_eq!(out, image);
        assert_eq!(a.count(), 0);
        // The id went stale with the free.
        assert_eq!(a.read_consume(id, &mut out), None);
        assert!(!a.free(id, false));
        // Same-class store reuses the slot buffer: no fresh allocation.
        let before = a.stats();
        let id2 = a.store(&[1u8; 900], 1);
        let after = a.stats();
        assert_eq!(after.allocs, before.allocs, "free-listed buffer reused");
        assert_eq!(after.reuses, before.reuses + 1);
        assert_eq!(after.pooled_bytes, before.pooled_bytes, "pool did not grow");
        assert_ne!(id2, id, "recycled slot carries a new generation");
    }

    #[test]
    fn kill_time_reap_is_counted() {
        let mut a = CapsuleArena::new();
        let id = a.store(&[3u8; 64], 9);
        assert!(a.free(id, true));
        assert_eq!(a.stats().reaps, 1);
        assert_eq!(a.stats().frees, 1);
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn corrupt_flips_payload_or_checksum() {
        let mut a = CapsuleArena::new();
        let id = a.store(&[5u8; 10], 11);
        assert!(a.corrupt(id));
        let mut out = Vec::new();
        a.read_consume(id, &mut out).unwrap();
        assert_eq!(out[5], 5 ^ 0xFF);
        // Empty image: the checksum takes the flip.
        let id = a.store(&[], 100);
        assert!(a.corrupt(id));
        assert_eq!(a.read_consume(id, &mut Vec::new()), Some(101));
        assert!(!a.corrupt(id), "stale id refuses");
    }

    proptest! {
        /// Arena vs a naive map model under random store/read/free/reap
        /// interleavings: contents and checksums always match, stale ids
        /// never resolve (no slot aliasing), high-water marks are
        /// monotone, and a final full reap leaves zero live bytes while
        /// the pool keeps every buffer for reuse.
        #[test]
        fn arena_matches_model_under_churn(
            ops in proptest::collection::vec((0u8..4, 0usize..8, 1usize..3000), 1..200)
        ) {
            let mut a = CapsuleArena::new();
            let mut model: HashMap<u64, (Vec<u8>, u64)> = HashMap::new();
            let mut retired: Vec<u64> = Vec::new();
            let mut seq = 0u8;
            let mut hw = (0u64, 0u64, 0u64);
            for (op, pick, len) in ops {
                let live: Vec<u64> = model.keys().copied().collect();
                match op {
                    // store
                    0 => {
                        seq = seq.wrapping_add(1);
                        let image = vec![seq; len];
                        let id = a.store(&image, seq as u64);
                        prop_assert!(!model.contains_key(&id), "live id reissued");
                        prop_assert!(!retired.contains(&id), "retired id reissued");
                        model.insert(id, (image, seq as u64));
                    }
                    // consuming read
                    1 if !live.is_empty() => {
                        let id = live[pick % live.len()];
                        let (image, checksum) = model.remove(&id).unwrap();
                        let mut out = Vec::new();
                        prop_assert_eq!(a.read_consume(id, &mut out), Some(checksum));
                        prop_assert_eq!(out, image);
                        retired.push(id);
                    }
                    // free / reap
                    2 | 3 if !live.is_empty() => {
                        let id = live[pick % live.len()];
                        model.remove(&id);
                        prop_assert!(a.free(id, op == 3));
                        retired.push(id);
                    }
                    _ => {}
                }
                // Stale ids never alias a successor.
                for id in &retired {
                    prop_assert!(a.read_consume(*id, &mut Vec::new()).is_none());
                }
                let s = a.stats();
                prop_assert_eq!(s.slots_live, model.len() as u64);
                prop_assert_eq!(
                    s.bytes_live,
                    model.values().map(|(v, _)| v.len() as u64).sum::<u64>()
                );
                prop_assert!(s.pooled_bytes >= s.bytes_live);
                // High-water marks are monotone.
                prop_assert!(s.high_water_bytes >= hw.0);
                prop_assert!(s.high_water_live_bytes >= hw.1);
                prop_assert!(s.high_water_slots >= hw.2);
                prop_assert!(s.high_water_bytes >= s.pooled_bytes);
                hw = (s.high_water_bytes, s.high_water_live_bytes, s.high_water_slots);
            }
            // Kill-time reap completes: every live capsule freed, zero
            // live bytes, pool footprint intact for the next tenant.
            let pooled = a.stats().pooled_bytes;
            for id in model.keys() {
                prop_assert!(a.free(*id, true));
            }
            prop_assert_eq!(a.count(), 0);
            prop_assert_eq!(a.bytes(), 0);
            prop_assert_eq!(a.stats().pooled_bytes, pooled, "reap keeps buffers pooled");
        }

        /// Steady-state externalize/rehydrate churn at a fixed class is
        /// allocation-free after the first cycle.
        #[test]
        fn steady_state_churn_allocates_nothing(rounds in 1usize..40, len in 300usize..700) {
            let mut a = CapsuleArena::new();
            let image = vec![9u8; len];
            let first = a.store(&image, 1);
            let mut out = Vec::new();
            a.read_consume(first, &mut out);
            let baseline = a.stats().allocs;
            for i in 0..rounds {
                let id = a.store(&image, i as u64);
                a.read_consume(id, &mut out);
            }
            prop_assert_eq!(a.stats().allocs, baseline, "churn hit the free list every time");
            prop_assert_eq!(a.stats().reuses as usize, rounds);
        }
    }
}
