//! Fault-injection soak: every armed run either completes with counters
//! identical to its fault-free reference, or dies with a clean typed
//! error — and in *both* cases the machine passes a structural integrity
//! audit. Never a panic, never silent divergence.
//!
//! Faults are injected at the kernel's five [`FaultPoint`]s (destination
//! OOM, mid-move interruption, world-stop stalls, swap-read failures,
//! signature corruption) by deterministic seeded schedules, across the
//! workload × mode matrix.

use carat_suite::core::{CaratCompiler, CompileOptions, SigningKey};
use carat_suite::frontend::compile_cm;
use carat_suite::ir::Module;
use carat_suite::kernel::{FaultPlan, FaultPoint};
use carat_suite::vm::{Mode, MoveDriverConfig, RunResult, SwapDriverConfig, Vm, VmConfig, VmError};

/// Pointer-chasing list traversal: every node holds an escape, so moves
/// and swaps do real patching work.
const LIST_SRC: &str = "
    struct node { int v; struct node* n; };
    int main() {
        struct node* head = (struct node*) null;
        for (int i = 0; i < 250; i += 1) {
            struct node* x = (struct node*) malloc(sizeof(struct node));
            x->v = i; x->n = head; head = x;
        }
        int got = 0;
        for (int pass = 0; pass < 8; pass += 1) {
            struct node* c = head;
            got = 0;
            while (c != null) { got += c->v; c = c->n; }
        }
        return got;
    }
";

/// Array-of-pointers indirection: a dense block of escape cells.
const CELLS_SRC: &str = "
    int main() {
        int n = 1500;
        int* a = (int*) malloc(n * sizeof(int));
        int** cells = (int**) malloc(n * sizeof(int*));
        for (int i = 0; i < n; i += 1) { a[i] = i; cells[i] = &a[i]; }
        int s = 0;
        for (int pass = 0; pass < 4; pass += 1) {
            for (int i = 0; i < n; i += 1) { s += *cells[i]; }
        }
        free(a); free(cells);
        return s % 1000000;
    }
";

fn build(name: &str, src: &str) -> Module {
    let module = compile_cm(name, src).expect("frontend");
    CaratCompiler::new(CompileOptions::default())
        .compile(module)
        .expect("carat")
        .module
}

/// Aggressive move + swap injection so kernel fault points are actually
/// reached (Traditional mode tracks nothing, so its drivers are inert —
/// which the soak also verifies: fault plans must not perturb it).
fn cfg(mode: Mode) -> VmConfig {
    VmConfig {
        mode,
        move_driver: Some(MoveDriverConfig {
            period_cycles: 25_000,
            max_moves: 40,
        }),
        swap_driver: Some(SwapDriverConfig {
            period_cycles: 60_000,
            max_swaps: 15,
        }),
        ..VmConfig::default()
    }
}

fn reference(module: &Module, mode: Mode) -> RunResult {
    Vm::new(module.clone(), cfg(mode))
        .expect("loads")
        .run()
        .expect("fault-free reference run completes")
}

/// The soak invariant, per run.
fn soak_one(tag: &str, module: &Module, mode: Mode, plan: FaultPlan, reference: &RunResult) {
    let config = VmConfig {
        fault_plan: Some(plan.clone()),
        ..cfg(mode)
    };
    let (result, report) = Vm::new(module.clone(), config)
        .expect("loads")
        .run_checked();
    // Whatever happened, the machine must audit clean.
    assert!(
        report.ok(),
        "[{tag}] integrity violated under {plan:?}: {:?}",
        report.violations
    );
    match result {
        Ok(r) => {
            assert_eq!(r.ret, reference.ret, "[{tag}] silent divergence: ret");
            assert_eq!(
                r.counters, reference.counters,
                "[{tag}] silent divergence: counters differ from fault-free run"
            );
        }
        Err(VmError::Kernel(e)) => {
            assert!(
                e.is_recoverable(),
                "[{tag}] injected fault escalated to a fatal kernel error: {e}"
            );
        }
        Err(other) => panic!("[{tag}] non-kernel failure under {plan:?}: {other}"),
    }
}

/// Explicit single-point schedules: each fault point, at its first (and
/// for moves also second) opportunity.
fn explicit_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("journal-only", FaultPlan::new()),
        (
            "oom@1",
            FaultPlan::new().arm_persistent(FaultPoint::MoveDstAlloc, 1),
        ),
        (
            "oom@3",
            FaultPlan::new().arm_persistent(FaultPoint::MoveDstAlloc, 3),
        ),
        ("midmove@1", FaultPlan::new().arm(FaultPoint::MidMove, 1)),
        ("midmove@2", FaultPlan::new().arm(FaultPoint::MidMove, 2)),
        (
            "stall@1",
            FaultPlan::new().arm(FaultPoint::WorldStopStall, 1),
        ),
        ("swapread@1", FaultPlan::new().arm(FaultPoint::SwapRead, 1)),
        (
            "combined",
            FaultPlan::new()
                .arm(FaultPoint::MidMove, 1)
                .arm(FaultPoint::SwapRead, 2),
        ),
    ]
}

#[test]
fn carat_survives_explicit_fault_schedule_on_list() {
    let module = build("soak_list", LIST_SRC);
    let reference = reference(&module, Mode::Carat);
    assert!(reference.counters.moves > 0, "drivers actually move pages");
    for (tag, plan) in explicit_plans() {
        soak_one(tag, &module, Mode::Carat, plan, &reference);
    }
}

#[test]
fn carat_survives_explicit_fault_schedule_on_cells() {
    let module = build("soak_cells", CELLS_SRC);
    let reference = reference(&module, Mode::Carat);
    assert!(
        reference.counters.swap_outs > 0,
        "drivers actually swap pages"
    );
    for (tag, plan) in explicit_plans() {
        soak_one(tag, &module, Mode::Carat, plan, &reference);
    }
}

#[test]
fn carat_survives_seeded_fault_schedules() {
    let module = build("soak_list", LIST_SRC);
    let reference = reference(&module, Mode::Carat);
    for seed in 1..=6u64 {
        let plan = FaultPlan::from_seed(seed);
        soak_one(
            &format!("seed{seed}"),
            &module,
            Mode::Carat,
            plan,
            &reference,
        );
    }
}

#[test]
fn traditional_mode_is_unperturbed_by_fault_plans() {
    // The traditional baseline tracks nothing and never moves pages, so
    // no kernel fault point is reachable: every armed run must complete
    // bit-identically to the fault-free one.
    let module = build("soak_cells", CELLS_SRC);
    let reference = reference(&module, Mode::Traditional);
    for seed in 1..=3u64 {
        let plan = FaultPlan::from_seed(seed);
        soak_one(
            &format!("trad-seed{seed}"),
            &module,
            Mode::Traditional,
            plan,
            &reference,
        );
    }
}

#[test]
fn corrupted_signed_image_is_rejected_at_load() {
    let key = SigningKey::from_passphrase("carat-cc", "fault-soak");
    let module = compile_cm("signed_soak", "int main() { return 7; }").unwrap();
    let compiled = CaratCompiler::new(CompileOptions {
        signing: Some(key.clone()),
        ..CompileOptions::default()
    })
    .compile(module)
    .unwrap();
    let signed = compiled.signed.expect("signed");
    let config = VmConfig {
        fault_plan: Some(FaultPlan::new().arm(FaultPoint::SignatureCorrupt, 1)),
        ..VmConfig::default()
    };
    let err = Vm::load_signed(&signed, vec![key.clone()], config).unwrap_err();
    assert!(
        matches!(err, VmError::Load(_)),
        "in-flight corruption must fail signature verification, got {err}"
    );
    // The image itself is intact: a fault-free load runs it.
    let r = Vm::load_signed(&signed, vec![key], VmConfig::default())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(r.ret, 7);
}
