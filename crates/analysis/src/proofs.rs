//! Whole-trip guard proofs for the threaded engine tier.
//!
//! The IR-level passes (hoist/merge/AC-DC) remove guards by *rewriting the
//! module*; this module instead produces a side table of **proofs** that the
//! decode-time threaded tier consumes to drop guard slots from the decoded
//! stream and replace a whole loop trip of per-access checks with one
//! widened range check at the preheader. Nothing here mutates the IR — a
//! proof is only a license the runtime may decline (e.g. when the ablation
//! config disables elision).
//!
//! A guard `carat.guard.{load,store}(addr, len)` inside loop `L` is provable
//! when:
//!
//! 1. `L` is a canonical counted loop ([`canonical_loop_info`]) with a
//!    *structural* preheader (single outside predecessor whose only
//!    successor is the header) and **all exits at the header** — so the
//!    guard executes exactly once per trip iteration;
//! 2. the guard's block dominates every latch and belongs to `L` itself
//!    (not a nested loop), and is not the header (which runs trip+1 times);
//! 3. no instruction in `L` can retire region coverage mid-trip: no
//!    `free`/`spawn`/`join` intrinsics, and no calls that transitively
//!    reach one (calls are pessimistically rejected when no module is
//!    supplied for the interprocedural walk; `malloc` is benign — it only
//!    adds regions);
//! 4. `addr` evolves as `base + elem*(coeff*iv + inv + offset)` with
//!    `coeff > 0` ([`ptr_evolution`]), or is loop-invariant — and every
//!    value the preheader check reads (`base`, `inv`, the bound) is defined
//!    *outside* the loop, so it is available before the first iteration;
//! 5. the guard's length is a positive constant, or value-range analysis
//!    ([`ValueRanges`]) bounds it within `[1, 4096]` — the widened span
//!    then uses the upper bound.
//!
//! The same scan also finds *block-local* redundancies that need no loop at
//! all: a guard dominated by an identical-or-wider guard on the same SSA
//! address earlier in its block, and tracking calls that exactly duplicate
//! an earlier one with no intervening write. These become `dup_guards` /
//! `dup_tracks`.

use crate::alias::ChainedAlias;
use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::invariance::LoopInvariance;
use crate::loops::{Loop, LoopForest};
use crate::range::ValueRanges;
use crate::scev::{canonical_loop_info, ptr_evolution, PtrEvolution};
use carat_ir::{
    BinOp, BlockId, Const, FuncId, Function, Inst, IntTy, Intrinsic, Module, Type, ValueId,
};

/// Largest guard length (bytes) accepted from value-range analysis when the
/// length operand is not a literal constant. Keeps widened spans sane.
const MAX_RANGED_LEN: i64 = 4096;

/// How the address of a proven guard evolves over the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofKind {
    /// `addr = base + elem*(coeff*iv + inv + offset)`, `coeff > 0`.
    Affine,
    /// `addr` is the same loop-invariant pointer every iteration.
    Invariant,
}

/// A proof that one in-loop guard can be elided for the whole trip and
/// replaced by a single widened range check at the preheader.
///
/// Every [`ValueId`] recorded here is defined outside the loop, so the
/// runtime can read its register before the first iteration.
#[derive(Debug, Clone)]
pub struct GuardProof {
    /// The guard instruction (a `CallIntrinsic` of `GuardLoad`/`GuardStore`).
    pub guard: ValueId,
    /// Whether the guarded access is a write.
    pub write: bool,
    /// Proof shape.
    pub kind: ProofKind,
    /// Base pointer (`Affine`), or the invariant address itself.
    pub base: ValueId,
    /// Element stride scaling the index; 0 for `Invariant`.
    pub elem: u64,
    /// Induction-variable coefficient; 0 for `Invariant`.
    pub coeff: i64,
    /// Optional loop-invariant index summand.
    pub inv: Option<ValueId>,
    /// Constant index summand.
    pub offset: i64,
    /// Constant byte offset added after scaling — the accumulated field
    /// offsets of peeled `FieldAddr` wrappers around the affine address.
    pub byte_off: u64,
    /// Access length in bytes (upper bound when range-derived).
    pub len: u64,
}

/// A canonical loop with at least one provable guard.
#[derive(Debug, Clone)]
pub struct LoopPlan {
    /// Loop header.
    pub header: BlockId,
    /// Structural preheader (single outside predecessor of the header).
    pub preheader: BlockId,
    /// The canonical induction variable (a header phi).
    pub iv: ValueId,
    /// Initial induction value, defined outside the loop.
    pub init: ValueId,
    /// Loop-invariant bound, defined outside the loop. When the source
    /// bound was computed *inside* the loop header from invariant terms,
    /// this is the positive term of the peeled form
    /// `bound − bound_minus + bound_const` (see [`peel_bound`]).
    pub bound: ValueId,
    /// Optional negative term of a peeled bound expression.
    pub bound_minus: Option<ValueId>,
    /// Constant summand of a peeled bound expression.
    pub bound_const: i64,
    /// Positive constant step.
    pub step: i64,
    /// `true` for `iv <= bound`, `false` for `iv < bound`.
    pub inclusive: bool,
    /// Proven guards, in layout order.
    pub guards: Vec<GuardProof>,
    /// Guards inside the loop the prover looked at and rejected, with the
    /// reason — surfaced by `compile_inspect` to debug missed optimization.
    pub rejected: Vec<(ValueId, &'static str)>,
}

/// All whole-trip and block-local proofs for one function.
#[derive(Debug, Clone, Default)]
pub struct FunctionProofs {
    /// Canonical loops with their proven guards (outermost-first, matching
    /// [`LoopForest`] order; only loops that passed the structural checks).
    pub loops: Vec<LoopPlan>,
    /// Loops that failed a structural precondition: `(header, reason)`.
    pub skipped_loops: Vec<(BlockId, &'static str)>,
    /// Guards dominated by an identical-or-wider guard earlier in the same
    /// block (same SSA address, same access, no region-table hazard between).
    pub dup_guards: Vec<ValueId>,
    /// Tracking calls that exactly duplicate an earlier call in the same
    /// block with no intervening memory write.
    pub dup_tracks: Vec<ValueId>,
}

impl FunctionProofs {
    /// Total guards proven elidable across all loops.
    pub fn proven_guards(&self) -> usize {
        self.loops.iter().map(|l| l.guards.len()).sum()
    }
}

/// Whether `v` is defined outside `lp` (arguments always are).
fn defined_outside(f: &Function, lp: &Loop, v: ValueId) -> bool {
    match f.block_of(v) {
        Some(b) => !lp.contains(b),
        None => true,
    }
}

/// A loop bound peeled into outside-defined terms:
/// `bound = plus − minus + konst`, all arithmetic wrapping at 64 bits.
struct PeeledBound {
    plus: ValueId,
    minus: Option<ValueId>,
    konst: i64,
}

/// Peel a header-computed bound through pure `i64` add/sub chains whose
/// leaves are all defined outside the loop.
///
/// Compilers routinely materialize `for (i = a; i < b - c; i++)` as a
/// header-block `sub` of two invariants, which the naive "bound defined
/// outside" check rejects. The peel recovers an equivalent
/// `plus − minus + konst` form whose registers the runtime *can* read at
/// the preheader. Conservative on purpose: only `Add`/`Sub`/`Const`
/// nodes, only one non-constant term per sign, and only `i64` width so
/// the wrapping re-association is exact.
fn peel_bound(f: &Function, lp: &Loop, bound: ValueId) -> Option<PeeledBound> {
    let mut plus = None;
    let mut minus = None;
    let mut konst: i64 = 0;
    let mut stack = vec![(bound, true)];
    while let Some((v, pos)) = stack.pop() {
        // Outside-defined leaves become register terms (constants included —
        // their registers hold the value by the time the preheader runs);
        // only *in-loop* constants fold into the immediate.
        if defined_outside(f, lp, v) {
            if f.value_type(v) != Some(Type::Int(IntTy::I64)) {
                return None;
            }
            let slot = if pos { &mut plus } else { &mut minus };
            if slot.is_some() {
                return None;
            }
            *slot = Some(v);
            continue;
        }
        if let Some(Inst::Const(Const::Int(c, _))) = f.inst(v) {
            konst = konst.wrapping_add(if pos { *c } else { c.wrapping_neg() });
            continue;
        }
        match f.inst(v)? {
            Inst::Bin {
                op: BinOp::Add,
                lhs,
                rhs,
            } => {
                stack.push((*lhs, pos));
                stack.push((*rhs, pos));
            }
            Inst::Bin {
                op: BinOp::Sub,
                lhs,
                rhs,
            } => {
                stack.push((*lhs, pos));
                stack.push((*rhs, !pos));
            }
            _ => return None,
        }
    }
    Some(PeeledBound {
        plus: plus?,
        minus,
        konst,
    })
}

/// The structural preheader of `lp`, if one already exists (this never
/// mutates the function, unlike [`crate::ensure_preheader`]).
fn structural_preheader(cfg: &Cfg, lp: &Loop) -> Option<BlockId> {
    let outside: Vec<BlockId> = cfg.preds[lp.header.index()]
        .iter()
        .copied()
        .filter(|p| !lp.contains(*p))
        .collect();
    match outside.as_slice() {
        [p] if cfg.succs[p.index()].len() == 1 => Some(*p),
        _ => None,
    }
}

/// Whether every edge leaving `lp` originates at the header.
fn exits_only_at_header(cfg: &Cfg, lp: &Loop) -> bool {
    lp.blocks
        .iter()
        .all(|&b| b == lp.header || cfg.succs[b.index()].iter().all(|s| lp.contains(*s)))
}

/// Per-function callee-safety memo: unknown / on the current DFS path /
/// proven safe / proven hazardous.
const CS_UNKNOWN: u8 = 0;
const CS_VISITING: u8 = 1;
const CS_SAFE: u8 = 2;
const CS_HAZARD: u8 = 3;

/// Intrinsics that can *retire* region coverage mid-trip. `malloc` is
/// deliberately not here: adding a region is monotonic — a containment
/// established by an earlier check cannot be invalidated by it. `free`
/// shrinks coverage, and `spawn`/`join` hand control to another thread
/// that might.
fn shrinks_regions(intr: &Intrinsic) -> bool {
    matches!(intr, Intrinsic::Free | Intrinsic::Spawn | Intrinsic::Join)
}

/// Whether calling `fid` can (transitively) retire region coverage —
/// reach one of the [`shrinks_regions`] intrinsics. Recursion is treated
/// as hazardous: a cycle's fixpoint is not worth the code.
fn callee_alters_regions(m: &Module, fid: FuncId, memo: &mut [u8]) -> bool {
    match memo[fid.index()] {
        CS_SAFE => return false,
        CS_HAZARD | CS_VISITING => return true,
        _ => {}
    }
    memo[fid.index()] = CS_VISITING;
    let hazard = m
        .func(fid)
        .insts_in_layout_order()
        .any(|(_, _, i)| match i {
            Inst::Call { callee, .. } => callee_alters_regions(m, *callee, memo),
            Inst::CallIntrinsic { intr, .. } => shrinks_regions(intr),
            _ => false,
        });
    memo[fid.index()] = if hazard { CS_HAZARD } else { CS_SAFE };
    hazard
}

/// Whether an instruction could retire region coverage (or run arbitrary
/// code that does) — the hazard that invalidates a preheader-time check.
/// With a module in hand, calls are checked transitively; without one,
/// any call is assumed hazardous.
fn region_hazard(inst: &Inst, module: Option<&Module>, memo: &mut [u8]) -> bool {
    match inst {
        Inst::Call { callee, .. } => match module {
            Some(m) => callee_alters_regions(m, *callee, memo),
            None => true,
        },
        Inst::CallIntrinsic { intr, .. } => shrinks_regions(intr),
        _ => false,
    }
}

/// Whether any instruction in `lp` is a region hazard.
fn loop_region_stable(f: &Function, lp: &Loop, module: Option<&Module>, memo: &mut [u8]) -> bool {
    lp.blocks
        .iter()
        .flat_map(|&b| f.block(b).insts.iter())
        .all(|&v| f.inst(v).is_none_or(|i| !region_hazard(i, module, memo)))
}

/// Resolve a guard-length operand to a positive byte count: a literal
/// constant, or a value-range upper bound within `[1, MAX_RANGED_LEN]`.
fn guard_len(f: &Function, ranges: &ValueRanges, v: ValueId) -> Option<u64> {
    if let Some(Inst::Const(Const::Int(n, _))) = f.inst(v) {
        return (*n > 0).then_some(*n as u64);
    }
    let r = ranges.range(v)?;
    (r.lo >= 1 && r.hi <= MAX_RANGED_LEN as i128).then_some(r.hi as u64)
}

/// Compute whole-trip and block-local guard proofs for `f`, treating any
/// call as a region-table hazard. Prefer [`prove_function_in`] when the
/// enclosing module is available.
pub fn prove_function(f: &Function) -> FunctionProofs {
    prove_function_in(f, None)
}

/// Compute whole-trip and block-local guard proofs for `f`. With `module`
/// supplied, in-loop calls are checked transitively for region-table
/// hazards instead of pessimistically rejecting the loop.
pub fn prove_function_in(f: &Function, module: Option<&Module>) -> FunctionProofs {
    let cfg = Cfg::compute(f);
    let dt = DomTree::compute(f, &cfg);
    let forest = LoopForest::compute(f, &cfg, &dt);
    let aa = ChainedAlias::for_function(f);
    let ranges = ValueRanges::compute(f);
    let mut memo = vec![CS_UNKNOWN; module.map_or(0, Module::num_funcs)];
    let mut out = FunctionProofs::default();

    for (li, lp) in forest.loops.iter().enumerate() {
        if !cfg.is_reachable(lp.header) {
            continue;
        }
        let Some(preheader) = structural_preheader(&cfg, lp) else {
            out.skipped_loops
                .push((lp.header, "no structural preheader"));
            continue;
        };
        if !exits_only_at_header(&cfg, lp) {
            out.skipped_loops
                .push((lp.header, "side exit below header"));
            continue;
        }
        if !loop_region_stable(f, lp, module, &mut memo) {
            out.skipped_loops
                .push((lp.header, "region-shrinking call or intrinsic in loop"));
            continue;
        }
        let inv = LoopInvariance::compute(f, lp, &aa);
        let Some(trip) = canonical_loop_info(f, lp, &inv) else {
            out.skipped_loops
                .push((lp.header, "no canonical induction"));
            continue;
        };
        let (bound, bound_minus, bound_const) = if defined_outside(f, lp, trip.bound) {
            (trip.bound, None, 0)
        } else if let Some(p) = peel_bound(f, lp, trip.bound) {
            (p.plus, p.minus, p.konst)
        } else {
            out.skipped_loops.push((lp.header, "bound defined in loop"));
            continue;
        };

        let mut plan = LoopPlan {
            header: lp.header,
            preheader,
            iv: trip.iv,
            init: trip.init,
            bound,
            bound_minus,
            bound_const,
            step: trip.step,
            inclusive: trip.bound_pred == carat_ir::Pred::Sle,
            guards: Vec::new(),
            rejected: Vec::new(),
        };

        for &b in cfg.rpo.iter().filter(|&&b| lp.contains(b)) {
            // Only guards that run exactly once per iteration: in this loop
            // (not a nested one), below the header, dominating every latch.
            if b == lp.header
                || forest.innermost_containing(b) != Some(li)
                || !lp.latches.iter().all(|&l| dt.dominates(b, l))
            {
                continue;
            }
            for &v in &f.block(b).insts {
                let Some(Inst::CallIntrinsic { intr, args }) = f.inst(v) else {
                    continue;
                };
                let write = match intr {
                    Intrinsic::GuardLoad => false,
                    Intrinsic::GuardStore => true,
                    _ => continue,
                };
                let [addr, len_arg] = args.as_slice() else {
                    plan.rejected.push((v, "malformed guard args"));
                    continue;
                };
                let Some(len) = guard_len(f, &ranges, *len_arg) else {
                    plan.rejected.push((v, "unbounded guard length"));
                    continue;
                };
                // Peel `FieldAddr` wrappers: each adds a constant byte
                // offset to an address whose evolution is then classified.
                let mut peeled = *addr;
                let mut byte_off = 0u64;
                while let Some(Inst::FieldAddr {
                    base,
                    struct_ty,
                    field,
                }) = f.inst(peeled)
                {
                    byte_off += struct_ty.field_offset(*field as usize);
                    peeled = *base;
                }
                match ptr_evolution(f, lp, &inv, &trip, peeled) {
                    PtrEvolution::Invariant => {
                        if !defined_outside(f, lp, peeled) {
                            plan.rejected.push((v, "invariant addr defined in loop"));
                            continue;
                        }
                        plan.guards.push(GuardProof {
                            guard: v,
                            write,
                            kind: ProofKind::Invariant,
                            base: peeled,
                            elem: 0,
                            coeff: 0,
                            inv: None,
                            offset: 0,
                            byte_off,
                            len,
                        });
                    }
                    PtrEvolution::Affine { base, elem, index } => {
                        if !defined_outside(f, lp, base) {
                            plan.rejected.push((v, "base defined in loop"));
                            continue;
                        }
                        if index.inv.is_some_and(|s| !defined_outside(f, lp, s)) {
                            plan.rejected.push((v, "index symbol defined in loop"));
                            continue;
                        }
                        let stride = elem.stride();
                        if stride == 0 {
                            plan.rejected.push((v, "zero element stride"));
                            continue;
                        }
                        plan.guards.push(GuardProof {
                            guard: v,
                            write,
                            kind: ProofKind::Affine,
                            base,
                            elem: stride,
                            coeff: index.coeff,
                            inv: index.inv,
                            offset: index.offset,
                            byte_off,
                            len,
                        });
                    }
                    PtrEvolution::Unknown => {
                        plan.rejected.push((v, "address not affine in iv"));
                    }
                }
            }
        }
        if !plan.guards.is_empty() || !plan.rejected.is_empty() {
            out.loops.push(plan);
        }
    }

    block_local_redundancies(f, module, &mut memo, &mut out);
    out
}

/// Find block-local dominated-duplicate guards and duplicate tracking calls.
fn block_local_redundancies(
    f: &Function,
    module: Option<&Module>,
    memo: &mut [u8],
    out: &mut FunctionProofs,
) {
    for b in f.block_ids() {
        // addr -> (len, write) of the widest guard seen since the last hazard.
        let mut guards_seen: Vec<(ValueId, u64, bool)> = Vec::new();
        // (intr, args) of tracking calls seen since the last write.
        let mut tracks_seen: Vec<(Intrinsic, Vec<ValueId>)> = Vec::new();
        for &v in &f.block(b).insts {
            let Some(inst) = f.inst(v) else { continue };
            if region_hazard(inst, module, memo) {
                guards_seen.clear();
                tracks_seen.clear();
                continue;
            }
            let writes_memory = matches!(inst, Inst::Store { .. })
                || matches!(
                    inst,
                    Inst::CallIntrinsic {
                        intr: Intrinsic::Memcpy | Intrinsic::Memset,
                        ..
                    }
                );
            if writes_memory {
                tracks_seen.clear();
            }
            let Inst::CallIntrinsic { intr, args } = inst else {
                continue;
            };
            match intr {
                Intrinsic::GuardLoad | Intrinsic::GuardStore => {
                    let write = *intr == Intrinsic::GuardStore;
                    let [addr, len_arg] = args.as_slice() else {
                        continue;
                    };
                    let Some(Inst::Const(Const::Int(len, _))) = f.inst(*len_arg) else {
                        continue;
                    };
                    if *len <= 0 {
                        continue;
                    }
                    let len = *len as u64;
                    if guards_seen
                        .iter()
                        .any(|&(a, l, w)| a == *addr && w == write && len <= l)
                    {
                        out.dup_guards.push(v);
                    } else {
                        guards_seen.push((*addr, len, write));
                    }
                }
                Intrinsic::TrackEscape => {
                    if tracks_seen.iter().any(|(i, a)| i == intr && a == args) {
                        out.dup_tracks.push(v);
                    } else {
                        tracks_seen.push((*intr, args.clone()));
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{ModuleBuilder, Pred, Type};

    /// entry -> preheader-shaped entry -> header{phi,icmp,br} -> body -> exit
    /// with `guard.load(a[i], 8)` in the body.
    fn guarded_loop(escape: bool) -> carat_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        let fid = mb.declare("f", vec![Type::Ptr, Type::I64], None);
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            let h = b.block("header");
            let body = b.block("body");
            let x = b.block("exit");
            b.switch_to(e);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            let eight = b.const_i64(8);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(Pred::Slt, i, b.arg(1));
            b.br(c, body, x);
            b.switch_to(body);
            let ai = b.ptr_add(b.arg(0), i, Type::F64);
            let addr = if escape {
                // Address loaded from memory: not affine in the iv.
                b.load(Type::Ptr, ai)
            } else {
                ai
            };
            b.intr(Intrinsic::GuardLoad, vec![addr, eight]);
            let _ = b.load(Type::F64, addr);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, body, i2);
            b.jmp(h);
            b.switch_to(x);
            b.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn proves_affine_guard() {
        let m = guarded_loop(false);
        let f = m.func(m.func_by_name("f").unwrap());
        let p = prove_function(f);
        assert_eq!(p.loops.len(), 1);
        let lp = &p.loops[0];
        assert_eq!(lp.guards.len(), 1);
        let g = &lp.guards[0];
        assert_eq!(g.kind, ProofKind::Affine);
        assert_eq!(g.base, f.arg(0));
        assert_eq!(g.elem, 8);
        assert_eq!(g.coeff, 1);
        assert_eq!(g.len, 8);
        assert!(!g.write);
        assert_eq!(lp.step, 1);
        assert!(!lp.inclusive);
    }

    #[test]
    fn rejects_non_affine_address() {
        let m = guarded_loop(true);
        let f = m.func(m.func_by_name("f").unwrap());
        let p = prove_function(f);
        assert_eq!(p.proven_guards(), 0);
        assert!(p.loops.iter().any(|l| l
            .rejected
            .iter()
            .any(|(_, r)| *r == "address not affine in iv")));
    }

    #[test]
    fn call_in_loop_defeats_proof() {
        let mut mb = ModuleBuilder::new("m");
        let callee = mb.declare("g", vec![], None);
        let fid = mb.declare("f", vec![Type::Ptr, Type::I64], None);
        {
            let mut b = mb.define(callee);
            let e = b.block("entry");
            b.switch_to(e);
            b.ret(None);
        }
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            let h = b.block("header");
            let body = b.block("body");
            let x = b.block("exit");
            b.switch_to(e);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            let eight = b.const_i64(8);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(Pred::Slt, i, b.arg(1));
            b.br(c, body, x);
            b.switch_to(body);
            let ai = b.ptr_add(b.arg(0), i, Type::F64);
            b.intr(Intrinsic::GuardLoad, vec![ai, eight]);
            let _ = b.load(Type::F64, ai);
            b.call(callee, vec![], None);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, body, i2);
            b.jmp(h);
            b.switch_to(x);
            b.ret(None);
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let p = prove_function(f);
        assert_eq!(p.proven_guards(), 0);
        assert!(p
            .skipped_loops
            .iter()
            .any(|(_, r)| *r == "region-shrinking call or intrinsic in loop"));
    }

    #[test]
    fn finds_block_local_duplicate_guard() {
        let mut mb = ModuleBuilder::new("m");
        let fid = mb.declare("f", vec![Type::Ptr], None);
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            b.switch_to(e);
            let eight = b.const_i64(8);
            let four = b.const_i64(4);
            b.intr(Intrinsic::GuardLoad, vec![b.arg(0), eight]);
            let _ = b.load(Type::F64, b.arg(0));
            // Narrower read guard on the same address: redundant.
            b.intr(Intrinsic::GuardLoad, vec![b.arg(0), four]);
            let _ = b.load(Type::I32, b.arg(0));
            // Write guard is NOT covered by a read guard.
            b.intr(Intrinsic::GuardStore, vec![b.arg(0), four]);
            b.ret(None);
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        let p = prove_function(f);
        assert_eq!(p.dup_guards.len(), 1);
    }
}
