//! Multithreaded CARAT: spawned threads run on stacks allocated from heap
//! memory (paper §2.2), and a page movement stops *all* threads, patches
//! every thread's registers and stack, and resumes them — the full
//! Figure 8 protocol with real concurrency.
//!
//! ```sh
//! cargo run --example threads
//! ```

use carat_core::{CaratCompiler, CompileOptions};
use carat_frontend::compile_cm;
use carat_vm::{MoveDriverConfig, Vm, VmConfig};

const PROGRAM: &str = r#"
int histogram[64];

int worker(int seed) {
    // Each worker builds a private linked chain, then folds it into the
    // shared histogram.
    int acc = 0;
    for (int i = 0; i < 600; i += 1) {
        int x = (seed * 1103515245 + i * 12345) % 64;
        if (x < 0) { x = -x; }
        histogram[x] += 1;
        acc += x;
    }
    return acc;
}

int main() {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    int t3 = spawn(worker, 3);
    int local = worker(4);
    int total = local + join(t1) + join(t2) + join(t3);
    int entries = 0;
    for (int b = 0; b < 64; b += 1) { entries += histogram[b]; }
    print_i64(entries);
    return total % 1000000;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = compile_cm("threads", PROGRAM)?;
    let compiled = CaratCompiler::new(CompileOptions::default()).compile(module)?;

    let quiet = Vm::new(compiled.module.clone(), VmConfig::default())?.run()?;
    println!(
        "4 logical threads, quiet run: ret={} histogram entries={}",
        quiet.ret, quiet.output[0]
    );

    let hostile = Vm::new(
        compiled.module,
        VmConfig {
            move_driver: Some(MoveDriverConfig {
                period_cycles: 30_000,
                max_moves: 100,
            }),
            ..VmConfig::default()
        },
    )?
    .run()?;
    println!(
        "with page moves:  ret={} after {} multi-thread world stops",
        hostile.ret, hostile.counters.moves
    );
    assert_eq!(quiet.ret, hostile.ret);
    assert_eq!(quiet.output, hostile.output);
    println!("results identical — moves are transparent to every thread");
    Ok(())
}
