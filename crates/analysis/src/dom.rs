//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

use crate::cfg::Cfg;
use carat_ir::{BlockId, Function, ValueId};

/// Dominator information for a function.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` is the immediate dominator of `b` (entry maps to itself);
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    #[allow(dead_code)]
    rpo_index: Vec<usize>,
    entry: BlockId,
}

impl DomTree {
    /// Compute the dominator tree for `f` using the CFG `cfg`.
    pub fn compute(f: &Function, cfg: &Cfg) -> DomTree {
        let n = f.num_blocks();
        let entry = f.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &cfg.rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree {
            idom,
            rpo_index: cfg.rpo_index.clone(),
            entry,
        }
    }

    /// Immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            return None;
        }
        self.idom[b.index()]
    }

    /// Whether block `a` dominates block `b`.
    ///
    /// Unreachable blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[a.index()].is_none() || self.idom[b.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Whether the definition of `v` dominates the *start* of block `b`.
    ///
    /// Arguments dominate everything; instruction defs dominate `b` when
    /// their block strictly dominates `b`.
    pub fn def_dominates_block(&self, f: &Function, v: ValueId, b: BlockId) -> bool {
        match f.block_of(v) {
            None => true, // argument
            Some(db) => db != b && self.dominates(db, b),
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{ModuleBuilder, Type};

    /// entry -> (a | b) -> join -> loop { latch } -> exit
    fn build() -> carat_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::I1], None);
        {
            let mut bld = mb.define(f);
            let e = bld.block("entry");
            let a = bld.block("a");
            let b = bld.block("b");
            let j = bld.block("join");
            let l = bld.block("loop");
            let x = bld.block("exit");
            bld.switch_to(e);
            bld.br(bld.arg(0), a, b);
            bld.switch_to(a);
            bld.jmp(j);
            bld.switch_to(b);
            bld.jmp(j);
            bld.switch_to(j);
            bld.jmp(l);
            bld.switch_to(l);
            bld.br(bld.arg(0), l, x);
            bld.switch_to(x);
            bld.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn idoms_of_diamond_and_loop() {
        let m = build();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let bb = |i: u32| BlockId(i);
        assert_eq!(dt.idom(bb(1)), Some(bb(0)));
        assert_eq!(dt.idom(bb(2)), Some(bb(0)));
        assert_eq!(dt.idom(bb(3)), Some(bb(0)), "join's idom is entry");
        assert_eq!(dt.idom(bb(4)), Some(bb(3)));
        assert_eq!(dt.idom(bb(5)), Some(bb(4)));
        assert_eq!(dt.idom(bb(0)), None, "entry has no idom");
    }

    #[test]
    fn dominates_is_reflexive_transitive() {
        let m = build();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let bb = |i: u32| BlockId(i);
        assert!(dt.dominates(bb(0), bb(5)));
        assert!(dt.dominates(bb(3), bb(5)));
        assert!(dt.dominates(bb(4), bb(4)));
        assert!(
            !dt.dominates(bb(1), bb(3)),
            "diamond arm does not dominate join"
        );
        assert!(!dt.dominates(bb(5), bb(4)));
    }

    #[test]
    fn args_dominate_everything() {
        let m = build();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        assert!(dt.def_dominates_block(f, f.arg(0), BlockId(5)));
    }
}
