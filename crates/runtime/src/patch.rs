//! The patching engine: executing a mapping change (paper §4.2 "Mapping",
//! Figure 8 steps 5–10).
//!
//! Given a kernel page-move request, the runtime (inside the world-stop):
//!
//! 1. **negotiates/expands** the source range so no allocation straddles
//!    its boundary (allocations move in their entirety);
//! 2. finds all **affected allocations**;
//! 3. **patches every escape** of every affected allocation — each memory
//!    cell holding a pointer into the moved range is rewritten to the
//!    address the target will have *after* the move (pointer swizzling);
//! 4. **patches registers** (the register file dumped on the stack by the
//!    signal handler);
//! 5. moves the data and updates the allocation table.
//!
//! Every phase reports counts so the caller can convert to cycles with the
//! [`CostModel`](crate::cost::CostModel) — this is the raw material of
//! Table 3.

use crate::alloc_table::AllocationTable;
use crate::cost::CostModel;
use std::fmt;

/// Memory access interface the engine uses to read/patch/copy simulated
/// physical memory. Implemented by the kernel's physical memory.
pub trait MemAccess {
    /// Read the 8-byte little-endian word at `addr`.
    fn read_u64(&self, addr: u64) -> u64;
    /// Write the 8-byte little-endian word at `addr`.
    fn write_u64(&mut self, addr: u64, val: u64);
    /// Copy `len` bytes from `src` to `dst` (ranges may not overlap).
    fn copy(&mut self, src: u64, dst: u64, len: u64);
}

/// A kernel request to move `[src, src+len)` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveRequest {
    /// Source range start (page aligned in page-granularity mode).
    pub src: u64,
    /// Source range length.
    pub len: u64,
    /// Destination start.
    pub dst: u64,
}

/// Cycle breakdown of one move — the columns of Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoveCostBreakdown {
    /// "Page Expand": finding allocations and expanding the page set.
    pub page_expand: u64,
    /// "Patch Gen. & Exec.": finding and updating all escapes.
    pub patch_gen_exec: u64,
    /// "Register Patch".
    pub register_patch: u64,
    /// "Allocation & Mem. Movement": destination alloc + data copy.
    pub alloc_and_move: u64,
}

impl MoveCostBreakdown {
    /// "Prototype Cost": expand + patch + register (excludes the copy,
    /// which paging pays too).
    pub fn prototype_cost(&self) -> u64 {
        self.page_expand + self.patch_gen_exec + self.register_patch
    }

    /// "Prototype w/o Expand Cost".
    pub fn prototype_wo_expand(&self) -> u64 {
        self.patch_gen_exec + self.register_patch
    }

    /// "Total Cost".
    pub fn total(&self) -> u64 {
        self.prototype_cost() + self.alloc_and_move
    }
}

/// Outcome of a completed move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveOutcome {
    /// The range actually moved, after expansion.
    pub moved_src: u64,
    /// Length of the moved range.
    pub moved_len: u64,
    /// Destination of the (possibly expanded) range.
    pub moved_dst: u64,
    /// Allocations relocated.
    pub allocations: usize,
    /// Escape cells rewritten.
    pub escapes_patched: usize,
    /// Registers rewritten.
    pub registers_patched: usize,
    /// Cycle breakdown.
    pub cost: MoveCostBreakdown,
}

/// Expansion failure: the expanded range would exceed what the caller
/// allows (the kernel may veto, paper §4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandVeto {
    /// The range the negotiation wanted.
    pub wanted_src: u64,
    /// Its length.
    pub wanted_len: u64,
}

/// Expand `[src, src+len)` (page-aligned growth) until no tracked
/// allocation straddles either boundary. Returns the expanded range.
///
/// This is the page-granularity "negotiation": an allocation overlapping
/// the boundary drags its whole extent (rounded to pages) into the move.
pub fn expand_to_allocations(
    table: &AllocationTable,
    mut src: u64,
    mut len: u64,
    page: u64,
) -> (u64, u64) {
    loop {
        let mut grown = false;
        for start in table.overlapping(src, src + len) {
            let info = table.info(start).expect("listed");
            let end = start + info.len;
            if start < src {
                let new_src = start / page * page;
                len += src - new_src;
                src = new_src;
                grown = true;
            }
            if end > src + len {
                let new_end = end.div_ceil(page) * page;
                len = new_end - src;
                grown = true;
            }
        }
        if !grown {
            return (src, len);
        }
    }
}

/// Checkpoints at which a journaled move consults its interrupt hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MovePhase {
    /// After negotiation/expansion — nothing has been mutated yet.
    Expanded,
    /// After escapes and registers were patched, before the data copy and
    /// table maintenance — the crash window the patch journal covers.
    Patched,
}

/// A journaled move was interrupted and rolled back. Every escape cell and
/// register the move had patched was restored to its pre-move value; the
/// allocation table and the data were never touched (both are only updated
/// after the final checkpoint), so the machine state is byte-identical to
/// the state before the move began.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveInterrupted {
    /// The checkpoint at which the interrupt fired.
    pub phase: MovePhase,
    /// Escape cells restored from the journal.
    pub cells_rolled_back: usize,
    /// Registers restored from the journal.
    pub registers_rolled_back: usize,
}

impl fmt::Display for MoveInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "move interrupted at {:?}: rolled back {} cells, {} registers",
            self.phase, self.cells_rolled_back, self.registers_rolled_back
        )
    }
}

impl std::error::Error for MoveInterrupted {}

/// Undo log for one move: the pre-patch value of every mutated escape
/// cell and register, in mutation order.
#[derive(Debug, Default)]
struct PatchJournal {
    cells: Vec<(u64, u64)>,
    regs: Vec<(usize, u64)>,
}

impl PatchJournal {
    /// Restore everything in reverse mutation order.
    fn rollback(self, mem: &mut dyn MemAccess, regs: &mut [u64]) -> (usize, usize) {
        let (nc, nr) = (self.cells.len(), self.regs.len());
        for (idx, old) in self.regs.into_iter().rev() {
            regs[idx] = old;
        }
        for (cell, old) in self.cells.into_iter().rev() {
            mem.write_u64(cell, old);
        }
        (nc, nr)
    }
}

/// Execute a move entirely: negotiate, patch escapes and registers, copy,
/// and update the allocation table. `regs` is the dumped register state of
/// all stopped threads (patched in place).
///
/// The caller (kernel) has already stopped the world and picked a `dst`
/// with room for the *expanded* range; `dst` is adjusted by the same
/// leading expansion so relative layout is preserved.
pub fn perform_move(
    table: &mut AllocationTable,
    mem: &mut dyn MemAccess,
    regs: &mut [u64],
    req: MoveRequest,
    cost: &CostModel,
) -> MoveOutcome {
    match perform_move_journaled(table, mem, regs, req, cost, None) {
        Ok(out) => out,
        Err(_) => unreachable!("a move without an interrupt hook cannot be interrupted"),
    }
}

/// [`perform_move`] with crash consistency: when `interrupt` is present,
/// every escape-cell and register patch is journaled, and the hook is
/// consulted at each [`MovePhase`] checkpoint. If it returns `true` the
/// move is abandoned: the journal is replayed in reverse, restoring a
/// byte-identical pre-move state (the data copy and all allocation-table
/// maintenance happen strictly after the last checkpoint, so cells and
/// registers are the only mutations to undo).
///
/// With `interrupt == None` this is exactly [`perform_move`] — no journal
/// is kept and no overhead is paid.
///
/// # Errors
///
/// [`MoveInterrupted`] when the hook fired; the rollback has already
/// happened by the time the error is returned.
pub fn perform_move_journaled(
    table: &mut AllocationTable,
    mem: &mut dyn MemAccess,
    regs: &mut [u64],
    req: MoveRequest,
    cost: &CostModel,
    mut interrupt: Option<&mut dyn FnMut(MovePhase) -> bool>,
) -> Result<MoveOutcome, MoveInterrupted> {
    // --- Phase 1: page expand (negotiation) ---
    let (src, len) = expand_to_allocations(table, req.src, req.len, cost.page_size);
    let dst = req.dst.wrapping_sub(req.src - src);
    let delta = dst.wrapping_sub(src) as i64;
    let affected = table.overlapping(src, src + len);
    let page_expand = cost.move_expand_fixed + affected.len() as u64 * cost.move_expand_per_alloc;

    let mut journal = interrupt.as_ref().map(|_| PatchJournal::default());
    if let Some(hook) = interrupt.as_deref_mut() {
        if hook(MovePhase::Expanded) {
            // Nothing mutated yet; the journal is empty.
            return Err(MoveInterrupted {
                phase: MovePhase::Expanded,
                cells_rolled_back: 0,
                registers_rolled_back: 0,
            });
        }
    }

    // --- Phase 2: patch generation & execution ---
    let mut escapes_patched = 0usize;
    for &start in &affected {
        let info = table.info(start).expect("listed");
        let escape_cells: Vec<u64> = info.escapes.iter().copied().collect();
        let (lo, hi) = (start, start + info.len);
        for cell in escape_cells {
            let val = mem.read_u64(cell);
            if val >= lo && val < hi {
                if let Some(j) = journal.as_mut() {
                    j.cells.push((cell, val));
                }
                mem.write_u64(cell, val.wrapping_add(delta as u64));
                escapes_patched += 1;
            }
        }
    }
    let patch_gen_exec = escapes_patched as u64 * cost.move_patch_per_escape;

    // --- Phase 3: register patch ---
    let mut registers_patched = 0usize;
    for (idx, r) in regs.iter_mut().enumerate() {
        if *r >= src && *r < src + len {
            if let Some(j) = journal.as_mut() {
                j.regs.push((idx, *r));
            }
            *r = r.wrapping_add(delta as u64);
            registers_patched += 1;
        }
    }
    let register_patch = regs.len() as u64 * cost.move_register_patch_per_reg;

    if let Some(hook) = interrupt {
        if hook(MovePhase::Patched) {
            let (nc, nr) = journal
                .take()
                .expect("journal exists whenever a hook does")
                .rollback(mem, regs);
            return Err(MoveInterrupted {
                phase: MovePhase::Patched,
                cells_rolled_back: nc,
                registers_rolled_back: nr,
            });
        }
    }

    // --- Phase 4: allocation + data movement ---
    mem.copy(src, dst, len);
    let alloc_and_move = cost.move_alloc_fixed + cost.copy_cost(len);

    // --- Table maintenance: rebase entries and escape cells in range ---
    // Escape cells that themselves lived inside the moved range moved too.
    table.rebase_escape_cells(src, src + len, delta);
    for &start in &affected {
        table.relocate(start, delta);
    }

    Ok(MoveOutcome {
        moved_src: src,
        moved_len: len,
        moved_dst: dst,
        allocations: affected.len(),
        escapes_patched,
        registers_patched,
        cost: MoveCostBreakdown {
            page_expand,
            patch_gen_exec,
            register_patch,
            alloc_and_move,
        },
    })
}

/// Execute one move against *several* allocation tables at once — the
/// cross-process shared-region case. Each table belongs to one process
/// that has the moved range mapped; the escape sets of all of them are
/// patched, `regs` is the concatenated dumped register state of every
/// stopped thread of every owner, the data is copied exactly once, and
/// every table's entries are relocated.
///
/// Escape patching is idempotent across tables: a cell registered by more
/// than one owner is rewritten on the first encounter (its value then
/// points at the destination, outside the source range) and skipped — and
/// counted — only once thereafter.
///
/// The journal spans all tables: an interrupt at a checkpoint rolls back
/// every cell and register patched so far regardless of which owner's
/// escape set produced it, leaving all processes byte-identical to their
/// pre-move state (table maintenance happens strictly after the last
/// checkpoint).
///
/// Expansion negotiates against *all* tables until a fixed point, so no
/// owner's allocation straddles the moved range.
///
/// # Errors
///
/// [`MoveInterrupted`] when the hook fired; the rollback across all
/// owners has already happened.
pub fn perform_shared_move_journaled(
    tables: &mut [&mut AllocationTable],
    mem: &mut dyn MemAccess,
    regs: &mut [u64],
    req: MoveRequest,
    cost: &CostModel,
    mut interrupt: Option<&mut dyn FnMut(MovePhase) -> bool>,
) -> Result<MoveOutcome, MoveInterrupted> {
    // --- Phase 1: page expand, negotiated across every owner ---
    let (mut src, mut len) = (req.src, req.len);
    loop {
        let before = (src, len);
        for table in tables.iter() {
            let (s, l) = expand_to_allocations(table, src, len, cost.page_size);
            (src, len) = (s, l);
        }
        if (src, len) == before {
            break;
        }
    }
    let dst = req.dst.wrapping_sub(req.src - src);
    let delta = dst.wrapping_sub(src) as i64;
    let affected: Vec<Vec<u64>> = tables
        .iter()
        .map(|t| t.overlapping(src, src + len))
        .collect();
    let total_affected: usize = affected.iter().map(Vec::len).sum();
    let page_expand = cost.move_expand_fixed + total_affected as u64 * cost.move_expand_per_alloc;

    let mut journal = interrupt.as_ref().map(|_| PatchJournal::default());
    if let Some(hook) = interrupt.as_deref_mut() {
        if hook(MovePhase::Expanded) {
            return Err(MoveInterrupted {
                phase: MovePhase::Expanded,
                cells_rolled_back: 0,
                registers_rolled_back: 0,
            });
        }
    }

    // --- Phase 2: patch every owner's escapes ---
    let mut escapes_patched = 0usize;
    for (table, affected) in tables.iter().zip(&affected) {
        for &start in affected {
            let info = table.info(start).expect("listed");
            let escape_cells: Vec<u64> = info.escapes.iter().copied().collect();
            let (lo, hi) = (start, start + info.len);
            for cell in escape_cells {
                let val = mem.read_u64(cell);
                if val >= lo && val < hi {
                    if let Some(j) = journal.as_mut() {
                        j.cells.push((cell, val));
                    }
                    mem.write_u64(cell, val.wrapping_add(delta as u64));
                    escapes_patched += 1;
                }
            }
        }
    }
    let patch_gen_exec = escapes_patched as u64 * cost.move_patch_per_escape;

    // --- Phase 3: register patch (all owners' dumped threads) ---
    let mut registers_patched = 0usize;
    for (idx, r) in regs.iter_mut().enumerate() {
        if *r >= src && *r < src + len {
            if let Some(j) = journal.as_mut() {
                j.regs.push((idx, *r));
            }
            *r = r.wrapping_add(delta as u64);
            registers_patched += 1;
        }
    }
    let register_patch = regs.len() as u64 * cost.move_register_patch_per_reg;

    if let Some(hook) = interrupt {
        if hook(MovePhase::Patched) {
            let (nc, nr) = journal
                .take()
                .expect("journal exists whenever a hook does")
                .rollback(mem, regs);
            return Err(MoveInterrupted {
                phase: MovePhase::Patched,
                cells_rolled_back: nc,
                registers_rolled_back: nr,
            });
        }
    }

    // --- Phase 4: single data copy + per-owner table maintenance ---
    mem.copy(src, dst, len);
    let alloc_and_move = cost.move_alloc_fixed + cost.copy_cost(len);
    for (table, affected) in tables.iter_mut().zip(&affected) {
        table.rebase_escape_cells(src, src + len, delta);
        for &start in affected {
            table.relocate(start, delta);
        }
    }

    Ok(MoveOutcome {
        moved_src: src,
        moved_len: len,
        moved_dst: dst,
        allocations: total_affected,
        escapes_patched,
        registers_patched,
        cost: MoveCostBreakdown {
            page_expand,
            patch_gen_exec,
            register_patch,
            alloc_and_move,
        },
    })
}

/// Allocation-granularity move (the paper's §6 "Allocation Granularity"
/// future-work extension, implemented here for the ablation benchmarks):
/// moves exactly one allocation, with no page expansion or negotiation.
pub fn perform_move_alloc_granular(
    table: &mut AllocationTable,
    mem: &mut dyn MemAccess,
    regs: &mut [u64],
    alloc_start: u64,
    dst: u64,
    cost: &CostModel,
) -> Option<MoveOutcome> {
    let info = table.info(alloc_start)?;
    let len = info.len;
    let delta = dst.wrapping_sub(alloc_start) as i64;
    let escape_cells: Vec<u64> = info.escapes.iter().copied().collect();
    let mut escapes_patched = 0;
    for cell in escape_cells {
        let val = mem.read_u64(cell);
        if val >= alloc_start && val < alloc_start + len {
            mem.write_u64(cell, val.wrapping_add(delta as u64));
            escapes_patched += 1;
        }
    }
    let mut registers_patched = 0;
    for r in regs.iter_mut() {
        if *r >= alloc_start && *r < alloc_start + len {
            *r = r.wrapping_add(delta as u64);
            registers_patched += 1;
        }
    }
    mem.copy(alloc_start, dst, len);
    table.rebase_escape_cells(alloc_start, alloc_start + len, delta);
    table.relocate(alloc_start, delta);
    Some(MoveOutcome {
        moved_src: alloc_start,
        moved_len: len,
        moved_dst: dst,
        allocations: 1,
        escapes_patched,
        registers_patched,
        cost: MoveCostBreakdown {
            page_expand: 0, // the whole point of allocation granularity
            patch_gen_exec: escapes_patched as u64 * cost.move_patch_per_escape,
            register_patch: regs.len() as u64 * cost.move_register_patch_per_reg,
            alloc_and_move: cost.move_alloc_fixed + cost.copy_cost(len),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_table::AllocKind;
    use std::collections::HashMap;

    /// Sparse simulated memory for tests.
    #[derive(Default)]
    struct TestMem {
        words: HashMap<u64, u64>,
    }

    impl MemAccess for TestMem {
        fn read_u64(&self, addr: u64) -> u64 {
            *self.words.get(&addr).unwrap_or(&0)
        }
        fn write_u64(&mut self, addr: u64, val: u64) {
            self.words.insert(addr, val);
        }
        fn copy(&mut self, src: u64, dst: u64, len: u64) {
            let moved: Vec<(u64, u64)> = self
                .words
                .iter()
                .filter(|(&a, _)| a >= src && a < src + len)
                .map(|(&a, &v)| (a, v))
                .collect();
            for (a, v) in moved {
                self.words.remove(&a);
                self.words.insert(a - src + dst, v);
            }
        }
    }

    fn setup() -> (AllocationTable, TestMem) {
        let mut t = AllocationTable::new();
        let mut m = TestMem::default();
        // Allocation A at 0x1000..0x1100 with two escapes:
        //  - cell 0x5000 (outside A) -> 0x1010
        //  - cell 0x1080 (inside A!) -> 0x1020  (self-referential structure)
        t.track_alloc(0x1000, 0x100, AllocKind::Heap);
        m.write_u64(0x5000, 0x1010);
        m.write_u64(0x1080, 0x1020);
        t.track_escape(0x5000);
        t.track_escape(0x1080);
        let snapshot: HashMap<u64, u64> = [(0x5000u64, 0x1010u64), (0x1080, 0x1020)].into();
        t.flush_escapes(|c| snapshot[&c]);
        (t, m)
    }

    #[test]
    fn expand_covers_straddling_allocation() {
        let mut t = AllocationTable::new();
        // Allocation crossing the 0x2000 page boundary.
        t.track_alloc(0x1f00, 0x200, AllocKind::Heap);
        let (src, len) = expand_to_allocations(&t, 0x2000, 0x1000, 0x1000);
        assert_eq!(src, 0x1000, "expanded back to cover the allocation");
        assert_eq!(len, 0x2000);
    }

    #[test]
    fn move_patches_external_and_internal_escapes() {
        let (mut t, mut m) = setup();
        let cost = CostModel::default();
        let mut regs = vec![0x1044u64, 0xdead];
        let out = perform_move(
            &mut t,
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x1000,
                len: 0x1000,
                dst: 0x9000,
            },
            &cost,
        );
        assert_eq!(out.allocations, 1);
        assert_eq!(out.escapes_patched, 2);
        assert_eq!(out.registers_patched, 1);
        // External cell now points into the new location.
        assert_eq!(m.read_u64(0x5000), 0x9010);
        // Internal cell moved with the data AND was patched.
        assert_eq!(m.read_u64(0x9080), 0x9020);
        // Register snapshot patched.
        assert_eq!(regs[0], 0x9044);
        assert_eq!(regs[1], 0xdead);
        // Table relocated.
        assert!(t.info(0x1000).is_none());
        assert_eq!(t.info(0x9000).map(|i| i.len), Some(0x100));
        // The internal escape cell is tracked at its new address.
        assert!(t.info(0x9000).unwrap().escapes.contains(&0x9080));
        assert!(t.info(0x9000).unwrap().escapes.contains(&0x5000));
    }

    #[test]
    fn move_cost_breakdown_sums() {
        let (mut t, mut m) = setup();
        let cost = CostModel::default();
        let mut regs = vec![0u64; 16];
        let out = perform_move(
            &mut t,
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x1000,
                len: 0x1000,
                dst: 0x9000,
            },
            &cost,
        );
        let c = out.cost;
        assert_eq!(c.total(), c.prototype_cost() + c.alloc_and_move);
        assert_eq!(
            c.prototype_cost(),
            c.page_expand + c.patch_gen_exec + c.register_patch
        );
        assert!(c.prototype_wo_expand() < c.prototype_cost());
        assert_eq!(
            c.patch_gen_exec,
            2 * cost.move_patch_per_escape,
            "two escapes patched"
        );
    }

    #[test]
    fn alloc_granular_move_skips_expand() {
        let (mut t, mut m) = setup();
        let cost = CostModel::default();
        let mut regs = vec![];
        let out = perform_move_alloc_granular(&mut t, &mut m, &mut regs, 0x1000, 0x9000, &cost)
            .expect("allocation exists");
        assert_eq!(out.cost.page_expand, 0);
        assert_eq!(out.moved_len, 0x100, "only the allocation itself");
        assert_eq!(m.read_u64(0x5000), 0x9010);
        assert_eq!(t.info(0x9000).map(|i| i.len), Some(0x100));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        /// Random allocation layouts with random cross-pointers: after a
        /// move of any page, every escape cell points into its (possibly
        /// relocated) owner and the data moved verbatim.
        #[test]
        fn move_preserves_pointer_graph(
            n_allocs in 1usize..24,
            sizes in proptest::collection::vec(16u64..200, 24),
            links in proptest::collection::vec((0usize..24, 0usize..24, 0u64..16), 0..40),
            move_page in 0u64..4,
        ) {
            use proptest::prelude::*;
            let cost = CostModel::default();
            let mut t = AllocationTable::new();
            let mut m = TestMem::default();
            // Lay allocations out contiguously from 0x10000 (16-aligned).
            let mut starts = Vec::new();
            let mut cursor = 0x10000u64;
            for &raw in sizes.iter().take(n_allocs) {
                let size = raw / 16 * 16 + 16;
                starts.push(cursor);
                t.track_alloc(cursor, size, AllocKind::Heap);
                cursor += size;
            }
            // Random pointer cells: cell inside alloc A points into alloc B.
            let mut cells = Vec::new();
            for &(a, bflt, off) in &links {
                let (a, b) = (a % n_allocs, bflt % n_allocs);
                let cell = starts[a] + (off % (sizes[a] / 16 + 1)) * 8;
                let target = starts[b] + (off % 2) * 8;
                m.write_u64(cell, target);
                t.track_escape(cell);
                cells.push(cell);
            }
            let snapshot = m.words.clone();
            t.flush_escapes(|c| *snapshot.get(&c).unwrap_or(&0));
            // Move one page of the layout.
            let src = 0x10000 + move_page * 0x1000;
            let mut regs = vec![starts[0], 0x0];
            let out = perform_move(
                &mut t,
                &mut m,
                &mut regs,
                MoveRequest { src, len: 0x1000, dst: 0x90000 },
                &cost,
            );
            prop_assert!(out.moved_len >= 0x1000);
            // Every registered escape cell's value lies inside its owner.
            for (start, len, _, _) in t.snapshot() {
                if let Some(info) = t.info(start) {
                    for &cell in &info.escapes {
                        let val = m.read_u64(cell);
                        prop_assert!(
                            val >= start && val < start + len,
                            "cell {cell:#x} -> {val:#x} outside [{start:#x},+{len:#x})"
                        );
                    }
                }
            }
            // Register patched iff it was in the moved range.
            prop_assert_eq!(regs[1], 0);
        }
    }

    #[test]
    fn interrupted_move_rolls_back_byte_identical() {
        let (mut t, mut m) = setup();
        let cost = CostModel::default();
        let mut regs = vec![0x1044u64, 0xdead];
        let words_before = m.words.clone();
        let regs_before = regs.clone();
        let table_before = t.snapshot();
        let mut fire = |phase: MovePhase| phase == MovePhase::Patched;
        let err = perform_move_journaled(
            &mut t,
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x1000,
                len: 0x1000,
                dst: 0x9000,
            },
            &cost,
            Some(&mut fire),
        )
        .unwrap_err();
        assert_eq!(err.phase, MovePhase::Patched);
        assert_eq!(err.cells_rolled_back, 2, "both escape patches undone");
        assert_eq!(err.registers_rolled_back, 1);
        // Byte-identical pre-move state: memory, registers, and table.
        assert_eq!(m.words, words_before);
        assert_eq!(regs, regs_before);
        assert_eq!(t.snapshot(), table_before);
        assert!(t.info(0x1000).is_some(), "allocation still at old address");
        assert!(t.info(0x9000).is_none(), "nothing landed at the dst");
        // The machine is not poisoned: the same move succeeds afterwards.
        let out = perform_move(
            &mut t,
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x1000,
                len: 0x1000,
                dst: 0x9000,
            },
            &cost,
        );
        assert_eq!(out.escapes_patched, 2);
        assert_eq!(m.read_u64(0x5000), 0x9010);
    }

    #[test]
    fn interrupt_before_patching_touches_nothing() {
        let (mut t, mut m) = setup();
        let cost = CostModel::default();
        let mut regs = vec![0x1044u64];
        let words_before = m.words.clone();
        let mut fire = |phase: MovePhase| phase == MovePhase::Expanded;
        let err = perform_move_journaled(
            &mut t,
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x1000,
                len: 0x1000,
                dst: 0x9000,
            },
            &cost,
            Some(&mut fire),
        )
        .unwrap_err();
        assert_eq!(err.phase, MovePhase::Expanded);
        assert_eq!(err.cells_rolled_back, 0);
        assert_eq!(m.words, words_before);
        assert_eq!(regs, vec![0x1044u64]);
    }

    #[test]
    fn journaled_move_without_interrupt_matches_plain_move() {
        let (mut t1, mut m1) = setup();
        let (mut t2, mut m2) = setup();
        let cost = CostModel::default();
        let req = MoveRequest {
            src: 0x1000,
            len: 0x1000,
            dst: 0x9000,
        };
        let mut regs1 = vec![0x1044u64, 0xdead];
        let mut regs2 = regs1.clone();
        let plain = perform_move(&mut t1, &mut m1, &mut regs1, req, &cost);
        let mut never = |_: MovePhase| false;
        let journaled =
            perform_move_journaled(&mut t2, &mut m2, &mut regs2, req, &cost, Some(&mut never))
                .unwrap();
        assert_eq!(plain, journaled, "journal must not change the outcome");
        assert_eq!(regs1, regs2);
        assert_eq!(m1.words, m2.words);
    }

    /// Two owner tables for one shared allocation at 0x20000..0x20100:
    /// owner 0 holds a pointer cell at 0x5000, owner 1 at 0x6000, and both
    /// track a cell at 0x20080 *inside* the shared block.
    fn setup_shared() -> (AllocationTable, AllocationTable, TestMem) {
        let mut t1 = AllocationTable::new();
        let mut t2 = AllocationTable::new();
        let mut m = TestMem::default();
        for t in [&mut t1, &mut t2] {
            t.track_alloc(0x20000, 0x100, AllocKind::Heap);
        }
        m.write_u64(0x5000, 0x20010);
        m.write_u64(0x6000, 0x20020);
        m.write_u64(0x20080, 0x20030);
        t1.track_escape(0x5000);
        t1.track_escape(0x20080);
        t2.track_escape(0x6000);
        t2.track_escape(0x20080);
        let snapshot: HashMap<u64, u64> = [
            (0x5000u64, 0x20010u64),
            (0x6000, 0x20020),
            (0x20080, 0x20030),
        ]
        .into();
        t1.flush_escapes(|c| snapshot[&c]);
        t2.flush_escapes(|c| snapshot[&c]);
        (t1, t2, m)
    }

    #[test]
    fn shared_move_patches_every_owner() {
        let (mut t1, mut t2, mut m) = setup_shared();
        let cost = CostModel::default();
        // regs = owner0's thread then owner1's thread.
        let mut regs = vec![0x20044u64, 0xdead, 0x20048];
        let out = perform_shared_move_journaled(
            &mut [&mut t1, &mut t2],
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x20000,
                len: 0x1000,
                dst: 0x90000,
            },
            &cost,
            None,
        )
        .unwrap();
        assert_eq!(out.allocations, 2, "one affected allocation per owner");
        // 0x5000, 0x6000, and 0x20080 — the doubly-tracked internal cell
        // counts once (idempotent patch).
        assert_eq!(out.escapes_patched, 3);
        assert_eq!(out.registers_patched, 2);
        assert_eq!(m.read_u64(0x5000), 0x90010);
        assert_eq!(m.read_u64(0x6000), 0x90020);
        assert_eq!(
            m.read_u64(0x90080),
            0x90030,
            "internal cell moved + patched once"
        );
        assert_eq!(regs, vec![0x90044, 0xdead, 0x90048]);
        for t in [&t1, &t2] {
            assert!(t.info(0x20000).is_none());
            assert_eq!(t.info(0x90000).map(|i| i.len), Some(0x100));
            assert!(t.info(0x90000).unwrap().escapes.contains(&0x90080));
        }
        assert!(t1.info(0x90000).unwrap().escapes.contains(&0x5000));
        assert!(t2.info(0x90000).unwrap().escapes.contains(&0x6000));
    }

    #[test]
    fn interrupted_shared_move_rolls_back_all_owners() {
        let (mut t1, mut t2, mut m) = setup_shared();
        let cost = CostModel::default();
        let mut regs = vec![0x20044u64, 0x20048];
        let words_before = m.words.clone();
        let regs_before = regs.clone();
        let (snap1, snap2) = (t1.snapshot(), t2.snapshot());
        let mut fire = |phase: MovePhase| phase == MovePhase::Patched;
        let err = perform_shared_move_journaled(
            &mut [&mut t1, &mut t2],
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x20000,
                len: 0x1000,
                dst: 0x90000,
            },
            &cost,
            Some(&mut fire),
        )
        .unwrap_err();
        assert_eq!(err.phase, MovePhase::Patched);
        assert_eq!(err.cells_rolled_back, 3);
        assert_eq!(err.registers_rolled_back, 2);
        assert_eq!(m.words, words_before);
        assert_eq!(regs, regs_before);
        assert_eq!(t1.snapshot(), snap1);
        assert_eq!(t2.snapshot(), snap2);
        // Not poisoned: the same shared move succeeds afterwards.
        let out = perform_shared_move_journaled(
            &mut [&mut t1, &mut t2],
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x20000,
                len: 0x1000,
                dst: 0x90000,
            },
            &cost,
            None,
        )
        .unwrap();
        assert_eq!(out.escapes_patched, 3);
    }

    #[test]
    fn moving_without_pointers_patches_nothing() {
        let mut t = AllocationTable::new();
        let mut m = TestMem::default();
        t.track_alloc(0x1000, 0x100, AllocKind::Heap);
        m.write_u64(0x1000, 42);
        let cost = CostModel::default();
        let mut regs = vec![0u64; 4];
        let out = perform_move(
            &mut t,
            &mut m,
            &mut regs,
            MoveRequest {
                src: 0x1000,
                len: 0x1000,
                dst: 0x4000,
            },
            &cost,
        );
        assert_eq!(out.escapes_patched, 0);
        assert_eq!(m.read_u64(0x4000), 42, "data moved verbatim");
    }
}
