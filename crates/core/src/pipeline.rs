//! The CARAT compilation pipeline: instrumentation, optimization, signing.
//!
//! This is the top-level API a build system would drive:
//!
//! ```text
//! Cm source ──frontend──▶ Module ──[CaratCompiler::compile]──▶ CompiledModule
//!                                     │ inject guards (§2.2)
//!                                     │ inject tracking (§4.1.2)
//!                                     │ Opt 1/2/3 (§4.1.1)
//!                                     │ sign (§4.1)
//! ```

use crate::guards::{guard_ids, inject_guards, GuardConfig};
use crate::opt::{gvn, hoist, merge, redundancy, GuardCensus, GuardClasses};
use crate::sign::{sign_module, SignedModule, SigningKey};
use crate::tracking::{inject_tracking, TrackingConfig};
use carat_ir::{verify_module, Module, VerifyError};

/// Optimization preset for the guard pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptPreset {
    /// No guard optimization at all: the conceptual "guard every
    /// instruction" model.
    None,
    /// Only generic, readily-available optimizations (paper Figure 3a):
    /// local redundancy within a basic block, nothing loop-aware.
    General,
    /// The full CARAT-specific stack (paper Figure 3b): hoisting, merging,
    /// and AC/DC redundancy elimination.
    #[default]
    CaratSpecific,
}

/// Which of the CARAT-specific optimizations to run (ablation control).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptToggles {
    /// Opt 1 — hoisting.
    pub hoist: bool,
    /// Opt 2 — merging.
    pub merge: bool,
    /// Opt 3 — redundancy elimination.
    pub redundancy: bool,
}

impl OptToggles {
    /// All three optimizations.
    pub const ALL: OptToggles = OptToggles {
        hoist: true,
        merge: true,
        redundancy: true,
    };
    /// No optimization.
    pub const NONE: OptToggles = OptToggles {
        hoist: false,
        merge: false,
        redundancy: false,
    };
}

/// Full compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Inject protection guards.
    pub guards: Option<GuardConfig>,
    /// Inject allocation/escape tracking.
    pub tracking: Option<TrackingConfig>,
    /// Optimization preset.
    pub preset: OptPreset,
    /// Fine-grained toggles applied when `preset` is
    /// [`OptPreset::CaratSpecific`].
    pub toggles: OptToggles,
    /// Signing key; `None` produces an unsigned build the kernel loader
    /// will reject unless configured to allow it.
    pub signing: Option<SigningKey>,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            guards: Some(GuardConfig::default()),
            tracking: Some(TrackingConfig::default()),
            preset: OptPreset::CaratSpecific,
            toggles: OptToggles::ALL,
            signing: Some(SigningKey::from_passphrase(
                "carat-cc",
                "reference-toolchain",
            )),
        }
    }
}

impl CompileOptions {
    /// Baseline build: generic optimizations, no instrumentation — the
    /// `-O3`-style build every overhead figure normalizes against.
    pub fn baseline() -> CompileOptions {
        CompileOptions {
            guards: None,
            tracking: None,
            preset: OptPreset::General,
            toggles: OptToggles::NONE,
            ..CompileOptions::default()
        }
    }

    /// Guards only, with the given preset (Figure 3 configurations).
    pub fn guards_only(preset: OptPreset) -> CompileOptions {
        CompileOptions {
            guards: Some(GuardConfig::default()),
            tracking: None,
            preset,
            toggles: OptToggles::ALL,
            ..CompileOptions::default()
        }
    }

    /// Tracking only (Figures 5–7 configurations). Generic optimizations
    /// stay on so the comparison against [`CompileOptions::baseline`]
    /// isolates the tracking cost.
    pub fn tracking_only() -> CompileOptions {
        CompileOptions {
            guards: None,
            tracking: Some(TrackingConfig::default()),
            preset: OptPreset::General,
            toggles: OptToggles::NONE,
            ..CompileOptions::default()
        }
    }
}

/// The result of a CARAT compilation.
#[derive(Debug, Clone)]
pub struct CompiledModule {
    /// The instrumented, optimized module.
    pub module: Module,
    /// Guard optimization census (Table 1 raw data).
    pub census: GuardCensus,
    /// Signed serialized form, if a signing key was supplied.
    pub signed: Option<SignedModule>,
}

/// The CARAT compiler driver.
#[derive(Debug, Clone, Default)]
pub struct CaratCompiler {
    options: CompileOptions,
}

impl CaratCompiler {
    /// A compiler with the given options.
    pub fn new(options: CompileOptions) -> CaratCompiler {
        CaratCompiler { options }
    }

    /// Compile (instrument + optimize + sign) `module`.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] if the input module is malformed, or if an
    /// internal pass broke the module (a compiler bug — the verifier runs
    /// again after transformation, reflecting the paper's point that the
    /// compiler is in the TCB and must police itself).
    pub fn compile(&self, mut module: Module) -> Result<CompiledModule, VerifyError> {
        verify_module(&module)?;
        // Generic middle-end optimization (value numbering) runs for every
        // preset above `None`, instrumented or not — the paper's baselines
        // are `-O3` builds, so the uninstrumented baseline gets it too.
        if self.options.preset != OptPreset::None {
            let fids: Vec<_> = module.func_ids().collect();
            for fid in fids {
                gvn::run(module.func_mut(fid));
            }
        }
        let mut census = GuardCensus::default();
        if let Some(gcfg) = self.options.guards {
            inject_guards(&mut module, gcfg);
            let fids: Vec<_> = module.func_ids().collect();
            for fid in fids {
                let guards = guard_ids(module.func(fid));
                let mut classes = GuardClasses::with_original(&guards);
                let f = module.func_mut(fid);
                match self.options.preset {
                    OptPreset::None => {}
                    OptPreset::General => {
                        // Readily-available guard cleanup only: same-block
                        // redundancy. (AC/DC, loop hoisting and merging are
                        // the CARAT-specific additions.)
                        redundancy::run_local(f, &mut classes);
                    }
                    OptPreset::CaratSpecific => {
                        let t = self.options.toggles;
                        if t.hoist {
                            hoist::run(f, &mut classes);
                        }
                        if t.merge {
                            merge::run(f, &mut classes);
                        }
                        if t.redundancy {
                            redundancy::run(f, &mut classes);
                        }
                    }
                }
                census += classes.census();
            }
        }
        if let Some(tcfg) = self.options.tracking {
            inject_tracking(&mut module, tcfg);
        }
        verify_module(&module)?;
        let signed = self
            .options
            .signing
            .as_ref()
            .map(|k| sign_module(&module, k));
        Ok(CompiledModule {
            module,
            census,
            signed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guards::count_guards;
    use crate::sign::verify_signature;
    use crate::tracking::count_tracking;
    use carat_ir::{ModuleBuilder, Pred, Type};

    /// sum over a[0..n] with an extra invariant pointer update.
    fn workload() -> Module {
        let mut mb = ModuleBuilder::new("w");
        let f = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let h = b.block("h");
            let body = b.block("body");
            let x = b.block("x");
            b.switch_to(e);
            let n = b.const_i64(64);
            let bytes = b.const_i64(64 * 8);
            let a = b.malloc(bytes);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let s = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(Pred::Slt, i, n);
            b.br(c, body, x);
            b.switch_to(body);
            let ai = b.ptr_add(a, i, Type::I64);
            b.store(Type::I64, ai, i);
            let v = b.load(Type::I64, ai);
            let s2 = b.add(s, v);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, body, i2);
            b.phi_add_incoming(s, body, s2);
            b.jmp(h);
            b.switch_to(x);
            b.free(a);
            b.ret(Some(s));
        }
        mb.finish()
    }

    #[test]
    fn baseline_leaves_module_untouched() {
        let m = workload();
        let before = carat_ir::print_module(&m);
        let out = CaratCompiler::new(CompileOptions::baseline())
            .compile(m)
            .unwrap();
        assert_eq!(carat_ir::print_module(&out.module), before);
        assert_eq!(out.census.total, 0);
    }

    #[test]
    fn full_pipeline_instruments_and_signs() {
        let out = CaratCompiler::new(CompileOptions::default())
            .compile(workload())
            .unwrap();
        assert!(count_guards(&out.module) >= 1);
        assert!(count_tracking(&out.module) >= 2);
        let signed = out.signed.expect("signed by default");
        let key = SigningKey::from_passphrase("carat-cc", "reference-toolchain");
        verify_signature(&signed, &key).expect("default key verifies");
    }

    #[test]
    fn carat_opts_reduce_dynamic_guard_positions() {
        let none = CaratCompiler::new(CompileOptions::guards_only(OptPreset::None))
            .compile(workload())
            .unwrap();
        let carat = CaratCompiler::new(CompileOptions::guards_only(OptPreset::CaratSpecific))
            .compile(workload())
            .unwrap();
        // The two in-loop guards (store + load on a[i]) must be gone from
        // the loop: merged into a preheader range guard and/or eliminated.
        assert!(count_guards(&carat.module) <= count_guards(&none.module));
        let census = carat.census;
        assert_eq!(census.total, 2);
        assert!(
            census.merged + census.eliminated + census.hoisted >= 2,
            "both loop guards optimized: {census:?}"
        );
    }

    #[test]
    fn census_classes_partition_total() {
        let out = CaratCompiler::new(CompileOptions::guards_only(OptPreset::CaratSpecific))
            .compile(workload())
            .unwrap();
        let c = out.census;
        assert_eq!(
            c.untouched + c.hoisted + c.merged + c.eliminated,
            c.total,
            "classes partition the original guards"
        );
    }

    #[test]
    fn general_preset_runs_local_redundancy_only() {
        let out = CaratCompiler::new(CompileOptions::guards_only(OptPreset::General))
            .compile(workload())
            .unwrap();
        // load guard after store guard on same address in same block:
        // removable even by the general preset.
        assert!(out.census.eliminated >= 1);
        assert_eq!(out.census.hoisted, 0);
        assert_eq!(out.census.merged, 0);
    }
}
