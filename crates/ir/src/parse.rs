//! Parser for the textual module format produced by [`crate::print`].
//!
//! Together with the printer this forms the reproduction's "bitcode"
//! reader/writer: the kernel loader parses signed module text, and
//! round-tripping is exercised by property tests.

use crate::func::{Function, ValueDef};
use crate::inst::{BinOp, BlockId, CastKind, Const, FuncId, Inst, Intrinsic, Pred, ValueId};
use crate::module::{Global, GlobalInit, Module};
use crate::types::{IntTy, Type};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced when module text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

/// Parse module text back into a [`Module`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line when the text is not
/// well-formed (unknown mnemonics, malformed types, dangling references…).
pub fn parse_module(text: &str) -> Result<Module> {
    Parser::new(text).parse()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>, // (1-based line no, trimmed content)
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with(';'))
            .collect();
        Parser { lines, pos: 0 }
    }

    fn err<T>(&self, line: usize, msg: impl Into<String>) -> Result<T> {
        Err(ParseError {
            line,
            message: msg.into(),
        })
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn parse(&mut self) -> Result<Module> {
        let (ln, first) = match self.next_line() {
            Some(l) => l,
            None => return self.err(0, "empty module text"),
        };
        let name = first
            .strip_prefix("module \"")
            .and_then(|r| r.strip_suffix('"'))
            .ok_or_else(|| ParseError {
                line: ln,
                message: "expected `module \"<name>\"`".into(),
            })?;
        let mut module = Module::new(name);
        let mut global_names: HashMap<String, crate::inst::GlobalId> = HashMap::new();

        // Pre-scan function declarations so calls can resolve by name.
        let mut func_names: HashMap<String, FuncId> = HashMap::new();
        let mut sigs: Vec<(String, Vec<Type>, Option<Type>)> = Vec::new();
        for &(ln, l) in &self.lines[self.pos..] {
            if let Some(rest) = l.strip_prefix("func @") {
                let (name, params, ret) = parse_signature(ln, rest)?;
                func_names.insert(name.clone(), FuncId(sigs.len() as u32));
                sigs.push((name, params, ret));
            }
        }

        // Globals come before functions.
        while let Some((ln, l)) = self.peek() {
            let Some(rest) = l.strip_prefix("global @") else {
                break;
            };
            self.pos += 1;
            let (name, rest) = split_token(rest);
            let rest = rest.trim_start();
            let rest = rest.strip_prefix(':').ok_or_else(|| ParseError {
                line: ln,
                message: "expected `:` after global name".into(),
            })?;
            let (ty, rest) = parse_type_prefix(ln, rest.trim_start())?;
            let rest = rest.trim_start();
            let rest = rest.strip_prefix('=').ok_or_else(|| ParseError {
                line: ln,
                message: "expected `=` in global".into(),
            })?;
            let init = parse_global_init(ln, rest.trim())?;
            let gid = module.add_global(Global {
                name: name.to_string(),
                ty,
                init,
            });
            global_names.insert(name.to_string(), gid);
        }

        // Declare all functions up front (empty bodies).
        for (name, params, ret) in &sigs {
            module.add_func(Function::new(name.clone(), params.clone(), ret.clone()));
        }

        // Parse bodies.
        let mut next_func = 0u32;
        while let Some((ln, l)) = self.next_line() {
            let Some(rest) = l.strip_prefix("func @") else {
                return self.err(ln, format!("unexpected line `{l}`"));
            };
            let (name, _, _) = parse_signature(ln, rest)?;
            let fid = FuncId(next_func);
            next_func += 1;
            if module.func(fid).name != name {
                return self.err(ln, "function order mismatch");
            }
            let body = self.parse_body(ln, &module, &func_names, &global_names)?;
            let sig = &sigs[fid.index()];
            *module.func_mut(fid) = body_into_function(sig, body);
        }
        Ok(module)
    }

    /// Parse the lines of one function body up to the closing `}`.
    fn parse_body(
        &mut self,
        fn_line: usize,
        module: &Module,
        funcs: &HashMap<String, FuncId>,
        globals: &HashMap<String, crate::inst::GlobalId>,
    ) -> Result<RawBody> {
        let mut body = RawBody::default();
        let mut cur_block: Option<BlockId> = None;
        loop {
            let (ln, l) = match self.next_line() {
                Some(x) => x,
                None => return self.err(fn_line, "unterminated function body"),
            };
            if l == "}" {
                return Ok(body);
            }
            if let Some(rest) = l.strip_suffix(':') {
                // `bbN <label>:`
                let (bb, label) = split_token(rest);
                let idx = parse_block_id(ln, bb)?;
                if idx.index() != body.blocks.len() {
                    return self.err(ln, "blocks must appear in id order");
                }
                body.blocks.push((label.trim().to_string(), Vec::new()));
                cur_block = Some(idx);
                continue;
            }
            let block = match cur_block {
                Some(b) => b,
                None => return self.err(ln, "instruction outside a block"),
            };
            let (dst, inst_text) = match l.split_once(" = ") {
                Some((lhs, rhs)) if lhs.starts_with('%') => {
                    (Some(parse_value_id(ln, lhs.trim())?), rhs.trim())
                }
                _ => (None, l),
            };
            let inst = parse_inst(ln, inst_text, module, funcs, globals, self)?;
            body.blocks[block.index()].1.push((dst, inst, ln));
        }
    }
}

/// One parsed instruction: optional destination id, the instruction, and
/// its source line.
type RawInst = (Option<ValueId>, Inst, usize);

/// Accumulated instructions per block before arena reconstruction.
#[derive(Default)]
struct RawBody {
    blocks: Vec<(String, Vec<RawInst>)>,
}

fn body_into_function(sig: &(String, Vec<Type>, Option<Type>), body: RawBody) -> Function {
    let (name, params, ret) = sig;
    let mut f = Function::new(name.clone(), params.clone(), ret.clone());
    // Determine arena size: max referenced/defined id + 1.
    let mut max_id = params.len().saturating_sub(1) as u32;
    for (_, insts) in &body.blocks {
        for (dst, inst, _) in insts {
            if let Some(d) = dst {
                max_id = max_id.max(d.0);
            }
            for op in inst.operands() {
                max_id = max_id.max(op.0);
            }
        }
    }
    // Build a dense value table with filler for unreferenced gaps.
    let mut defs: Vec<Option<(Inst, BlockId)>> = vec![None; (max_id + 1) as usize];
    for (bi, (_, insts)) in body.blocks.iter().enumerate() {
        for (dst, inst, _) in insts {
            if let Some(d) = dst {
                defs[d.index()] = Some((inst.clone(), BlockId(bi as u32)));
            }
        }
    }
    // Reconstruct: add blocks, then place instructions honoring printed ids.
    for (label, _) in &body.blocks {
        f.add_block(label.clone());
    }
    // First, push arena entries for ids params.len()..=max_id.
    // Value-producing instructions go at their printed id; fillers elsewhere.
    let nparams = params.len() as u32;
    let mut raw_values: Vec<ValueDef> = Vec::new();
    for id in nparams..=max_id {
        match defs[id as usize].take() {
            Some((inst, block)) => raw_values.push(ValueDef::Inst { inst, block }),
            None => raw_values.push(ValueDef::Inst {
                inst: Inst::Unreachable,
                block: BlockId(0),
            }),
        }
    }
    // Non-producing instructions (stores, terminators, void calls) were not
    // assigned printed ids; append them to the arena now, remembering the id
    // each (block, position) slot got.
    let mut block_lists: Vec<Vec<ValueId>> = vec![Vec::new(); body.blocks.len()];
    for (bi, (_, insts)) in body.blocks.iter().enumerate() {
        for (dst, inst, _) in insts {
            match dst {
                Some(d) => block_lists[bi].push(*d),
                None => {
                    let id = ValueId(nparams + raw_values.len() as u32);
                    raw_values.push(ValueDef::Inst {
                        inst: inst.clone(),
                        block: BlockId(bi as u32),
                    });
                    block_lists[bi].push(id);
                }
            }
        }
    }
    f.install_parsed(raw_values, block_lists);
    f
}

fn parse_signature(ln: usize, rest: &str) -> Result<(String, Vec<Type>, Option<Type>)> {
    // `<name>(<tys>) [-> ty] {`
    let open = rest.find('(').ok_or_else(|| ParseError {
        line: ln,
        message: "expected `(` in function signature".into(),
    })?;
    let name = rest[..open].trim().to_string();
    let close = rest.rfind(')').ok_or_else(|| ParseError {
        line: ln,
        message: "expected `)` in function signature".into(),
    })?;
    let params_txt = &rest[open + 1..close];
    let mut params = Vec::new();
    for p in split_top_level(params_txt) {
        let (ty, leftover) = parse_type_prefix(ln, p.trim())?;
        if !leftover.trim().is_empty() {
            return Err(ParseError {
                line: ln,
                message: format!("trailing characters in parameter type `{p}`"),
            });
        }
        params.push(ty);
    }
    let tail = rest[close + 1..].trim();
    let tail = tail.strip_suffix('{').map(str::trim).unwrap_or(tail);
    let ret = if let Some(r) = tail.strip_prefix("->") {
        let (ty, leftover) = parse_type_prefix(ln, r.trim())?;
        if !leftover.trim().is_empty() {
            return Err(ParseError {
                line: ln,
                message: "trailing characters after return type".into(),
            });
        }
        Some(ty)
    } else if tail.is_empty() {
        None
    } else {
        return Err(ParseError {
            line: ln,
            message: format!("unexpected `{tail}` in signature"),
        });
    };
    Ok((name, params, ret))
}

fn parse_global_init(ln: usize, text: &str) -> Result<GlobalInit> {
    if text == "zero" {
        return Ok(GlobalInit::Zero);
    }
    if let Some(body) = text
        .strip_prefix("bytes [")
        .and_then(|t| t.strip_suffix(']'))
    {
        let mut bytes = Vec::new();
        for tok in body.split_whitespace() {
            let b = u8::from_str_radix(tok, 16).map_err(|_| ParseError {
                line: ln,
                message: format!("bad byte `{tok}`"),
            })?;
            bytes.push(b);
        }
        return Ok(GlobalInit::Bytes(bytes));
    }
    if let Some(body) = text
        .strip_prefix("i64s [")
        .and_then(|t| t.strip_suffix(']'))
    {
        let mut ws = Vec::new();
        for tok in body.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let w: i64 = tok.parse().map_err(|_| ParseError {
                line: ln,
                message: format!("bad i64 `{tok}`"),
            })?;
            ws.push(w);
        }
        return Ok(GlobalInit::I64s(ws));
    }
    if let Some(body) = text
        .strip_prefix("f64s [")
        .and_then(|t| t.strip_suffix(']'))
    {
        let mut ws = Vec::new();
        for tok in body.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let bits = parse_hex_bits(ln, tok)?;
            ws.push(f64::from_bits(bits));
        }
        return Ok(GlobalInit::F64s(ws));
    }
    Err(ParseError {
        line: ln,
        message: format!("unknown global initializer `{text}`"),
    })
}

fn parse_hex_bits(ln: usize, tok: &str) -> Result<u64> {
    tok.strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| ParseError {
            line: ln,
            message: format!("bad f64 bits `{tok}`"),
        })
}

fn parse_value_id(ln: usize, tok: &str) -> Result<ValueId> {
    tok.strip_prefix('%')
        .and_then(|n| n.parse::<u32>().ok())
        .map(ValueId)
        .ok_or_else(|| ParseError {
            line: ln,
            message: format!("bad value id `{tok}`"),
        })
}

fn parse_block_id(ln: usize, tok: &str) -> Result<BlockId> {
    tok.strip_prefix("bb")
        .and_then(|n| n.parse::<u32>().ok())
        .map(BlockId)
        .ok_or_else(|| ParseError {
            line: ln,
            message: format!("bad block id `{tok}`"),
        })
}

/// Parse a type from the front of `s`; returns the type and the rest.
pub(crate) fn parse_type_prefix(ln: usize, s: &str) -> Result<(Type, &str)> {
    let s = s.trim_start();
    if let Some(rest) = s.strip_prefix("i64") {
        return Ok((Type::I64, rest));
    }
    if let Some(rest) = s.strip_prefix("i32") {
        return Ok((Type::I32, rest));
    }
    if let Some(rest) = s.strip_prefix("i8") {
        return Ok((Type::I8, rest));
    }
    if let Some(rest) = s.strip_prefix("i1") {
        return Ok((Type::I1, rest));
    }
    if let Some(rest) = s.strip_prefix("f64") {
        return Ok((Type::F64, rest));
    }
    if let Some(rest) = s.strip_prefix("ptr") {
        return Ok((Type::Ptr, rest));
    }
    if let Some(rest) = s.strip_prefix('[') {
        // `[N x T]`
        let xpos = rest.find(" x ").ok_or_else(|| ParseError {
            line: ln,
            message: "expected ` x ` in array type".into(),
        })?;
        let n: u64 = rest[..xpos].trim().parse().map_err(|_| ParseError {
            line: ln,
            message: "bad array length".into(),
        })?;
        let (elem, rest2) = parse_type_prefix(ln, &rest[xpos + 3..])?;
        let rest2 = rest2.trim_start();
        let rest2 = rest2.strip_prefix(']').ok_or_else(|| ParseError {
            line: ln,
            message: "expected `]` closing array type".into(),
        })?;
        return Ok((Type::Array(Box::new(elem), n), rest2));
    }
    if let Some(mut rest) = s.strip_prefix('{') {
        let mut fields = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(r) = rest.strip_prefix('}') {
                return Ok((Type::Struct(fields), r));
            }
            if !fields.is_empty() {
                rest = rest.strip_prefix(',').ok_or_else(|| ParseError {
                    line: ln,
                    message: "expected `,` between struct fields".into(),
                })?;
            }
            let (ty, r) = parse_type_prefix(ln, rest)?;
            fields.push(ty);
            rest = r;
        }
    }
    Err(ParseError {
        line: ln,
        message: format!("cannot parse type at `{s}`"),
    })
}

/// Split `s` at the first whitespace.
fn split_token(s: &str) -> (&str, &str) {
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    }
}

/// Split a comma-separated list, respecting `[]`/`{}` nesting.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '[' | '{' | '(' => depth += 1,
            ']' | '}' | ')' => depth -= 1,
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if !s[start..].trim().is_empty() {
        out.push(&s[start..]);
    }
    out
}

fn parse_inst(
    ln: usize,
    text: &str,
    module: &Module,
    funcs: &HashMap<String, FuncId>,
    globals: &HashMap<String, crate::inst::GlobalId>,
    p: &Parser<'_>,
) -> Result<Inst> {
    let (op, rest) = split_token(text);
    let rest = rest.trim();
    let inst = match op {
        "const" => {
            let (kind, val) = split_token(rest);
            let val = val.trim();
            match kind {
                "i1" | "i8" | "i32" | "i64" => {
                    let w = match kind {
                        "i1" => IntTy::I1,
                        "i8" => IntTy::I8,
                        "i32" => IntTy::I32,
                        _ => IntTy::I64,
                    };
                    let x: i64 = val.parse().map_err(|_| ParseError {
                        line: ln,
                        message: format!("bad integer `{val}`"),
                    })?;
                    Inst::Const(Const::Int(x, w))
                }
                "f64" => Inst::Const(Const::F64(f64::from_bits(parse_hex_bits(ln, val)?))),
                "null" => Inst::Const(Const::Null),
                "global" => {
                    let name = val.strip_prefix('@').ok_or_else(|| ParseError {
                        line: ln,
                        message: "expected `@name` after `const global`".into(),
                    })?;
                    let gid = *globals.get(name).ok_or_else(|| ParseError {
                        line: ln,
                        message: format!("unknown global `{name}`"),
                    })?;
                    Inst::Const(Const::GlobalAddr(gid))
                }
                other => return p.err(ln, format!("unknown constant kind `{other}`")),
            }
        }
        "alloca" => {
            let (ty, leftover) = parse_type_prefix(ln, rest)?;
            expect_empty(ln, leftover)?;
            Inst::Alloca(ty)
        }
        "load" => {
            // `load <ty>, %addr`
            let (ty, leftover) = parse_type_prefix(ln, rest)?;
            let addr_txt = leftover
                .trim_start()
                .strip_prefix(',')
                .ok_or_else(|| ParseError {
                    line: ln,
                    message: "expected `,` in load".into(),
                })?;
            Inst::Load {
                ty,
                addr: parse_value_id(ln, addr_txt.trim())?,
            }
        }
        "store" => {
            // `store <ty> %val, %addr`
            let (ty, leftover) = parse_type_prefix(ln, rest)?;
            let parts = split_top_level(leftover.trim_start());
            if parts.len() != 2 {
                return p.err(ln, "expected `store <ty> %v, %a`");
            }
            Inst::Store {
                ty,
                value: parse_value_id(ln, parts[0].trim())?,
                addr: parse_value_id(ln, parts[1].trim())?,
            }
        }
        "ptradd" => {
            let parts = split_top_level(rest);
            if parts.len() != 3 {
                return p.err(ln, "expected `ptradd %b, %i, <ty>`");
            }
            let (elem, leftover) = parse_type_prefix(ln, parts[2].trim())?;
            expect_empty(ln, leftover)?;
            Inst::PtrAdd {
                base: parse_value_id(ln, parts[0].trim())?,
                index: parse_value_id(ln, parts[1].trim())?,
                elem,
            }
        }
        "fieldaddr" => {
            let parts = split_top_level(rest);
            if parts.len() != 3 {
                return p.err(ln, "expected `fieldaddr %b, <ty>, <idx>`");
            }
            let (struct_ty, leftover) = parse_type_prefix(ln, parts[1].trim())?;
            expect_empty(ln, leftover)?;
            let field: u32 = parts[2].trim().parse().map_err(|_| ParseError {
                line: ln,
                message: "bad field index".into(),
            })?;
            Inst::FieldAddr {
                base: parse_value_id(ln, parts[0].trim())?,
                struct_ty,
                field,
            }
        }
        "icmp" | "fcmp" => {
            let (pred_txt, ops) = split_token(rest);
            let pred = Pred::from_mnemonic(pred_txt).ok_or_else(|| ParseError {
                line: ln,
                message: format!("unknown predicate `{pred_txt}`"),
            })?;
            let parts = split_top_level(ops.trim());
            if parts.len() != 2 {
                return p.err(ln, "expected two compare operands");
            }
            let lhs = parse_value_id(ln, parts[0].trim())?;
            let rhs = parse_value_id(ln, parts[1].trim())?;
            if op == "icmp" {
                Inst::Icmp { pred, lhs, rhs }
            } else {
                Inst::Fcmp { pred, lhs, rhs }
            }
        }
        "select" => {
            let parts = split_top_level(rest);
            if parts.len() != 3 {
                return p.err(ln, "expected `select %c, %t, %f`");
            }
            Inst::Select {
                cond: parse_value_id(ln, parts[0].trim())?,
                if_true: parse_value_id(ln, parts[1].trim())?,
                if_false: parse_value_id(ln, parts[2].trim())?,
            }
        }
        "phi" => {
            // `phi <ty> [bbN, %v], ...`
            let (ty, leftover) = parse_type_prefix(ln, rest)?;
            let mut incomings = Vec::new();
            for part in split_top_level(leftover.trim_start()) {
                let part = part.trim();
                // Each part is pairs of `[bbN` / `%v]` split by top-level commas;
                // since brackets nest, split_top_level keeps `[bbN, %v]` whole.
                let inner = part
                    .strip_prefix('[')
                    .and_then(|t| t.strip_suffix(']'))
                    .ok_or_else(|| ParseError {
                        line: ln,
                        message: format!("bad phi incoming `{part}`"),
                    })?;
                let (bb_txt, v_txt) = inner.split_once(',').ok_or_else(|| ParseError {
                    line: ln,
                    message: "expected `,` in phi incoming".into(),
                })?;
                incomings.push((
                    parse_block_id(ln, bb_txt.trim())?,
                    parse_value_id(ln, v_txt.trim())?,
                ));
            }
            Inst::Phi { ty, incomings }
        }
        "call" => {
            // `call @name(%a, %b) [: ty]`
            let rest = rest.strip_prefix('@').ok_or_else(|| ParseError {
                line: ln,
                message: "expected `@name` after call".into(),
            })?;
            let open = rest.find('(').ok_or_else(|| ParseError {
                line: ln,
                message: "expected `(` in call".into(),
            })?;
            let name = &rest[..open];
            let close = rest.rfind(')').ok_or_else(|| ParseError {
                line: ln,
                message: "expected `)` in call".into(),
            })?;
            let callee = *funcs.get(name).ok_or_else(|| ParseError {
                line: ln,
                message: format!("unknown function `{name}`"),
            })?;
            let args = parse_arg_list(ln, &rest[open + 1..close])?;
            let tail = rest[close + 1..].trim();
            let ret_ty = if let Some(t) = tail.strip_prefix(':') {
                let (ty, leftover) = parse_type_prefix(ln, t.trim())?;
                expect_empty(ln, leftover)?;
                Some(ty)
            } else if tail.is_empty() {
                None
            } else {
                return p.err(ln, format!("unexpected `{tail}` after call"));
            };
            let _ = module; // callee signatures validated by the verifier
            Inst::Call {
                callee,
                args,
                ret_ty,
            }
        }
        "intr" => {
            let open = rest.find('(').ok_or_else(|| ParseError {
                line: ln,
                message: "expected `(` in intrinsic call".into(),
            })?;
            let name = &rest[..open];
            let close = rest.rfind(')').ok_or_else(|| ParseError {
                line: ln,
                message: "expected `)` in intrinsic call".into(),
            })?;
            let intr = Intrinsic::from_name(name).ok_or_else(|| ParseError {
                line: ln,
                message: format!("unknown intrinsic `{name}`"),
            })?;
            Inst::CallIntrinsic {
                intr,
                args: parse_arg_list(ln, &rest[open + 1..close])?,
            }
        }
        "jmp" => Inst::Jmp {
            target: parse_block_id(ln, rest)?,
        },
        "br" => {
            let parts = split_top_level(rest);
            if parts.len() != 3 {
                return p.err(ln, "expected `br %c, bbT, bbF`");
            }
            Inst::Br {
                cond: parse_value_id(ln, parts[0].trim())?,
                if_true: parse_block_id(ln, parts[1].trim())?,
                if_false: parse_block_id(ln, parts[2].trim())?,
            }
        }
        "ret" => Inst::Ret {
            value: if rest.is_empty() {
                None
            } else {
                Some(parse_value_id(ln, rest)?)
            },
        },
        "unreachable" => Inst::Unreachable,
        mnem => {
            if let Some(binop) = BinOp::from_mnemonic(mnem) {
                let parts = split_top_level(rest);
                if parts.len() != 2 {
                    return p.err(ln, "expected two binop operands");
                }
                Inst::Bin {
                    op: binop,
                    lhs: parse_value_id(ln, parts[0].trim())?,
                    rhs: parse_value_id(ln, parts[1].trim())?,
                }
            } else if let Some(kind) = CastKind::from_mnemonic(mnem) {
                // `<kind> %v to <ty>`
                let (v_txt, to_txt) = rest.split_once(" to ").ok_or_else(|| ParseError {
                    line: ln,
                    message: "expected ` to ` in cast".into(),
                })?;
                let (to, leftover) = parse_type_prefix(ln, to_txt.trim())?;
                expect_empty(ln, leftover)?;
                Inst::Cast {
                    kind,
                    value: parse_value_id(ln, v_txt.trim())?,
                    to,
                }
            } else {
                return p.err(ln, format!("unknown instruction `{mnem}`"));
            }
        }
    };
    Ok(inst)
}

fn parse_arg_list(ln: usize, s: &str) -> Result<Vec<ValueId>> {
    let mut args = Vec::new();
    for part in split_top_level(s) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        args.push(parse_value_id(ln, part)?);
    }
    Ok(args)
}

fn expect_empty(ln: usize, leftover: &str) -> Result<()> {
    if leftover.trim().is_empty() {
        Ok(())
    } else {
        Err(ParseError {
            line: ln,
            message: format!("trailing characters `{}`", leftover.trim()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::print::print_module;

    #[test]
    fn roundtrip_simple() {
        let mut mb = ModuleBuilder::new("rt");
        let f = mb.declare("add3", vec![Type::I64], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let c = b.const_i64(3);
            let s = b.add(b.arg(0), c);
            b.ret(Some(s));
        }
        let m = mb.finish();
        let txt = print_module(&m);
        let m2 = parse_module(&txt).expect("parse");
        assert_eq!(print_module(&m2), txt);
    }

    #[test]
    fn roundtrip_globals_and_calls() {
        let mut mb = ModuleBuilder::new("rt2");
        let g = mb.global(
            "tbl",
            Type::Array(Box::new(Type::F64), 8),
            GlobalInit::F64s(vec![1.5, -2.25]),
        );
        let helper = mb.declare("helper", vec![Type::Ptr], Some(Type::F64));
        let main = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(helper);
            let e = b.block("entry");
            b.switch_to(e);
            let v = b.load(Type::F64, b.arg(0));
            b.ret(Some(v));
        }
        {
            let mut b = mb.define(main);
            let e = b.block("entry");
            b.switch_to(e);
            let ga = b.global_addr(g);
            let x = b.call(helper, vec![ga], Some(Type::F64));
            let i = b.cast(CastKind::FpToSi, x, Type::I64);
            b.ret(Some(i));
        }
        let m = mb.finish();
        let txt = print_module(&m);
        let m2 = parse_module(&txt).expect("parse");
        assert_eq!(print_module(&m2), txt);
    }

    #[test]
    fn parse_error_reports_line() {
        let txt = "module \"x\"\n\nfunc @f() {\nbb0 entry:\n  bogus %1\n}\n";
        let err = parse_module(txt).unwrap_err();
        assert_eq!(err.line, 5);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn type_parser_handles_nesting() {
        let (ty, rest) = parse_type_prefix(1, "[4 x {i8, [2 x f64]}] tail").unwrap();
        assert_eq!(
            ty,
            Type::Array(
                Box::new(Type::Struct(vec![
                    Type::I8,
                    Type::Array(Box::new(Type::F64), 2)
                ])),
                4
            )
        );
        assert_eq!(rest.trim(), "tail");
    }
}
