//! Natural-loop detection and the loop forest.
//!
//! CARAT's Opt 1 (guard hoisting) and Opt 2 (guard merging) operate on
//! natural loops; [`ensure_preheader`] gives them a landing block for
//! hoisted guards (the paper's "preamble of the loop").

use crate::cfg::Cfg;
use crate::dom::DomTree;
use carat_ir::{BlockId, Function, Inst, ValueId};
use std::collections::HashSet;

/// A single natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header.
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: HashSet<BlockId>,
    /// Latch blocks (in-loop predecessors of the header).
    pub latches: Vec<BlockId>,
    /// Index of the enclosing loop in the forest, if any.
    pub parent: Option<usize>,
    /// Nesting depth (outermost = 1).
    pub depth: usize,
}

impl Loop {
    /// Whether `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function, ordered outermost-first.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// The loops; `parent` indices point into this vector.
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Detect natural loops from back edges (`latch -> header` where
    /// `header` dominates `latch`).
    pub fn compute(_f: &Function, cfg: &Cfg, dt: &DomTree) -> LoopForest {
        // Group back edges by header.
        let mut headers: Vec<BlockId> = Vec::new();
        let mut latches_of: Vec<Vec<BlockId>> = Vec::new();
        for &b in &cfg.rpo {
            for &s in &cfg.succs[b.index()] {
                if dt.dominates(s, b) {
                    match headers.iter().position(|&h| h == s) {
                        Some(i) => latches_of[i].push(b),
                        None => {
                            headers.push(s);
                            latches_of.push(vec![b]);
                        }
                    }
                }
            }
        }
        // Compute each loop's body by backwards reachability from latches.
        let mut loops: Vec<Loop> = headers
            .into_iter()
            .zip(latches_of)
            .map(|(header, latches)| {
                let mut blocks = HashSet::new();
                blocks.insert(header);
                let mut stack: Vec<BlockId> = latches.clone();
                while let Some(b) = stack.pop() {
                    if blocks.insert(b) {
                        for &p in &cfg.preds[b.index()] {
                            stack.push(p);
                        }
                    }
                }
                Loop {
                    header,
                    blocks,
                    latches,
                    parent: None,
                    depth: 1,
                }
            })
            .collect();
        // Sort outermost-first (more blocks = outer, ties by header id).
        loops.sort_by(|a, b| {
            b.blocks
                .len()
                .cmp(&a.blocks.len())
                .then(a.header.cmp(&b.header))
        });
        // Parent: the smallest strictly-enclosing loop.
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for j in 0..loops.len() {
                if i == j {
                    continue;
                }
                if loops[j].blocks.len() > loops[i].blocks.len()
                    && loops[j].blocks.contains(&loops[i].header)
                    && loops[i].blocks.iter().all(|b| loops[j].blocks.contains(b))
                {
                    best = match best {
                        None => Some(j),
                        Some(k) if loops[j].blocks.len() < loops[k].blocks.len() => Some(j),
                        keep => keep,
                    };
                }
            }
            loops[i].parent = best;
        }
        // Depths.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut p = loops[i].parent;
            while let Some(j) = p {
                d += 1;
                p = loops[j].parent;
            }
            loops[i].depth = d;
        }
        LoopForest { loops }
    }

    /// The innermost loop containing block `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<usize> {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains(b))
            .max_by_key(|(_, l)| l.depth)
            .map(|(i, _)| i)
    }

    /// Indices of loops from innermost to outermost starting at `b`.
    pub fn nest_of(&self, b: BlockId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.innermost_containing(b);
        while let Some(i) = cur {
            out.push(i);
            cur = self.loops[i].parent;
        }
        out
    }
}

/// Ensure loop `lp` has a *preheader*: a block outside the loop whose only
/// successor is the header, and which is the header's only out-of-loop
/// predecessor. Returns the preheader block.
///
/// If no such block exists, one is created: all out-of-loop edges into the
/// header are redirected through it, and header phis are split accordingly.
/// The loop structure itself (blocks, latches) is unaffected; callers should
/// recompute CFG analyses afterwards if they created one.
pub fn ensure_preheader(f: &mut Function, lp: &Loop) -> BlockId {
    let preds = f.predecessors();
    let outside: Vec<BlockId> = preds[lp.header.index()]
        .iter()
        .copied()
        .filter(|p| !lp.contains(*p))
        .collect();
    // Existing preheader?
    if outside.len() == 1 {
        let p = outside[0];
        if f.successors(p).len() == 1 {
            return p;
        }
    }
    let header = lp.header;
    let ph = f.add_block(format!("preheader.{}", header.index()));

    // Split header phis: incomings from outside move to a new phi in the
    // preheader; the header phi keeps loop incomings plus one from the
    // preheader.
    let header_insts = f.block(header).insts.clone();
    for v in header_insts {
        let Some(Inst::Phi { ty, incomings }) = f.inst(v).cloned() else {
            break; // phis are at the head
        };
        let (out_inc, in_inc): (Vec<_>, Vec<_>) =
            incomings.into_iter().partition(|(p, _)| !lp.contains(*p));
        let fed: ValueId = if out_inc.len() == 1 {
            out_inc[0].1
        } else {
            // New phi in the preheader merging the outside values.
            f.append(
                ph,
                Inst::Phi {
                    ty: ty.clone(),
                    incomings: out_inc.clone(),
                },
            )
        };
        if let Some(Inst::Phi { incomings, .. }) = f.inst_mut(v) {
            let mut next = in_inc;
            next.push((ph, fed));
            *incomings = next;
        }
    }
    f.append(ph, Inst::Jmp { target: header });

    // Redirect outside edges to the preheader.
    for p in outside {
        let term = *f.block(p).insts.last().expect("predecessor has terminator");
        if let Some(inst) = f.inst_mut(term) {
            match inst {
                Inst::Jmp { target } if *target == header => *target = ph,
                Inst::Br {
                    if_true, if_false, ..
                } => {
                    if *if_true == header {
                        *if_true = ph;
                    }
                    if *if_false == header {
                        *if_false = ph;
                    }
                }
                _ => {}
            }
        }
    }
    ph
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{verify_module, ModuleBuilder, Pred, Type};

    /// Build nested loops: outer over i, inner over j.
    fn nested() -> carat_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::I64], None);
        {
            let mut b = mb.define(f);
            let entry = b.block("entry");
            let oh = b.block("outer.header");
            let ih = b.block("inner.header");
            let ib = b.block("inner.body");
            let ol = b.block("outer.latch");
            let exit = b.block("exit");
            b.switch_to(entry);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            let n = b.arg(0);
            b.jmp(oh);
            b.switch_to(oh);
            let i = b.phi(Type::I64, vec![(entry, zero)]);
            let ci = b.icmp(Pred::Slt, i, n);
            b.br(ci, ih, exit);
            b.switch_to(ih);
            let j = b.phi(Type::I64, vec![(oh, zero)]);
            let cj = b.icmp(Pred::Slt, j, n);
            b.br(cj, ib, ol);
            b.switch_to(ib);
            let j2 = b.add(j, one);
            b.phi_add_incoming(j, ib, j2);
            b.jmp(ih);
            b.switch_to(ol);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, ol, i2);
            b.jmp(oh);
            b.switch_to(exit);
            b.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn finds_nested_loops_with_depths() {
        let m = nested();
        verify_module(&m).unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dt);
        assert_eq!(forest.loops.len(), 2);
        let outer = &forest.loops[0];
        let inner = &forest.loops[1];
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert_eq!(inner.parent, Some(0));
        assert!(outer.blocks.len() > inner.blocks.len());
        assert!(outer.contains(inner.header));
    }

    #[test]
    fn innermost_containing_picks_deepest() {
        let m = nested();
        let f = m.func(m.func_by_name("f").unwrap());
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dt);
        let inner_header = forest.loops[1].header;
        assert_eq!(forest.innermost_containing(inner_header), Some(1));
        assert_eq!(forest.nest_of(inner_header), vec![1, 0]);
    }

    #[test]
    fn ensure_preheader_reuses_or_creates() {
        let mut m = nested();
        let fid = m.func_by_name("f").unwrap();
        let (outer_idx, inner_idx);
        let forest = {
            let f = m.func(fid);
            let cfg = Cfg::compute(f);
            let dt = DomTree::compute(f, &cfg);
            let forest = LoopForest::compute(f, &cfg, &dt);
            outer_idx = 0;
            inner_idx = 1;
            forest
        };
        {
            // Outer loop's out-of-loop pred is `entry` which ends in jmp ->
            // already a preheader.
            let f = m.func_mut(fid);
            let ph = ensure_preheader(f, &forest.loops[outer_idx]);
            assert_eq!(ph, f.entry());
        }
        {
            // Inner loop's out-of-loop pred is the outer header, which ends
            // in a conditional branch -> a new preheader must be created.
            let f = m.func_mut(fid);
            let before = f.num_blocks();
            let ph = ensure_preheader(f, &forest.loops[inner_idx]);
            assert_eq!(f.num_blocks(), before + 1);
            assert_eq!(f.successors(ph), vec![forest.loops[inner_idx].header]);
        }
        verify_module(&m).expect("preheader creation preserves validity");
    }
}
