//! A buddy physical-page allocator — the kernel's page frame manager.

use std::error::Error;
use std::fmt;

/// A free that the allocator cannot honor. Surfaced as a typed error
/// rather than a panic so recovery paths (e.g. releasing a move
/// destination after a mid-move fault) cannot turn one fault into an
/// abort; the allocator itself is left unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuddyError {
    /// The address lies below the managed arena.
    BelowArena {
        /// The offending address.
        addr: u64,
    },
    /// The address is not the start of a live allocation (double free or
    /// foreign pointer).
    UnallocatedFree {
        /// The offending address.
        addr: u64,
    },
}

impl fmt::Display for BuddyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuddyError::BelowArena { addr } => {
                write!(f, "free of {addr:#x} below the managed arena")
            }
            BuddyError::UnallocatedFree { addr } => {
                write!(f, "free of unallocated block at {addr:#x}")
            }
        }
    }
}

impl Error for BuddyError {}

/// Buddy allocator over a contiguous physical range.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    base: u64,
    page_size: u64,
    max_order: usize,
    /// Free lists per order (block offsets in pages).
    free: Vec<Vec<u64>>,
    /// Allocated block sizes by start page (for free()).
    allocated: std::collections::HashMap<u64, usize>,
    /// Pages currently allocated.
    pub pages_in_use: u64,
    /// Fault injection: this many upcoming allocations fail regardless of
    /// free space (simulated frame exhaustion).
    fail_next_allocs: u64,
}

impl BuddyAllocator {
    /// Manage `[base, base + pages * page_size)`. `pages` is rounded down
    /// to a power of two.
    pub fn new(base: u64, pages: u64, page_size: u64) -> BuddyAllocator {
        assert!(pages > 0, "need at least one page");
        let max_order = 63 - pages.leading_zeros() as usize;
        let mut free = vec![Vec::new(); max_order + 1];
        free[max_order].push(0);
        BuddyAllocator {
            base,
            page_size,
            max_order,
            free,
            allocated: std::collections::HashMap::new(),
            pages_in_use: 0,
            fail_next_allocs: 0,
        }
    }

    /// Fault injection: make the next `n` calls to
    /// [`BuddyAllocator::alloc_pages`] fail as if the arena were
    /// exhausted. Used by the kernel's seeded fault plans.
    pub fn inject_alloc_failures(&mut self, n: u64) {
        self.fail_next_allocs += n;
    }

    /// Total pages managed.
    pub fn total_pages(&self) -> u64 {
        1 << self.max_order
    }

    fn order_for(&self, pages: u64) -> usize {
        let mut o = 0;
        while (1u64 << o) < pages {
            o += 1;
        }
        o
    }

    /// Allocate `pages` contiguous pages; returns the physical address.
    pub fn alloc_pages(&mut self, pages: u64) -> Option<u64> {
        if self.fail_next_allocs > 0 {
            self.fail_next_allocs -= 1;
            return None;
        }
        let order = self.order_for(pages.max(1));
        if order > self.max_order {
            return None;
        }
        // Find the smallest order with a free block.
        let mut o = order;
        while o <= self.max_order && self.free[o].is_empty() {
            o += 1;
        }
        if o > self.max_order {
            return None;
        }
        let block = self.free[o].pop().expect("non-empty");
        // Split down to the requested order.
        while o > order {
            o -= 1;
            let buddy = block + (1 << o);
            self.free[o].push(buddy);
        }
        self.allocated.insert(block, order);
        self.pages_in_use += 1 << order;
        Some(self.base + block * self.page_size)
    }

    /// Free a block previously returned by [`BuddyAllocator::alloc_pages`].
    ///
    /// # Errors
    ///
    /// [`BuddyError`] on a double free or foreign address; the allocator
    /// state is unchanged in that case.
    pub fn free_pages(&mut self, addr: u64) -> Result<(), BuddyError> {
        if addr < self.base {
            return Err(BuddyError::BelowArena { addr });
        }
        let block = (addr - self.base) / self.page_size;
        let order = self
            .allocated
            .remove(&block)
            .ok_or(BuddyError::UnallocatedFree { addr })?;
        self.pages_in_use -= 1 << order;
        // Coalesce with buddies.
        let mut block = block;
        let mut order = order;
        while order < self.max_order {
            let buddy = block ^ (1 << order);
            if let Some(pos) = self.free[order].iter().position(|&b| b == buddy) {
                self.free[order].swap_remove(pos);
                block = block.min(buddy);
                order += 1;
            } else {
                break;
            }
        }
        self.free[order].push(block);
        Ok(())
    }

    /// Pages still available.
    pub fn pages_free(&self) -> u64 {
        self.total_pages() - self.pages_in_use
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut b = BuddyAllocator::new(0x10000, 64, 0x1000);
        assert_eq!(b.total_pages(), 64);
        let a = b.alloc_pages(1).unwrap();
        assert!(a >= 0x10000);
        assert_eq!(b.pages_in_use, 1);
        b.free_pages(a).unwrap();
        assert_eq!(b.pages_in_use, 0);
        assert_eq!(b.pages_free(), 64);
    }

    #[test]
    fn rounds_to_power_of_two() {
        let mut b = BuddyAllocator::new(0, 64, 0x1000);
        let a = b.alloc_pages(3).unwrap(); // rounds to 4
        assert_eq!(b.pages_in_use, 4);
        b.free_pages(a).unwrap();
        assert_eq!(b.pages_in_use, 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut b = BuddyAllocator::new(0, 4, 0x1000);
        assert!(b.alloc_pages(4).is_some());
        assert!(b.alloc_pages(1).is_none());
    }

    #[test]
    fn coalescing_restores_big_blocks() {
        let mut b = BuddyAllocator::new(0, 8, 0x1000);
        let xs: Vec<u64> = (0..8).map(|_| b.alloc_pages(1).unwrap()).collect();
        assert!(b.alloc_pages(1).is_none());
        for x in xs {
            b.free_pages(x).unwrap();
        }
        // After freeing everything, an order-3 allocation must succeed.
        assert!(b.alloc_pages(8).is_some());
    }

    #[test]
    fn distinct_blocks_do_not_overlap() {
        let mut b = BuddyAllocator::new(0, 64, 0x1000);
        let mut got = Vec::new();
        while let Some(a) = b.alloc_pages(2) {
            got.push(a);
        }
        got.sort_unstable();
        for w in got.windows(2) {
            assert!(w[1] - w[0] >= 2 * 0x1000, "blocks overlap");
        }
    }

    #[test]
    fn double_free_is_a_typed_error() {
        let mut b = BuddyAllocator::new(0, 8, 0x1000);
        let a = b.alloc_pages(1).unwrap();
        b.free_pages(a).unwrap();
        let in_use = b.pages_in_use;
        assert_eq!(
            b.free_pages(a),
            Err(BuddyError::UnallocatedFree { addr: a })
        );
        assert_eq!(b.pages_in_use, in_use, "failed free leaves state alone");
        // The arena still works after the rejected free.
        assert!(b.alloc_pages(8).is_some());
    }

    #[test]
    fn free_below_arena_is_a_typed_error() {
        let mut b = BuddyAllocator::new(0x10000, 8, 0x1000);
        assert_eq!(
            b.free_pages(0x8000),
            Err(BuddyError::BelowArena { addr: 0x8000 })
        );
    }

    #[test]
    fn injected_failures_exhaust_then_recover() {
        let mut b = BuddyAllocator::new(0, 8, 0x1000);
        b.inject_alloc_failures(2);
        assert!(b.alloc_pages(1).is_none(), "first injected failure");
        assert!(b.alloc_pages(1).is_none(), "second injected failure");
        assert!(b.alloc_pages(1).is_some(), "injection budget spent");
        assert_eq!(b.pages_in_use, 1);
    }

    proptest! {
        /// Random alloc/free sequences never leak or corrupt the arena.
        #[test]
        fn no_leaks_under_random_ops(ops in proptest::collection::vec((1u64..8, proptest::bool::ANY), 1..100)) {
            let mut b = BuddyAllocator::new(0, 256, 0x1000);
            let mut live: Vec<u64> = Vec::new();
            for (pages, do_free) in ops {
                if do_free && !live.is_empty() {
                    let a = live.swap_remove(0);
                    prop_assert!(b.free_pages(a).is_ok());
                } else if let Some(a) = b.alloc_pages(pages) {
                    live.push(a);
                }
            }
            for a in live {
                prop_assert!(b.free_pages(a).is_ok());
            }
            prop_assert_eq!(b.pages_in_use, 0);
            // Full coalescing: the whole arena is allocatable again.
            prop_assert!(b.alloc_pages(256).is_some());
        }
    }
}
