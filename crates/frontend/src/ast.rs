//! Abstract syntax tree for Cm.

/// A Cm type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmType {
    /// 64-bit signed integer (`int`).
    Int,
    /// 8-bit integer (`char`).
    Char,
    /// Boolean (`bool`).
    Bool,
    /// IEEE double (`double`).
    Double,
    /// No value (`void`, also `malloc`'s pointee).
    Void,
    /// Pointer.
    Ptr(Box<CmType>),
    /// Named struct.
    Struct(String),
    /// Fixed array (declarations only; decays to pointer in expressions).
    Array(Box<CmType>, u64),
}

impl CmType {
    /// Shortcut for `T*`.
    pub fn ptr(inner: CmType) -> CmType {
        CmType::Ptr(Box::new(inner))
    }

    /// Whether this is an arithmetic (int-like or double) type.
    pub fn is_arith(&self) -> bool {
        matches!(
            self,
            CmType::Int | CmType::Char | CmType::Bool | CmType::Double
        )
    }

    /// Whether this is an integer-like type.
    pub fn is_intlike(&self) -> bool {
        matches!(self, CmType::Int | CmType::Char | CmType::Bool)
    }

    /// Whether this is any pointer.
    pub fn is_ptr(&self) -> bool {
        matches!(self, CmType::Ptr(_))
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
}

/// Binary operators (excluding assignment and short-circuit forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOpKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOpKind {
    /// Whether this operator yields `bool`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOpKind::Eq
                | BinOpKind::Ne
                | BinOpKind::Lt
                | BinOpKind::Le
                | BinOpKind::Gt
                | BinOpKind::Ge
        )
    }
}

/// An expression, tagged with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Expression kind.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: usize,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Char literal.
    CharLit(i8),
    /// Bool literal.
    BoolLit(bool),
    /// `null`.
    NullLit,
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOpKind, Box<Expr>, Box<Expr>),
    /// Short-circuit `&&`.
    LogicalAnd(Box<Expr>, Box<Expr>),
    /// Short-circuit `||`.
    LogicalOr(Box<Expr>, Box<Expr>),
    /// Assignment `target op= value` (`op` None for plain `=`).
    Assign {
        /// Assigned place.
        target: Box<Expr>,
        /// Compound operator, if any.
        op: Option<BinOpKind>,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee name (user function or builtin).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `base[idx]`.
    Index(Box<Expr>, Box<Expr>),
    /// `base.field` (`arrow` = `base->field`).
    Field {
        /// Receiver.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// Whether `->` was used.
        arrow: bool,
    },
    /// `*ptr`.
    Deref(Box<Expr>),
    /// `&place`.
    AddrOf(Box<Expr>),
    /// `(type) expr`.
    Cast(CmType, Box<Expr>),
    /// `sizeof(type)`.
    Sizeof(CmType),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration, possibly with array shape and initializer.
    Decl {
        /// Declared type (arrays included).
        ty: CmType,
        /// Name.
        name: String,
        /// Initializer.
        init: Option<Expr>,
        /// Source line.
        line: usize,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if (c) t else e`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
    },
    /// `while (c) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Init statement (decl or expr).
        init: Option<Box<Stmt>>,
        /// Condition (absent = true).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return e;`.
    Return(Option<Expr>, usize),
    /// Nested block.
    Block(Vec<Stmt>),
    /// `break;`
    Break(usize),
    /// `continue;`
    Continue(usize),
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Name.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<(CmType, String)>,
}

/// Scalar literal in a global initializer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GlobalLit {
    /// Integer.
    Int(i64),
    /// Double.
    Float(f64),
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Type (often an array).
    pub ty: CmType,
    /// Name.
    pub name: String,
    /// Flat initializer list, if present.
    pub init: Option<Vec<GlobalLit>>,
    /// Source line.
    pub line: usize,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Return type.
    pub ret: CmType,
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(CmType, String)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: usize,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Globals.
    pub globals: Vec<GlobalDef>,
    /// Functions.
    pub funcs: Vec<FuncDef>,
}
