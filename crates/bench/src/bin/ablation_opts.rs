//! Ablation: contribution of each CARAT optimization (Opt 1 hoisting,
//! Opt 2 merging, Opt 3 AC/DC) to the dynamic guard count and runtime,
//! per workload. Each row toggles exactly one optimization on, plus the
//! none/all extremes.

use carat_bench::{geomean, print_table, scale_from_args, selected_workloads, FREQ_HZ};
use carat_core::{CaratCompiler, CompileOptions, OptPreset, OptToggles};
use carat_vm::{Vm, VmConfig};

fn main() {
    let scale = scale_from_args();
    let _ = FREQ_HZ;
    println!("Ablation: per-optimization contribution ({scale:?} scale)\n");
    let configs: [(&str, OptToggles); 5] = [
        ("none", OptToggles::NONE),
        (
            "hoist",
            OptToggles {
                hoist: true,
                merge: false,
                redundancy: false,
            },
        ),
        (
            "merge",
            OptToggles {
                hoist: false,
                merge: true,
                redundancy: false,
            },
        ),
        (
            "acdc",
            OptToggles {
                hoist: false,
                merge: false,
                redundancy: true,
            },
        ),
        ("all", OptToggles::ALL),
    ];
    let mut rows = Vec::new();
    let mut ratio_cols: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for w in selected_workloads() {
        let module = w.module(scale).expect("workload compiles");
        let mut cells = vec![w.name.to_string()];
        let mut none_guards = 0f64;
        for (ci, (label, toggles)) in configs.iter().enumerate() {
            let options = CompileOptions {
                toggles: *toggles,
                ..CompileOptions::guards_only(OptPreset::CaratSpecific)
            };
            let m = CaratCompiler::new(options)
                .compile(module.clone())
                .expect("compiles")
                .module;
            let r = Vm::new(m, VmConfig::default())
                .expect("loads")
                .run()
                .unwrap_or_else(|e| panic!("{} [{label}]: {e}", w.name));
            let g = r.counters.guards_executed as f64;
            if ci == 0 {
                none_guards = g;
            }
            if none_guards > 0.0 {
                let ratio = g / none_guards;
                ratio_cols[ci].push(ratio.max(1e-6));
                cells.push(format!("{ratio:.3}"));
            } else {
                cells.push("-".to_string());
            }
        }
        rows.push(cells);
    }
    let mut mean_row = vec!["Geo. Mean".to_string()];
    for col in &ratio_cols {
        mean_row.push(format!("{:.3}", geomean(col)));
    }
    rows.push(mean_row);
    println!("dynamic guard executions, normalized to no optimization:");
    print_table(
        &[
            "benchmark",
            "none",
            "hoist only",
            "merge only",
            "AC/DC only",
            "all",
        ],
        &rows,
    );
}
