//! Page-movement demo: the kernel relocates physical pages out from under
//! a running pointer-heavy program; the CARAT runtime patches every escape
//! and register so the program never notices (paper Figure 8).
//!
//! ```sh
//! cargo run --example page_move
//! ```

use carat_core::{CaratCompiler, CompileOptions};
use carat_frontend::compile_cm;
use carat_vm::{MoveDriverConfig, Vm, VmConfig};

/// A linked binary tree: every node holds pointers (escapes) into other
/// heap allocations — the worst case for relocation.
const PROGRAM: &str = r#"
struct node { int val; struct node* left; struct node* right; };

struct node* build(int depth, int seed) {
    struct node* n = (struct node*) malloc(sizeof(struct node));
    n->val = seed;
    if (depth > 0) {
        n->left = build(depth - 1, seed * 2);
        n->right = build(depth - 1, seed * 2 + 1);
    } else {
        n->left = null;
        n->right = null;
    }
    return n;
}

int sum(struct node* n) {
    if (n == null) { return 0; }
    return n->val + sum(n->left) + sum(n->right);
}

int main() {
    struct node* root = build(7, 1);
    int total = 0;
    for (int pass = 0; pass < 50; pass += 1) {
        total += sum(root) % 100000;
    }
    return total;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = compile_cm("page_move", PROGRAM)?;
    let compiled = CaratCompiler::new(CompileOptions::default()).compile(module)?;

    // Reference run: no page movement.
    let quiet = Vm::new(compiled.module.clone(), VmConfig::default())?.run()?;
    println!("reference result: {}", quiet.ret);

    // Hostile run: move the worst-case page (the one overlapping the
    // allocation with the most escapes) every 100k simulated cycles, up to
    // 300 times. (An unbounded driver at a period below the per-move cost
    // enters the paper's "measurement infeasible" regime — the asterisks
    // of Figure 9.)
    let hostile_cfg = VmConfig {
        move_driver: Some(MoveDriverConfig {
            period_cycles: 100_000,
            max_moves: 300,
        }),
        ..VmConfig::default()
    };
    let hostile = Vm::new(compiled.module, hostile_cfg)?.run()?;
    println!(
        "hostile result:   {} after {} page moves",
        hostile.ret, hostile.counters.moves
    );
    assert_eq!(quiet.ret, hostile.ret, "moves must be transparent");

    let (expand, patch, regs, mv) = hostile.counters.move_breakdown.averages();
    println!("\nper-move cost breakdown (cycles, averages — cf. paper Table 3):");
    println!("  page expand (find/negotiate allocations): {expand:>10.0}");
    println!("  patch gen & exec (escape rewriting):      {patch:>10.0}");
    println!("  register patch:                           {regs:>10.0}");
    println!("  allocation & data movement:               {mv:>10.0}");
    println!(
        "\ntotal move cycles: {} of {} ({:.2}% of execution)",
        hostile.counters.move_cycles,
        hostile.counters.cycles,
        hostile.counters.move_cycles as f64 * 100.0 / hostile.counters.cycles as f64
    );
    Ok(())
}
