//! Modules and global variables.

use crate::func::Function;
use crate::inst::{FuncId, GlobalId};
use crate::types::Type;

/// Initial contents of a global variable.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Zero-initialized (a `bss`-style allocation).
    Zero,
    /// Explicit byte image (a `data`-style allocation); must be exactly
    /// `ty.size()` bytes.
    Bytes(Vec<u8>),
    /// Word image: each `i64` stored little-endian at 8-byte strides. The
    /// global's type must be at least `8 * len` bytes.
    I64s(Vec<i64>),
    /// Word image of doubles, as for [`GlobalInit::I64s`].
    F64s(Vec<f64>),
}

/// A global variable: a named, statically-allocated block.
///
/// In CARAT terms, every global is a *static allocation*: it is recorded in
/// the runtime's allocation table at load time, and its address constant in
/// the code image is patched whenever the kernel relocates it.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name (unique within the module).
    pub name: String,
    /// Type, which determines the allocation's size.
    pub ty: Type,
    /// Initializer.
    pub init: GlobalInit,
}

impl Global {
    /// Size in bytes of this allocation.
    pub fn size(&self) -> u64 {
        self.ty.size()
    }
}

/// A translation unit: globals plus functions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    globals: Vec<Global>,
    funcs: Vec<Function>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            globals: Vec::new(),
            funcs: Vec::new(),
        }
    }

    /// Add a global; returns its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    /// Add a function; returns its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        id
    }

    /// Borrow a global.
    pub fn global(&self, g: GlobalId) -> &Global {
        &self.globals[g.index()]
    }

    /// Borrow a function.
    pub fn func(&self, f: FuncId) -> &Function {
        &self.funcs[f.index()]
    }

    /// Mutably borrow a function.
    pub fn func_mut(&mut self, f: FuncId) -> &mut Function {
        &mut self.funcs[f.index()]
    }

    /// All global ids.
    pub fn global_ids(&self) -> impl Iterator<Item = GlobalId> + '_ {
        (0..self.globals.len() as u32).map(GlobalId)
    }

    /// All function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Number of globals.
    pub fn num_globals(&self) -> usize {
        self.globals.len()
    }

    /// Number of functions.
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// Find a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Find a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// The designated entry point (`main`), if present.
    pub fn main(&self) -> Option<FuncId> {
        self.func_by_name("main")
    }

    /// Total bytes of all static allocations — the module's *static
    /// footprint* (Table 2 of the paper).
    pub fn static_footprint(&self) -> u64 {
        self.globals.iter().map(Global::size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let mut m = Module::new("test");
        let g = m.add_global(Global {
            name: "table".into(),
            ty: Type::Array(Box::new(Type::I64), 100),
            init: GlobalInit::Zero,
        });
        let f = m.add_func(Function::new("main", vec![], Some(Type::I64)));
        assert_eq!(m.global_by_name("table"), Some(g));
        assert_eq!(m.func_by_name("main"), Some(f));
        assert_eq!(m.main(), Some(f));
        assert_eq!(m.func_by_name("nope"), None);
    }

    #[test]
    fn static_footprint_sums_globals() {
        let mut m = Module::new("test");
        m.add_global(Global {
            name: "a".into(),
            ty: Type::Array(Box::new(Type::I64), 10),
            init: GlobalInit::Zero,
        });
        m.add_global(Global {
            name: "b".into(),
            ty: Type::I32,
            init: GlobalInit::Bytes(vec![1, 2, 3, 4]),
        });
        assert_eq!(m.static_footprint(), 84);
    }
}
