//! Ergonomic construction of modules and functions.
//!
//! The builder is used by the Cm front end, by the workload suite, and by
//! tests. Constants are interned into the entry block so they dominate all
//! uses.

use crate::func::Function;
use crate::inst::{
    BinOp, BlockId, CastKind, Const, FuncId, GlobalId, Inst, Intrinsic, Pred, ValueId,
};
use crate::module::{Global, GlobalInit, Module};
use crate::types::{IntTy, Type};
use std::collections::HashMap;

/// Builds a [`Module`]: declare globals and function signatures first, then
/// define bodies through [`ModuleBuilder::define`].
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Start building a module.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Declare a global variable.
    pub fn global(&mut self, name: impl Into<String>, ty: Type, init: GlobalInit) -> GlobalId {
        self.module.add_global(Global {
            name: name.into(),
            ty,
            init,
        })
    }

    /// Declare a function signature; the body is defined later.
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        params: Vec<Type>,
        ret: Option<Type>,
    ) -> FuncId {
        self.module.add_func(Function::new(name, params, ret))
    }

    /// Open a [`FuncBuilder`] over a previously declared function.
    pub fn define(&mut self, f: FuncId) -> FuncBuilder<'_> {
        FuncBuilder::new(self.module.func_mut(f))
    }

    /// Direct mutable access to a declared function (used by passes that
    /// post-process freshly built functions).
    pub fn func_mut(&mut self, f: FuncId) -> &mut Function {
        self.module.func_mut(f)
    }

    /// Read-only view of the module under construction.
    pub fn as_module(&self) -> &Module {
        &self.module
    }

    /// Finish and return the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// Appends instructions to one function, tracking a current block.
#[derive(Debug)]
pub struct FuncBuilder<'a> {
    f: &'a mut Function,
    cur: Option<BlockId>,
    const_pool: HashMap<ConstKey, ValueId>,
}

/// Hashable key for constant interning (f64 by bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ConstKey {
    Int(i64, IntTy),
    F64(u64),
    Null,
    GlobalAddr(GlobalId),
}

impl<'a> FuncBuilder<'a> {
    /// Wrap an existing function for appending.
    pub fn new(f: &'a mut Function) -> FuncBuilder<'a> {
        FuncBuilder {
            f,
            cur: None,
            const_pool: HashMap::new(),
        }
    }

    /// The function under construction.
    pub fn func(&self) -> &Function {
        self.f
    }

    /// Mutable access to an instruction in the function under construction
    /// (used by SSA construction to fill phi incomings).
    pub fn func_mut_inst(&mut self, v: ValueId) -> Option<&mut Inst> {
        self.f.inst_mut(v)
    }

    /// Insert an empty phi of IR type `ty` at position `pos` of `block`.
    pub fn insert_phi_at(&mut self, block: BlockId, pos: usize, ty: Type) -> ValueId {
        self.f.insert_at(
            block,
            pos,
            Inst::Phi {
                ty,
                incomings: Vec::new(),
            },
        )
    }

    /// Formal parameter `i`.
    pub fn arg(&self, i: usize) -> ValueId {
        self.f.arg(i)
    }

    /// Create a block (does not switch to it).
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        self.f.add_block(name)
    }

    /// Make `b` the insertion point.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = Some(b);
    }

    /// The current insertion block.
    ///
    /// # Panics
    ///
    /// Panics if no block has been selected.
    pub fn current(&self) -> BlockId {
        self.cur.expect("no current block selected")
    }

    /// Whether the current block already ends with a terminator.
    pub fn is_terminated(&self) -> bool {
        self.f.terminator(self.current()).is_some()
    }

    /// Append a raw instruction to the current block.
    pub fn push(&mut self, inst: Inst) -> ValueId {
        let b = self.current();
        debug_assert!(
            self.f.terminator(b).is_none(),
            "appending to terminated block {b} in {}",
            self.f.name
        );
        self.f.append(b, inst)
    }

    // ---- constants ------------------------------------------------------

    fn constant(&mut self, c: Const) -> ValueId {
        let key = match &c {
            Const::Int(v, w) => ConstKey::Int(*v, *w),
            Const::F64(x) => ConstKey::F64(x.to_bits()),
            Const::Null => ConstKey::Null,
            Const::GlobalAddr(g) => ConstKey::GlobalAddr(*g),
        };
        if let Some(&v) = self.const_pool.get(&key) {
            return v;
        }
        // Place constants in the entry block, before its terminator, so they
        // dominate every use.
        let entry = self.f.entry();
        let id = match self.f.terminator(entry) {
            Some(_) => {
                let pos = self.f.block(entry).insts.len() - 1;
                self.f.insert_at(entry, pos, Inst::Const(c))
            }
            None => self.f.append(entry, Inst::Const(c)),
        };
        self.const_pool.insert(key, id);
        id
    }

    /// i64 constant.
    pub fn const_i64(&mut self, v: i64) -> ValueId {
        self.constant(Const::Int(v, IntTy::I64))
    }

    /// i32 constant.
    pub fn const_i32(&mut self, v: i32) -> ValueId {
        self.constant(Const::Int(v as i64, IntTy::I32))
    }

    /// i8 constant.
    pub fn const_i8(&mut self, v: i8) -> ValueId {
        self.constant(Const::Int(v as i64, IntTy::I8))
    }

    /// i1 constant.
    pub fn const_bool(&mut self, v: bool) -> ValueId {
        self.constant(Const::Int(v as i64, IntTy::I1))
    }

    /// f64 constant.
    pub fn const_f64(&mut self, v: f64) -> ValueId {
        self.constant(Const::F64(v))
    }

    /// Null pointer constant.
    pub fn null(&mut self) -> ValueId {
        self.constant(Const::Null)
    }

    /// Address-of-global constant (patched at load/move time by the runtime).
    pub fn global_addr(&mut self, g: GlobalId) -> ValueId {
        self.constant(Const::GlobalAddr(g))
    }

    // ---- memory ---------------------------------------------------------

    /// Stack allocation.
    pub fn alloca(&mut self, ty: Type) -> ValueId {
        self.push(Inst::Alloca(ty))
    }

    /// Typed load.
    pub fn load(&mut self, ty: Type, addr: ValueId) -> ValueId {
        self.push(Inst::Load { ty, addr })
    }

    /// Typed store.
    pub fn store(&mut self, ty: Type, addr: ValueId, value: ValueId) {
        self.push(Inst::Store { ty, addr, value });
    }

    /// `base + index * elem.stride()`.
    pub fn ptr_add(&mut self, base: ValueId, index: ValueId, elem: Type) -> ValueId {
        self.push(Inst::PtrAdd { base, index, elem })
    }

    /// `base + offsetof(struct_ty, field)`.
    pub fn field_addr(&mut self, base: ValueId, struct_ty: Type, field: u32) -> ValueId {
        self.push(Inst::FieldAddr {
            base,
            struct_ty,
            field,
        })
    }

    // ---- arithmetic -----------------------------------------------------

    /// Generic binary operation.
    pub fn bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.push(Inst::Bin { op, lhs, rhs })
    }

    /// Integer add.
    pub fn add(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.bin(BinOp::Add, l, r)
    }

    /// Integer subtract.
    pub fn sub(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.bin(BinOp::Sub, l, r)
    }

    /// Integer multiply.
    pub fn mul(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.bin(BinOp::Mul, l, r)
    }

    /// Integer compare.
    pub fn icmp(&mut self, pred: Pred, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.push(Inst::Icmp { pred, lhs, rhs })
    }

    /// Float compare.
    pub fn fcmp(&mut self, pred: Pred, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.push(Inst::Fcmp { pred, lhs, rhs })
    }

    /// Conversion.
    pub fn cast(&mut self, kind: CastKind, value: ValueId, to: Type) -> ValueId {
        self.push(Inst::Cast { kind, value, to })
    }

    /// Conditional select.
    pub fn select(&mut self, cond: ValueId, if_true: ValueId, if_false: ValueId) -> ValueId {
        self.push(Inst::Select {
            cond,
            if_true,
            if_false,
        })
    }

    /// Phi node (belongs at the head of the current block; callers should
    /// create phis before other instructions of the block).
    pub fn phi(&mut self, ty: Type, incomings: Vec<(BlockId, ValueId)>) -> ValueId {
        self.push(Inst::Phi { ty, incomings })
    }

    /// Add an incoming edge to an existing phi.
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not a phi instruction.
    pub fn phi_add_incoming(&mut self, phi: ValueId, block: BlockId, value: ValueId) {
        match self.f.inst_mut(phi) {
            Some(Inst::Phi { incomings, .. }) => incomings.push((block, value)),
            _ => panic!("phi_add_incoming on non-phi value"),
        }
    }

    // ---- calls ----------------------------------------------------------

    /// Direct call. `ret_ty` must match the callee's signature.
    pub fn call(&mut self, callee: FuncId, args: Vec<ValueId>, ret_ty: Option<Type>) -> ValueId {
        self.push(Inst::Call {
            callee,
            args,
            ret_ty,
        })
    }

    /// Intrinsic call.
    pub fn intr(&mut self, intr: Intrinsic, args: Vec<ValueId>) -> ValueId {
        self.push(Inst::CallIntrinsic { intr, args })
    }

    /// `malloc(size)`.
    pub fn malloc(&mut self, size: ValueId) -> ValueId {
        self.intr(Intrinsic::Malloc, vec![size])
    }

    /// `free(ptr)`.
    pub fn free(&mut self, ptr: ValueId) {
        self.intr(Intrinsic::Free, vec![ptr]);
    }

    // ---- terminators ----------------------------------------------------

    /// Unconditional branch.
    pub fn jmp(&mut self, target: BlockId) {
        self.push(Inst::Jmp { target });
    }

    /// Conditional branch.
    pub fn br(&mut self, cond: ValueId, if_true: BlockId, if_false: BlockId) {
        self.push(Inst::Br {
            cond,
            if_true,
            if_false,
        });
    }

    /// Return.
    pub fn ret(&mut self, value: Option<ValueId>) {
        self.push(Inst::Ret { value });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sum_loop() {
        // sum(n) { s = 0; for i in 0..n { s += i } return s }
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("sum", vec![Type::I64], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let entry = b.block("entry");
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            b.switch_to(entry);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            let n = b.arg(0);
            b.jmp(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, vec![(entry, zero)]);
            let s = b.phi(Type::I64, vec![(entry, zero)]);
            let cond = b.icmp(Pred::Slt, i, n);
            b.br(cond, body, exit);
            b.switch_to(body);
            let s2 = b.add(s, i);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, body, i2);
            b.phi_add_incoming(s, body, s2);
            b.jmp(header);
            b.switch_to(exit);
            b.ret(Some(s));
        }
        let m = mb.finish();
        let f = m.func(m.func_by_name("sum").unwrap());
        assert_eq!(f.num_blocks(), 4);
        assert!(matches!(f.terminator(f.entry()), Some(Inst::Jmp { .. })));
    }

    #[test]
    fn constants_are_interned_in_entry() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let c1 = b.const_i64(42);
            let c2 = b.const_i64(42);
            assert_eq!(c1, c2);
            let c3 = b.const_i32(42);
            assert_ne!(c1, c3, "different widths are different constants");
            b.ret(Some(c1));
        }
        let m = mb.finish();
        let f = m.func(FuncId(0));
        // both constants live in the entry block
        assert_eq!(f.block(f.entry()).insts.len(), 3);
    }

    #[test]
    fn constant_after_terminator_lands_before_it() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![], None);
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let next = b.block("next");
            b.switch_to(e);
            b.jmp(next);
            b.switch_to(next);
            let c = b.const_i64(9); // must be inserted in entry before jmp
            b.ret(None);
            let func = b.func();
            let entry_insts = &func.block(e).insts;
            assert_eq!(entry_insts[0], c);
            assert!(matches!(
                func.inst(*entry_insts.last().unwrap()),
                Some(Inst::Jmp { .. })
            ));
        }
    }
}
