//! Table 1 — effectiveness of the CARAT-specific compiler optimizations:
//! fraction of injected guards statically remaining, untouched, and
//! optimized by each of Opt 1 (hoisting), Opt 2 (merging), Opt 3 (AC/DC).

use carat_bench::{mean, print_table, scale_from_args, selected_workloads};
use carat_core::{CaratCompiler, CompileOptions, OptPreset};

fn main() {
    let scale = scale_from_args();
    println!("Table 1: Effectiveness of Compiler Optimizations ({scale:?} scale)\n");
    let mut rows = Vec::new();
    let mut cols: [Vec<f64>; 5] = Default::default();
    for w in selected_workloads() {
        let module = w.module(scale).expect("workload compiles");
        let out = CaratCompiler::new(CompileOptions::guards_only(OptPreset::CaratSpecific))
            .compile(module)
            .expect("carat compiles");
        let c = out.census;
        let vals = [
            c.remaining_fraction(),
            c.untouched_fraction(),
            c.hoisted_fraction(),
            c.merged_fraction(),
            c.eliminated_fraction(),
        ];
        for (col, v) in cols.iter_mut().zip(vals) {
            col.push(v);
        }
        rows.push(vec![
            w.name.to_string(),
            format!("{:.3}", vals[0]),
            format!("{:.3}", vals[1]),
            format!("{:.3}", vals[2]),
            format!("{:.3}", vals[3]),
            format!("{:.3}", vals[4]),
            format!("{}", c.total),
        ]);
    }
    rows.push(vec![
        "Arith. Mean".into(),
        format!("{:.3}", mean(&cols[0])),
        format!("{:.3}", mean(&cols[1])),
        format!("{:.3}", mean(&cols[2])),
        format!("{:.3}", mean(&cols[3])),
        format!("{:.3}", mean(&cols[4])),
        String::new(),
    ]);
    print_table(
        &[
            "benchmark",
            "Opt. Guards",
            "Untouched",
            "Opt. 1",
            "Opt. 2",
            "Opt. 3",
            "total",
        ],
        &rows,
    );
}
