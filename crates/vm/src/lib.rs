//! # carat-vm — the execution substrate
//!
//! An interpreter for the CARAT IR over the simulated kernel's physical
//! memory, with a cycle cost model standing in for the paper's x64
//! testbeds. It executes both worlds of the evaluation: the traditional
//! paging baseline (DTLB/STLB/pagewalk simulation, Figure 2 and Table 2)
//! and the CARAT configuration (guards, tracking, page-move injection —
//! Figures 3, 5–7, 9 and Tables 1, 3).
//!
//! ## Example
//!
//! ```
//! use carat_ir::{ModuleBuilder, Type};
//! use carat_vm::{Vm, VmConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new("demo");
//! let f = mb.declare("main", vec![], Some(Type::I64));
//! {
//!     let mut b = mb.define(f);
//!     let e = b.block("entry");
//!     b.switch_to(e);
//!     let x = b.const_i64(21);
//!     let y = b.add(x, x);
//!     b.ret(Some(y));
//! }
//! let result = Vm::new(mb.finish(), VmConfig::default())?.run()?;
//! assert_eq!(result.ret, 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod capsule;
mod counters;
mod decode;
mod heap;
mod machine;
mod multi;
mod supervise;
mod tlb;

pub use counters::{MoveBreakdownSum, OpcodeMix, PerfCounters};
pub use decode::{
    DecodedBlock, DecodedFunc, DecodedInst, DecodedProgram, FusedKind, FusionStats, FusionSummary,
    HoistedGuardMeta, LoopReport, OperandRange, PhiEdge, ScalarClass, ThreadedOpts, ThreadedReport,
    FUSED_KINDS, NO_REG,
};
pub use heap::HeapAllocator;
pub use machine::{
    Engine, IntegrityReport, Mode, MoveDriverConfig, RunResult, SliceExit, StreamKind,
    SwapDriverConfig, TenantState, Vm, VmConfig, VmError,
};
pub use multi::{
    MultiVm, MultiVmConfig, ProcOutcome, ProcReport, ProcSpec, SchedSource, TenancyError,
};
pub use supervise::{SupervisionEvent, Supervisor, SupervisorConfig, TenantExit, Verdict};
pub use tlb::{Tlb, TranslationUnit};

#[cfg(test)]
mod tests {
    use super::*;
    use carat_core::{CaratCompiler, CompileOptions, OptPreset};
    use carat_ir::{GlobalInit, Module, ModuleBuilder, Pred, Type};
    use carat_runtime::GuardImpl;

    /// sum of i for i in 0..n over a heap array: alloc, fill, sum, free.
    fn array_sum_module(n: i64) -> Module {
        let mut mb = ModuleBuilder::new("array_sum");
        let f = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let h1 = b.block("fill.h");
            let b1 = b.block("fill.b");
            let h2 = b.block("sum.h");
            let b2 = b.block("sum.b");
            let x = b.block("exit");
            b.switch_to(e);
            let nn = b.const_i64(n);
            let bytes = b.const_i64(n * 8);
            let a = b.malloc(bytes);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.jmp(h1);
            b.switch_to(h1);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(Pred::Slt, i, nn);
            b.br(c, b1, h2);
            b.switch_to(b1);
            let ai = b.ptr_add(a, i, Type::I64);
            b.store(Type::I64, ai, i);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, b1, i2);
            b.jmp(h1);
            b.switch_to(h2);
            let j = b.phi(Type::I64, vec![(h1, zero)]);
            let s = b.phi(Type::I64, vec![(h1, zero)]);
            let c2 = b.icmp(Pred::Slt, j, nn);
            b.br(c2, b2, x);
            b.switch_to(b2);
            let aj = b.ptr_add(a, j, Type::I64);
            let v = b.load(Type::I64, aj);
            let s2 = b.add(s, v);
            let j2 = b.add(j, one);
            b.phi_add_incoming(j, b2, j2);
            b.phi_add_incoming(s, b2, s2);
            b.jmp(h2);
            b.switch_to(x);
            b.free(a);
            b.ret(Some(s));
        }
        mb.finish()
    }

    #[test]
    fn executes_uninstrumented_program() {
        let r = Vm::new(array_sum_module(100), VmConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.ret, 4950);
        assert!(r.counters.instructions > 100);
        assert!(r.counters.cycles > r.counters.instructions);
    }

    #[test]
    fn traditional_mode_counts_tlb_activity() {
        let cfg = VmConfig {
            mode: Mode::Traditional,
            ..VmConfig::default()
        };
        let r = Vm::new(array_sum_module(4096 * 4), cfg)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.ret, (0..16384i64).sum::<i64>());
        assert!(r.dtlb_misses > 0, "streaming array misses the DTLB");
        assert!(r.pagewalks > 0);
        assert!(r.page_allocs > r.initial_pages, "heap pages demand-faulted");
        assert!(r.counters.translation_cycles > 0);
    }

    #[test]
    fn carat_mode_has_no_translation() {
        let r = Vm::new(array_sum_module(4096), VmConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.counters.translation_cycles, 0);
        assert_eq!(r.dtlb_misses, 0);
    }

    fn compile(module: Module, options: CompileOptions) -> Module {
        CaratCompiler::new(options)
            .compile(module)
            .expect("compiles")
            .module
    }

    #[test]
    fn guarded_program_runs_and_charges_guards() {
        let m = compile(
            array_sum_module(1000),
            CompileOptions::guards_only(OptPreset::None),
        );
        let r = Vm::new(m, VmConfig::default()).unwrap().run().unwrap();
        assert_eq!(r.ret, 499500);
        assert!(r.counters.guards_executed >= 2000, "one guard per access");
        assert!(r.counters.guard_cycles > 0);
    }

    #[test]
    fn carat_opts_cut_guard_executions() {
        let naive = compile(
            array_sum_module(1000),
            CompileOptions::guards_only(OptPreset::None),
        );
        let optd = compile(
            array_sum_module(1000),
            CompileOptions::guards_only(OptPreset::CaratSpecific),
        );
        let rn = Vm::new(naive, VmConfig::default()).unwrap().run().unwrap();
        let ro = Vm::new(optd, VmConfig::default()).unwrap().run().unwrap();
        assert_eq!(rn.ret, ro.ret, "optimization preserves semantics");
        assert!(
            ro.counters.guards_executed * 10 < rn.counters.guards_executed,
            "range merging collapses per-iteration guards: {} vs {}",
            ro.counters.guards_executed,
            rn.counters.guards_executed
        );
    }

    #[test]
    fn mpx_guards_cost_less_than_software() {
        let m = compile(
            array_sum_module(1000),
            CompileOptions::guards_only(OptPreset::None),
        );
        let sw = Vm::new(
            m.clone(),
            VmConfig {
                guard_impl: GuardImpl::BinarySearch,
                ..VmConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        let mpx = Vm::new(
            m,
            VmConfig {
                guard_impl: GuardImpl::Mpx,
                ..VmConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(mpx.counters.guard_cycles < sw.counters.guard_cycles);
    }

    #[test]
    fn tracking_records_allocs_and_escapes() {
        // Program stores a pointer into a global cell: one escape.
        let mut mb = ModuleBuilder::new("esc");
        let cell = mb.global("cell", Type::Ptr, GlobalInit::Zero);
        let f = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let size = b.const_i64(64);
            let p = b.malloc(size);
            let ga = b.global_addr(cell);
            b.store(Type::Ptr, ga, p);
            let zero = b.const_i64(0);
            b.ret(Some(zero));
        }
        let m = compile(mb.finish(), CompileOptions::tracking_only());
        let r = Vm::new(m, VmConfig::default()).unwrap().run().unwrap();
        assert!(r.track_stats.allocs >= 1);
        assert_eq!(r.track_stats.escape_events, 1);
        assert_eq!(r.track_stats.escapes_resolved, 1);
        assert!(r.tracking_bytes > 0);
    }

    #[test]
    fn guard_fault_on_wild_access() {
        // Program dereferences a forged pointer far outside the capsule.
        let mut mb = ModuleBuilder::new("wild");
        let f = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let bad = b.const_i64(0x3fff_f000);
            let p = b.cast(carat_ir::CastKind::IntToPtr, bad, Type::Ptr);
            let v = b.load(Type::I64, p);
            b.ret(Some(v));
        }
        let m = compile(mb.finish(), CompileOptions::guards_only(OptPreset::None));
        let err = Vm::new(m, VmConfig::default()).unwrap().run().unwrap_err();
        assert!(matches!(err, VmError::GuardFault { .. }), "{err}");
    }

    #[test]
    fn page_moves_preserve_semantics() {
        // Run with aggressive page-move injection; the program must still
        // compute the same result.
        let m = compile(array_sum_module(2000), CompileOptions::default());
        let cfg = VmConfig {
            move_driver: Some(MoveDriverConfig {
                period_cycles: 20_000,
                max_moves: 50,
            }),
            ..VmConfig::default()
        };
        let r = Vm::new(m, cfg).unwrap().run().unwrap();
        assert_eq!(r.ret, (0..2000i64).sum::<i64>(), "moves are transparent");
        assert!(r.counters.moves > 0, "moves actually happened");
        assert!(r.page_moves > 0);
        assert!(r.counters.move_cycles > 0);
    }

    #[test]
    fn moves_with_pointer_chasing_structure() {
        // Linked list: each node holds a pointer to the next (escapes in
        // moved memory). Sum via traversal, with moves injected.
        let mut mb = ModuleBuilder::new("list");
        let f = mb.declare("main", vec![], Some(Type::I64));
        let node_ty = Type::Struct(vec![Type::I64, Type::Ptr]);
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let bh = b.block("build.h");
            let bb = b.block("build.b");
            let th = b.block("trav.h");
            let tb = b.block("trav.b");
            let x = b.block("exit");
            b.switch_to(e);
            let n = b.const_i64(200);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            let nil = b.null();
            b.jmp(bh);
            // build: prepend nodes
            b.switch_to(bh);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let head = b.phi(Type::Ptr, vec![(e, nil)]);
            let c = b.icmp(Pred::Slt, i, n);
            b.br(c, bb, th);
            b.switch_to(bb);
            let sz = b.const_i64(16);
            let node = b.malloc(sz);
            let val_p = b.field_addr(node, node_ty.clone(), 0);
            b.store(Type::I64, val_p, i);
            let next_p = b.field_addr(node, node_ty.clone(), 1);
            b.store(Type::Ptr, next_p, head);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, bb, i2);
            b.phi_add_incoming(head, bb, node);
            b.jmp(bh);
            // traverse
            b.switch_to(th);
            let cur = b.phi(Type::Ptr, vec![(bh, head)]);
            let acc = b.phi(Type::I64, vec![(bh, zero)]);
            let is_nil = b.icmp(Pred::Ne, cur, nil);
            b.br(is_nil, tb, x);
            b.switch_to(tb);
            let vp = b.field_addr(cur, node_ty.clone(), 0);
            let val = b.load(Type::I64, vp);
            let acc2 = b.add(acc, val);
            let np = b.field_addr(cur, node_ty.clone(), 1);
            let nxt = b.load(Type::Ptr, np);
            b.phi_add_incoming(cur, tb, nxt);
            b.phi_add_incoming(acc, tb, acc2);
            b.jmp(th);
            b.switch_to(x);
            b.ret(Some(acc));
        }
        let m = compile(mb.finish(), CompileOptions::default());
        let cfg = VmConfig {
            move_driver: Some(MoveDriverConfig {
                period_cycles: 10_000,
                max_moves: 30,
            }),
            ..VmConfig::default()
        };
        let r = Vm::new(m, cfg).unwrap().run().unwrap();
        assert_eq!(r.ret, (0..200i64).sum::<i64>());
        assert!(r.counters.moves > 0);
        // Moving list nodes requires actual escape patching.
        assert!(
            r.counters.move_breakdown.patch_gen_exec > 0,
            "escapes were patched during moves"
        );
    }

    #[test]
    fn signed_load_through_vm() {
        let key = carat_core::SigningKey::from_passphrase("carat-cc", "vm-test");
        let compiled = CaratCompiler::new(CompileOptions {
            signing: Some(key.clone()),
            ..CompileOptions::default()
        })
        .compile(array_sum_module(10))
        .unwrap();
        let signed = compiled.signed.expect("signed");
        let vm = Vm::load_signed(&signed, vec![key], VmConfig::default()).unwrap();
        let r = vm.run().unwrap();
        assert_eq!(r.ret, 45);
    }

    #[test]
    fn untrusted_binary_rejected_by_vm() {
        let key = carat_core::SigningKey::from_passphrase("carat-cc", "vm-test");
        let other = carat_core::SigningKey::from_passphrase("carat-cc", "different");
        let compiled = CaratCompiler::new(CompileOptions {
            signing: Some(other),
            ..CompileOptions::default()
        })
        .compile(array_sum_module(10))
        .unwrap();
        let signed = compiled.signed.expect("signed");
        let err = Vm::load_signed(&signed, vec![key], VmConfig::default()).unwrap_err();
        assert!(matches!(err, VmError::Load(_)));
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let mut mb = ModuleBuilder::new("rng");
        let f = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let r = b.intr(carat_ir::Intrinsic::Rand, vec![]);
            b.ret(Some(r));
        }
        let m = mb.finish();
        let r1 = Vm::new(m.clone(), VmConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let r2 = Vm::new(m.clone(), VmConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r1.ret, r2.ret);
        let r3 = Vm::new(
            m,
            VmConfig {
                seed: 99,
                ..VmConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert_ne!(r1.ret, r3.ret);
    }

    #[test]
    fn call_guards_trigger_seamless_stack_expansion() {
        // ~5000 recursion depth at >=64B/frame exceeds the 256 KiB default
        // stack; with call guards the kernel grows it transparently.
        let src = "
            int deep(int n) { if (n == 0) { return 0; } return 1 + deep(n - 1); }
            int main() { return deep(5000); }
        ";
        let module = carat_frontend::compile_cm("deep", src).unwrap();
        let m = compile(module, CompileOptions::default());
        let r = Vm::new(m.clone(), VmConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.ret, 5000);
        assert!(
            r.counters.stack_expansions >= 1,
            "expansion happened: {}",
            r.counters.stack_expansions
        );
        // With expansion disabled, the same program faults on the guard.
        let err = Vm::new(
            m,
            VmConfig {
                auto_grow_stack: false,
                ..VmConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap_err();
        assert!(
            matches!(err, VmError::GuardFault { write: true, .. }),
            "{err}"
        );
    }

    #[test]
    fn baseline_without_guards_traps_on_overflow() {
        let src = "
            int deep(int n) { if (n == 0) { return 0; } return 1 + deep(n - 1); }
            int main() { return deep(5000); }
        ";
        let module = carat_frontend::compile_cm("deep", src).unwrap();
        let m = compile(module, CompileOptions::baseline());
        let err = Vm::new(m, VmConfig::default()).unwrap().run().unwrap_err();
        assert!(
            matches!(err, VmError::Trap(ref msg) if msg.contains("overflow")),
            "{err}"
        );
    }

    #[test]
    fn swap_is_transparent_to_pointer_chasing() {
        // Linked list summed repeatedly while the swap driver pages the
        // hottest range out; poison faults page it back in on demand.
        let src = "
            struct node { int v; struct node* n; };
            int main() {
                struct node* head = (struct node*) null;
                for (int i = 0; i < 300; i += 1) {
                    struct node* x = (struct node*) malloc(sizeof(struct node));
                    x->v = i; x->n = head; head = x;
                }
                int got = 0;
                for (int pass = 0; pass < 10; pass += 1) {
                    struct node* c = head;
                    got = 0;
                    while (c != null) { got += c->v; c = c->n; }
                }
                return got;
            }
        ";
        let module = carat_frontend::compile_cm("swapped", src).unwrap();
        let m = compile(module, CompileOptions::default());
        let r = Vm::new(
            m,
            VmConfig {
                swap_driver: Some(SwapDriverConfig {
                    period_cycles: 40_000,
                    max_swaps: 20,
                }),
                ..VmConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(r.ret, (0..300i64).sum::<i64>());
        assert!(r.counters.swap_outs > 0, "pages were swapped out");
        assert!(r.counters.swap_ins > 0, "poison faults paged them back in");
    }

    #[test]
    fn swap_and_moves_compose() {
        let src = "
            int main() {
                int n = 2000;
                int* a = (int*) malloc(n * sizeof(int));
                int** cells = (int**) malloc(n * sizeof(int*));
                for (int i = 0; i < n; i += 1) { a[i] = i; cells[i] = &a[i]; }
                int s = 0;
                for (int pass = 0; pass < 5; pass += 1) {
                    for (int i = 0; i < n; i += 1) { s += *cells[i]; }
                }
                free(a); free(cells);
                return s % 1000000;
            }
        ";
        let module = carat_frontend::compile_cm("both", src).unwrap();
        let m = compile(module, CompileOptions::default());
        let expect = {
            let r = Vm::new(m.clone(), VmConfig::default())
                .unwrap()
                .run()
                .unwrap();
            r.ret
        };
        let r = Vm::new(
            m,
            VmConfig {
                move_driver: Some(MoveDriverConfig {
                    period_cycles: 60_000,
                    max_moves: 20,
                }),
                swap_driver: Some(SwapDriverConfig {
                    period_cycles: 90_000,
                    max_swaps: 10,
                }),
                ..VmConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(r.ret, expect, "moves + swap remain transparent together");
        assert!(r.counters.moves > 0 || r.counters.swap_outs > 0);
    }

    #[test]
    fn threads_spawn_join_and_interleave() {
        // Four workers each sum a slice; main joins them all. Thread
        // stacks live in heap memory (paper §2.2).
        let src = "
            int work(int lo) {
                int s = 0;
                for (int i = lo; i < lo + 250; i += 1) { s += i; }
                return s;
            }
            int main() {
                int t0 = spawn(work, 0);
                int t1 = spawn(work, 250);
                int t2 = spawn(work, 500);
                int t3 = spawn(work, 750);
                return join(t0) + join(t1) + join(t2) + join(t3);
            }
        ";
        let module = carat_frontend::compile_cm("threads", src).unwrap();
        let m = compile(module, CompileOptions::default());
        let r = Vm::new(m.clone(), VmConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.ret, (0..1000i64).sum::<i64>());
        // Deterministic across runs.
        let r2 = Vm::new(m, VmConfig::default()).unwrap().run().unwrap();
        assert_eq!(r.counters.cycles, r2.counters.cycles);
    }

    #[test]
    fn threads_share_memory_and_survive_moves() {
        // Workers write into a shared heap array through pointers while
        // the move driver relocates pages; a multi-thread world stop must
        // patch every thread's registers and stack.
        let src = "
            int* shared;
            int work(int lo) {
                for (int i = lo; i < lo + 200; i += 1) { shared[i] = i * 3; }
                return lo;
            }
            int main() {
                shared = (int*) malloc(800 * sizeof(int));
                int t0 = spawn(work, 0);
                int t1 = spawn(work, 200);
                int t2 = spawn(work, 400);
                int done = join(t0) + join(t1) + join(t2);
                for (int i = 600; i < 800; i += 1) { shared[i] = i * 3; }
                int s = done * 0;
                for (int i = 0; i < 800; i += 1) { s += shared[i]; }
                free(shared);
                return s % 1000000;
            }
        ";
        let module = carat_frontend::compile_cm("shared", src).unwrap();
        let m = compile(module, CompileOptions::default());
        let expect = Vm::new(m.clone(), VmConfig::default())
            .unwrap()
            .run()
            .unwrap()
            .ret;
        let r = Vm::new(
            m,
            VmConfig {
                move_driver: Some(MoveDriverConfig {
                    period_cycles: 25_000,
                    max_moves: 60,
                }),
                ..VmConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(r.ret, expect, "moves are transparent to all threads");
        assert!(r.counters.moves > 0);
    }

    #[test]
    fn join_of_self_and_unknown_thread_trap() {
        let src = "int main() { return join(0); }";
        let module = carat_frontend::compile_cm("selfjoin", src).unwrap();
        let m = compile(module, CompileOptions::baseline());
        let err = Vm::new(m, VmConfig::default()).unwrap().run().unwrap_err();
        assert!(
            matches!(err, VmError::Trap(ref m) if m.contains("join")),
            "{err}"
        );
        let src2 = "int main() { return join(7); }";
        let module2 = carat_frontend::compile_cm("badjoin", src2).unwrap();
        let m2 = compile(module2, CompileOptions::baseline());
        let err2 = Vm::new(m2, VmConfig::default()).unwrap().run().unwrap_err();
        assert!(matches!(err2, VmError::Trap(_)), "{err2}");
    }

    #[test]
    fn output_collects_prints() {
        let mut mb = ModuleBuilder::new("hello");
        let f = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let x = b.const_i64(7);
            b.intr(carat_ir::Intrinsic::PrintI64, vec![x]);
            let pi = b.const_f64(3.5);
            b.intr(carat_ir::Intrinsic::PrintF64, vec![pi]);
            b.ret(Some(x));
        }
        let r = Vm::new(mb.finish(), VmConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.output, vec!["7".to_string(), "3.500000".to_string()]);
    }
}
