//! # chaos_soak — fleet-scale fault storms against the supervision layer
//!
//! Drives a supervised fleet of microservice-sized chaos tenants (one
//! shared module, hot malloc sites, live escapes in every pass) through
//! seeded fault storms and the full pressure-degradation ladder, and
//! gates on the properties the fleet fault-domain design promises:
//!
//! * **Zero panics** — every storm arm runs under `catch_unwind`; any
//!   panic anywhere in the kernel/VM stack fails the bench.
//! * **Bystander bit-identity** — in the isolation storms (no pressure),
//!   every tenant that survives a storm must finish with counters
//!   bit-identical to the fault-free reference fleet; supervised
//!   respawns must reproduce the workload's exact result. One tenant's
//!   death is *invisible* to its neighbors.
//! * **Typed failure only** — every non-finished outcome is a typed
//!   recoverable error or a protection fault verdict; nothing untyped.
//! * **CapsuleCorrupt recovery** — every checksum failure injected into
//!   the capsule device surfaces as a recoverable `TenantExit` and is
//!   recovered by a supervisor respawn-from-image.
//! * **Typed backpressure** — a starved arena refuses admission with
//!   `AdmissionError::Backpressure`, never an allocator panic.
//!
//! Also emits the supervision telemetry the robustness story needs:
//! restart/quarantine totals, modeled backoff cycles, and the
//! recovery-latency distribution (slices from death to respawn).
//!
//! Emits `BENCH_chaos.json` (override with `--out PATH`). Scale presets:
//! `--scale test` runs 64 tenants, `small` 256, `full` 1000. The tenant
//! interpreter tier is selectable with
//! `--engine reference|decoded|fused|threaded` (default fused): the
//! zero-panic / bit-identity / typed-failure gates must hold on every
//! tier, including threaded streams with guards elided under proofs.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use carat_bench::{engine_from_args, print_table, scale_from_args, Variant};
use carat_core::CaratCompiler;
use carat_ir::Module;
use carat_kernel::{AdmissionError, FaultPlan, FaultPoint, LoadConfig, Pid};
use carat_vm::{
    Mode, MoveDriverConfig, MultiVm, MultiVmConfig, PerfCounters, ProcOutcome, SupervisorConfig,
    SwapDriverConfig, TenantExit, Verdict, Vm, VmConfig, VmError,
};
use carat_workloads::{chaos_tenant, Scale};

/// Microservice-sized capsule: the tenant touches a few hundred heap
/// bytes, so this leaves headroom while keeping a 1k fleet compact.
const CHAOS_LOAD: LoadConfig = LoadConfig {
    stack_size: 8 * 1024,
    heap_size: 16 * 1024,
    page_size: 4096,
};

/// Private move-destination pool per tenant, in frames. Generous
/// relative to the tenant's 4-page heap, so CARAT moves never fall back
/// to the shared buddy allocator mid-run — the allocation-isolation
/// property the bystander bit-identity gate rests on.
const POOL_PAGES: u64 = 32;

/// Seeded storms checked against the fault-free reference (no pressure:
/// the fleet composition is the only thing the storm perturbs).
const ISOLATION_SEEDS: [u64; 4] = [1, 2, 3, 4];

/// Seeded storms run with the full degradation ladder active
/// (pressure passes, aggressive externalization, backpressure rung).
const LADDER_SEEDS: [u64; 3] = [5, 6, 7];

fn fleet_size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 64,
        Scale::Small => 256,
        Scale::Full => 1000,
    }
}

fn kernel_mem(tenants: usize) -> u64 {
    64 * 1024 * 1024 + tenants as u64 * 256 * 1024
}

fn chaos_module(scale: Scale) -> Rc<Module> {
    let module = chaos_tenant(scale, 0).expect("chaos tenant compiles");
    Rc::new(
        CaratCompiler::new(Variant::Full.options())
            .compile(module)
            .expect("chaos tenant instruments")
            .module,
    )
}

fn tenant_cfg() -> VmConfig {
    VmConfig {
        mode: Mode::Carat,
        engine: engine_from_args(),
        load: CHAOS_LOAD,
        // Aggressive drivers: relocations and page-outs every few
        // thousand cycles, so every storm arm exercises the CARAT
        // mechanisms the fault points live in.
        move_driver: Some(MoveDriverConfig {
            period_cycles: 5_000,
            max_moves: 6,
        }),
        swap_driver: Some(SwapDriverConfig {
            period_cycles: 12_000,
            max_swaps: 4,
        }),
        ..VmConfig::default()
    }
}

fn fleet_cfg(tenants: usize, ladder: bool) -> MultiVmConfig {
    MultiVmConfig {
        quantum: 256,
        kernel_mem: kernel_mem(tenants),
        pressure_every: if ladder { 8 } else { 0 },
        pressure_batch: 4,
        supervisor: Some(SupervisorConfig::default()),
        // Rung 3 on every pressure pass (the arena is always past 1%),
        // rung 4 guarding respawn admissions near exhaustion.
        externalize_watermark: if ladder { 1 } else { 100 },
        backpressure_watermark: if ladder { 97 } else { 101 },
        tenant_pool_pages: POOL_PAGES,
        ..MultiVmConfig::default()
    }
}

fn build_fleet(tenants: usize, module: &Rc<Module>, ladder: bool) -> MultiVm {
    let mut mv = MultiVm::new(Vec::new(), fleet_cfg(tenants, ladder)).expect("empty fleet builds");
    let cfg = tenant_cfg();
    for i in 0..tenants {
        mv.spawn_shared(&format!("t{i}"), module.clone(), cfg.clone())
            .unwrap_or_else(|e| {
                eprintln!("chaos_soak: admitting tenant {i}/{tenants} failed: {e}");
                std::process::exit(2);
            });
    }
    mv
}

/// The fault-free fleet every isolation storm is compared against:
/// per-pid return values and bit-exact counters.
fn reference(tenants: usize, module: &Rc<Module>) -> HashMap<Pid, (i64, PerfCounters)> {
    let reports = build_fleet(tenants, module, false).run();
    let mut by_pid = HashMap::new();
    for r in reports {
        match r.outcome {
            ProcOutcome::Finished(rr) => {
                by_pid.insert(r.pid, (rr.ret, rr.counters));
            }
            other => {
                eprintln!(
                    "chaos_soak: fault-free reference tenant {} did not finish: {other:?}",
                    r.name
                );
                std::process::exit(2);
            }
        }
    }
    by_pid
}

/// What one storm arm produced, folded down to the gate inputs.
#[derive(Default)]
struct StormReport {
    label: String,
    slices: u64,
    finished: u64,
    respawned_finished: u64,
    errors_typed: u64,
    untyped: u64,
    divergences: u64,
    restarts: u64,
    quarantines: u64,
    backoff_cycles: u64,
    corrupt_seen: u64,
    corrupt_recovered: u64,
    recovery_samples: Vec<u64>,
    externalizations: u64,
    pressure_moves: u64,
    pressure_page_outs: u64,
    respawn_refusals: u64,
}

fn typed_recoverable(e: &VmError) -> bool {
    match e {
        VmError::OutOfMemory => true,
        VmError::Kernel(k) => k.is_recoverable(),
        _ => false,
    }
}

#[allow(clippy::too_many_lines)]
fn run_storm(
    label: &str,
    plan: FaultPlan,
    tenants: usize,
    module: &Rc<Module>,
    ladder: bool,
    reference: Option<&HashMap<Pid, (i64, PerfCounters)>>,
    expected_ret: i64,
) -> StormReport {
    let mut rep = StormReport {
        label: label.to_string(),
        ..StormReport::default()
    };
    let mut mv = build_fleet(tenants, module, ladder);
    mv.install_fault_plan(plan);
    rep.slices = mv.run_batch(u64::MAX);
    {
        let sup = mv.supervisor().expect("supervision configured");
        rep.restarts = sup.restarts;
        rep.quarantines = sup.quarantines;
        rep.backoff_cycles = sup.backoff_cycles;
        for ev in &sup.events {
            if matches!(ev.exit, TenantExit::CapsuleCorrupt { .. }) {
                rep.corrupt_seen += 1;
                if matches!(ev.verdict, Verdict::Restarting { .. }) && ev.respawned_as.is_some() {
                    rep.corrupt_recovered += 1;
                }
            }
            if matches!(ev.verdict, Verdict::Restarting { .. }) {
                if let Some((_, at)) = ev.respawned_as {
                    rep.recovery_samples.push(at.saturating_sub(ev.slice));
                } else {
                    // Scheduled but refused at admission: the ladder's
                    // rung-4 give-up path (logged as a quarantine).
                    rep.respawn_refusals += 1;
                }
            }
        }
    }
    let reports = mv.run();
    for r in &reports {
        rep.externalizations += r.accounting.externalizations;
        rep.pressure_moves += r.accounting.pressure_moves;
        rep.pressure_page_outs += r.accounting.pressure_page_outs;
        match &r.outcome {
            ProcOutcome::Finished(rr) => match reference.and_then(|m| m.get(&r.pid)) {
                Some((ret, counters)) => {
                    rep.finished += 1;
                    if rr.ret != *ret || rr.counters != *counters {
                        eprintln!(
                            "chaos_soak[{label}]: bystander {} (pid {}) diverged from the fault-free fleet",
                            r.name, r.pid
                        );
                        rep.divergences += 1;
                    }
                }
                None => {
                    // A respawned lineage (or a ladder storm, where no
                    // per-pid reference exists): the workload's result
                    // is still a pure function of its image.
                    if reference.is_some() {
                        rep.respawned_finished += 1;
                    } else {
                        rep.finished += 1;
                    }
                    if rr.ret != expected_ret {
                        eprintln!(
                            "chaos_soak[{label}]: tenant {} finished with {} (expected {expected_ret})",
                            r.name, rr.ret
                        );
                        rep.divergences += 1;
                    }
                }
            },
            ProcOutcome::Error(e) if typed_recoverable(e) => rep.errors_typed += 1,
            other => {
                eprintln!(
                    "chaos_soak[{label}]: tenant {} died untyped: {other:?}",
                    r.name
                );
                rep.untyped += 1;
            }
        }
    }
    rep
}

/// Rung 4 in isolation: a starved arena must refuse admission with a
/// typed backpressure error, never an allocator panic. Returns
/// (admitted before refusal, refusal was typed).
fn backpressure_probe(module: &Rc<Module>) -> (usize, bool) {
    let mut mv = MultiVm::new(
        Vec::new(),
        MultiVmConfig {
            kernel_mem: 8 * 1024 * 1024,
            backpressure_watermark: 50,
            supervisor: Some(SupervisorConfig::default()),
            tenant_pool_pages: POOL_PAGES,
            ..MultiVmConfig::default()
        },
    )
    .expect("probe fleet builds");
    let cfg = tenant_cfg();
    for i in 0..200 {
        match mv.spawn_shared(&format!("p{i}"), module.clone(), cfg.clone()) {
            Ok(_) => {}
            Err(VmError::Admission(AdmissionError::Backpressure { .. })) => return (i, true),
            Err(e) => {
                eprintln!("chaos_soak: backpressure probe refused untyped: {e}");
                return (i, false);
            }
        }
    }
    (200, false)
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());
    let tenants = fleet_size(scale);
    let module = chaos_module(scale);
    let expected_ret = {
        let solo = chaos_tenant(scale, 0).expect("compiles");
        Vm::new(solo, VmConfig::default())
            .expect("loads")
            .run()
            .expect("runs")
            .ret
    };
    println!(
        "chaos_soak: {tenants}-tenant supervised fleet, scale {scale:?}, engine {}, expected ret {expected_ret}",
        engine_from_args().name()
    );
    println!();

    let by_pid = reference(tenants, &module);
    let mut storms: Vec<StormReport> = Vec::new();
    let mut panics = 0u64;
    let mut arms: Vec<(String, FaultPlan, bool)> = Vec::new();
    for seed in ISOLATION_SEEDS {
        arms.push((
            format!("iso-seed{seed}"),
            FaultPlan::from_seed_chaos(seed),
            false,
        ));
    }
    for seed in LADDER_SEEDS {
        arms.push((
            format!("ladder-seed{seed}"),
            FaultPlan::from_seed_chaos(seed),
            true,
        ));
    }
    // A deliberate capsule storm so the corrupt-recovery gate always
    // has samples: the first device read fails its checksum, a later
    // device write is refused, and a mid-run malloc is starved.
    arms.push((
        "ladder-capsule".to_string(),
        FaultPlan::new()
            .arm(FaultPoint::CapsuleCorrupt, 1)
            .arm(FaultPoint::CapsuleWrite, 3)
            .arm(FaultPoint::TenantOom, 9),
        true,
    ));
    for (label, plan, ladder) in arms {
        let reference = (!ladder).then_some(&by_pid);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_storm(
                &label,
                plan,
                tenants,
                &module,
                ladder,
                reference,
                expected_ret,
            )
        }));
        match outcome {
            Ok(rep) => storms.push(rep),
            Err(_) => {
                eprintln!("chaos_soak[{label}]: PANIC escaped the fault domain");
                panics += 1;
            }
        }
    }

    let rows: Vec<Vec<String>> = storms
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                s.slices.to_string(),
                s.finished.to_string(),
                s.respawned_finished.to_string(),
                s.errors_typed.to_string(),
                s.restarts.to_string(),
                s.quarantines.to_string(),
                s.divergences.to_string(),
                format!("{}/{}", s.corrupt_recovered, s.corrupt_seen),
                s.externalizations.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "storm",
            "slices",
            "finished",
            "respawned",
            "typed err",
            "restarts",
            "quarant.",
            "diverged",
            "corrupt rec",
            "extern.",
        ],
        &rows,
    );

    let divergences: u64 = storms.iter().map(|s| s.divergences).sum();
    let untyped: u64 = storms.iter().map(|s| s.untyped).sum();
    let restarts: u64 = storms.iter().map(|s| s.restarts).sum();
    let quarantines: u64 = storms.iter().map(|s| s.quarantines).sum();
    let backoff_cycles: u64 = storms.iter().map(|s| s.backoff_cycles).sum();
    let corrupt_seen: u64 = storms.iter().map(|s| s.corrupt_seen).sum();
    let corrupt_recovered: u64 = storms.iter().map(|s| s.corrupt_recovered).sum();
    let mut latencies: Vec<u64> = storms
        .iter()
        .flat_map(|s| s.recovery_samples.iter().copied())
        .collect();
    latencies.sort_unstable();
    let (admitted, backpressure_typed) = backpressure_probe(&module);

    let zero_panic = panics == 0;
    let bystanders_ok = divergences == 0;
    let typed_ok = untyped == 0;
    let corrupt_ok = corrupt_seen >= 1 && corrupt_recovered == corrupt_seen;
    println!();
    println!(
        "{}: zero panics across {} storm arms",
        if zero_panic { "PASS" } else { "FAIL" },
        storms.len() as u64 + panics
    );
    println!(
        "{}: zero bystander divergence (counters bit-identical to the fault-free fleet)",
        if bystanders_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "{}: every failure typed (recoverable error or supervised verdict)",
        if typed_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "{}: every injected CapsuleCorrupt recovered by respawn-from-image ({corrupt_recovered}/{corrupt_seen})",
        if corrupt_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "{}: starved arena refused admission typed after {admitted} tenants",
        if backpressure_typed { "PASS" } else { "FAIL" }
    );
    println!(
        "supervision: {restarts} restarts, {quarantines} quarantines, {backoff_cycles} backoff cycles; \
         recovery latency p50 {} p90 {} max {} slices ({} samples)",
        percentile(&latencies, 50),
        percentile(&latencies, 90),
        percentile(&latencies, 100),
        latencies.len()
    );

    let pass = zero_panic && bystanders_ok && typed_ok && corrupt_ok && backpressure_typed;
    let mut storms_json = String::new();
    for s in &storms {
        if !storms_json.is_empty() {
            storms_json.push_str(",\n");
        }
        storms_json.push_str(&format!(
            "    {{\"storm\": \"{}\", \"slices\": {}, \"finished\": {}, \"respawned_finished\": {}, \
             \"errors_typed\": {}, \"untyped\": {}, \"divergences\": {}, \"restarts\": {}, \
             \"quarantines\": {}, \"corrupt_seen\": {}, \"corrupt_recovered\": {}, \
             \"externalizations\": {}, \"pressure_moves\": {}, \"pressure_page_outs\": {}, \
             \"respawn_refusals\": {}}}",
            s.label,
            s.slices,
            s.finished,
            s.respawned_finished,
            s.errors_typed,
            s.untyped,
            s.divergences,
            s.restarts,
            s.quarantines,
            s.corrupt_seen,
            s.corrupt_recovered,
            s.externalizations,
            s.pressure_moves,
            s.pressure_page_outs,
            s.respawn_refusals,
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"chaos_soak\",\n  \"scale\": \"{scale:?}\",\n  \"tenants\": {tenants},\n  \
         \"engine\": \"{eng}\",\n  \"expected_ret\": {expected_ret},\n  \"storms\": [\n{storms_json}\n  ],\n  \
         \"panics\": {panics},\n  \"divergences\": {divergences},\n  \"untyped\": {untyped},\n  \
         \"restarts\": {restarts},\n  \"quarantines\": {quarantines},\n  \"backoff_cycles\": {backoff_cycles},\n  \
         \"recovery_latency_slices\": {{\"samples\": {}, \"p50\": {}, \"p90\": {}, \"max\": {}}},\n  \
         \"capsule\": {{\"corrupt_seen\": {corrupt_seen}, \"corrupt_recovered\": {corrupt_recovered}}},\n  \
         \"backpressure\": {{\"admitted_before_refusal\": {admitted}, \"typed\": {backpressure_typed}}},\n  \
         \"gates\": {{\"zero_panic\": {zero_panic}, \"bystanders_identical\": {bystanders_ok}, \
         \"typed_outcomes\": {typed_ok}, \"corrupt_recovered\": {corrupt_ok}, \
         \"backpressure_typed\": {backpressure_typed}}},\n  \"pass\": {pass}\n}}\n",
        latencies.len(),
        percentile(&latencies, 50),
        percentile(&latencies, 90),
        percentile(&latencies, 100),
        eng = engine_from_args().name(),
    );
    std::fs::write(&out_path, json).expect("write json");
    println!("\nwrote {out_path}");
    if !pass {
        std::process::exit(1);
    }
}
