//! Simulated physical memory: the flat address space both the kernel and
//! CARAT processes operate in (paper §2.2: "CARAT processes and the kernel
//! run within a single physical address space using physical addresses").

use carat_runtime::{MemAccess, PatchMem};

/// Flat byte-addressable physical memory.
#[derive(Debug, Clone)]
pub struct PhysicalMemory {
    bytes: Vec<u8>,
}

impl PhysicalMemory {
    /// Allocate `size` bytes of zeroed physical memory.
    pub fn new(size: u64) -> PhysicalMemory {
        PhysicalMemory {
            bytes: vec![0; size as usize],
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn check(&self, addr: u64, len: u64) {
        assert!(
            addr.checked_add(len).is_some_and(|e| e <= self.size()),
            "physical access [{addr:#x}, +{len}) outside memory of {:#x} bytes",
            self.size()
        );
    }

    /// Read `len` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics when the range leaves physical memory — in a real machine
    /// this would be a bus error; in the simulation it is always a
    /// substrate bug because guards/page tables run first.
    pub fn read_bytes(&self, addr: u64, len: u64) -> &[u8] {
        self.check(addr, len);
        &self.bytes[addr as usize..(addr + len) as usize]
    }

    /// Write bytes at `addr`.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        self.check(addr, data.len() as u64);
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }

    /// Read a little-endian integer of `size` ∈ {1,2,4,8} bytes,
    /// zero-extended.
    pub fn read_uint(&self, addr: u64, size: u64) -> u64 {
        let b = self.read_bytes(addr, size);
        // Whole-word fast path: the VM's pointer and f64 traffic.
        if let Ok(w) = <[u8; 8]>::try_from(b) {
            return u64::from_le_bytes(w);
        }
        let mut v = 0u64;
        for (i, &x) in b.iter().enumerate() {
            v |= (x as u64) << (8 * i);
        }
        v
    }

    /// Write the low `size` bytes of `val` little-endian.
    pub fn write_uint(&mut self, addr: u64, val: u64, size: u64) {
        let bytes = val.to_le_bytes();
        self.write_bytes(addr, &bytes[..size as usize]);
    }

    /// Read an `f64`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_uint(addr, 8))
    }

    /// Write an `f64`.
    pub fn write_f64(&mut self, addr: u64, v: f64) {
        self.write_uint(addr, v.to_bits(), 8);
    }

    /// Zero the range.
    pub fn zero(&mut self, addr: u64, len: u64) {
        self.check(addr, len);
        self.bytes[addr as usize..(addr + len) as usize].fill(0);
    }
}

impl MemAccess for PhysicalMemory {
    fn read_u64(&self, addr: u64) -> u64 {
        self.read_uint(addr, 8)
    }

    fn write_u64(&mut self, addr: u64, val: u64) {
        self.write_uint(addr, val, 8);
    }

    fn copy(&mut self, src: u64, dst: u64, len: u64) {
        self.check(src, len);
        self.check(dst, len);
        self.bytes
            .copy_within(src as usize..(src + len) as usize, dst as usize);
    }
}

impl PatchMem for PhysicalMemory {
    fn cell_ptr(&mut self, addr: u64) -> Option<*mut u8> {
        // Out-of-range cells decline the pointer: the serial fallback then
        // raises the same bus-error panic an 8-byte write would.
        (addr.checked_add(8)? <= self.size())
            .then(|| unsafe { self.bytes.as_mut_ptr().add(addr as usize) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_uints() {
        let mut m = PhysicalMemory::new(4096);
        m.write_uint(16, 0xdead_beef_cafe_f00d, 8);
        assert_eq!(m.read_uint(16, 8), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_uint(16, 4), 0xcafe_f00d);
        assert_eq!(m.read_uint(16, 1), 0x0d);
        m.write_uint(100, 0xff, 1);
        assert_eq!(m.read_uint(100, 1), 0xff);
    }

    #[test]
    fn roundtrip_f64() {
        let mut m = PhysicalMemory::new(64);
        m.write_f64(8, -3.25);
        assert_eq!(m.read_f64(8), -3.25);
    }

    #[test]
    fn copy_moves_data() {
        let mut m = PhysicalMemory::new(4096);
        m.write_bytes(0, b"hello world");
        m.copy(0, 1000, 11);
        assert_eq!(m.read_bytes(1000, 11), b"hello world");
    }

    #[test]
    #[should_panic(expected = "outside memory")]
    fn out_of_range_panics() {
        let m = PhysicalMemory::new(64);
        m.read_uint(60, 8);
    }

    #[test]
    fn zero_clears() {
        let mut m = PhysicalMemory::new(64);
        m.write_uint(0, u64::MAX, 8);
        m.zero(0, 8);
        assert_eq!(m.read_uint(0, 8), 0);
    }
}
