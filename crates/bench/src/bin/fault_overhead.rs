//! Zero-fault journal overhead: host wall-clock cost of the
//! crash-consistent move path when no fault ever fires.
//!
//! Installing any [`FaultPlan`] — even an empty one — switches the kernel
//! onto the journaled move path: every patched cell and register is
//! recorded so a mid-move interruption can roll back to a byte-identical
//! pre-move state. This experiment prices that insurance. Each workload
//! runs move- and swap-heavy under (a) no plan (plain moves) and (b) an
//! empty plan (journal armed, nothing fires), and reports the wall-clock
//! ns/instruction overhead. Simulated counters must match exactly — the
//! journal is host-side bookkeeping, invisible to the cost model.
//!
//! Usage: `fault_overhead [--scale test|small|full] [--only a,b]
//! [--out PATH]`. Writes `BENCH_faults.json` by default. Target: < 3%
//! geomean overhead.

use std::time::Instant;

use carat_bench::{compile, print_table, scale_from_args, selected_workloads, Variant};
use carat_ir::Module;
use carat_kernel::FaultPlan;
use carat_vm::{MoveDriverConfig, SwapDriverConfig, Vm, VmConfig};

const TARGET_PCT: f64 = 3.0;

fn config(plan: Option<FaultPlan>) -> VmConfig {
    VmConfig {
        move_driver: Some(MoveDriverConfig {
            period_cycles: 30_000,
            max_moves: 0,
        }),
        swap_driver: Some(SwapDriverConfig {
            period_cycles: 80_000,
            max_swaps: 0,
        }),
        fault_plan: plan,
        ..VmConfig::default()
    }
}

/// Wall-clock one run; returns (elapsed ns, instructions, simulated cycles, moves).
fn time_run(module: Module, journaled: bool) -> (f64, u64, u64, u64) {
    let plan = journaled.then(FaultPlan::new);
    let vm = Vm::new(module, config(plan)).expect("load");
    let start = Instant::now();
    let r = vm.run().expect("run");
    let ns = start.elapsed().as_nanos() as f64;
    (
        ns,
        r.counters.instructions,
        r.counters.cycles,
        r.counters.moves,
    )
}

struct Row {
    name: String,
    insts: u64,
    moves: u64,
    plain_ns_per_inst: f64,
    journal_ns_per_inst: f64,
    overhead_pct: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_faults.json".to_string());
    let scale = scale_from_args();
    let reps = 5;

    println!("Zero-fault journal overhead ({scale:?} scale, best of {reps})\n");
    let mut rows: Vec<Row> = Vec::new();
    let selected = selected_workloads();
    if selected.is_empty() {
        eprintln!("error: --only matched no workloads");
        std::process::exit(2);
    }
    for w in selected {
        let m = compile(&w, scale, Variant::Full);
        // Interleave reps so host noise degrades both sides equally.
        let mut best_plain = f64::INFINITY;
        let mut best_journal = f64::INFINITY;
        let mut insts = 0;
        let mut moves = 0;
        for _ in 0..reps {
            let (ns, n, cycles, mv) = time_run(m.clone(), false);
            best_plain = best_plain.min(ns);
            insts = n;
            moves = mv;
            let (ns, n2, cycles2, mv2) = time_run(m.clone(), true);
            best_journal = best_journal.min(ns);
            assert_eq!(
                (n, cycles, mv),
                (n2, cycles2, mv2),
                "{}: journaling must be invisible to simulated accounting",
                w.name
            );
        }
        let per = |ns: f64| ns / insts.max(1) as f64;
        rows.push(Row {
            name: w.name.to_string(),
            insts,
            moves,
            plain_ns_per_inst: per(best_plain),
            journal_ns_per_inst: per(best_journal),
            overhead_pct: (best_journal / best_plain - 1.0) * 100.0,
        });
    }

    let mut table = Vec::new();
    for r in &rows {
        table.push(vec![
            r.name.clone(),
            format!("{}", r.insts),
            format!("{}", r.moves),
            format!("{:.2}", r.plain_ns_per_inst),
            format!("{:.2}", r.journal_ns_per_inst),
            format!("{:+.2}%", r.overhead_pct),
        ]);
    }
    print_table(
        &[
            "workload",
            "IR insts",
            "moves",
            "plain ns/i",
            "journal ns/i",
            "overhead",
        ],
        &table,
    );
    // Geomean over the ns/inst ratios (robust to negative per-row noise).
    let ratios: Vec<f64> = rows
        .iter()
        .map(|r| r.journal_ns_per_inst / r.plain_ns_per_inst)
        .collect();
    let geomean_pct = (carat_bench::geomean(&ratios) - 1.0) * 100.0;
    let within = geomean_pct < TARGET_PCT;
    println!(
        "\nGeomean zero-fault journal overhead: {geomean_pct:+.2}% (target < {TARGET_PCT}%): {}",
        if within { "PASS" } else { "WARN" }
    );

    // Hand-rolled JSON: no serde in the dependency closure.
    let mut json = String::from("{\n  \"scale\": \"");
    json.push_str(&format!("{scale:?}"));
    json.push_str("\",\n  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ir_instructions\": {}, \"moves\": {}, \
             \"plain_ns_per_inst\": {:.3}, \"journal_ns_per_inst\": {:.3}, \
             \"overhead_pct\": {:.3}}}{}\n",
            r.name,
            r.insts,
            r.moves,
            r.plain_ns_per_inst,
            r.journal_ns_per_inst,
            r.overhead_pct,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"geomean_overhead_pct\": {geomean_pct:.3},\n  \
         \"target_pct\": {TARGET_PCT},\n  \"within_target\": {within}\n}}\n"
    ));
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");
}
