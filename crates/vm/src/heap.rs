//! The process heap allocator (the simulated libc `malloc`).
//!
//! First-fit free list over the heap arena the kernel granted at load.
//! Because CARAT can relocate live heap blocks, the allocator supports
//! rebasing its bookkeeping after a move — on real CARAT/Linux the
//! allocator's metadata lives in tracked memory and is patched like any
//! other pointer; here the metadata is host-side, so the rebase is
//! explicit.

use std::collections::HashMap;

/// Allocation alignment.
const ALIGN: u64 = 16;

/// First-fit heap allocator.
#[derive(Debug, Clone)]
pub struct HeapAllocator {
    /// Free chunks `(start, len)`, kept sorted by start and coalesced.
    free: Vec<(u64, u64)>,
    /// Live blocks `start -> len`.
    allocated: HashMap<u64, u64>,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
    /// Currently live bytes.
    pub live_bytes: u64,
}

impl HeapAllocator {
    /// Manage `[base, base+len)`.
    pub fn new(base: u64, len: u64) -> HeapAllocator {
        HeapAllocator {
            free: vec![(base, len)],
            allocated: HashMap::new(),
            peak_bytes: 0,
            live_bytes: 0,
        }
    }

    /// Allocate `size` bytes (16-aligned); `None` when the arena is full.
    pub fn alloc(&mut self, size: u64) -> Option<u64> {
        let size = size.max(1).div_ceil(ALIGN) * ALIGN;
        let idx = self.free.iter().position(|&(_, l)| l >= size)?;
        let (start, len) = self.free[idx];
        if len == size {
            self.free.remove(idx);
        } else {
            self.free[idx] = (start + size, len - size);
        }
        self.allocated.insert(start, size);
        self.live_bytes += size;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        Some(start)
    }

    /// Free a block. Unknown addresses are ignored (mirroring `free(NULL)`
    /// tolerance; a real double free is a program bug surfaced by guards).
    pub fn free(&mut self, addr: u64) -> Option<u64> {
        let size = self.allocated.remove(&addr)?;
        self.live_bytes -= size;
        // Insert sorted and coalesce with neighbors.
        let pos = self.free.partition_point(|&(s, _)| s < addr);
        self.free.insert(pos, (addr, size));
        self.coalesce_around(pos);
        Some(size)
    }

    fn coalesce_around(&mut self, pos: usize) {
        // Merge with next.
        if pos + 1 < self.free.len() {
            let (s, l) = self.free[pos];
            let (ns, nl) = self.free[pos + 1];
            if s + l == ns {
                self.free[pos] = (s, l + nl);
                self.free.remove(pos + 1);
            }
        }
        // Merge with previous.
        if pos > 0 {
            let (ps, pl) = self.free[pos - 1];
            let (s, l) = self.free[pos];
            if ps + pl == s {
                self.free[pos - 1] = (ps, pl + l);
                self.free.remove(pos);
            }
        }
    }

    /// Size of the live block starting at `addr`.
    pub fn size_of(&self, addr: u64) -> Option<u64> {
        self.allocated.get(&addr).copied()
    }

    /// Number of live blocks.
    pub fn live_blocks(&self) -> usize {
        self.allocated.len()
    }

    /// Capsule view of the allocator: the free list (already sorted) and
    /// the live-block map sorted by start address, so serializing the
    /// same heap twice yields identical bytes regardless of `HashMap`
    /// iteration order.
    #[allow(clippy::type_complexity)]
    pub(crate) fn snapshot(&self) -> (&[(u64, u64)], Vec<(u64, u64)>) {
        let mut allocated: Vec<(u64, u64)> = self.allocated.iter().map(|(&s, &l)| (s, l)).collect();
        allocated.sort_unstable();
        (&self.free, allocated)
    }

    /// Rebuild an allocator from its capsule view.
    pub(crate) fn restore(
        free: Vec<(u64, u64)>,
        allocated: Vec<(u64, u64)>,
        peak_bytes: u64,
        live_bytes: u64,
    ) -> HeapAllocator {
        HeapAllocator {
            free,
            allocated: allocated.into_iter().collect(),
            peak_bytes,
            live_bytes,
        }
    }

    /// Rebase bookkeeping after the kernel moved `[lo, lo+len)` by
    /// `delta`: live blocks inside the range get new start addresses, and
    /// the *portions* of free chunks inside the range move too (their
    /// backing store moved) — a chunk straddling a boundary is split, so
    /// the allocator never hands out addresses whose backing did not move.
    pub fn rebase(&mut self, lo: u64, len: u64, delta: i64) {
        let hi = lo + len;
        let moved: Vec<(u64, u64)> = self
            .allocated
            .iter()
            .filter(|(&s, _)| s >= lo && s < hi)
            .map(|(&s, &l)| (s, l))
            .collect();
        for (s, l) in moved {
            self.allocated.remove(&s);
            self.allocated.insert(s.wrapping_add(delta as u64), l);
        }
        let mut next: Vec<(u64, u64)> = Vec::with_capacity(self.free.len() + 2);
        for &(s, l) in &self.free {
            let e = s + l;
            if e <= lo || s >= hi {
                next.push((s, l));
                continue;
            }
            if s < lo {
                next.push((s, lo - s));
            }
            let mid_lo = s.max(lo);
            let mid_hi = e.min(hi);
            if mid_hi > mid_lo {
                next.push((mid_lo.wrapping_add(delta as u64), mid_hi - mid_lo));
            }
            if e > hi {
                next.push((hi, e - hi));
            }
        }
        next.sort_unstable();
        self.free = next;
        // Re-coalesce adjacent chunks after the splits.
        let mut i = 0;
        while i + 1 < self.free.len() {
            if self.free[i].0 + self.free[i].1 == self.free[i + 1].0 {
                self.free[i].1 += self.free[i + 1].1;
                self.free.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_free_reuse() {
        let mut h = HeapAllocator::new(0x1000, 0x1000);
        let a = h.alloc(100).unwrap();
        assert_eq!(a % ALIGN, 0);
        let b = h.alloc(100).unwrap();
        assert_ne!(a, b);
        h.free(a);
        let c = h.alloc(100).unwrap();
        assert_eq!(c, a, "first fit reuses the freed block");
        assert_eq!(h.live_blocks(), 2);
    }

    #[test]
    fn exhaustion() {
        let mut h = HeapAllocator::new(0, 64);
        assert!(h.alloc(64).is_some());
        assert!(h.alloc(1).is_none());
    }

    #[test]
    fn coalescing_allows_big_realloc() {
        let mut h = HeapAllocator::new(0, 0x100);
        let xs: Vec<u64> = (0..16).map(|_| h.alloc(16).unwrap()).collect();
        assert!(h.alloc(16).is_none());
        for x in xs {
            h.free(x);
        }
        assert!(h.alloc(0x100).is_some(), "fully coalesced");
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut h = HeapAllocator::new(0, 0x1000);
        let a = h.alloc(0x100).unwrap();
        let _b = h.alloc(0x100).unwrap();
        h.free(a);
        assert_eq!(h.peak_bytes, 0x200);
        assert_eq!(h.live_bytes, 0x100);
    }

    #[test]
    fn rebase_moves_blocks() {
        let mut h = HeapAllocator::new(0x1000, 0x1000);
        let a = h.alloc(0x20).unwrap();
        h.rebase(0x1000, 0x1000, 0x7000);
        assert_eq!(h.size_of(a), None);
        assert_eq!(h.size_of(a + 0x7000), Some(0x20));
        // Freeing at the new address works.
        assert!(h.free(a + 0x7000).is_some());
    }

    #[test]
    fn rebase_splits_straddling_free_chunk() {
        // Arena [0x1000, 0x3000); allocate nothing; move page [0x1000,0x2000)
        // to 0x9000. Only the first page of free space may relocate.
        let mut h = HeapAllocator::new(0x1000, 0x2000);
        h.rebase(0x1000, 0x1000, 0x8000);
        // First allocation comes from the moved page (lowest address after
        // sort is the untouched second page at 0x2000).
        let a = h.alloc(16).unwrap();
        assert!(
            (0x2000..0x3000).contains(&a) || (0x9000..0xa000).contains(&a),
            "allocation {a:#x} must come from backed memory"
        );
        // Exhaust: total capacity is still 0x2000 bytes.
        let mut total = 16u64;
        while let Some(p) = h.alloc(16) {
            assert!(
                (0x2000..0x3000).contains(&p) || (0x9000..0xa000).contains(&p),
                "allocation {p:#x} outside backed ranges"
            );
            total += 16;
        }
        assert_eq!(total, 0x2000);
    }

    proptest! {
        /// Allocations never overlap and frees never corrupt the arena.
        #[test]
        fn no_overlap(sizes in proptest::collection::vec(1u64..200, 1..50)) {
            let mut h = HeapAllocator::new(0x4000, 0x10000);
            let mut live: Vec<(u64, u64)> = Vec::new();
            for (i, s) in sizes.iter().enumerate() {
                if i % 3 == 2 && !live.is_empty() {
                    let (a, _) = live.swap_remove(0);
                    h.free(a);
                } else if let Some(a) = h.alloc(*s) {
                    live.push((a, *s));
                }
            }
            live.sort_unstable();
            for w in live.windows(2) {
                prop_assert!(w[0].0 + w[0].1 <= w[1].0, "blocks overlap");
            }
        }
    }
}
