//! Differential tests for the parallel patch engine: at every host worker
//! count in {1, 2, 4, 8} a move must produce byte-identical memory,
//! identical `MoveOutcome` cycles, and — after an injected mid-batch
//! fault (the interrupt the kernel's `FaultPoint::MidMove` maps onto) —
//! an identical reverse-order rollback. Worker count is a host-side
//! execution detail; nothing the simulated machine can observe may vary.

use carat_runtime::{
    perform_move_batch_journaled, perform_move_workers, AllocKind, AllocationTable, CostModel,
    MemAccess, MoveOutcome, MovePhase, MoveRequest, PatchMem, PatchPlan, PARALLEL_MIN_CELLS,
};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Flat `Vec<u8>`-backed memory with real host pointers, so plans over it
/// can take the actual parallel apply path (unlike the sparse `HashMap`
/// test memory in the unit tests, which always falls back to serial).
struct VecMem {
    bytes: Vec<u8>,
}

impl VecMem {
    fn new(size: usize) -> VecMem {
        VecMem {
            bytes: vec![0; size],
        }
    }
}

impl MemAccess for VecMem {
    fn read_u64(&self, addr: u64) -> u64 {
        let a = addr as usize;
        u64::from_le_bytes(self.bytes[a..a + 8].try_into().unwrap())
    }
    fn write_u64(&mut self, addr: u64, val: u64) {
        let a = addr as usize;
        self.bytes[a..a + 8].copy_from_slice(&val.to_le_bytes());
    }
    fn copy(&mut self, src: u64, dst: u64, len: u64) {
        self.bytes
            .copy_within(src as usize..(src + len) as usize, dst as usize);
    }
}

impl PatchMem for VecMem {
    fn cell_ptr(&mut self, addr: u64) -> Option<*mut u8> {
        (addr.checked_add(8)? <= self.bytes.len() as u64)
            .then(|| unsafe { self.bytes.as_mut_ptr().add(addr as usize) })
    }
}

const ALLOC_BASE: u64 = 0x10000;
const ALLOC_SIZE: u64 = 0x400;
const ARENA_BASE: u64 = 0x100000;
const MOVE_DST: u64 = 0x200000;
const MEM_SIZE: usize = 4 << 20;

/// Deterministic fixture: `n_allocs` contiguous allocations from
/// `ALLOC_BASE`, `cells_per_alloc` external escape cells per allocation in
/// an arena of exactly-adjacent (but window-disjoint) 8-byte slots, plus
/// one internal cross-pointer per allocation to the next one. `seed`
/// varies the pointer targets. `AllocationTable` is not `Clone`, so
/// differential runs rebuild the fixture per worker count — identical by
/// construction.
fn build_fixture(
    n_allocs: usize,
    cells_per_alloc: usize,
    seed: u64,
) -> (AllocationTable, VecMem, Vec<u64>) {
    let mut t = AllocationTable::new();
    let mut m = VecMem::new(MEM_SIZE);
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = || {
        // xorshift64: deterministic, seed-driven.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut arena = ARENA_BASE;
    for i in 0..n_allocs {
        let start = ALLOC_BASE + i as u64 * ALLOC_SIZE;
        t.track_alloc(start, ALLOC_SIZE, AllocKind::Heap);
        // Fill the payload with recognizable, allocation-unique bytes.
        for w in 0..(ALLOC_SIZE / 8) {
            m.write_u64(start + w * 8, (i as u64) << 32 | w);
        }
        for _ in 0..cells_per_alloc {
            let target = start + (next() % (ALLOC_SIZE / 8)) * 8;
            m.write_u64(arena, target);
            t.track_escape(arena);
            arena += 8;
        }
        // Internal cell in the last word, pointing at the next allocation
        // (a cross-pointer that both moves with the data and is patched).
        let cell = start + ALLOC_SIZE - 8;
        let target = ALLOC_BASE + ((i + 1) % n_allocs) as u64 * ALLOC_SIZE + 0x10;
        m.write_u64(cell, target);
        t.track_escape(cell);
    }
    t.flush_escapes(|c| m.read_u64(c));
    let regs = vec![
        ALLOC_BASE + 0x10,
        0xdead_beef,
        ALLOC_BASE + (n_allocs as u64 - 1) * ALLOC_SIZE + 8,
        0x50,
    ];
    (t, m, regs)
}

fn whole_range(n_allocs: usize) -> MoveRequest {
    let len = (n_allocs as u64 * ALLOC_SIZE).div_ceil(0x1000) * 0x1000;
    MoveRequest {
        src: ALLOC_BASE,
        len,
        dst: MOVE_DST,
    }
}

struct RunResultSnapshot {
    bytes: Vec<u8>,
    regs: Vec<u64>,
    table: Vec<(u64, u64, usize, u64)>,
    outcome: MoveOutcome,
}

fn run_move(
    n_allocs: usize,
    cells_per_alloc: usize,
    seed: u64,
    workers: usize,
) -> RunResultSnapshot {
    let (mut t, mut m, mut regs) = build_fixture(n_allocs, cells_per_alloc, seed);
    let cost = CostModel::default();
    let outcome = perform_move_workers(
        &mut t,
        &mut m,
        &mut regs,
        whole_range(n_allocs),
        &cost,
        workers,
    );
    RunResultSnapshot {
        bytes: m.bytes,
        regs,
        table: t.snapshot(),
        outcome,
    }
}

/// The tentpole guarantee, exercised on a plan large enough (≥
/// `PARALLEL_MIN_CELLS`) to take the real multi-threaded path: every
/// worker count yields byte-identical memory, registers, table, and the
/// exact same `MoveOutcome` (including modeled cycles).
#[test]
fn parallel_apply_is_byte_identical_across_worker_counts() {
    let (n_allocs, cells_per_alloc, seed) = (128, 72, 7);
    let baseline = run_move(n_allocs, cells_per_alloc, seed, 1);
    assert!(
        baseline.outcome.escapes_patched >= PARALLEL_MIN_CELLS,
        "fixture too small to exercise the parallel path: {} cells",
        baseline.outcome.escapes_patched
    );
    for workers in WORKER_COUNTS {
        let run = run_move(n_allocs, cells_per_alloc, seed, workers);
        assert_eq!(
            run.bytes, baseline.bytes,
            "memory differs at workers={workers}"
        );
        assert_eq!(
            run.regs, baseline.regs,
            "registers differ at workers={workers}"
        );
        assert_eq!(
            run.table, baseline.table,
            "table differs at workers={workers}"
        );
        assert_eq!(
            run.outcome, baseline.outcome,
            "outcome (incl. modeled cycles) differs at workers={workers}"
        );
    }
}

/// An interrupt injected mid-batch — between the patch and copy phases,
/// the window the kernel arms with `FaultPoint::MidMove` — must roll the
/// whole batch back to a byte-identical pre-move state at every worker
/// count, undoing the same number of cells and registers.
#[test]
fn mid_batch_fault_rollback_is_identical_across_worker_counts() {
    let (n_allocs, cells_per_alloc, seed) = (128, 72, 11);
    let half = n_allocs as u64 / 2 * ALLOC_SIZE;
    let reqs = [
        MoveRequest {
            src: ALLOC_BASE,
            len: half,
            dst: MOVE_DST,
        },
        MoveRequest {
            src: ALLOC_BASE + half,
            len: half,
            dst: MOVE_DST + 0x80000,
        },
    ];
    let cost = CostModel::default();
    let mut rolled: Vec<(usize, usize)> = Vec::new();
    for workers in WORKER_COUNTS {
        let (mut t, mut m, mut regs) = build_fixture(n_allocs, cells_per_alloc, seed);
        let pristine_bytes = m.bytes.clone();
        let pristine_regs = regs.clone();
        let pristine_table = t.snapshot();
        let mut fire = |phase: MovePhase| phase == MovePhase::Patched;
        let err = perform_move_batch_journaled(
            &mut t,
            &mut m,
            &mut regs,
            &reqs,
            &cost,
            workers,
            Some(&mut fire),
        )
        .unwrap_err();
        assert_eq!(err.phase, MovePhase::Patched);
        assert!(
            err.cells_rolled_back >= PARALLEL_MIN_CELLS,
            "rollback too small to have covered the parallel path"
        );
        assert_eq!(
            m.bytes, pristine_bytes,
            "memory not restored at workers={workers}"
        );
        assert_eq!(
            regs, pristine_regs,
            "registers not restored at workers={workers}"
        );
        assert_eq!(
            t.snapshot(),
            pristine_table,
            "table not restored at workers={workers}"
        );
        rolled.push((err.cells_rolled_back, err.registers_rolled_back));
    }
    assert!(
        rolled.windows(2).all(|w| w[0] == w[1]),
        "rollback extents differ across worker counts: {rolled:?}"
    );
}

/// Modeled cycles are a function of the *cost model's* `patch_workers`,
/// never of the host thread count: with 4 modeled workers the patch term
/// shrinks ≥2× on an escape-heavy plan, and the figure is identical
/// whether the host applies the plan with 1 or 8 threads.
#[test]
fn modeled_parallel_patch_speedup_is_host_worker_independent() {
    let (n_allocs, cells_per_alloc, seed) = (32, 40, 3);
    let cost4 = CostModel {
        patch_workers: 4,
        ..CostModel::default()
    };
    let mut outcomes = Vec::new();
    for workers in WORKER_COUNTS {
        let (mut t, mut m, mut regs) = build_fixture(n_allocs, cells_per_alloc, seed);
        let out = perform_move_workers(
            &mut t,
            &mut m,
            &mut regs,
            whole_range(n_allocs),
            &cost4,
            workers,
        );
        outcomes.push(out);
    }
    assert!(
        outcomes.windows(2).all(|w| w[0] == w[1]),
        "modeled cycles leaked host worker count"
    );
    let escapes = outcomes[0].escapes_patched as u64;
    let serial = CostModel::default().patch_cost(escapes);
    let parallel = cost4.patch_cost(escapes);
    assert_eq!(outcomes[0].cost.patch_gen_exec, parallel);
    assert!(
        serial >= 2 * parallel,
        "expected ≥2x modeled patch speedup at 4 workers: serial={serial} parallel={parallel}"
    );
}

/// The plan builder is pure and the fixture is deterministic, so the plan
/// itself — cells, order, values — is identical however often it is
/// rebuilt, which is what lets differential runs rebuild per worker count.
#[test]
fn plan_build_is_deterministic() {
    let req = whole_range(8);
    let (t1, m1, _) = build_fixture(8, 12, 99);
    let (t2, m2, _) = build_fixture(8, 12, 99);
    let p1 = PatchPlan::build(&[&t1], &m1, req.src, req.len, req.dst);
    let p2 = PatchPlan::build(&[&t2], &m2, req.src, req.len, req.dst);
    assert_eq!(p1, p2);
    assert!(!p1.cells.is_empty());
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
    /// Randomized differential: arbitrary fixture shapes — below, at, and
    /// above the parallel threshold — agree bit-for-bit at every worker
    /// count, both on the final state and on the mid-batch rollback.
    #[test]
    fn any_fixture_agrees_across_worker_counts(
        n_allocs in 2usize..24,
        cells_per_alloc in 1usize..60,
        seed in 0u64..1_000_000,
    ) {
        use proptest::prelude::*;
        let baseline = run_move(n_allocs, cells_per_alloc, seed, 1);
        for workers in [2usize, 4, 8] {
            let run = run_move(n_allocs, cells_per_alloc, seed, workers);
            prop_assert_eq!(&run.bytes, &baseline.bytes);
            prop_assert_eq!(&run.regs, &baseline.regs);
            prop_assert_eq!(&run.table, &baseline.table);
            prop_assert_eq!(&run.outcome, &baseline.outcome);
        }
    }
}
