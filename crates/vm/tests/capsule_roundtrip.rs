//! Capsule round-trip suite: externalizing a mid-run tenant and
//! rebuilding it must be lossless.
//!
//! Three layers of guarantee, each strictly stronger:
//! 1. **Byte determinism** — serializing the same tenant twice yields
//!    identical bytes (no hash-order leaks).
//! 2. **Round-trip identity** — externalize → rehydrate → externalize is
//!    byte-identical, and `footprint_bytes()`/counters are preserved.
//! 3. **Resume equivalence** — a tenant that went through the capsule
//!    (including a checksum-verified trip through the simulated swap
//!    device) finishes with counters bit-identical to one that never
//!    left memory.
//!
//! Damage paths: a corrupted capsule fails the kernel checksum with a
//! typed error, and a structurally damaged image rehydrates to `None` —
//! never a panic, never a half-restored tenant.

use carat_core::{CaratCompiler, CompileOptions};
use carat_ir::Module;
use carat_kernel::KernelError;
use carat_vm::{
    Engine, Mode, MoveDriverConfig, SliceExit, SwapDriverConfig, TenantState, Vm, VmConfig,
};
use proptest::prelude::*;

/// Pointer-chasing list + two worker threads + repeated traversal:
/// exercises heap metadata, escapes, parked threads, and buffered
/// output in the capsule.
const WORKLOAD_SRC: &str = "
    struct node { int v; struct node* n; };
    int work(int lo) {
        int s = 0;
        for (int i = lo; i < lo + 4000; i += 1) { s += i; }
        return s;
    }
    int main() {
        struct node* head = (struct node*) null;
        for (int i = 0; i < 400; i += 1) {
            struct node* x = (struct node*) malloc(sizeof(struct node));
            x->v = i; x->n = head; head = x;
        }
        int t0 = spawn(work, 0);
        int t1 = spawn(work, 4000);
        int got = 0;
        for (int pass = 0; pass < 40; pass += 1) {
            struct node* c = head;
            got = 0;
            while (c != null) { got += c->v; c = c->n; }
        }
        print_i64(got);
        return got + join(t0) + join(t1);
    }
";

fn workload() -> Module {
    let module = carat_frontend::compile_cm("capsule_workload", WORKLOAD_SRC).expect("compiles");
    CaratCompiler::new(CompileOptions::default())
        .compile(module)
        .expect("instruments")
        .module
}

fn config(mode: Mode, engine: Engine) -> VmConfig {
    VmConfig {
        mode,
        engine,
        move_driver: Some(MoveDriverConfig {
            period_cycles: 30_000,
            max_moves: 30,
        }),
        swap_driver: Some(SwapDriverConfig {
            period_cycles: 70_000,
            max_swaps: 10,
        }),
        ..VmConfig::default()
    }
}

/// Outcome of running `slices` warm-up quanta: still mid-run, or the
/// workload already finished (possible under generous proptest budgets).
#[allow(clippy::large_enum_variant)]
enum Boundary {
    Running(Vm),
    Done(i64, carat_vm::PerfCounters),
}

/// Run `slices` quanta of `budget` cycles each.
fn warm_up(cfg: VmConfig, slices: u64, budget: u64) -> Boundary {
    let mut vm = Vm::new(workload(), cfg).expect("loads");
    vm.start().expect("starts");
    for _ in 0..slices {
        match vm.run_slice(budget).expect("no faults armed") {
            SliceExit::Finished(ret) => {
                let r = vm.finish_run(ret);
                return Boundary::Done(r.ret, r.counters);
            }
            SliceExit::Quantum => {}
        }
    }
    Boundary::Running(vm)
}

/// Like [`warm_up`] but asserts the workload is still mid-run; the
/// deterministic tests pick budgets small enough for this to hold.
fn mid_run(cfg: VmConfig, slices: u64, budget: u64) -> Vm {
    match warm_up(cfg, slices, budget) {
        Boundary::Running(vm) => vm,
        Boundary::Done(..) => panic!("workload finished during warm-up; shrink the budget"),
    }
}

/// Externalize → rehydrate using the host-side handles the capsule
/// excludes, the way the fleet scheduler would.
fn round_trip(state: &TenantState) -> (Vec<u8>, TenantState) {
    let bytes = state.externalize();
    let cfg = state.config().clone();
    let module = state.image().module.clone();
    let program = state.program().clone();
    let back =
        TenantState::rehydrate(&bytes, cfg, module, program).expect("intact image rehydrates");
    (bytes, back)
}

/// Drive a VM to completion, returning `(ret, counters)`.
fn finish(mut vm: Vm, budget: u64) -> (i64, carat_vm::PerfCounters) {
    loop {
        match vm.run_slice(budget).expect("workload is fault-free") {
            SliceExit::Finished(ret) => {
                let r = vm.finish_run(ret);
                return (r.ret, r.counters);
            }
            SliceExit::Quantum => {}
        }
    }
}

#[test]
fn externalize_is_deterministic() {
    let vm = mid_run(config(Mode::Carat, Engine::Fused), 3, 20_000);
    let (_, _, state) = vm.into_tenant();
    assert_eq!(
        state.externalize(),
        state.externalize(),
        "same tenant, same bytes"
    );
}

#[test]
fn round_trip_preserves_bytes_footprint_and_counters() {
    let vm = mid_run(config(Mode::Carat, Engine::Fused), 4, 15_000);
    let (_, _, state) = vm.into_tenant();
    let (bytes, back) = round_trip(&state);
    assert_eq!(
        back.externalize(),
        bytes,
        "re-externalize is byte-identical"
    );
    assert_eq!(back.footprint_bytes(), state.footprint_bytes());
    assert_eq!(back.counters(), state.counters());
    assert_eq!(back.image().globals, state.image().globals);
}

#[test]
fn rehydrated_tenant_resumes_bit_identically() {
    let budget = 12_000;
    for engine in [Engine::Fused, Engine::Decoded, Engine::Reference] {
        let cfg = config(Mode::Carat, engine);
        let control = finish(mid_run(cfg.clone(), 3, budget), budget);

        let vm = mid_run(cfg, 3, budget);
        let (kernel, table, state) = vm.into_tenant();
        let (_, back) = round_trip(&state);
        let resumed = finish(Vm::from_tenant(kernel, table, back), budget);
        assert_eq!(resumed.0, control.0, "{engine:?}: same result");
        assert_eq!(resumed.1, control.1, "{engine:?}: same counters");
    }
}

#[test]
fn swap_device_round_trip_verifies_checksum() {
    let budget = 10_000;
    let cfg = config(Mode::Carat, Engine::Fused);
    let control = finish(mid_run(cfg.clone(), 2, budget), budget);

    let vm = mid_run(cfg, 2, budget);
    let (mut kernel, table, state) = vm.into_tenant();
    let bytes = state.externalize();
    let cfg = state.config().clone();
    let module = state.image().module.clone();
    let program = state.program().clone();
    drop(state);

    // Through the simulated swap device: checksummed on write, verified
    // and consumed on read.
    let slot = kernel.capsule_write(bytes.clone()).expect("write accepted");
    assert_eq!(kernel.capsule_count(), 1);
    let read_back = kernel.capsule_read(slot).expect("checksum verifies");
    assert_eq!(read_back, bytes);
    assert_eq!(kernel.capsule_count(), 0, "read consumed the slot");

    let back = TenantState::rehydrate(&read_back, cfg, module, program).expect("rehydrates");
    let resumed = finish(Vm::from_tenant(kernel, table, back), budget);
    assert_eq!((resumed.0, &resumed.1), (control.0, &control.1));
}

#[test]
fn corrupted_capsule_is_a_typed_checksum_error() {
    let vm = mid_run(config(Mode::Carat, Engine::Fused), 2, 10_000);
    let (mut kernel, _table, state) = vm.into_tenant();
    let slot = kernel
        .capsule_write(state.externalize())
        .expect("write accepted");
    assert!(kernel.debug_corrupt_capsule(slot));
    let err = kernel.capsule_read(slot).expect_err("corruption detected");
    assert_eq!(err, KernelError::CapsuleCorrupt { slot });
    assert!(err.is_recoverable(), "one lost tenant, not a fleet panic");
}

#[test]
fn damaged_images_rehydrate_to_none_never_panic() {
    let vm = mid_run(config(Mode::Traditional, Engine::Fused), 3, 10_000);
    let (_, _, state) = vm.into_tenant();
    let bytes = state.externalize();
    let cfg = state.config().clone();
    let module = state.image().module.clone();
    let program = state.program().clone();

    // Truncations at every prefix length (sampled), bit flips through
    // the header and structural regions.
    for cut in (0..bytes.len().min(256)).step_by(7) {
        assert!(
            TenantState::rehydrate(&bytes[..cut], cfg.clone(), module.clone(), program.clone())
                .is_none(),
            "truncated image at {cut} must not rehydrate"
        );
    }
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xFF;
    assert!(
        TenantState::rehydrate(&wrong_magic, cfg.clone(), module.clone(), program.clone())
            .is_none()
    );
    // Trailing garbage is rejected (the image must parse exactly).
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(TenantState::rehydrate(&padded, cfg, module, program).is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any slice boundary, quantum size, and mode/engine mix: the
    /// capsule round trip is byte-exact and the rehydrated tenant
    /// finishes bit-identically to one that never left memory.
    #[test]
    fn capsule_round_trip_any_boundary(
        slices in 1u64..6,
        budget in 4_000u64..30_000,
        traditional in proptest::bool::ANY,
        fused in proptest::bool::ANY,
    ) {
        let mode = if traditional { Mode::Traditional } else { Mode::Carat };
        let engine = if fused { Engine::Fused } else { Engine::Decoded };
        let cfg = config(mode, engine);

        match (warm_up(cfg.clone(), slices, budget), warm_up(cfg, slices, budget)) {
            (Boundary::Running(control_vm), Boundary::Running(vm)) => {
                let control = finish(control_vm, budget);
                let (kernel, table, state) = vm.into_tenant();
                let (bytes, back) = round_trip(&state);
                prop_assert_eq!(back.externalize(), bytes);
                prop_assert_eq!(back.footprint_bytes(), state.footprint_bytes());
                let resumed = finish(Vm::from_tenant(kernel, table, back), budget);
                prop_assert_eq!(resumed.0, control.0);
                prop_assert_eq!(resumed.1, control.1);
            }
            // Generous budget: the workload finished during warm-up in
            // both runs; determinism still has to hold.
            (Boundary::Done(r0, c0), Boundary::Done(r1, c1)) => {
                prop_assert_eq!(r0, r1);
                prop_assert_eq!(c0, c1);
            }
            _ => prop_assert!(false, "identical runs disagreed on completion"),
        }
    }
}
