//! The world-stop protocol (paper Figure 8).
//!
//! On a kernel change request, every thread is signalled, dumps its
//! register state, and synchronizes at a barrier before the runtime
//! negotiates and patches; a second barrier precedes resumption. This
//! module is the protocol state machine the VM and kernel drive; it
//! validates step ordering and accounts the per-thread costs.
//!
//! An episode that cannot make progress (a step out of order, a thread
//! that never reaches its handler) is not allowed to poison the machine:
//! [`WorldStop::abort`] releases the stopped threads and returns the
//! state machine to idle so a fresh episode can be started.

use crate::cost::CostModel;
use std::error::Error;
use std::fmt;

/// Protocol steps, in legal order (numbers follow Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// 1 — kernel received a change request.
    RequestReceived,
    /// 2 — signals delivered to all threads.
    SignalsSent,
    /// 3/4 — every thread entered its handler and dumped registers.
    HandlersEntered,
    /// 5 — first barrier passed ("world stopped").
    Barrier1,
    /// 5/6 — move negotiated with the kernel (page-set expansion).
    Negotiated,
    /// 6/7 — affected allocations determined and patches computed.
    PatchesComputed,
    /// 8 — escapes and registers patched.
    Patched,
    /// 10 — data moved.
    Moved,
    /// 11 — second barrier passed.
    Barrier2,
    /// 12 — kernel notified; threads resumed.
    Completed,
    /// The episode was interrupted: stopped threads were released and the
    /// machine returned to idle without a change taking effect.
    Aborted,
}

/// Ordering violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// What was attempted.
    pub attempted: Step,
    /// What the protocol expected next.
    pub expected: Step,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "protocol violation: attempted {:?}, expected {:?}",
            self.attempted, self.expected
        )
    }
}

impl Error for ProtocolError {}

/// Why a world-stop episode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldStopError {
    /// A step was driven out of order.
    Protocol(ProtocolError),
    /// A thread never reached its signal handler (stall/timeout): only
    /// `entered` of `threads` threads arrived before the kernel gave up.
    Stalled {
        /// Threads that did reach their handler.
        entered: usize,
        /// Threads that were signalled.
        threads: usize,
    },
}

impl fmt::Display for WorldStopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldStopError::Protocol(e) => write!(f, "{e}"),
            WorldStopError::Stalled { entered, threads } => write!(
                f,
                "world-stop stalled: {entered}/{threads} threads reached their handlers"
            ),
        }
    }
}

impl Error for WorldStopError {}

impl From<ProtocolError> for WorldStopError {
    fn from(e: ProtocolError) -> WorldStopError {
        WorldStopError::Protocol(e)
    }
}

/// One world-stop episode over `threads` threads.
#[derive(Debug, Clone)]
pub struct WorldStop {
    threads: usize,
    entered: usize,
    log: Vec<Step>,
    /// Cycles charged to the episode so far.
    pub cycles: u64,
}

impl WorldStop {
    /// Begin an episode for a process with `threads` threads.
    pub fn new(threads: usize) -> WorldStop {
        WorldStop {
            threads,
            entered: 0,
            log: vec![Step::RequestReceived],
            cycles: 0,
        }
    }

    /// Steps taken so far.
    pub fn log(&self) -> &[Step] {
        &self.log
    }

    fn expect_last(&self, want: Step, attempted: Step) -> Result<(), WorldStopError> {
        if self.log.last() == Some(&want) {
            Ok(())
        } else {
            Err(WorldStopError::Protocol(ProtocolError {
                attempted,
                expected: want,
            }))
        }
    }

    /// Kernel signals every thread (step 2). Legal from idle — either a
    /// fresh episode or one returned to idle by [`WorldStop::abort`].
    pub fn signal_all(&mut self, cost: &CostModel) -> Result<(), WorldStopError> {
        if self.log.last() == Some(&Step::Aborted) {
            // Restarting after an abort begins a new request.
            self.log.push(Step::RequestReceived);
        }
        self.expect_last(Step::RequestReceived, Step::SignalsSent)?;
        self.cycles += self.threads as u64 * cost.move_signal_per_thread;
        self.log.push(Step::SignalsSent);
        Ok(())
    }

    /// One thread enters its handler and dumps registers (steps 3–4).
    /// When the last thread arrives, the state advances.
    pub fn thread_entered(&mut self) -> Result<bool, WorldStopError> {
        self.expect_last(Step::SignalsSent, Step::HandlersEntered)
            .or_else(|e| {
                // Threads trickle in; allowed while still in SignalsSent.
                if self.entered < self.threads && self.log.last() == Some(&Step::SignalsSent) {
                    Ok(())
                } else {
                    Err(e)
                }
            })?;
        self.entered += 1;
        if self.entered == self.threads {
            self.log.push(Step::HandlersEntered);
            return Ok(true);
        }
        Ok(false)
    }

    /// All threads synchronize (step 5, first barrier).
    pub fn barrier1(&mut self, cost: &CostModel) -> Result<(), WorldStopError> {
        self.expect_last(Step::HandlersEntered, Step::Barrier1)?;
        self.cycles += self.threads as u64 * cost.move_barrier_per_thread;
        self.log.push(Step::Barrier1);
        Ok(())
    }

    /// Negotiation finished (steps 5–6).
    pub fn negotiated(&mut self) -> Result<(), WorldStopError> {
        self.expect_last(Step::Barrier1, Step::Negotiated)?;
        self.log.push(Step::Negotiated);
        Ok(())
    }

    /// Affected allocations found, patches computed (steps 6–7).
    pub fn patches_computed(&mut self) -> Result<(), WorldStopError> {
        self.expect_last(Step::Negotiated, Step::PatchesComputed)?;
        self.log.push(Step::PatchesComputed);
        Ok(())
    }

    /// Escapes + registers patched (step 8).
    pub fn patched(&mut self) -> Result<(), WorldStopError> {
        self.expect_last(Step::PatchesComputed, Step::Patched)?;
        self.log.push(Step::Patched);
        Ok(())
    }

    /// Data movement done (step 10).
    pub fn moved(&mut self) -> Result<(), WorldStopError> {
        self.expect_last(Step::Patched, Step::Moved)?;
        self.log.push(Step::Moved);
        Ok(())
    }

    /// Second barrier (step 11).
    pub fn barrier2(&mut self, cost: &CostModel) -> Result<(), WorldStopError> {
        self.expect_last(Step::Moved, Step::Barrier2)?;
        self.cycles += self.threads as u64 * cost.move_barrier_per_thread;
        self.log.push(Step::Barrier2);
        Ok(())
    }

    /// Kernel notified, threads resume (step 12).
    pub fn complete(&mut self) -> Result<(), WorldStopError> {
        self.expect_last(Step::Barrier2, Step::Completed)?;
        self.log.push(Step::Completed);
        Ok(())
    }

    /// Abort an in-flight episode: release every thread that already
    /// stopped (charging a release barrier for them) and return the state
    /// machine to idle. After an abort, [`WorldStop::signal_all`] starts a
    /// fresh episode on the same machine. A no-op on a completed episode.
    pub fn abort(&mut self, cost: &CostModel) {
        if self.is_complete() || self.is_aborted() {
            return;
        }
        // Threads already parked in their handlers pass a release barrier
        // on the way out.
        self.cycles += self.entered as u64 * cost.move_barrier_per_thread;
        self.entered = 0;
        self.log.push(Step::Aborted);
    }

    /// Whether the episode finished.
    pub fn is_complete(&self) -> bool {
        self.log.last() == Some(&Step::Completed)
    }

    /// Whether the episode was aborted (and is back to idle).
    pub fn is_aborted(&self) -> bool {
        self.log.last() == Some(&Step::Aborted)
    }

    /// Drive a full episode, propagating any protocol failure.
    pub fn try_run_all(threads: usize, cost: &CostModel) -> Result<WorldStop, WorldStopError> {
        let mut w = WorldStop::new(threads);
        w.signal_all(cost)?;
        for _ in 0..threads {
            w.thread_entered()?;
        }
        w.barrier1(cost)?;
        w.negotiated()?;
        w.patches_computed()?;
        w.patched()?;
        w.moved()?;
        w.barrier2(cost)?;
        w.complete()?;
        Ok(w)
    }

    /// Drive a full episode in one call (used when the caller needs the
    /// costs but not the intermediate states).
    pub fn run_all(threads: usize, cost: &CostModel) -> WorldStop {
        WorldStop::try_run_all(threads, cost).expect("fresh episode cannot violate the protocol")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_episode_in_order() {
        let cost = CostModel::default();
        let w = WorldStop::run_all(4, &cost);
        assert!(w.is_complete());
        assert_eq!(w.log().first(), Some(&Step::RequestReceived));
        assert_eq!(w.log().last(), Some(&Step::Completed));
        assert_eq!(
            w.cycles,
            4 * cost.move_signal_per_thread + 2 * 4 * cost.move_barrier_per_thread
        );
    }

    #[test]
    fn out_of_order_is_rejected() {
        let cost = CostModel::default();
        let mut w = WorldStop::new(2);
        assert!(w.barrier1(&cost).is_err(), "barrier before signals");
        w.signal_all(&cost).unwrap();
        assert!(w.negotiated().is_err(), "negotiate before barrier");
        assert!(!w.thread_entered().unwrap());
        assert!(w.barrier1(&cost).is_err(), "barrier before all threads in");
        assert!(w.thread_entered().unwrap());
        w.barrier1(&cost).unwrap();
        assert!(w.patched().is_err(), "patch before negotiate+compute");
    }

    #[test]
    fn errors_are_typed_protocol_violations() {
        let cost = CostModel::default();
        let mut w = WorldStop::new(1);
        let err = w.barrier1(&cost).unwrap_err();
        match err {
            WorldStopError::Protocol(p) => {
                assert_eq!(p.attempted, Step::Barrier1);
                assert_eq!(p.expected, Step::HandlersEntered);
            }
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn single_thread_episode() {
        let cost = CostModel::default();
        let w = WorldStop::run_all(1, &cost);
        assert!(w.is_complete());
    }

    #[test]
    fn costs_scale_with_threads() {
        let cost = CostModel::default();
        let w1 = WorldStop::run_all(1, &cost);
        let w8 = WorldStop::run_all(8, &cost);
        assert!(w8.cycles > w1.cycles);
        assert_eq!(w8.cycles, 8 * w1.cycles);
    }

    #[test]
    fn abort_returns_to_idle_and_allows_restart() {
        let cost = CostModel::default();
        let mut w = WorldStop::new(3);
        w.signal_all(&cost).unwrap();
        assert!(!w.thread_entered().unwrap());
        // Third thread stalls; the kernel gives up.
        w.abort(&cost);
        assert!(w.is_aborted());
        assert!(!w.is_complete());
        // The same machine can start over and complete cleanly.
        w.signal_all(&cost).unwrap();
        for _ in 0..3 {
            w.thread_entered().unwrap();
        }
        w.barrier1(&cost).unwrap();
        w.negotiated().unwrap();
        w.patches_computed().unwrap();
        w.patched().unwrap();
        w.moved().unwrap();
        w.barrier2(&cost).unwrap();
        w.complete().unwrap();
        assert!(w.is_complete());
    }

    #[test]
    fn abort_charges_release_barrier_for_entered_threads() {
        let cost = CostModel::default();
        let mut w = WorldStop::new(4);
        w.signal_all(&cost).unwrap();
        let signalled = w.cycles;
        w.thread_entered().unwrap();
        w.thread_entered().unwrap();
        w.abort(&cost);
        assert_eq!(w.cycles, signalled + 2 * cost.move_barrier_per_thread);
    }

    #[test]
    fn abort_on_completed_episode_is_noop() {
        let cost = CostModel::default();
        let mut w = WorldStop::run_all(2, &cost);
        let cycles = w.cycles;
        w.abort(&cost);
        assert!(w.is_complete());
        assert_eq!(w.cycles, cycles);
    }
}
