//! Parallel move engine benchmark: worker-count sweep {1,2,4,8} over an
//! escape-heavy move fixture, plus a batched-world-stop sweep comparing
//! one coalesced stop against per-move stops.
//!
//! Three claims are checked, two of them hard gates (non-zero exit):
//!
//! 1. **Divergence gate** — memory digest, registers, allocation table,
//!    and the full `MoveOutcome` (modeled cycles included) are
//!    bit-identical at every host worker count, and the batched stop
//!    equals the sequential stops bit-for-bit.
//! 2. **Modeled speedup gate** — the cost model's parallel patch
//!    accounting (`ceil(serial/workers) + fork/join`) shows ≥2× fewer
//!    patch cycles at 4 workers on this escape-heavy plan.
//! 3. **Host wall-clock** — ns/move per worker count is reported
//!    (speedup expected at `--scale full`, where the patch scan dwarfs
//!    thread fork/join; small fixtures legitimately WARN).
//!
//! Usage: `move_parallel [--scale test|small|full] [--out PATH]`.
//! Writes `BENCH_moves.json` by default.

use std::time::Instant;

use carat_bench::{print_table, scale_from_args};
use carat_kernel::{PhysicalMemory, SimKernel};
use carat_runtime::{
    perform_move_workers, set_parallel_min_cells, AllocKind, AllocationTable, CostModel, MemAccess,
    MoveOutcome, MoveRequest,
};
use carat_workloads::Scale;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const ALLOC_SIZE: u64 = 0x400;
const ALLOC_BASE: u64 = 0x10000;
const ARENA_BASE: u64 = 0x200000;
const MOVE_DST: u64 = 0x400000;
const MEM_SIZE: u64 = 16 << 20;

struct Dims {
    n_allocs: usize,
    cells_per_alloc: usize,
    reps: usize,
    batch_sizes: &'static [usize],
}

fn dims(scale: Scale) -> Dims {
    match scale {
        Scale::Test => Dims {
            n_allocs: 8,
            cells_per_alloc: 16,
            reps: 3,
            batch_sizes: &[1, 2],
        },
        Scale::Small => Dims {
            n_allocs: 64,
            cells_per_alloc: 32,
            reps: 5,
            batch_sizes: &[1, 2, 4],
        },
        Scale::Full => Dims {
            n_allocs: 512,
            cells_per_alloc: 256,
            reps: 5,
            batch_sizes: &[1, 2, 4, 8],
        },
    }
}

/// xorshift64: deterministic pointer-target jitter.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Escape-heavy fixture: contiguous allocations from `base`, each with
/// `cells_per_alloc` external pointer cells in a dense arena plus one
/// internal cross-pointer, all registered as escapes.
fn build_fixture(
    mem: &mut PhysicalMemory,
    base: u64,
    arena: u64,
    n_allocs: usize,
    cells_per_alloc: usize,
    seed: u64,
) -> AllocationTable {
    let mut t = AllocationTable::new();
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut cursor = arena;
    for i in 0..n_allocs {
        let start = base + i as u64 * ALLOC_SIZE;
        t.track_alloc(start, ALLOC_SIZE, AllocKind::Heap);
        for w in 0..(ALLOC_SIZE / 8) {
            mem.write_u64(start + w * 8, (i as u64) << 32 | w);
        }
        for _ in 0..cells_per_alloc {
            let target = start + (xorshift(&mut rng) % (ALLOC_SIZE / 8)) * 8;
            mem.write_u64(cursor, target);
            t.track_escape(cursor);
            cursor += 8;
        }
        let cell = start + ALLOC_SIZE - 8;
        let target = base + ((i + 1) % n_allocs) as u64 * ALLOC_SIZE + 0x10;
        mem.write_u64(cell, target);
        t.track_escape(cell);
    }
    t.flush_escapes(|c| mem.read_u64(c));
    t
}

fn fixture_regs(base: u64, n_allocs: usize) -> Vec<u64> {
    vec![
        base + 0x10,
        0xdead_beef,
        base + (n_allocs as u64 - 1) * ALLOC_SIZE + 8,
        0x50,
    ]
}

/// FNV-1a digest over memory, registers, and the table snapshot — the
/// machine state a guest could observe.
fn digest(mem_bytes: &[u8], regs: &[u64], table: &AllocationTable) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for &b in mem_bytes {
        eat(b);
    }
    for r in regs {
        for b in r.to_le_bytes() {
            eat(b);
        }
    }
    for (start, len, escapes, ever) in table.snapshot() {
        for v in [start, len, escapes as u64, ever] {
            for b in v.to_le_bytes() {
                eat(b);
            }
        }
    }
    h
}

struct WorkerRun {
    workers: usize,
    ns_per_move: f64,
    modeled_patch_cycles: u64,
    digest: u64,
    outcome: MoveOutcome,
}

/// One worker-sweep arm: rebuild the fixture, take one digest-producing
/// move, then time `reps` back-and-forth moves for the host figure. The
/// cost model's `patch_workers` tracks the host worker count, as
/// `SimKernel::set_move_workers` would configure it.
fn run_workers(d: &Dims, workers: usize) -> WorkerRun {
    let len = (d.n_allocs as u64 * ALLOC_SIZE).div_ceil(0x1000) * 0x1000;
    let cost = CostModel {
        patch_workers: workers as u64,
        ..CostModel::default()
    };
    let mut mem = PhysicalMemory::new(MEM_SIZE);
    let mut table = build_fixture(
        &mut mem,
        ALLOC_BASE,
        ARENA_BASE,
        d.n_allocs,
        d.cells_per_alloc,
        42,
    );
    let mut regs = fixture_regs(ALLOC_BASE, d.n_allocs);
    let first = perform_move_workers(
        &mut table,
        &mut mem,
        &mut regs,
        MoveRequest {
            src: ALLOC_BASE,
            len,
            dst: MOVE_DST,
        },
        &cost,
        workers,
    );
    let dg = digest(mem.read_bytes(0, MEM_SIZE), &regs, &table);
    // Host timing: bounce the region between the two locations.
    let (mut here, mut there) = (MOVE_DST, ALLOC_BASE);
    let mut best = f64::INFINITY;
    for _ in 0..d.reps {
        let t0 = Instant::now();
        perform_move_workers(
            &mut table,
            &mut mem,
            &mut regs,
            MoveRequest {
                src: here,
                len,
                dst: there,
            },
            &cost,
            workers,
        );
        best = best.min(t0.elapsed().as_nanos() as f64);
        std::mem::swap(&mut here, &mut there);
    }
    WorkerRun {
        workers,
        ns_per_move: best,
        modeled_patch_cycles: first.cost.patch_gen_exec,
        digest: dg,
        outcome: first,
    }
}

struct CrossoverRun {
    cells: usize,
    ns_serial: f64,
    ns_parallel: f64,
}

/// One crossover point: the same bounce-move fixture timed with the
/// serial apply and with the 4-worker pooled apply, the parallel-path
/// threshold forced to 1 so small plans take the pool too. The
/// difference isolates per-apply dispatch overhead (exactly, on a
/// single-core host, where the pool cannot win any scan time back) —
/// the number `PARALLEL_MIN_CELLS` is derived from.
fn run_crossover(n_allocs: usize, cells_per_alloc: usize, reps: usize) -> CrossoverRun {
    let len = (n_allocs as u64 * ALLOC_SIZE).div_ceil(0x1000) * 0x1000;
    let cost = CostModel::default();
    let time_arm = |workers: usize| {
        let mut mem = PhysicalMemory::new(MEM_SIZE);
        let mut table = build_fixture(
            &mut mem,
            ALLOC_BASE,
            ARENA_BASE,
            n_allocs,
            cells_per_alloc,
            42,
        );
        let mut regs = fixture_regs(ALLOC_BASE, n_allocs);
        let (mut here, mut there) = (ALLOC_BASE, MOVE_DST);
        // Warm the pool (and caches) outside the timed window.
        perform_move_workers(
            &mut table,
            &mut mem,
            &mut regs,
            MoveRequest {
                src: here,
                len,
                dst: there,
            },
            &cost,
            workers,
        );
        std::mem::swap(&mut here, &mut there);
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            perform_move_workers(
                &mut table,
                &mut mem,
                &mut regs,
                MoveRequest {
                    src: here,
                    len,
                    dst: there,
                },
                &cost,
                workers,
            );
            best = best.min(t0.elapsed().as_nanos() as f64);
            std::mem::swap(&mut here, &mut there);
        }
        best
    };
    let ns_serial = time_arm(1);
    let prev = set_parallel_min_cells(1);
    let ns_parallel = time_arm(4);
    set_parallel_min_cells(prev);
    CrossoverRun {
        cells: n_allocs * (cells_per_alloc + 1),
        ns_serial,
        ns_parallel,
    }
}

struct BatchRun {
    batch: usize,
    stop_cycles_sequential: u64,
    stop_cycles_batched: u64,
    register_patch_sequential: u64,
    register_patch_batched: u64,
    digests_equal: bool,
}

/// Kernel fixture for the batch sweep: `k` single-page groups of
/// allocations, each its own pending move. Frames come from the buddy so
/// destinations never collide with fixture data.
fn kernel_fixture(d: &Dims, k: usize) -> (SimKernel, AllocationTable, Vec<u64>, Vec<u64>) {
    let mut kernel = SimKernel::new(MEM_SIZE);
    let page = kernel.cost.page_size;
    let mut pages = Vec::with_capacity(k);
    for _ in 0..k {
        pages.push(kernel.buddy.alloc_pages(1).expect("fixture frame"));
    }
    let arena_pages = (k * 4 * (d.cells_per_alloc + 1)) as u64 * 8 / page + 1;
    let arena = kernel.buddy.alloc_pages(arena_pages).expect("arena frames");
    let mut table = AllocationTable::new();
    let mut rng = 7u64;
    let mut cursor = arena;
    let mut regs = Vec::new();
    for &p in &pages {
        // Four quarter-page allocations fill each group page exactly.
        for a in 0..4u64 {
            let start = p + a * ALLOC_SIZE;
            table.track_alloc(start, ALLOC_SIZE, AllocKind::Heap);
            for w in 0..(ALLOC_SIZE / 8) {
                kernel.mem.write_u64(start + w * 8, p ^ (a << 32 | w));
            }
            for _ in 0..d.cells_per_alloc {
                let target = start + (xorshift(&mut rng) % (ALLOC_SIZE / 8)) * 8;
                kernel.mem.write_u64(cursor, target);
                table.track_escape(cursor);
                cursor += 8;
            }
        }
        regs.push(p + 0x18);
    }
    regs.push(0xdead_beef);
    let m = &kernel.mem;
    table.flush_escapes(|c| m.read_u64(c));
    (kernel, table, regs, pages)
}

/// One batch-sweep arm: the same `k` page moves issued as one coalesced
/// world-stop and as `k` per-move stops, on identically built kernels.
fn run_batch(d: &Dims, k: usize) -> BatchRun {
    let threads = 4;

    let (mut kern_s, mut table_s, mut regs_s, pages) = kernel_fixture(d, k);
    let (mut stop_seq, mut reg_seq) = (0u64, 0u64);
    for &p in &pages {
        let (world, outcome) = kern_s
            .move_pages(&mut table_s, &mut regs_s, p, 1, threads)
            .expect("sequential move");
        stop_seq += world.cycles;
        reg_seq += outcome.cost.register_patch;
    }
    let dg_seq = digest(kern_s.mem.read_bytes(0, MEM_SIZE), &regs_s, &table_s);

    let (mut kern_b, mut table_b, mut regs_b, pages_b) = kernel_fixture(d, k);
    let reqs: Vec<(u64, u64)> = pages_b.iter().map(|&p| (p, 1)).collect();
    let (world, outcomes) = kern_b
        .move_pages_batch(&mut table_b, &mut regs_b, &reqs, threads)
        .expect("batched move");
    let stop_bat = world.cycles;
    let reg_bat: u64 = outcomes.iter().map(|o| o.cost.register_patch).sum();
    let dg_bat = digest(kern_b.mem.read_bytes(0, MEM_SIZE), &regs_b, &table_b);

    BatchRun {
        batch: k,
        stop_cycles_sequential: stop_seq,
        stop_cycles_batched: stop_bat,
        register_patch_sequential: reg_seq,
        register_patch_batched: reg_bat,
        digests_equal: dg_seq == dg_bat,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_moves.json".to_string());
    let scale = scale_from_args();
    let d = dims(scale);
    let cells = d.n_allocs * (d.cells_per_alloc + 1);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Parallel move engine ({scale:?} scale: {} allocations, {cells} escape cells, \
         {host_cores} host core(s))\n",
        d.n_allocs
    );

    // --- Worker sweep ---
    let runs: Vec<WorkerRun> = WORKER_COUNTS.iter().map(|&w| run_workers(&d, w)).collect();
    let base = &runs[0];
    let mut diverged = false;
    for r in &runs[1..] {
        if r.digest != base.digest {
            eprintln!(
                "FAIL: machine state diverged at {} workers (digest {:#x} != {:#x})",
                r.workers, r.digest, base.digest
            );
            diverged = true;
        }
        // Modeled cycles legitimately differ (patch_workers tracks the
        // sweep); everything else in the outcome must not.
        let (mut a, mut b) = (r.outcome.clone(), base.outcome.clone());
        a.cost.patch_gen_exec = 0;
        b.cost.patch_gen_exec = 0;
        if a != b {
            eprintln!("FAIL: move outcome diverged at {} workers", r.workers);
            diverged = true;
        }
    }
    let mut table = Vec::new();
    for r in &runs {
        table.push(vec![
            format!("{}", r.workers),
            format!("{}", r.modeled_patch_cycles),
            format!(
                "{:.2}x",
                base.modeled_patch_cycles as f64 / r.modeled_patch_cycles.max(1) as f64
            ),
            format!("{:.0}", r.ns_per_move),
            format!("{:.2}x", base.ns_per_move / r.ns_per_move),
        ]);
    }
    print_table(
        &[
            "workers",
            "modeled patch cyc",
            "modeled speedup",
            "host ns/move",
            "host speedup",
        ],
        &table,
    );
    let modeled4 = runs
        .iter()
        .find(|r| r.workers == 4)
        .expect("sweep includes 4")
        .modeled_patch_cycles;
    let modeled_ok = base.modeled_patch_cycles >= 2 * modeled4;
    let host4 = runs.iter().find(|r| r.workers == 4).unwrap().ns_per_move;
    let host_speedup4 = base.ns_per_move / host4;
    println!(
        "\nModeled patch cycles, 1w -> 4w: {} -> {} ({:.2}x, target >= 2x): {}",
        base.modeled_patch_cycles,
        modeled4,
        base.modeled_patch_cycles as f64 / modeled4.max(1) as f64,
        if modeled_ok { "PASS" } else { "FAIL" }
    );
    // Host timing is reported, not gated: it depends on the machine
    // running the benchmark (on a single-core host, threads can only
    // lose). The modeled cycles above are the deterministic claim.
    let host_verdict = if host_speedup4 > 1.0 {
        "PASS".to_string()
    } else if host_cores < 4 {
        format!("WARN (only {host_cores} host core(s); parallel speedup needs real cores)")
    } else {
        "WARN (fixture too small for host threads to pay off)".to_string()
    };
    println!("Host wall-clock, 1w -> 4w: {host_speedup4:.2}x speedup: {host_verdict}");

    // --- Crossover sweep: per-apply dispatch overhead of the pooled
    // parallel path, measured against the serial apply on identical
    // fixtures. On a single-core host the delta IS the dispatch cost;
    // on a multi-core host large plans go negative (the pool wins).
    println!();
    let xover_reps = if matches!(scale, Scale::Test) { 3 } else { 7 };
    let xruns: Vec<CrossoverRun> = [16usize, 32, 64, 128, 256]
        .iter()
        .map(|&n| run_crossover(n, 32, xover_reps))
        .collect();
    let mut xtable = Vec::new();
    for x in &xruns {
        xtable.push(vec![
            format!("{}", x.cells),
            format!("{:.0}", x.ns_serial),
            format!("{:.0}", x.ns_parallel),
            format!("{:+.1}", (x.ns_parallel - x.ns_serial) / 1000.0),
        ]);
    }
    print_table(
        &[
            "plan cells",
            "serial ns/apply",
            "pooled-4w ns/apply",
            "dispatch delta µs",
        ],
        &xtable,
    );
    // The fixed dispatch cost is the intercept of delta-vs-cells: on a
    // single-core host the delta also carries a per-cell serialization
    // term (worker scans cannot overlap, and cells bounce between
    // caches), which the slope absorbs; on a multi-core host the slope
    // goes negative as the pool wins scan time back. Either way the
    // intercept estimates the constant per-apply overhead.
    let n = xruns.len() as f64;
    let (sc, sd, scd, scc) = xruns.iter().fold((0.0, 0.0, 0.0, 0.0), |acc, x| {
        let (c, d) = (x.cells as f64, x.ns_parallel - x.ns_serial);
        (acc.0 + c, acc.1 + d, acc.2 + c * d, acc.3 + c * c)
    });
    let slope = (n * scd - sc * sd) / (n * scc - sc * sc);
    let dispatch_ns = ((sd - slope * sc) / n).max(0.0);
    let per_cell = xruns.last().unwrap().ns_serial / xruns.last().unwrap().cells as f64;
    let derived = dispatch_ns / (per_cell * 0.75);
    println!(
        "Pool dispatch overhead (fit intercept): {:.1} µs; serial scan {:.1} ns/cell; \
         derived 4-worker break-even ≈ {:.0} cells (PARALLEL_MIN_CELLS = {})",
        dispatch_ns / 1000.0,
        per_cell,
        derived,
        carat_runtime::PARALLEL_MIN_CELLS,
    );

    // --- Batch sweep ---
    println!();
    let batches: Vec<BatchRun> = d.batch_sizes.iter().map(|&k| run_batch(&d, k)).collect();
    let mut batch_diverged = false;
    let mut amortized = true;
    let mut btable = Vec::new();
    for b in &batches {
        if !b.digests_equal {
            eprintln!(
                "FAIL: batched stop diverged from sequential at batch={}",
                b.batch
            );
            batch_diverged = true;
        }
        if b.batch >= 2
            && (b.stop_cycles_batched >= b.stop_cycles_sequential
                || b.register_patch_batched >= b.register_patch_sequential)
        {
            amortized = false;
        }
        btable.push(vec![
            format!("{}", b.batch),
            format!("{}", b.stop_cycles_sequential),
            format!("{}", b.stop_cycles_batched),
            format!("{}", b.register_patch_sequential),
            format!("{}", b.register_patch_batched),
            (if b.digests_equal { "yes" } else { "NO" }).to_string(),
        ]);
    }
    print_table(
        &[
            "batch",
            "stop cyc (seq)",
            "stop cyc (batched)",
            "reg patch (seq)",
            "reg patch (batched)",
            "bit-identical",
        ],
        &btable,
    );
    println!(
        "Batched world-stops amortize signal+barrier and register pass: {}",
        if amortized { "PASS" } else { "FAIL" }
    );

    // --- JSON ---
    let mut json = String::from("{\n  \"scale\": \"");
    json.push_str(&format!("{scale:?}"));
    json.push_str(&format!(
        "\",\n  \"escape_cells\": {cells},\n  \"host_cores\": {host_cores},\n  \"worker_sweep\": [\n"
    ));
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"modeled_patch_cycles\": {}, \"host_ns_per_move\": {:.0}, \
             \"digest\": \"{:#x}\"}}{}\n",
            r.workers,
            r.modeled_patch_cycles,
            r.ns_per_move,
            r.digest,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"crossover_sweep\": [\n");
    for (i, x) in xruns.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"cells\": {}, \"ns_serial\": {:.0}, \"ns_parallel\": {:.0}}}{}\n",
            x.cells,
            x.ns_serial,
            x.ns_parallel,
            if i + 1 < xruns.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"pool_dispatch_overhead_ns\": {dispatch_ns:.0},\n  \
         \"derived_break_even_cells\": {derived:.0},\n"
    ));
    json.push_str("  \"batch_sweep\": [\n");
    for (i, b) in batches.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"batch\": {}, \"stop_cycles_sequential\": {}, \"stop_cycles_batched\": {}, \
             \"register_patch_sequential\": {}, \"register_patch_batched\": {}, \
             \"bit_identical\": {}}}{}\n",
            b.batch,
            b.stop_cycles_sequential,
            b.stop_cycles_batched,
            b.register_patch_sequential,
            b.register_patch_batched,
            b.digests_equal,
            if i + 1 < batches.len() { "," } else { "" },
        ));
    }
    let modeled_speedup_4w = base.modeled_patch_cycles as f64 / modeled4.max(1) as f64;
    json.push_str(&format!(
        "  ],\n  \"modeled_speedup_4w\": {modeled_speedup_4w:.3},\n  \
         \"host_speedup_4w\": {host_speedup4:.3},\n  \
         \"workers_identical\": {},\n  \"batch_identical\": {},\n  \
         \"amortized\": {amortized}\n}}\n",
        !diverged, !batch_diverged,
    ));
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");

    if diverged || batch_diverged || !modeled_ok || !amortized {
        std::process::exit(1);
    }
}
