//! Pin/DMA battery: the kernel-level half of the device subsystem's
//! correctness story.
//!
//! A pinned range is a promise to the DMA engine that its physical
//! address is stable. Every mover — `move_pages`, the batched planner,
//! `page_out` — must refuse a pinned range with a typed
//! [`MoveError::Pinned`] *before* mutating anything, and the DMA engine
//! must refuse unpinned targets with a typed [`DmaError`]. The property
//! test interleaves pin/unpin with single moves, batched moves, and
//! page-outs and asserts the core invariant after every step: the bytes
//! of every currently-pinned buffer are bit-identical to their pin-time
//! snapshot (nothing relocated them, nothing poisoned them, nothing
//! patched through them).

use carat_ir::{GlobalInit, Module, ModuleBuilder, Type};
use carat_kernel::{
    fnv1a, DmaDir, DmaError, KernelError, LoadConfig, PinError, ProcessImage, SimKernel,
    POISON_BASE, POISON_SLOT_SPAN,
};
use carat_runtime::{AllocKind, AllocationTable, MoveError};
use proptest::prelude::*;

fn module_with_global() -> Module {
    let mut mb = ModuleBuilder::new("pin_prog");
    mb.global(
        "buf",
        Type::Array(Box::new(Type::I64), 16),
        GlobalInit::Zero,
    );
    let f = mb.declare("main", vec![], Some(Type::I64));
    {
        let mut b = mb.define(f);
        let e = b.block("entry");
        b.switch_to(e);
        let c = b.const_i64(0);
        b.ret(Some(c));
    }
    mb.finish()
}

fn boot() -> (SimKernel, AllocationTable, ProcessImage) {
    let mut k = SimKernel::new(256 * 1024 * 1024);
    let mut table = AllocationTable::new();
    let img = k
        .load_unsigned(module_with_global(), &mut table, LoadConfig::default())
        .expect("loads");
    (k, table, img)
}

/// First page-aligned address inside the image's heap arena.
fn heap_page(k: &SimKernel, img: &ProcessImage) -> u64 {
    let page = k.cost.page_size;
    (img.heap.0 + page - 1) / page * page
}

#[test]
fn pin_unpin_roundtrip_and_accounting() {
    let (mut k, _table, img) = boot();
    let page = k.cost.page_size;
    let base = heap_page(&k, &img);

    assert!(k.pin_region(base, page).is_ok());
    assert_eq!(k.pinned_bytes(), page);
    assert_eq!(k.pins().len(), 1);
    assert!(k.pinned_overlap(base + 8, 8).is_some());
    assert!(k.pinned_overlap(base + page, 8).is_none(), "end exclusive");

    // Malformed and conflicting pins are typed refusals.
    assert!(matches!(
        k.pin_region(base + page / 2, page),
        Err(PinError::AlreadyPinned { .. })
    ));
    assert!(matches!(k.pin_region(base, 0), Err(PinError::ZeroLen)));
    assert!(matches!(
        k.pin_region(POISON_BASE + 64, 8),
        Err(PinError::Swapped { .. })
    ));

    // Unpin must match the pinned range exactly.
    assert!(matches!(
        k.unpin_region(base, page - 8),
        Err(PinError::NotPinned { .. })
    ));
    assert!(k.unpin_region(base, page).is_ok());
    assert_eq!(k.pinned_bytes(), 0);

    let s = k.pin_stats();
    assert_eq!((s.pins, s.unpins), (1, 1));
    assert!(s.peak_pinned_bytes >= page);
}

#[test]
fn movers_refuse_pinned_ranges_typed_and_side_effect_free() {
    let (mut k, mut table, img) = boot();
    let page = k.cost.page_size;
    let g = img.globals[0];
    let gpage = g / page * page;

    // An escape cell pointing into the pinned page: a mover that went
    // ahead anyway would patch it — it must stay bit-identical.
    let cell = img.heap.0 + 64;
    k.mem.write_uint(cell, g + 8, 8);
    table.track_escape(cell);
    table.flush_escapes(|_| g + 8);

    k.pin_region(gpage, page).unwrap();
    let before: Vec<u8> = k.mem.read_bytes(gpage, page).to_vec();

    let mut regs = vec![g + 16];
    let err = k
        .move_pages(&mut table, &mut regs, gpage, 1, 1)
        .unwrap_err();
    assert!(matches!(err, KernelError::Move(MoveError::Pinned { .. })));
    assert!(err.is_recoverable(), "pin refusal is retryable");

    let err = k.page_out(&mut table, &mut regs, gpage, 1).unwrap_err();
    assert!(matches!(err, KernelError::Move(MoveError::Pinned { .. })));

    // Nothing mutated: bytes, the escape cell, and the register.
    assert_eq!(k.mem.read_bytes(gpage, page), &before[..]);
    assert_eq!(k.mem.read_uint(cell, 8), g + 8);
    assert_eq!(regs[0], g + 16);
    assert!(k.pin_stats().denied_moves >= 2);
    assert!(k.pin_stats().denied_bytes > 0);

    // The compaction planner never even nominates the pinned page.
    assert!(!k.worst_pages(&table, 8).contains(&gpage));

    // Unpinned, the very same move goes through.
    k.unpin_region(gpage, page).unwrap();
    let (_world, outcome) = k
        .move_pages(&mut table, &mut regs, gpage, 1, 1)
        .expect("moves after unpin");
    assert_ne!(outcome.moved_dst, outcome.moved_src);
}

#[test]
fn batched_moves_skip_pinned_batchmates() {
    let (mut k, mut table, img) = boot();
    let page = k.cost.page_size;
    let a = heap_page(&k, &img);
    let b = a + page;
    table.track_alloc(a, page, AllocKind::Heap);
    table.track_alloc(b, page, AllocKind::Heap);
    for w in 0..page / 8 {
        k.mem.write_uint(a + w * 8, 0xA000 + w, 8);
        k.mem.write_uint(b + w * 8, 0xB000 + w, 8);
    }

    k.pin_region(a, page).unwrap();
    let pinned_before: Vec<u8> = k.mem.read_bytes(a, page).to_vec();

    // The pinned request is skipped; its batchmate still moves.
    let mut regs: Vec<u64> = Vec::new();
    let (_world, outs) = k
        .move_pages_batch(&mut table, &mut regs, &[(a, 1), (b, 1)], 1)
        .expect("batchmate survives");
    assert_eq!(outs.len(), 1);
    assert_eq!(outs[0].moved_src, b);
    assert_eq!(k.mem.read_bytes(a, page), &pinned_before[..]);
    assert_eq!(k.mem.read_uint(outs[0].moved_dst, 8), 0xB000);

    // When *nothing* in the batch survives, the pin error surfaces.
    let err = k
        .move_pages_batch(&mut table, &mut regs, &[(a, 1)], 1)
        .unwrap_err();
    assert!(matches!(err, KernelError::Move(MoveError::Pinned { .. })));
}

#[test]
fn dma_requires_pin_and_transfers_deterministically() {
    let (mut k, _table, img) = boot();
    let page = k.cost.page_size;
    let buf = heap_page(&k, &img);

    // Unpinned target: typed refusal, no bytes transferred.
    k.dev.dma.submit(buf, 256, DmaDir::DeviceToMem);
    let done = k.dma_service(8);
    assert_eq!(done.len(), 1);
    assert!(matches!(done[0].err, Some(DmaError::NotPinned { .. })));

    // Zero-length requests are malformed.
    k.dev.dma.submit(buf, 0, DmaDir::DeviceToMem);
    let done = k.dma_service(8);
    assert!(matches!(done[0].err, Some(DmaError::ZeroLen)));

    // Pinned: the device writes a deterministic payload and reports its
    // checksum; reading the same range back out reproduces it exactly.
    k.pin_region(buf, page).unwrap();
    let rx = k.dev.dma.submit(buf, 256, DmaDir::DeviceToMem);
    let done = k.dma_service(8);
    assert!(
        done[0].ok(),
        "pinned inbound DMA completes: {:?}",
        done[0].err
    );
    assert_eq!(done[0].id, rx);
    assert!(done[0].cycles > 0);
    let in_mem = fnv1a(k.mem.read_bytes(buf, 256));
    assert_eq!(done[0].checksum, in_mem, "device and memory agree");

    k.dev.dma.submit(buf, 256, DmaDir::MemToDevice);
    let done = k.dma_service(8);
    assert!(done[0].ok());
    assert_eq!(done[0].checksum, in_mem, "outbound leg reads what came in");

    let s = k.dev.dma.stats();
    assert_eq!(s.submitted, 4);
    assert_eq!(s.completed, 2);
    assert_eq!(s.failed, 2);
    assert_eq!(s.bytes_in, 256);
    assert_eq!(s.bytes_out, 256);
    assert!(s.device_cycles > 0);
}

/// One logical DMA buffer under the property test: its current physical
/// address, whether it is pinned (and its pin-time snapshot), and
/// whether a page-out retired it to poison space.
struct Buf {
    addr: u64,
    pinned: bool,
    snap: Vec<u8>,
    swapped: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of pin/unpin with single moves, batched moves,
    /// and page-outs: a pinned buffer's bytes never change, movers
    /// refuse it typed, and pin accounting balances at the end.
    #[test]
    fn random_interleavings_never_disturb_a_pinned_buffer(
        ops in proptest::collection::vec((0u8..5u8, 0usize..4usize), 1..60)
    ) {
        let (mut k, mut table, img) = boot();
        let page = k.cost.page_size;
        let h0 = heap_page(&k, &img);
        let mut bufs: Vec<Buf> = (0..4u64)
            .map(|i| {
                let addr = h0 + i * page;
                table.track_alloc(addr, page, AllocKind::Heap);
                Buf { addr, pinned: false, snap: Vec::new(), swapped: false }
            })
            .collect();
        for (i, b) in bufs.iter().enumerate() {
            for w in 0..page / 8 {
                k.mem.write_uint(b.addr + w * 8, ((i as u64) << 32) | w, 8);
            }
        }
        let mut regs: Vec<u64> = Vec::new();

        for (op, i) in ops {
            match op {
                // Pin: refused for swapped buffers, snapshot on success.
                0 => {
                    if bufs[i].swapped {
                        prop_assert!(matches!(
                            k.pin_region(bufs[i].addr, page),
                            Err(PinError::Swapped { .. })
                        ));
                    } else if !bufs[i].pinned && k.pin_region(bufs[i].addr, page).is_ok() {
                        bufs[i].pinned = true;
                        bufs[i].snap = k.mem.read_bytes(bufs[i].addr, page).to_vec();
                    }
                }
                // Unpin: always succeeds for a live pin.
                1 => {
                    if bufs[i].pinned {
                        prop_assert!(k.unpin_region(bufs[i].addr, page).is_ok());
                        bufs[i].pinned = false;
                    }
                }
                // Single move: typed refusal when pinned, tracked when not.
                2 => {
                    if bufs[i].swapped {
                        // Retired to poison space; movers skip it via the
                        // planner, don't drive them at it directly.
                    } else {
                        let r = k.move_pages(&mut table, &mut regs, bufs[i].addr, 1, 1);
                        if bufs[i].pinned {
                            prop_assert!(matches!(
                                r,
                                Err(KernelError::Move(MoveError::Pinned { .. }))
                            ));
                        } else if let Ok((_w, out)) = r {
                            bufs[i].addr = out.moved_dst;
                        }
                    }
                }
                // Batched move of every live buffer: pinned requests are
                // skipped, surviving outcomes retarget their buffers.
                3 => {
                    let reqs: Vec<(u64, u64)> = bufs
                        .iter()
                        .filter(|b| !b.swapped)
                        .map(|b| (b.addr, 1))
                        .collect();
                    if !reqs.is_empty() {
                        if let Ok((_w, outs)) =
                            k.move_pages_batch(&mut table, &mut regs, &reqs, 1)
                        {
                            for out in outs {
                                if let Some(b) =
                                    bufs.iter_mut().find(|b| b.addr == out.moved_src)
                                {
                                    prop_assert!(!b.pinned, "a pinned buffer moved");
                                    b.addr = out.moved_dst;
                                }
                            }
                        }
                    }
                }
                // Page-out (the compaction rung's swap leg).
                _ => {
                    if !bufs[i].swapped {
                        let r = k.page_out(&mut table, &mut regs, bufs[i].addr, 1);
                        if bufs[i].pinned {
                            prop_assert!(matches!(
                                r,
                                Err(KernelError::Move(MoveError::Pinned { .. }))
                            ));
                        } else if let Ok(Some((_w, slot, _src, _len))) = r {
                            bufs[i].addr = POISON_BASE + slot * POISON_SLOT_SPAN;
                            bufs[i].swapped = true;
                        }
                    }
                }
            }
            // THE invariant: every pinned buffer is bit-identical to its
            // pin-time snapshot, at its pin-time address.
            for b in bufs.iter().filter(|b| b.pinned) {
                prop_assert_eq!(k.mem.read_bytes(b.addr, page), &b.snap[..]);
            }
            // And the pin list always agrees with the accounting.
            let listed: u64 = k.pins().iter().map(|p| p.len).sum();
            prop_assert_eq!(listed, k.pinned_bytes());
        }

        // Drain every pin: accounting balances, nothing leaks.
        for b in bufs.iter_mut().filter(|b| b.pinned) {
            prop_assert!(k.unpin_region(b.addr, page).is_ok());
            b.pinned = false;
        }
        prop_assert_eq!(k.pinned_bytes(), 0);
        let s = k.pin_stats();
        prop_assert_eq!(s.pins, s.unpins + s.reaped);
    }
}
