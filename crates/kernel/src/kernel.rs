//! The simulated kernel: physical memory management, region policy, the
//! paging baseline, and the CARAT move/protection orchestration (paper
//! §4.3 — the kernel module's role).

use crate::buddy::BuddyAllocator;
use crate::loader::{load_signed, load_unsigned, LoadConfig, LoadError, ProcessImage};
use crate::pagetable::{PageTable, Pte};
use crate::phys::PhysicalMemory;
use crate::trace::{PagingEvent, PagingTrace};
use carat_core::sign::{SignedModule, SigningKey};
use carat_ir::Module;
use carat_runtime::{
    perform_move, AllocationTable, CostModel, MemAccess, MoveOutcome, MoveRequest, Perms, Region,
    RegionTable, WorldStop,
};
use std::collections::HashMap;

/// The simulated kernel.
#[derive(Debug)]
pub struct SimKernel {
    /// Physical memory.
    pub mem: PhysicalMemory,
    /// Page-frame allocator.
    pub buddy: BuddyAllocator,
    /// MMU-notifier-style trace (Table 2 counters).
    pub trace: PagingTrace,
    /// Baseline page table (traditional model only).
    pub pagetable: PageTable,
    /// CARAT region set for the (single) process.
    pub regions: RegionTable,
    /// Machine cost model.
    pub cost: CostModel,
    /// Master region list behind `regions` (kept sorted; holes punched on
    /// moves).
    master: Vec<Region>,
    /// Page ranges vacated by moves, recycled as future move destinations
    /// ("frees the data at the old location", paper §4.2).
    vacated: Vec<(u64, u64)>,
    /// Swapped-out ranges by slot id: the paper's non-canonical-address
    /// encoding of "this data is in swap" (§2.2).
    swap: HashMap<u64, SwapEntry>,
    next_swap_slot: u64,
    /// Last page passed to [`SimKernel::demand_touch`] — a one-entry
    /// cache shortcutting the per-access touched-set probe.
    last_touched_page: u64,
    trusted: Vec<SigningKey>,
}

/// One swapped-out range.
#[derive(Debug, Clone)]
struct SwapEntry {
    len: u64,
    data: Vec<u8>,
}

/// A [`MemAccess`] view that routes poison addresses into the swap store,
/// so pointer patching reaches cells whose backing data is swapped out.
pub struct SwapAwareMem<'a> {
    mem: &'a mut PhysicalMemory,
    swap: &'a mut HashMap<u64, SwapEntry>,
}

impl MemAccess for SwapAwareMem<'_> {
    fn read_u64(&self, addr: u64) -> u64 {
        if addr >= POISON_BASE {
            let slot = (addr - POISON_BASE) / POISON_SLOT_SPAN;
            let off = ((addr - POISON_BASE) % POISON_SLOT_SPAN) as usize;
            if let Some(e) = self.swap.get(&slot) {
                if off + 8 <= e.data.len() {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&e.data[off..off + 8]);
                    return u64::from_le_bytes(b);
                }
            }
            return 0;
        }
        self.mem.read_u64(addr)
    }

    fn write_u64(&mut self, addr: u64, val: u64) {
        if addr >= POISON_BASE {
            let slot = (addr - POISON_BASE) / POISON_SLOT_SPAN;
            let off = ((addr - POISON_BASE) % POISON_SLOT_SPAN) as usize;
            if let Some(e) = self.swap.get_mut(&slot) {
                if off + 8 <= e.data.len() {
                    e.data[off..off + 8].copy_from_slice(&val.to_le_bytes());
                }
            }
            return;
        }
        self.mem.write_u64(addr, val);
    }

    fn copy(&mut self, src: u64, dst: u64, len: u64) {
        assert!(
            src < POISON_BASE && dst < POISON_BASE,
            "bulk copies operate on resident memory"
        );
        self.mem.copy(src, dst, len);
    }
}

/// Base of the non-canonical ("poison") address space used to mark
/// swapped-out data. Any address at or above this cannot be a physical
/// address in the simulated machine; a guard that sees one faults to the
/// kernel, which brings the data back in.
pub const POISON_BASE: u64 = 0xFFFF_8000_0000_0000;
/// Poison address span reserved per swap slot.
pub const POISON_SLOT_SPAN: u64 = 1 << 24;

impl SimKernel {
    /// Boot a kernel over `mem_size` bytes of physical memory. The first
    /// 64 KiB are reserved (null-page trap + kernel image stand-in).
    pub fn new(mem_size: u64) -> SimKernel {
        let cost = CostModel::default();
        let page = cost.page_size;
        let reserved = 64 * 1024;
        let pages = (mem_size - reserved) / page;
        SimKernel {
            mem: PhysicalMemory::new(mem_size),
            buddy: BuddyAllocator::new(reserved, pages, page),
            trace: PagingTrace::new(4096),
            pagetable: PageTable::new(),
            regions: RegionTable::new(),
            cost,
            master: Vec::new(),
            vacated: Vec::new(),
            swap: HashMap::new(),
            next_swap_slot: 0,
            last_touched_page: u64::MAX,
            trusted: Vec::new(),
        }
    }

    /// Whether `addr` encodes swapped-out data.
    pub fn is_poison(addr: u64) -> bool {
        addr >= POISON_BASE
    }

    /// Number of ranges currently in swap.
    pub fn swapped_ranges(&self) -> usize {
        self.swap.len()
    }

    /// Whether swap slot `slot` is live.
    pub fn has_swap_slot(&self, slot: u64) -> bool {
        self.swap.contains_key(&slot)
    }

    /// Debug aid: read a u64 through the swap-aware router without
    /// mutating anything.
    pub fn debug_read_routed(&self, addr: u64) -> u64 {
        if Self::is_poison(addr) {
            let slot = (addr - POISON_BASE) / POISON_SLOT_SPAN;
            let off = ((addr - POISON_BASE) % POISON_SLOT_SPAN) as usize;
            if let Some(e) = self.swap.get(&slot) {
                if off + 8 <= e.data.len() {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&e.data[off..off + 8]);
                    return u64::from_le_bytes(b);
                }
            }
            return 0;
        }
        if addr + 8 <= self.mem.size() {
            self.mem.read_uint(addr, 8)
        } else {
            0
        }
    }

    /// Debug aid: find occurrences of an 8-byte value inside swap images.
    /// Returns `(slot, byte offset)` pairs.
    pub fn debug_scan_swap(&self, needle: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (&slot, e) in &self.swap {
            for off in (0..e.data.len().saturating_sub(7)).step_by(8) {
                let mut b = [0u8; 8];
                b.copy_from_slice(&e.data[off..off + 8]);
                if u64::from_le_bytes(b) == needle {
                    out.push((slot, off as u64));
                }
            }
        }
        out
    }

    /// Pick a destination for `len` bytes: recycle a vacated range when one
    /// fits, else take fresh frames from the buddy allocator.
    fn alloc_move_dst(&mut self, len: u64) -> Option<u64> {
        let page = self.cost.page_size;
        if let Some(i) = self.vacated.iter().position(|&(_, l)| l >= len) {
            let (start, l) = self.vacated[i];
            if l == len {
                self.vacated.remove(i);
            } else {
                self.vacated[i] = (start + len, l - len);
            }
            return Some(start);
        }
        self.buddy.alloc_pages(len / page)
    }

    /// Register a toolchain key the kernel trusts.
    pub fn trust(&mut self, key: SigningKey) {
        self.trusted.push(key);
    }

    /// Load a signed CARAT binary; installs the capsule region set and
    /// counts the initial page allocations.
    ///
    /// # Errors
    ///
    /// See [`LoadError`].
    pub fn load(
        &mut self,
        signed: &SignedModule,
        table: &mut AllocationTable,
        cfg: LoadConfig,
    ) -> Result<ProcessImage, LoadError> {
        let img = load_signed(
            signed,
            &self.trusted,
            &mut self.mem,
            &mut self.buddy,
            table,
            cfg,
        )?;
        self.install_image(&img);
        Ok(img)
    }

    /// Load an unsigned module (baseline mode and tests).
    ///
    /// # Errors
    ///
    /// See [`LoadError`].
    pub fn load_unsigned(
        &mut self,
        module: Module,
        table: &mut AllocationTable,
        cfg: LoadConfig,
    ) -> Result<ProcessImage, LoadError> {
        let img = load_unsigned(module, &mut self.mem, &mut self.buddy, table, cfg)?;
        self.install_image(&img);
        Ok(img)
    }

    fn install_image(&mut self, img: &ProcessImage) {
        self.master = vec![img.capsule_region()];
        self.regions.set_regions(self.master.clone());
        // Initial pages (stack+data+code) are allocations at load time.
        let page = self.cost.page_size;
        for i in 0..img.initial_pages {
            self.trace.record_first_touch(img.stack.0 / page + i);
        }
    }

    /// Demand-allocate the page containing `addr` (CARAT mode: pure
    /// bookkeeping; the capsule already covers the arena). Returns whether
    /// this was a fresh page.
    pub fn demand_touch(&mut self, addr: u64) -> bool {
        let page = self.cost.page_of(addr);
        // Fast path for the VM's per-access call: the touched set only
        // grows, so a hit on the last touched page can never go stale.
        if page == self.last_touched_page {
            return false;
        }
        self.last_touched_page = page;
        self.trace.record_first_touch(page)
    }

    /// Baseline: translate-or-fault. Ensures `vpn` is mapped, allocating
    /// and mapping a fresh frame on first touch. Returns the PTE.
    pub fn ensure_mapped(&mut self, vpn: u64) -> Pte {
        if let Some(pte) = self.pagetable.translate(vpn) {
            return pte;
        }
        let frame = self
            .buddy
            .alloc_pages(1)
            .expect("baseline out of page frames");
        let pte = Pte {
            ppn: frame / self.cost.page_size,
            writable: true,
        };
        self.pagetable.map(vpn, pte);
        self.trace.record(PagingEvent::Alloc { page: vpn });
        pte
    }

    /// Change protections on a region of the process (paper: "a region
    /// change is a modification of a region entry"). `start..start+len`
    /// must already lie within the capsule.
    pub fn change_protection(&mut self, start: u64, len: u64, perms: Perms) {
        self.punch_hole(start, start + len);
        self.master.push(Region { start, len, perms });
        self.master.sort_by_key(|r| r.start);
        self.regions.set_regions(self.master.clone());
        self.trace.record(PagingEvent::Invalidate {
            first: start / self.cost.page_size,
            count: len.div_ceil(self.cost.page_size),
        });
    }

    fn punch_hole(&mut self, lo: u64, hi: u64) {
        let mut next = Vec::with_capacity(self.master.len() + 2);
        for r in self.master.drain(..) {
            let (rs, re) = (r.start, r.end());
            if re <= lo || rs >= hi {
                next.push(r);
                continue;
            }
            if rs < lo {
                next.push(Region {
                    start: rs,
                    len: lo - rs,
                    perms: r.perms,
                });
            }
            if re > hi {
                next.push(Region {
                    start: hi,
                    len: re - hi,
                    perms: r.perms,
                });
            }
        }
        self.master = next;
    }

    /// The worst-case page to move: the page-aligned address overlapping
    /// the allocation with the most live escapes (paper §4.4).
    pub fn worst_page(&self, table: &AllocationTable) -> Option<u64> {
        let page = self.cost.page_size;
        table
            .snapshot()
            .into_iter()
            // Swapped-out (poison-resident) allocations cannot be moved.
            .filter(|&(start, _, _, _)| !Self::is_poison(start))
            .max_by_key(|&(_, _, escapes_live, _)| escapes_live)
            .map(|(start, _, _, _)| start / page * page)
    }

    /// Execute a full CARAT page movement: world stop, negotiation,
    /// patching (escapes + registers), data copy, region update, resume.
    /// Returns the protocol record and the move outcome.
    ///
    /// `regs` is the register state of all threads, dumped by the signal
    /// handlers; `threads` its thread count.
    pub fn move_pages(
        &mut self,
        table: &mut AllocationTable,
        regs: &mut [u64],
        src: u64,
        pages: u64,
        threads: usize,
    ) -> (WorldStop, MoveOutcome) {
        let page = self.cost.page_size;
        let len = pages * page;
        // Pre-negotiate the expansion so the destination is large enough.
        let (xsrc, xlen) =
            carat_runtime::expand_to_allocations(table, src / page * page, len, page);
        let dst = self
            .alloc_move_dst(xlen)
            .expect("out of frames for move destination");

        let mut world = WorldStop::new(threads);
        world.signal_all(&self.cost).expect("fresh episode");
        for _ in 0..threads {
            world.thread_entered().expect("threads enter");
        }
        world.barrier1(&self.cost).expect("barrier");
        world.negotiated().expect("negotiated");
        world.patches_computed().expect("patches computed");
        let mut routed = SwapAwareMem {
            mem: &mut self.mem,
            swap: &mut self.swap,
        };
        let outcome = perform_move(
            table,
            &mut routed,
            regs,
            MoveRequest {
                src: xsrc,
                len: xlen,
                dst,
            },
            &self.cost,
        );
        world.patched().expect("patched");
        world.moved().expect("moved");
        world.barrier2(&self.cost).expect("barrier2");
        world.complete().expect("complete");

        // Region maintenance: the moved range leaves the capsule; the
        // destination becomes accessible. The vacated frames are recycled
        // for future moves.
        self.vacated.push((outcome.moved_src, outcome.moved_len));
        self.punch_hole(outcome.moved_src, outcome.moved_src + outcome.moved_len);
        self.master.push(Region {
            start: outcome.moved_dst,
            len: outcome.moved_len,
            perms: Perms::RW,
        });
        self.master.sort_by_key(|r| r.start);
        self.regions.set_regions(self.master.clone());

        for p in 0..outcome.moved_len / page {
            self.trace.record(PagingEvent::Move {
                from: outcome.moved_src / page + p,
                to: outcome.moved_dst / page + p,
            });
        }
        (world, outcome)
    }

    /// Page a range out to swap (paper §2.2: "to make a page unavailable,
    /// we patch its affected pointers to a physical address that will
    /// cause a fault … the specific non-canonical address can be used to
    /// encode different conditions").
    ///
    /// Expands `page` to whole allocations, patches every escape and
    /// register pointing into the range to a poison address encoding the
    /// swap slot, copies the data to the swap store, revokes the region,
    /// and recycles the frames. Returns the slot id.
    pub fn page_out(
        &mut self,
        table: &mut AllocationTable,
        regs: &mut [u64],
        page: u64,
        threads: usize,
    ) -> Option<(WorldStop, u64, u64, u64)> {
        let pg = self.cost.page_size;
        let (src, len) = carat_runtime::expand_to_allocations(table, page / pg * pg, pg, pg);
        if len > POISON_SLOT_SPAN || Self::is_poison(src) {
            return None;
        }
        let slot = self.next_swap_slot;
        self.next_swap_slot += 1;
        let poison = POISON_BASE + slot * POISON_SLOT_SPAN;
        let delta = poison.wrapping_sub(src) as i64;

        let mut world = WorldStop::new(threads);
        world.signal_all(&self.cost).expect("fresh episode");
        for _ in 0..threads {
            world.thread_entered().expect("threads enter");
        }
        world.barrier1(&self.cost).expect("barrier");
        world.negotiated().expect("negotiated");
        world.patches_computed().expect("patches computed");

        // Patch escapes of every affected allocation to poison addresses
        // (cells may themselves live in other swapped ranges).
        let mut routed = SwapAwareMem {
            mem: &mut self.mem,
            swap: &mut self.swap,
        };
        for start in table.overlapping(src, src + len) {
            let info = table.info(start).expect("listed");
            let (lo, hi) = (start, start + info.len);
            let cells: Vec<u64> = info.escapes.iter().copied().collect();
            for cell in cells {
                let val = routed.read_u64(cell);
                if val >= lo && val < hi {
                    routed.write_u64(cell, val.wrapping_add(delta as u64));
                }
            }
        }
        for r in regs.iter_mut() {
            if *r >= src && *r < src + len {
                *r = r.wrapping_add(delta as u64);
            }
        }
        // Copy out, rebase tracking to the poison range, free the frames.
        let data = self.mem.read_bytes(src, len).to_vec();
        table.rebase_escape_cells(src, src + len, delta);
        for start in table.overlapping(src, src + len) {
            table.relocate(start, delta);
        }
        self.swap.insert(slot, SwapEntry { len, data });
        self.vacated.push((src, len));
        self.punch_hole(src, src + len);
        self.regions.set_regions(self.master.clone());
        self.trace.record(PagingEvent::Invalidate {
            first: src / pg,
            count: len / pg,
        });

        world.patched().expect("patched");
        world.moved().expect("moved");
        world.barrier2(&self.cost).expect("barrier2");
        world.complete().expect("complete");
        Some((world, slot, src, len))
    }

    /// Service a fault on a poison address: bring the slot's data back
    /// into fresh frames, patch every poisoned pointer to the new
    /// location, and restore the region. Returns the new base address of
    /// the range.
    pub fn page_in(
        &mut self,
        table: &mut AllocationTable,
        regs: &mut [u64],
        poison_addr: u64,
        threads: usize,
    ) -> Option<(WorldStop, u64)> {
        if !Self::is_poison(poison_addr) {
            return None;
        }
        let slot = (poison_addr - POISON_BASE) / POISON_SLOT_SPAN;
        let entry = self.swap.remove(&slot)?;
        let poison = POISON_BASE + slot * POISON_SLOT_SPAN;
        let dst = self.alloc_move_dst(entry.len)?;
        let delta = dst.wrapping_sub(poison) as i64;

        let mut world = WorldStop::new(threads);
        world.signal_all(&self.cost).expect("fresh episode");
        for _ in 0..threads {
            world.thread_entered().expect("threads enter");
        }
        world.barrier1(&self.cost).expect("barrier");
        world.negotiated().expect("negotiated");
        world.patches_computed().expect("patches computed");

        self.mem.write_bytes(dst, &entry.data);
        // Patch every escape cell holding a pointer into the poison range.
        let mut routed = SwapAwareMem {
            mem: &mut self.mem,
            swap: &mut self.swap,
        };
        for start in table.overlapping(poison, poison + entry.len) {
            let info = table.info(start).expect("listed");
            let (lo, hi) = (start, start + info.len);
            let cells: Vec<u64> = info.escapes.iter().copied().collect();
            for cell in cells {
                // Cells inside this slot were restored at dst; cells in
                // other slots are reached through the router.
                let cell = if cell >= poison && cell < poison + entry.len {
                    cell.wrapping_add(delta as u64)
                } else {
                    cell
                };
                let val = routed.read_u64(cell);
                if val >= lo && val < hi {
                    routed.write_u64(cell, val.wrapping_add(delta as u64));
                }
            }
        }
        for r in regs.iter_mut() {
            if *r >= poison && *r < poison + entry.len {
                *r = r.wrapping_add(delta as u64);
            }
        }
        table.rebase_escape_cells(poison, poison + entry.len, delta);
        for start in table.overlapping(poison, poison + entry.len) {
            table.relocate(start, delta);
        }
        self.punch_hole(dst, dst + entry.len);
        self.master.push(Region {
            start: dst,
            len: entry.len,
            perms: Perms::RW,
        });
        self.master.sort_by_key(|r| r.start);
        self.regions.set_regions(self.master.clone());
        let pg = self.cost.page_size;
        for p in 0..entry.len / pg {
            self.trace.record(PagingEvent::Alloc { page: dst / pg + p });
        }

        world.patched().expect("patched");
        world.moved().expect("moved");
        world.barrier2(&self.cost).expect("barrier2");
        world.complete().expect("complete");
        Some((world, dst))
    }

    /// Seamless stack expansion (paper §2.2: "a failed guard involving the
    /// stack causes the kernel to be invoked; this provides a mechanism by
    /// which the kernel can implement seamless stack expansion").
    ///
    /// The stack is an ordinary tracked allocation, so the kernel grows it
    /// by *moving* it: allocate a block twice the size, relocate the live
    /// stack contents to its top (patching escapes and registers via the
    /// normal move engine), extend the allocation downward, and install
    /// the new region. Returns the move outcome, or `None` when the stack
    /// already reached `max_stack` bytes.
    pub fn expand_stack(
        &mut self,
        table: &mut AllocationTable,
        regs: &mut [u64],
        img: &mut ProcessImage,
        threads: usize,
        max_stack: u64,
    ) -> Option<(WorldStop, MoveOutcome)> {
        let (old_start, old_len) = img.stack;
        let new_len = (old_len * 2).min(max_stack);
        if new_len <= old_len {
            return None;
        }
        let dst_block = self.alloc_move_dst(new_len)?;
        // Live data keeps its distance from the stack top: it lands at the
        // top of the new block.
        let data_dst = dst_block + new_len - old_len;

        let mut world = WorldStop::new(threads);
        world.signal_all(&self.cost).expect("fresh episode");
        for _ in 0..threads {
            world.thread_entered().expect("threads enter");
        }
        world.barrier1(&self.cost).expect("barrier");
        world.negotiated().expect("negotiated");
        world.patches_computed().expect("patches computed");
        let mut routed = SwapAwareMem {
            mem: &mut self.mem,
            swap: &mut self.swap,
        };
        let outcome = perform_move(
            table,
            &mut routed,
            regs,
            MoveRequest {
                src: old_start,
                len: old_len,
                dst: data_dst,
            },
            &self.cost,
        );
        world.patched().expect("patched");
        world.moved().expect("moved");
        world.barrier2(&self.cost).expect("barrier2");
        world.complete().expect("complete");

        // Extend the relocated stack allocation downward over the whole
        // new block.
        if let Some(info) = table.track_free(outcome.moved_dst) {
            table.track_alloc(dst_block, new_len, carat_runtime::AllocKind::Stack);
            table.adopt_escapes(dst_block, info.escapes, info.escapes_ever);
            // track_free recorded a death; neutralize the histogram entry
            // since the allocation logically lives on.
            if let Some(h) = table.stats.escape_histogram.get_mut(&info.escapes_ever) {
                *h = h.saturating_sub(1);
            }
        }

        // Regions: the old stack range is vacated; the new block (all of
        // it, including the fresh growth room) becomes the stack region.
        self.vacated.push((outcome.moved_src, outcome.moved_len));
        self.punch_hole(outcome.moved_src, outcome.moved_src + outcome.moved_len);
        self.punch_hole(dst_block, dst_block + new_len);
        self.master.push(Region {
            start: dst_block,
            len: new_len,
            perms: Perms::RW,
        });
        self.master.sort_by_key(|r| r.start);
        self.regions.set_regions(self.master.clone());
        self.trace.record(PagingEvent::Move {
            from: old_start / self.cost.page_size,
            to: data_dst / self.cost.page_size,
        });

        img.stack = (dst_block, new_len);
        Some((world, outcome))
    }

    /// Update a process image's global bindings after a move (the kernel
    /// patches the code image's address constants).
    pub fn patch_globals(img: &mut ProcessImage, outcome: &MoveOutcome) {
        let (lo, hi) = (outcome.moved_src, outcome.moved_src + outcome.moved_len);
        let delta = outcome.moved_dst.wrapping_sub(outcome.moved_src);
        for g in &mut img.globals {
            if *g >= lo && *g < hi {
                *g = g.wrapping_add(delta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{GlobalInit, ModuleBuilder, Type};
    use carat_runtime::{Access, GuardImpl};

    fn module_with_global() -> Module {
        let mut mb = ModuleBuilder::new("prog");
        mb.global(
            "buf",
            Type::Array(Box::new(Type::I64), 16),
            GlobalInit::Zero,
        );
        let f = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let c = b.const_i64(0);
            b.ret(Some(c));
        }
        mb.finish()
    }

    fn boot() -> (SimKernel, AllocationTable, ProcessImage) {
        let mut k = SimKernel::new(256 * 1024 * 1024);
        let mut table = AllocationTable::new();
        let img = k
            .load_unsigned(module_with_global(), &mut table, LoadConfig::default())
            .expect("loads");
        (k, table, img)
    }

    #[test]
    fn load_installs_capsule_and_counts_pages() {
        let (k, _, img) = boot();
        assert_eq!(k.regions.len(), 1);
        assert!(
            k.regions
                .check(GuardImpl::Mpx, img.globals[0], 8, Access::Write)
                .ok
        );
        assert_eq!(k.trace.allocs, img.initial_pages);
    }

    #[test]
    fn protection_change_splits_regions() {
        let (mut k, _, img) = boot();
        let g = img.globals[0];
        let page = k.cost.page_size;
        let page_start = g / page * page;
        k.change_protection(page_start, page, Perms::R);
        assert!(k.regions.len() >= 2, "capsule split around the page");
        assert!(k.regions.check(GuardImpl::IfTree, g, 8, Access::Read).ok);
        assert!(
            !k.regions.check(GuardImpl::IfTree, g, 8, Access::Write).ok,
            "write now denied"
        );
        assert_eq!(k.trace.invalidations, 1);
    }

    #[test]
    fn move_pages_end_to_end() {
        let (mut k, mut table, mut img) = boot();
        let g = img.globals[0];
        // Store a pointer to the global somewhere in the heap and track it.
        let cell = img.heap.0 + 64;
        k.mem.write_uint(cell, g + 8, 8);
        table.track_escape(cell);
        let snapshot = g + 8;
        table.flush_escapes(|_| snapshot);

        let mut regs = vec![g + 16, 0x0];
        let page = k.cost.page_size;
        let (world, outcome) = k.move_pages(&mut table, &mut regs, g / page * page, 1, 2);
        assert!(world.is_complete());
        assert!(outcome.escapes_patched >= 1);
        // The escape cell points at the new location.
        let new_ptr = k.mem.read_uint(cell, 8);
        assert_ne!(new_ptr, g + 8);
        // Register patched.
        assert_ne!(regs[0], g + 16);
        assert_eq!(regs[1], 0);
        // Old page is no longer a valid region; new one is.
        assert!(!k.regions.check(GuardImpl::IfTree, g, 8, Access::Read).ok);
        assert!(
            k.regions
                .check(GuardImpl::IfTree, new_ptr, 8, Access::Read)
                .ok
        );
        // Kernel patches the image's global table too.
        SimKernel::patch_globals(&mut img, &outcome);
        assert_eq!(img.globals[0], new_ptr - 8);
        assert!(k.trace.moves >= 1);
    }

    #[test]
    fn baseline_demand_mapping() {
        let (mut k, _, _) = boot();
        let before = k.trace.allocs;
        let pte1 = k.ensure_mapped(0x4000);
        let pte2 = k.ensure_mapped(0x4000);
        assert_eq!(pte1, pte2, "second touch reuses the mapping");
        assert_eq!(k.trace.allocs, before + 1);
        assert_eq!(k.pagetable.mapped, 1);
    }

    #[test]
    fn worst_page_picks_most_escaped_allocation() {
        let (mut k, mut table, img) = boot();
        // Heap allocation with 3 escapes vs the global with 1.
        let a = img.heap.0 + 0x1000;
        table.track_alloc(a, 128, carat_runtime::AllocKind::Heap);
        for i in 0..3u64 {
            let cell = img.heap.0 + 64 + i * 8;
            k.mem.write_uint(cell, a, 8);
            table.track_escape(cell);
        }
        table.flush_escapes(|c| k.mem.read_uint(c, 8));
        let page = k.cost.page_size;
        assert_eq!(k.worst_page(&table), Some(a / page * page));
    }
}
