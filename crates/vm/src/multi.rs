//! Multi-tenant scheduling: N CARAT processes time-sliced on one
//! simulated kernel.
//!
//! The single-process [`Vm`] owns its kernel outright. Here the real
//! kernel is shared: each process is a `Vm` parked on a
//! [`SimKernel::placeholder`], and the scheduler swaps the real kernel
//! into whichever VM holds the current time slice. Context switches go
//! through [`SimKernel::proc_switch`], which installs the incoming
//! process's guard-region map (CARAT) or page table (traditional) and
//! charges the modeled switch cost into kernel-side
//! [`ProcAccounting`] — never into the process's own counters, so a
//! time-sliced process retires exactly the instruction stream and cycles
//! a sequential run would (the multi-process differential suite pins
//! this down).
//!
//! Isolation is the paper's: in CARAT mode every access is guarded
//! against the owning process's region set, so a stray pointer into
//! another tenant surfaces as a typed [`ProtectionFault`] that kills the
//! offender and leaves every other process running — never a panic.

use crate::counters::PerfCounters;
use crate::machine::{Mode, RunResult, SliceExit, Vm, VmConfig, VmError};
use carat_ir::Module;
use carat_kernel::{
    Pid, ProcAccounting, ProcState, ProtectionFault, SharedId, SimKernel, POISON_BASE,
    POISON_SLOT_SPAN,
};
use carat_runtime::{AllocKind, AllocationTable, MemAccess};

/// One tenant to admit into a [`MultiVm`].
pub struct ProcSpec {
    /// Process name (workload name in the benches).
    pub name: String,
    /// Its program.
    pub module: Module,
    /// Its VM configuration (mode, engine, load sizing …).
    pub cfg: VmConfig,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct MultiVmConfig {
    /// Time-slice length in retired instructions. `u64::MAX` degenerates
    /// to running each process to completion in pid order — the
    /// "sequential" arm of the differential tests, on the same kernel
    /// and the same load addresses as the sliced arm.
    pub quantum: u64,
    /// Physical arena of the shared kernel in bytes.
    pub kernel_mem: u64,
    /// Run a memory-pressure compaction pass every this many slices
    /// (0 disables): pick the victim process whose allocation table
    /// carries the most live escapes, and relocate its worst pages with
    /// journaled CARAT moves plus a `page_out` — all while it is
    /// descheduled, charged to its kernel-side accounting.
    pub pressure_every: u64,
    /// Compaction victims relocated per pressure pass (the batch the
    /// kernel's move planner coalesces; clamped to at least 1).
    pub pressure_batch: usize,
    /// Coalesce the pass's moves into ONE world-stop via
    /// [`SimKernel::move_pages_batch`] (default). `false` issues the same
    /// victim list as sequential per-move stops — the slower arm of the
    /// batching differential.
    pub batch_stops: bool,
    /// Host threads for the shared kernel's move engine (1 = serial);
    /// see [`SimKernel::set_move_workers`].
    pub move_workers: usize,
}

impl Default for MultiVmConfig {
    fn default() -> MultiVmConfig {
        MultiVmConfig {
            quantum: 4096,
            kernel_mem: 512 * 1024 * 1024,
            pressure_every: 0,
            pressure_batch: 1,
            batch_stops: true,
            move_workers: 1,
        }
    }
}

/// How one tenant ended.
///
/// One value exists per process per run, so the size skew of carrying
/// the full [`RunResult`] inline is irrelevant.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum ProcOutcome {
    /// `main` returned; the full single-process result.
    Finished(RunResult),
    /// Killed by an isolation violation (the typed fault, not a panic).
    Fault(ProtectionFault),
    /// Died on another VM error (step limit, OOM, trap …).
    Error(VmError),
}

/// Final report for one tenant.
#[derive(Debug)]
pub struct ProcReport {
    /// Its pid.
    pub pid: Pid,
    /// Its name.
    pub name: String,
    /// How it ended.
    pub outcome: ProcOutcome,
    /// Kernel-side scheduling/compaction accounting.
    pub accounting: ProcAccounting,
}

/// N processes time-sliced on one shared simulated kernel.
pub struct MultiVm {
    /// The real kernel — parked here between slices, swapped into the
    /// scheduled VM for the duration of its slice (public for post-run
    /// inspection, like [`Vm::kernel`]).
    pub kernel: SimKernel,
    vms: Vec<Vm>,
    traditional: Vec<bool>,
    outcomes: Vec<Option<ProcOutcome>>,
    cfg: MultiVmConfig,
}

impl MultiVm {
    /// Load every spec into one shared kernel (in pid order), register
    /// each with the kernel's process table, and park each VM ready to
    /// run.
    ///
    /// # Errors
    ///
    /// Loader failures, or a module without `main`.
    pub fn new(specs: Vec<ProcSpec>, cfg: MultiVmConfig) -> Result<MultiVm, VmError> {
        let mut kernel = SimKernel::new(cfg.kernel_mem);
        kernel.set_move_workers(cfg.move_workers);
        let mut vms = Vec::with_capacity(specs.len());
        let mut traditional = Vec::with_capacity(specs.len());
        for spec in specs {
            if let Some(plan) = spec.cfg.fault_plan.clone() {
                kernel.install_fault_plan(plan);
            }
            let mut table = AllocationTable::new();
            let image = kernel.load_unsigned(spec.module, &mut table, spec.cfg.load)?;
            let pid = kernel.register_proc(&spec.name, image.clone());
            debug_assert_eq!(pid.index(), vms.len());
            kernel.procs.checkin_table(pid, table);
            traditional.push(spec.cfg.mode == Mode::Traditional);
            let mut vm = Vm::from_parts(
                SimKernel::placeholder(),
                AllocationTable::new(),
                image,
                spec.cfg,
            );
            vm.start()?;
            vms.push(vm);
        }
        let outcomes = (0..vms.len()).map(|_| None).collect();
        Ok(MultiVm {
            kernel,
            vms,
            traditional,
            outcomes,
            cfg,
        })
    }

    /// Number of admitted processes.
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// Whether no process was admitted.
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// The live performance counters of process `pid` (the differential
    /// comparison target — kernel-side scheduling charges never appear
    /// here).
    pub fn counters(&self, pid: Pid) -> &PerfCounters {
        self.vms[pid.index()].counters()
    }

    /// Create a shared memory block of at least `len` bytes (page
    /// aligned up), mapped into no process yet.
    ///
    /// # Errors
    ///
    /// [`VmError::Kernel`] when no frames are left.
    pub fn shared_create(&mut self, len: u64) -> Result<SharedId, VmError> {
        Ok(self.kernel.shared_create(len)?)
    }

    /// Map shared block `id` into process `pid`'s region set and publish
    /// its base pointer into the storage of that process's global
    /// `global` — the block becomes a tracked allocation in the owner's
    /// table and the global's cell a registered escape, so a later
    /// kernel move of the block patches this owner's pointer too.
    pub fn shared_map(&mut self, pid: Pid, id: SharedId, global: usize) {
        self.kernel.shared_map(pid, id);
        let (base, len) = {
            let s = self.kernel.procs.shared(id).expect("live shared id");
            (s.base, s.len)
        };
        let cell = self.vms[pid.index()].image().globals[global];
        self.kernel.mem.write_uint(cell, base, 8);
        let mut table = self
            .kernel
            .procs
            .checkout_table(pid)
            .expect("shared_map between slices: table checked in");
        // Kernel-side setup, not guest instrumentation: track and resolve
        // directly against the table, charging the guest nothing.
        table.track_alloc(base, len, AllocKind::Heap);
        table.track_escape(cell);
        let mem = &self.kernel.mem;
        table.flush_escapes(|c| mem.read_u64(c));
        self.kernel.procs.checkin_table(pid, table);
    }

    /// Move shared block `id` to a fresh location in one world stop:
    /// every owner's escapes, dumped registers, heap bookkeeping, and
    /// guard-region map are patched. Callable between slices (every
    /// process quiesced). Returns the new base.
    ///
    /// # Errors
    ///
    /// Transactional: a typed kernel error (frame exhaustion, injected
    /// mid-move fault …) leaves every owner byte-identical to the
    /// pre-call state and is retryable.
    pub fn move_shared(&mut self, id: SharedId) -> Result<u64, VmError> {
        let owners = {
            let s = self.kernel.procs.shared(id).expect("live shared id");
            s.owners.clone()
        };
        // Quiesced by construction: escapes were flushed when each owner
        // was descheduled, and setup escapes were resolved eagerly.
        let mut regs: Vec<u64> = Vec::new();
        let mut spans = Vec::with_capacity(owners.len());
        let mut threads = 0usize;
        for &pid in &owners {
            let vm = &self.vms[pid.index()];
            let (r, map) = vm.snapshot_regs();
            spans.push((pid, regs.len(), r.len(), map));
            regs.extend(r);
            threads += vm.live_threads();
        }
        let (_world, outcome) = self.kernel.move_shared(id, &mut regs, threads)?;
        let delta = outcome.moved_dst.wrapping_sub(outcome.moved_src) as i64;
        for (pid, off, n, map) in &spans {
            let vm = &mut self.vms[pid.index()];
            vm.writeback_regs(&regs[*off..*off + *n], map);
            vm.apply_relocation(outcome.moved_src, outcome.moved_len, delta);
        }
        Ok(self.kernel.procs.shared(id).expect("live shared id").base)
    }

    /// Swap the real kernel into `pid`'s VM and hand it its allocation
    /// table, charging the modeled context-switch cost.
    fn schedule_in(&mut self, pid: Pid) {
        self.kernel.proc_switch(pid, self.traditional[pid.index()]);
        let table = self
            .kernel
            .procs
            .checkout_table(pid)
            .expect("descheduled process holds its table");
        let vm = &mut self.vms[pid.index()];
        vm.table = table;
        std::mem::swap(&mut self.kernel, &mut vm.kernel);
    }

    /// Flush the slice's pending escapes (so a cross-process move while
    /// descheduled sees every pointer cell), take the kernel home, and
    /// park the table back in the process entry.
    fn schedule_out(&mut self, pid: Pid) {
        let vm = &mut self.vms[pid.index()];
        vm.flush_escapes();
        std::mem::swap(&mut self.kernel, &mut vm.kernel);
        let table = std::mem::replace(&mut vm.table, AllocationTable::new());
        self.kernel.procs.checkin_table(pid, table);
    }

    /// Round-robin every runnable process to completion (or death) and
    /// report per-process outcomes. Infallible: every per-process error
    /// is captured in its report — an isolation violation in one tenant
    /// never stops the others.
    pub fn run(mut self) -> Vec<ProcReport> {
        let mut last: Option<Pid> = None;
        let mut slices: u64 = 0;
        while let Some(pid) = self.kernel.procs.next_runnable(last) {
            self.schedule_in(pid);
            let res = self.vms[pid.index()].run_slice(self.cfg.quantum);
            // Fold the final result while the real kernel and table are
            // still in the VM (the flush and audit need them).
            let done = match res {
                Ok(SliceExit::Quantum) => None,
                Ok(SliceExit::Finished(v)) => {
                    let rr = self.vms[pid.index()].finish_run(v);
                    Some(ProcOutcome::Finished(rr))
                }
                // Typed isolation violation: recorded below, after the
                // kernel is home (it owns the process table).
                Err(VmError::GuardFault { addr, len, write }) => {
                    Some(ProcOutcome::Fault(ProtectionFault {
                        pid,
                        addr,
                        len,
                        write,
                    }))
                }
                Err(e) => Some(ProcOutcome::Error(e)),
            };
            self.schedule_out(pid);
            if let Some(outcome) = done {
                match &outcome {
                    ProcOutcome::Fault(f) => {
                        self.kernel
                            .procs
                            .record_protection_fault(pid, f.addr, f.len, f.write);
                    }
                    ProcOutcome::Finished(rr) => {
                        if let Some(e) = self.kernel.procs.get_mut(pid) {
                            e.state = ProcState::Exited(rr.ret);
                        }
                    }
                    ProcOutcome::Error(_) => {
                        // Dead either way; `Exited(-1)` retires the pid so
                        // the scheduler never picks it again.
                        if let Some(e) = self.kernel.procs.get_mut(pid) {
                            e.state = ProcState::Exited(-1);
                        }
                    }
                }
                self.outcomes[pid.index()] = Some(outcome);
            }
            slices += 1;
            if self.cfg.pressure_every != 0 && slices.is_multiple_of(self.cfg.pressure_every) {
                self.pressure_pass();
            }
            last = Some(pid);
        }
        self.reports()
    }

    /// Background compaction under memory pressure: pick the victim with
    /// the most live escapes and relocate its worst page (journaled CARAT
    /// move) plus page its most-escaped allocation out. Kernel work on a
    /// descheduled tenant — charged to its [`ProcAccounting`], never its
    /// own counters. Recoverable kernel errors (frame exhaustion, world
    /// stops, injected faults) skip the pass; the kernel's transactional
    /// guarantees keep the victim intact.
    fn pressure_pass(&mut self) {
        let Some(victim) = self.kernel.procs.pick_compaction_victim() else {
            return;
        };
        // Compaction is a CARAT mechanism: moves rely on the victim's
        // tracking state and page-outs on its guards to page data back
        // in. A traditional-mode tenant has neither; leave it alone.
        if self.traditional[victim.index()] {
            return;
        }
        // Install the victim's region map: the move retargets the live
        // master list.
        self.kernel
            .proc_switch(victim, self.traditional[victim.index()]);
        let Some(mut table) = self.kernel.procs.checkout_table(victim) else {
            return;
        };
        let (mut moves, mut outs, mut cycles) = (0u64, 0u64, 0u64);
        let vm = &mut self.vms[victim.index()];
        let threads = vm.live_threads();
        // The move planner picks up to `pressure_batch` victim pages; the
        // batched arm coalesces them into one world-stop, the sequential
        // arm walks the same list with a stop per move.
        let victims = self
            .kernel
            .worst_pages(&table, self.cfg.pressure_batch.max(1));
        if self.cfg.batch_stops {
            if !victims.is_empty() {
                let reqs: Vec<(u64, u64)> = victims.iter().map(|&p| (p, 1)).collect();
                let (mut regs, map) = vm.snapshot_regs();
                if let Ok((world, outcomes)) = self
                    .kernel
                    .move_pages_batch(&mut table, &mut regs, &reqs, threads)
                {
                    vm.writeback_regs(&regs, &map);
                    cycles += world.cycles;
                    for outcome in &outcomes {
                        let delta = outcome.moved_dst.wrapping_sub(outcome.moved_src) as i64;
                        vm.apply_relocation(outcome.moved_src, outcome.moved_len, delta);
                        moves += 1;
                        cycles += outcome.cost.total();
                    }
                }
            }
        } else {
            for &page in &victims {
                let (mut regs, map) = vm.snapshot_regs();
                if let Ok((world, outcome)) = self
                    .kernel
                    .move_pages(&mut table, &mut regs, page, 1, threads)
                {
                    vm.writeback_regs(&regs, &map);
                    let delta = outcome.moved_dst.wrapping_sub(outcome.moved_src) as i64;
                    vm.apply_relocation(outcome.moved_src, outcome.moved_len, delta);
                    moves += 1;
                    cycles += world.cycles + outcome.cost.total();
                }
            }
        }
        let page_size = self.kernel.cost.page_size;
        let target = table
            .snapshot()
            .into_iter()
            .filter(|&(start, _, _, _)| !SimKernel::is_poison(start))
            .max_by_key(|&(_, _, escapes_live, _)| escapes_live)
            .map(|(start, _, _, _)| start / page_size * page_size);
        if let Some(page) = target {
            let (mut regs, map) = vm.snapshot_regs();
            if let Ok(Some((world, slot, src, len))) =
                self.kernel.page_out(&mut table, &mut regs, page, threads)
            {
                vm.writeback_regs(&regs, &map);
                let base = POISON_BASE + slot * POISON_SLOT_SPAN;
                vm.apply_relocation(src, len, base.wrapping_sub(src) as i64);
                outs += 1;
                cycles += world.cycles;
            }
        }
        self.kernel.procs.checkin_table(victim, table);
        if let Some(e) = self.kernel.procs.get_mut(victim) {
            e.accounting.pressure_moves += moves;
            e.accounting.pressure_page_outs += outs;
            e.accounting.compaction_cycles += cycles;
        }
    }

    fn reports(mut self) -> Vec<ProcReport> {
        let mut reports = Vec::with_capacity(self.vms.len());
        for (i, outcome) in self.outcomes.drain(..).enumerate() {
            let e = self
                .kernel
                .procs
                .get(Pid(i as u32))
                .expect("every vm is registered");
            reports.push(ProcReport {
                pid: e.pid,
                name: e.name.clone(),
                outcome: outcome.unwrap_or(ProcOutcome::Error(VmError::Trap(
                    "process never completed a slice".into(),
                ))),
                accounting: e.accounting,
            });
        }
        reports
    }
}
