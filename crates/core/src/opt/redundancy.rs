//! Opt 3 — AC/DC redundant-guard elimination.
//!
//! Available-expressions over pointer definitions (paper §4.1.1): a guard
//! whose pointer def was already validated — by an earlier guard or guarded
//! access — on **every** path, with at least the same extent, is removed.
//! Validation is killed by user calls and `free`, which may shrink the
//! valid-region set.

use super::{GuardClass, GuardClasses};
use carat_analysis::Cfg;
use carat_ir::{BlockId, Const, Function, Inst, Intrinsic, ValueId};
use std::collections::HashMap;

/// Run redundancy elimination on `f`. Marks eliminated guards in `classes`
/// and returns the number removed.
pub fn run(f: &mut Function, classes: &mut GuardClasses) -> usize {
    let cfg = Cfg::compute(f);
    let n = f.num_blocks();
    // Must-availability of validated extents: def -> guaranteed validated
    // size. `None` represents ⊤ (everything available) for not-yet-visited
    // inputs of the intersection.
    let mut block_in: Vec<Option<HashMap<ValueId, u64>>> = vec![None; n];
    let mut block_out: Vec<Option<HashMap<ValueId, u64>>> = vec![None; n];
    let entry = f.entry();
    block_in[entry.index()] = Some(HashMap::new());

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &cfg.rpo {
            let inp: HashMap<ValueId, u64> = if b == entry {
                HashMap::new()
            } else {
                let mut acc: Option<HashMap<ValueId, u64>> = None;
                for &p in &cfg.preds[b.index()] {
                    match (&acc, &block_out[p.index()]) {
                        (_, None) => {} // ⊤ input: identity for intersection
                        (None, Some(o)) => acc = Some(o.clone()),
                        (Some(_), Some(o)) => {
                            let a = acc.as_mut().expect("present");
                            a.retain(|k, sz| {
                                if let Some(osz) = o.get(k) {
                                    *sz = (*sz).min(*osz);
                                    true
                                } else {
                                    false
                                }
                            });
                        }
                    }
                }
                acc.unwrap_or_default()
            };
            if block_in[b.index()].as_ref() != Some(&inp) {
                block_in[b.index()] = Some(inp.clone());
                changed = true;
            }
            let mut cur = inp;
            for &v in &f.block(b).insts {
                if let Some(inst) = f.inst(v) {
                    apply(f, inst, &mut cur);
                }
            }
            if block_out[b.index()].as_ref() != Some(&cur) {
                block_out[b.index()] = Some(cur);
                changed = true;
            }
        }
    }

    // Removal walk.
    let mut removed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        removed += remove_in_block(
            f,
            b,
            block_in[b.index()].clone().unwrap_or_default(),
            classes,
        );
    }
    removed
}

/// Block-local redundancy elimination only — the "readily available,
/// generic" optimization level of Figure 3a, which any production compiler
/// performs without CARAT-specific analyses. No cross-block availability.
pub fn run_local(f: &mut Function, classes: &mut GuardClasses) -> usize {
    let mut removed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        removed += remove_in_block(f, b, HashMap::new(), classes);
    }
    removed
}

/// Transfer function for one instruction.
fn apply(f: &Function, inst: &Inst, cur: &mut HashMap<ValueId, u64>) {
    match inst {
        Inst::Call { .. } => cur.clear(),
        Inst::CallIntrinsic { intr, args } => match intr {
            Intrinsic::Free => cur.clear(),
            Intrinsic::GuardLoad | Intrinsic::GuardStore => {
                if let Some(sz) = const_of(f, args[1]) {
                    let e = cur.entry(args[0]).or_insert(0);
                    *e = (*e).max(sz as u64);
                }
            }
            _ => {}
        },
        Inst::Load { ty, addr } => {
            let e = cur.entry(*addr).or_insert(0);
            *e = (*e).max(ty.size());
        }
        Inst::Store { ty, addr, .. } => {
            let e = cur.entry(*addr).or_insert(0);
            *e = (*e).max(ty.size());
        }
        _ => {}
    }
}

fn remove_in_block(
    f: &mut Function,
    b: BlockId,
    mut cur: HashMap<ValueId, u64>,
    classes: &mut GuardClasses,
) -> usize {
    let mut to_remove = Vec::new();
    for &v in &f.block(b).insts {
        let Some(inst) = f.inst(v) else { continue };
        if let Inst::CallIntrinsic { intr, args } = inst {
            if matches!(intr, Intrinsic::GuardLoad | Intrinsic::GuardStore) {
                if let Some(sz) = const_of(f, args[1]) {
                    if cur.get(&args[0]).is_some_and(|&have| have >= sz as u64) {
                        to_remove.push(v);
                        // Do not apply this guard's GEN: it is being removed,
                        // but the def stays available from the earlier check,
                        // and the guarded access right after re-GENs anyway.
                        continue;
                    }
                }
            }
        }
        apply(f, inst, &mut cur);
    }
    for v in &to_remove {
        f.remove_from_block(*v);
        classes.mark(*v, GuardClass::Eliminated);
    }
    to_remove.len()
}

fn const_of(f: &Function, v: ValueId) -> Option<i64> {
    match f.inst(v) {
        Some(Inst::Const(Const::Int(x, _))) => Some(*x),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guards::{guard_ids, inject_guards, GuardConfig};
    use carat_ir::{verify_module, Module, ModuleBuilder, Pred, Type};

    /// Load then store through the same pointer: the store guard is
    /// redundant.
    fn load_store_same_ptr() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr], None);
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let v = b.load(Type::I64, b.arg(0));
            b.store(Type::I64, b.arg(0), v);
            b.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn removes_second_guard_on_same_def() {
        let mut m = load_store_same_ptr();
        inject_guards(&mut m, GuardConfig::default());
        let fid = m.func_by_name("f").unwrap();
        let guards = guard_ids(m.func(fid));
        assert_eq!(guards.len(), 2);
        let mut classes = GuardClasses::with_original(&guards);
        let n = run(m.func_mut(fid), &mut classes);
        assert_eq!(n, 1);
        assert_eq!(guard_ids(m.func(fid)).len(), 1);
        assert_eq!(classes.census().eliminated, 1);
        verify_module(&m).unwrap();
    }

    /// Smaller earlier validation must not cover a wider later access.
    #[test]
    fn wider_access_keeps_its_guard() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr], None);
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let v = b.load(Type::I8, b.arg(0));
            let _ = v;
            let w = b.const_i64(7);
            b.store(Type::I64, b.arg(0), w);
            b.ret(None);
        }
        let mut m = mb.finish();
        inject_guards(&mut m, GuardConfig::default());
        let fid = m.func_by_name("f").unwrap();
        let guards = guard_ids(m.func(fid));
        let mut classes = GuardClasses::with_original(&guards);
        let n = run(m.func_mut(fid), &mut classes);
        assert_eq!(n, 0, "1-byte validation cannot cover an 8-byte store");
    }

    /// A call between accesses kills availability.
    #[test]
    fn call_kills_availability() {
        let mut mb = ModuleBuilder::new("m");
        let callee = {
            let mbi = ModuleBuilder::new("x");
            let _ = mbi;

            mb.declare("callee", vec![], None)
        };
        let f = mb.declare("f", vec![Type::Ptr], None);
        {
            let mut b = mb.define(callee);
            let e = b.block("entry");
            b.switch_to(e);
            b.ret(None);
        }
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let v = b.load(Type::I64, b.arg(0));
            b.call(callee, vec![], None);
            b.store(Type::I64, b.arg(0), v);
            b.ret(None);
        }
        let mut m = mb.finish();
        inject_guards(
            &mut m,
            GuardConfig {
                loads: true,
                stores: true,
                calls: false,
            },
        );
        let fid = m.func_by_name("f").unwrap();
        let guards = guard_ids(m.func(fid));
        let mut classes = GuardClasses::with_original(&guards);
        let n = run(m.func_mut(fid), &mut classes);
        assert_eq!(n, 0, "call may change regions; both guards stay");
    }

    /// Redundancy works across blocks when all paths validate.
    #[test]
    fn diamond_with_validation_on_both_arms() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr, Type::I1], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let t = b.block("t");
            let fl = b.block("fl");
            let j = b.block("join");
            b.switch_to(e);
            b.br(b.arg(1), t, fl);
            b.switch_to(t);
            let _x = b.load(Type::I64, b.arg(0));
            b.jmp(j);
            b.switch_to(fl);
            let _y = b.load(Type::I64, b.arg(0));
            b.jmp(j);
            b.switch_to(j);
            let z = b.load(Type::I64, b.arg(0));
            b.ret(Some(z));
        }
        let mut m = mb.finish();
        inject_guards(&mut m, GuardConfig::default());
        let fid = m.func_by_name("f").unwrap();
        let guards = guard_ids(m.func(fid));
        assert_eq!(guards.len(), 3);
        let mut classes = GuardClasses::with_original(&guards);
        let n = run(m.func_mut(fid), &mut classes);
        assert_eq!(n, 1, "only the join guard is removable");
        verify_module(&m).unwrap();
    }

    /// In a loop body, the guard before a second access of the same def in
    /// the same iteration is removed, but the header-crossing one stays.
    #[test]
    fn loop_intra_iteration_redundancy() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare("f", vec![Type::Ptr, Type::I64], None);
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            let h = b.block("h");
            let body = b.block("body");
            let x = b.block("x");
            b.switch_to(e);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, zero)]);
            let c = b.icmp(Pred::Slt, i, b.arg(1));
            b.br(c, body, x);
            b.switch_to(body);
            let v = b.load(Type::I64, b.arg(0));
            b.store(Type::I64, b.arg(0), v);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, body, i2);
            b.jmp(h);
            b.switch_to(x);
            b.ret(None);
        }
        let mut m = mb.finish();
        inject_guards(&mut m, GuardConfig::default());
        let fid = m.func_by_name("f").unwrap();
        let guards = guard_ids(m.func(fid));
        assert_eq!(guards.len(), 2);
        let mut classes = GuardClasses::with_original(&guards);
        let n = run(m.func_mut(fid), &mut classes);
        assert_eq!(n, 1, "store guard redundant after load in same iteration");
        verify_module(&m).unwrap();
    }
}
