//! Host-side interpreter throughput: wall-clock ns per retired IR
//! instruction and MIPS for the superinstruction (fused) engine, with the
//! pre-decoded engine and the retained reference interpreter as the
//! comparison points, across the whole workload suite.
//!
//! Unlike every other experiment (which reports *simulated* cycles), this
//! one measures the *host* cost of simulation itself — the number the
//! decoded-engine refactor and the fusion pass exist to improve.
//! Workloads are compiled uninstrumented (`Variant::Baseline`) so the
//! timing isolates the interpreter loop rather than the guard/tracking
//! runtime it calls into.
//!
//! Usage: `interp_throughput [--scale test|small|full] [--only a,b]
//! [--engine reference|decoded|fused] [--reference] [--out PATH]`.
//! `--engine X` times only engine X, after verifying its counters against
//! the reference interpreter (a divergence panics — this is the CI smoke
//! mode). `--reference` is a legacy alias for `--engine reference`. The
//! default times all three engines with interleaved reps and reports both
//! speedup columns. Results are also written as JSON (default
//! `BENCH_interp.json`).

use std::time::Instant;

use carat_bench::{compile, print_table, scale_from_args, selected_workloads, Variant};
use carat_ir::Module;
use carat_vm::{Engine, RunResult, Vm, VmConfig};

/// Wall-clock one run; returns (elapsed ns, full run result).
fn time_run(module: Module, engine: Engine) -> (f64, RunResult) {
    let cfg = VmConfig {
        engine,
        ..VmConfig::default()
    };
    let vm = Vm::new(module, cfg).expect("load");
    let start = Instant::now();
    let r = vm.run().expect("run");
    let ns = start.elapsed().as_nanos() as f64;
    (ns, r)
}

/// Best-of-N for all three engines, reps interleaved so a noisy stretch
/// of host time degrades every measurement instead of biasing one.
/// Asserts that every engine retires the same instructions with the same
/// simulated counters — the fused engine is only a win if it changes host
/// nanoseconds and nothing else.
fn best_of_triple(module: &Module, reps: usize) -> (f64, f64, f64, u64, f64) {
    let mut best_ref = f64::INFINITY;
    let mut best_dec = f64::INFINITY;
    let mut best_fus = f64::INFINITY;
    let mut insts = 0;
    let mut fused_fraction = 0.0;
    for _ in 0..reps {
        let (ns, r) = time_run(module.clone(), Engine::Reference);
        best_ref = best_ref.min(ns);
        insts = r.counters.instructions;
        let base = r.counters;
        let (ns, r) = time_run(module.clone(), Engine::Decoded);
        best_dec = best_dec.min(ns);
        assert_eq!(base, r.counters, "decoded engine diverged from reference");
        let (ns, r) = time_run(module.clone(), Engine::Fused);
        best_fus = best_fus.min(ns);
        assert_eq!(base, r.counters, "fused engine diverged from reference");
        fused_fraction = r.fusion.fused_instructions() as f64 / insts.max(1) as f64;
    }
    (best_ref, best_dec, best_fus, insts, fused_fraction)
}

/// Time a single engine, best-of-N, after one counter-verification run
/// against the reference interpreter. Panics on divergence.
fn best_of_single(module: &Module, reps: usize, engine: Engine) -> (f64, u64) {
    if engine != Engine::Reference {
        let (_, base) = time_run(module.clone(), Engine::Reference);
        let (_, r) = time_run(module.clone(), engine);
        assert_eq!(
            base.counters, r.counters,
            "{engine:?} engine diverged from reference"
        );
    }
    let mut best = f64::INFINITY;
    let mut insts = 0;
    for _ in 0..reps {
        let (ns, r) = time_run(module.clone(), engine);
        best = best.min(ns);
        insts = r.counters.instructions;
    }
    (best, insts)
}

struct Row {
    name: String,
    insts: u64,
    reference_ns_per_inst: f64,
    decoded_ns_per_inst: f64,
    fused_ns_per_inst: f64,
    fused_fraction: f64,
}

impl Row {
    fn mips(ns_per_inst: f64) -> f64 {
        1e3 / ns_per_inst
    }
}

fn parse_engine(args: &[String]) -> Option<Engine> {
    if args.iter().any(|a| a == "--reference") {
        return Some(Engine::Reference);
    }
    let val = args.windows(2).find(|w| w[0] == "--engine").map(|w| &w[1]);
    match val.map(String::as_str) {
        None => None,
        Some("reference") => Some(Engine::Reference),
        Some("decoded") => Some(Engine::Decoded),
        Some("fused") => Some(Engine::Fused),
        Some(other) => {
            eprintln!("error: unknown engine '{other}' (want reference|decoded|fused)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let single_engine = parse_engine(&args);
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_interp.json".to_string());
    let scale = scale_from_args();
    let reps = 7;

    let selected = selected_workloads();
    if selected.is_empty() {
        eprintln!("error: --only matched no workloads");
        std::process::exit(2);
    }

    if let Some(engine) = single_engine {
        // A/B and CI smoke mode: one engine, counters verified against
        // the reference interpreter, no JSON artifact.
        println!("Interpreter throughput ({scale:?} scale, {engine:?} only, best of {reps})\n");
        let mut table = Vec::new();
        for w in selected {
            let m = compile(&w, scale, Variant::Baseline);
            let (ns, insts) = best_of_single(&m, reps, engine);
            let per = ns / insts.max(1) as f64;
            table.push(vec![
                w.name.to_string(),
                format!("{insts}"),
                format!("{per:.1}"),
                format!("{:.1}", Row::mips(per)),
            ]);
        }
        print_table(&["workload", "IR insts", "ns/inst", "MIPS"], &table);
        println!("\ncounters verified against reference: OK");
        return;
    }

    println!("Interpreter throughput ({scale:?} scale, best of {reps})\n");
    let mut rows: Vec<Row> = Vec::new();
    for w in selected {
        let m = compile(&w, scale, Variant::Baseline);
        let (ref_ns, dec_ns, fus_ns, insts, fused_fraction) = best_of_triple(&m, reps);
        let per = |ns: f64| ns / insts.max(1) as f64;
        rows.push(Row {
            name: w.name.to_string(),
            insts,
            reference_ns_per_inst: per(ref_ns),
            decoded_ns_per_inst: per(dec_ns),
            fused_ns_per_inst: per(fus_ns),
            fused_fraction,
        });
    }

    let mut table = Vec::new();
    let mut dec_vs_ref = Vec::new();
    let mut fus_vs_ref = Vec::new();
    let mut fus_vs_dec = Vec::new();
    let mut at_least_3x = 0usize;
    for r in &rows {
        let dvr = r.reference_ns_per_inst / r.decoded_ns_per_inst;
        let fvr = r.reference_ns_per_inst / r.fused_ns_per_inst;
        let fvd = r.decoded_ns_per_inst / r.fused_ns_per_inst;
        if fvr >= 3.0 {
            at_least_3x += 1;
        }
        dec_vs_ref.push(dvr);
        fus_vs_ref.push(fvr);
        fus_vs_dec.push(fvd);
        table.push(vec![
            r.name.clone(),
            format!("{}", r.insts),
            format!("{:.1}", r.reference_ns_per_inst),
            format!("{:.1}", r.decoded_ns_per_inst),
            format!("{:.1}", r.fused_ns_per_inst),
            format!("{:.0}%", r.fused_fraction * 100.0),
            format!("{fvr:.2}x"),
            format!("{fvd:.2}x"),
        ]);
    }
    print_table(
        &[
            "workload", "IR insts", "ref ns/i", "dec ns/i", "fus ns/i", "fused", "vs ref", "vs dec",
        ],
        &table,
    );
    println!(
        "\nGeomean fused speedup {:.2}x vs reference ({:.2}x vs decoded, decoded alone {:.2}x); >=3x on {}/{} workloads",
        carat_bench::geomean(&fus_vs_ref),
        carat_bench::geomean(&fus_vs_dec),
        carat_bench::geomean(&dec_vs_ref),
        at_least_3x,
        rows.len()
    );

    // Hand-rolled JSON: no serde in the dependency closure. Legacy
    // field names (decoded vs reference) are preserved so older tooling
    // keeps parsing; fused columns are additive.
    let mut json = String::from("{\n  \"scale\": \"");
    json.push_str(&format!("{scale:?}"));
    json.push_str("\",\n  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ir_instructions\": {}, \
             \"reference_ns_per_inst\": {:.3}, \"reference_mips\": {:.3}, \
             \"decoded_ns_per_inst\": {:.3}, \"decoded_mips\": {:.3}, \
             \"fused_ns_per_inst\": {:.3}, \"fused_mips\": {:.3}, \
             \"fused_fraction\": {:.4}, \
             \"speedup\": {:.3}, \"fused_speedup_vs_reference\": {:.3}, \
             \"fused_speedup_vs_decoded\": {:.3}}}{}\n",
            r.name,
            r.insts,
            r.reference_ns_per_inst,
            Row::mips(r.reference_ns_per_inst),
            r.decoded_ns_per_inst,
            Row::mips(r.decoded_ns_per_inst),
            r.fused_ns_per_inst,
            Row::mips(r.fused_ns_per_inst),
            r.fused_fraction,
            r.reference_ns_per_inst / r.decoded_ns_per_inst,
            r.reference_ns_per_inst / r.fused_ns_per_inst,
            r.decoded_ns_per_inst / r.fused_ns_per_inst,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    // The dedup outlier investigation (ISSUE 3 satellite): profiling
    // showed the old per-instruction scheduler rotation scan — not a
    // hashing hot spot — cost dedup ~33% of its host time (16.8 ns/inst,
    // 1.77x). The instruction-quantum scheduler (`VmConfig::sched_quantum`)
    // fixed it; the "after" is dedup's row above.
    let dedup_after = rows.iter().find(|r| r.name == "dedup");
    json.push_str(&format!(
        "  ],\n  \"dedup_outlier_fix\": {{\"before_ns_per_inst\": 16.8, \
         \"before_speedup\": 1.77, \"after_ns_per_inst\": {}, \
         \"cause\": \"per-instruction scheduler rotation scan\", \
         \"fix\": \"instruction-quantum round-robin (sched_quantum)\"}},\n",
        dedup_after
            .map(|r| format!("{:.3}", r.fused_ns_per_inst))
            .unwrap_or_else(|| "null".into()),
    ));
    json.push_str(&format!(
        "  \"geomean_speedup\": {:.3},\n  \"fused_geomean_vs_reference\": {:.3},\n  \
         \"fused_geomean_vs_decoded\": {:.3},\n  \"workloads_at_3x\": {}\n}}\n",
        carat_bench::geomean(&dec_vs_ref),
        carat_bench::geomean(&fus_vs_ref),
        carat_bench::geomean(&fus_vs_dec),
        at_least_3x
    ));
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");
}
