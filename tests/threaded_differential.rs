//! Differential tests for the threaded-code engine tier.
//!
//! Unlike fusion (`tests/fused_differential.rs`), the threaded tier is
//! *not* accounting-neutral: proof-elided guards vanish from the decoded
//! stream, so the threaded engine legitimately retires fewer
//! instructions and fewer guards than the fused engine. What must stay
//! byte-identical is the program's *semantics* — return value, printed
//! output, loads, stores, calls, allocation behavior — and the removed
//! guards must be fully accounted: for complete runs without swap
//! injection,
//!
//! ```text
//! fused.guards_executed ==
//!     threaded.guards_executed + threaded.guards_elided - threaded.guards_hoisted
//! ```
//!
//! (each hoisted preheader check is one extra `guards_executed` on the
//! threaded side that the fused stream never ran, so it is subtracted
//! back out). Swap injection is excluded from the invariant tests only
//! because a poison page-in retry re-runs the *same* guard and bumps
//! `guards_executed` at data-dependent points in both engines.

use carat_suite::core::{CaratCompiler, CompileOptions, OptPreset};
use carat_suite::frontend::compile_cm;
use carat_suite::ir::Module;
use carat_suite::vm::{
    Engine, Mode, MoveDriverConfig, RunResult, SwapDriverConfig, ThreadedOpts, Vm, VmConfig,
};
use carat_suite::workloads::{all_workloads, Scale};
use proptest::prelude::*;

/// Run `module` under `cfg` with the given engine.
fn run_engine(module: Module, cfg: &VmConfig, engine: Engine) -> RunResult {
    let cfg = VmConfig {
        engine,
        ..cfg.clone()
    };
    Vm::new(module, cfg).expect("load").run().expect("run")
}

/// Assert that the threaded engine preserves every semantic observable of
/// the fused run, and return `(threaded, fused)` for further checks.
fn assert_semantics(module: &Module, cfg: &VmConfig, what: &str) -> (RunResult, RunResult) {
    let thr = run_engine(module.clone(), cfg, Engine::Threaded);
    let fus = run_engine(module.clone(), cfg, Engine::Fused);
    assert_eq!(thr.ret, fus.ret, "{what}: return value");
    assert_eq!(thr.output, fus.output, "{what}: output");
    assert_eq!(thr.counters.loads, fus.counters.loads, "{what}: loads");
    assert_eq!(thr.counters.stores, fus.counters.stores, "{what}: stores");
    assert_eq!(thr.counters.calls, fus.counters.calls, "{what}: calls");
    assert_eq!(thr.page_allocs, fus.page_allocs, "{what}: page allocs");
    assert_eq!(
        thr.peak_heap_bytes, fus.peak_heap_bytes,
        "{what}: peak heap"
    );
    assert!(
        thr.counters.instructions <= fus.counters.instructions,
        "{what}: threaded never retires more instructions than fused \
         ({} > {})",
        thr.counters.instructions,
        fus.counters.instructions,
    );
    (thr, fus)
}

/// The guard-accounting invariant for complete, swap-free runs.
fn assert_guard_accounting(thr: &RunResult, fus: &RunResult, what: &str) {
    assert_eq!(
        fus.counters.guards_executed,
        thr.counters.guards_executed + thr.counters.guards_elided - thr.counters.guards_hoisted,
        "{what}: every elided guard accounted (fused {} vs threaded {} + {} elided - {} hoisted)",
        fus.counters.guards_executed,
        thr.counters.guards_executed,
        thr.counters.guards_elided,
        thr.counters.guards_hoisted,
    );
}

fn compile(module: Module, options: CompileOptions) -> Module {
    CaratCompiler::new(options)
        .compile(module)
        .expect("carat compile")
        .module
}

/// Guards + tracking with only block-local (generic) guard optimization:
/// the substrate where loop guards survive to decode time and the
/// threaded tier's whole-trip proofs take over the loop-aware role the
/// `CaratSpecific` IR preset plays at compile time.
fn carat_general() -> CompileOptions {
    CompileOptions {
        preset: OptPreset::General,
        ..CompileOptions::default()
    }
}

/// Workloads with affine hot loops whose guards the prover must elide
/// under the [`carat_general`] build. (`freqmine` and `xalancbmk` are
/// deliberately absent: their hot paths are recursive pointer chasing,
/// which no affine whole-trip proof can cover.)
const LOOP_HEAVY: &[&str] = &[
    "hpccg",
    "cg",
    "ft",
    "blackscholes",
    "canneal",
    "streamcluster",
    "deepsjeng",
    "lbm",
    "mcf",
    "nab",
    "xz",
    "dedup",
];

/// Every workload, traditional paging mode (uninstrumented baseline
/// build): no guards exist, so the threaded tier is pure superblock
/// chaining — semantics identical, nothing elided.
#[test]
fn all_workloads_agree_in_traditional_mode() {
    for w in all_workloads() {
        let module = w.module(Scale::Test).expect("frontend");
        let m = compile(module, CompileOptions::baseline());
        let cfg = VmConfig {
            mode: Mode::Traditional,
            ..VmConfig::default()
        };
        let (thr, fus) = assert_semantics(&m, &cfg, &format!("{} (traditional)", w.name));
        assert_guard_accounting(&thr, &fus, &format!("{} (traditional)", w.name));
        assert_eq!(
            thr.counters.guards_elided, 0,
            "{}: no guards to elide",
            w.name
        );
    }
}

/// Every workload under the fully optimized build (`CaratSpecific` IR
/// passes already hoisted the easy guards): semantics identical and the
/// accounting closed over whatever residue the decode-time prover finds.
#[test]
fn all_workloads_agree_in_carat_mode() {
    for w in all_workloads() {
        let module = w.module(Scale::Test).expect("frontend");
        let m = compile(module, CompileOptions::default());
        let cfg = VmConfig::default();
        let (thr, fus) = assert_semantics(&m, &cfg, &format!("{} (carat)", w.name));
        assert_guard_accounting(&thr, &fus, &format!("{} (carat)", w.name));
    }
}

/// Every workload under the generic-optimization build, where loop guards
/// survive to decode time: semantics identical, accounting closed, and
/// the proof engine elides on every loop-heavy workload.
#[test]
fn all_workloads_agree_with_decode_time_elision() {
    for w in all_workloads() {
        let module = w.module(Scale::Test).expect("frontend");
        let m = compile(module, carat_general());
        let cfg = VmConfig::default();
        let (thr, fus) = assert_semantics(&m, &cfg, &format!("{} (general)", w.name));
        assert_guard_accounting(&thr, &fus, &format!("{} (general)", w.name));
        if LOOP_HEAVY.contains(&w.name) {
            assert!(
                thr.counters.guards_elided > 0,
                "{}: loop-heavy workload must have proof-elided guards",
                w.name
            );
            assert!(
                thr.counters.guards_hoisted > 0,
                "{}: elision implies at least one hoisted preheader check",
                w.name
            );
        }
    }
}

/// The ablation matrix (none / elide / elide+hoist) preserves both the
/// semantics and the accounting invariant in every mode, and each mode's
/// counters have the expected shape.
#[test]
fn ablation_modes_preserve_invariant() {
    for name in ["hpccg", "mcf", "ft"] {
        let w = carat_suite::workloads::by_name(name).expect("workload");
        let module = w.module(Scale::Test).expect("frontend");
        let m = compile(module, carat_general());
        for (mode, opts) in [
            (
                "none",
                ThreadedOpts {
                    elide: false,
                    hoist: false,
                },
            ),
            (
                "elide",
                ThreadedOpts {
                    elide: true,
                    hoist: false,
                },
            ),
            (
                "elide+hoist",
                ThreadedOpts {
                    elide: true,
                    hoist: true,
                },
            ),
        ] {
            let cfg = VmConfig {
                threaded: opts,
                ..VmConfig::default()
            };
            let what = format!("{name} ({mode})");
            let (thr, fus) = assert_semantics(&m, &cfg, &what);
            assert_guard_accounting(&thr, &fus, &what);
            match mode {
                "none" => {
                    assert_eq!(thr.counters.guards_elided, 0, "{what}");
                    assert_eq!(thr.counters.guards_hoisted, 0, "{what}");
                }
                "elide" => {
                    assert!(thr.counters.guards_elided > 0, "{what}");
                    assert_eq!(thr.counters.guards_hoisted, 0, "{what}");
                }
                _ => {
                    assert!(thr.counters.guards_elided > 0, "{what}");
                    assert!(thr.counters.guards_hoisted > 0, "{what}");
                }
            }
        }
    }
}

/// Page moves under a *saturating* driver (period short enough that both
/// engines exhaust `max_moves` long before the run ends): the engines
/// stop the world at different cycle counts, but the number of move
/// episodes — and the final program state — must agree.
#[test]
fn saturated_moves_agree_across_engines() {
    for name in ["mcf", "canneal", "freqmine"] {
        let w = carat_suite::workloads::by_name(name).expect("workload");
        let module = w.module(Scale::Test).expect("frontend");
        let m = compile(module, CompileOptions::default());
        let cfg = VmConfig {
            move_driver: Some(MoveDriverConfig {
                period_cycles: 10_000,
                max_moves: 8,
            }),
            ..VmConfig::default()
        };
        let (thr, fus) = assert_semantics(&m, &cfg, &format!("{name} (moves)"));
        assert_eq!(
            thr.counters.moves, 8,
            "{name}: threaded saturates the driver"
        );
        assert_eq!(fus.counters.moves, 8, "{name}: fused saturates the driver");
    }
}

/// Swap injection with elided guards: paged-out data is poisoned, and an
/// access whose guard was proven away must still fault the data back in
/// through the hardware poison path (the paper's safety net for
/// guard-optimized accesses). Counters legitimately diverge; results
/// must not.
#[test]
fn swapped_data_survives_guard_elision() {
    for name in ["mcf", "dedup"] {
        let w = carat_suite::workloads::by_name(name).expect("workload");
        let module = w.module(Scale::Test).expect("frontend");
        let m = compile(module, carat_general());
        let cfg = VmConfig {
            swap_driver: Some(SwapDriverConfig {
                period_cycles: 60_000,
                max_swaps: 10,
            }),
            ..VmConfig::default()
        };
        let thr = run_engine(m.clone(), &cfg, Engine::Threaded);
        let fus = run_engine(m.clone(), &cfg, Engine::Fused);
        assert_eq!(thr.ret, fus.ret, "{name}: return value");
        assert_eq!(thr.output, fus.output, "{name}: output");
        assert!(
            thr.counters.guards_elided > 0,
            "{name}: guards were elided during the swap run"
        );
        assert!(
            thr.counters.swap_ins > 0,
            "{name}: poisoned data was faulted back in"
        );
    }
}

/// Multi-threaded guest with parked threads and a saturating move driver:
/// the scheduler rotates on retired instructions, so interleavings differ
/// between engines — but the joined result, the memory traffic, and the
/// saturated move count must agree.
#[test]
fn guest_threads_agree_across_engines() {
    let src = "
        int* shared;
        int work(int lo) {
            for (int i = lo; i < lo + 300; i += 1) { shared[i] = i * 7; }
            return lo;
        }
        int main() {
            shared = (int*) malloc(1200 * sizeof(int));
            int t0 = spawn(work, 0);
            int t1 = spawn(work, 300);
            int t2 = spawn(work, 600);
            int done = join(t0) + join(t1) + join(t2);
            for (int i = 900; i < 1200; i += 1) { shared[i] = i * 7; }
            int s = done * 0;
            for (int i = 0; i < 1200; i += 1) { s += shared[i]; }
            free(shared);
            return s % 1000000;
        }
    ";
    let module = compile_cm("stops", src).expect("frontend");
    let m = compile(module, CompileOptions::default());
    let cfg = VmConfig {
        move_driver: Some(MoveDriverConfig {
            period_cycles: 10_000,
            max_moves: 8,
        }),
        extra_threads: 2,
        ..VmConfig::default()
    };
    let (thr, fus) = assert_semantics(&m, &cfg, "guest threads");
    assert_eq!(thr.counters.moves, 8, "threaded saturates the driver");
    assert_eq!(fus.counters.moves, 8, "fused saturates the driver");
}

/// Deterministically generate a loop-heavy random Cm program: counted
/// affine loops the prover can elide, loops with invariant cell accesses,
/// strided loops, and loops whose pointer escapes into a global (which
/// must defeat elision-unsafe reasoning, not crash it).
fn gen_loop_program(seed: u64) -> String {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let n = 32 + (next() % 96); // array length
    let mut body = String::new();
    body.push_str(&format!("    int n = {n};\n"));
    body.push_str("    int* a = (int*) malloc(n * sizeof(int));\n");
    body.push_str("    int* b = (int*) malloc(n * sizeof(int));\n");
    body.push_str("    esc = b;\n"); // b escapes to a global
    body.push_str("    int s = 0;\n");
    let stmts = 3 + next() % 5;
    for k in 0..stmts {
        let c = 1 + (next() % 9) as i64;
        let d = (next() % 64) as i64;
        let stride = 1 + (next() % 3) as i64;
        match next() % 6 {
            0 => body.push_str(&format!(
                "    for (int i{k} = 0; i{k} < n; i{k} += 1) {{ a[i{k}] = i{k} * {c} + {d}; }}\n"
            )),
            1 => body.push_str(&format!(
                "    for (int i{k} = 0; i{k} < n; i{k} += {stride}) {{ s += a[i{k}]; }}\n"
            )),
            2 => body.push_str(&format!(
                "    for (int i{k} = 0; i{k} < n; i{k} += 1) {{ s += a[0] + {c}; }}\n"
            )),
            3 => body.push_str(&format!(
                "    for (int i{k} = 0; i{k} < n; i{k} += 1) {{ esc[i{k}] = s + i{k}; }}\n"
            )),
            4 => body.push_str(&format!(
                "    for (int i{k} = {d}; i{k} < n; i{k} += 1) {{ if (a[i{k}] > {d}) {{ s += {c}; }} }}\n"
            )),
            _ => body.push_str(&format!(
                "    for (int i{k} = 0; i{k} < n; i{k} += 1) {{ b[i{k}] = a[i{k}] * {c}; }}\n"
            )),
        }
    }
    body.push_str("    for (int j = 0; j < n; j += 1) { s += b[j]; }\n");
    body.push_str("    free(a);\n    free(b);\n    return s % 1000000;\n");
    format!("int* esc;\nint main() {{\n{body}}}\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Random loop-heavy programs: the threaded engine agrees with fused
    /// and reference on semantics, and the guard accounting closes, in
    /// both the instrumented CARAT build and the traditional baseline.
    #[test]
    fn random_loop_programs_agree(seed in 0u64..1_000_000) {
        let src = gen_loop_program(seed);
        let module = compile_cm("prop", &src).expect("generated program compiles");
        for (opts, mode) in [
            (CompileOptions::default(), Mode::Carat),
            (CompileOptions::baseline(), Mode::Traditional),
        ] {
            let m = compile(module.clone(), opts);
            let cfg = VmConfig { mode, ..VmConfig::default() };
            let thr = run_engine(m.clone(), &cfg, Engine::Threaded);
            let fus = run_engine(m.clone(), &cfg, Engine::Fused);
            let refr = run_engine(m, &cfg, Engine::Reference);
            prop_assert_eq!(thr.ret, fus.ret, "seed {} ({:?}) ret", seed, mode);
            prop_assert_eq!(thr.ret, refr.ret, "seed {} ({:?}) ref ret", seed, mode);
            prop_assert_eq!(&thr.output, &fus.output, "seed {} ({:?}) output", seed, mode);
            prop_assert_eq!(thr.counters.loads, fus.counters.loads, "seed {} ({:?}) loads", seed, mode);
            prop_assert_eq!(thr.counters.stores, fus.counters.stores, "seed {} ({:?}) stores", seed, mode);
            prop_assert_eq!(thr.counters.calls, fus.counters.calls, "seed {} ({:?}) calls", seed, mode);
            prop_assert_eq!(
                fus.counters.guards_executed,
                thr.counters.guards_executed + thr.counters.guards_elided
                    - thr.counters.guards_hoisted,
                "seed {} ({:?}) guard accounting", seed, mode
            );
        }
    }
}
