//! Run every table/figure binary's logic in sequence (convenience driver
//! for regenerating EXPERIMENTS.md numbers). Each experiment is also
//! available as its own binary; see DESIGN.md.

use std::process::Command;

fn main() {
    let exes = [
        "fig2_dtlb_misses",
        "table1_guard_opts",
        "fig3_guard_overhead",
        "fig4_region_guards",
        "table2_paging_rates",
        "fig5_escape_histogram",
        "fig6_memory_overhead",
        "fig7_tracking_overhead",
        "fig9_move_overhead",
        "table3_move_breakdown",
        "region_fragmentation",
        "fault_overhead",
        "multiproc_isolation",
    ];
    let args: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for exe in exes {
        println!("\n=== {exe} ===\n");
        let mut extra: Vec<String> = args.clone();
        if exe == "fig3_guard_overhead" {
            // Run both sub-figures.
            for mode in ["general", "carat"] {
                let mut cmd_args = vec![mode.to_string()];
                cmd_args.extend(args.clone());
                let status = Command::new(dir.join(exe))
                    .args(&cmd_args)
                    .status()
                    .expect("spawn");
                assert!(status.success(), "{exe} {mode} failed");
            }
            continue;
        }
        let status = Command::new(dir.join(exe))
            .args(&mut extra)
            .status()
            .expect("spawn");
        assert!(status.success(), "{exe} failed");
    }
    println!("\nAll experiments completed.");
}
