//! A from-scratch red/black tree.
//!
//! The CARAT prototype's Allocation Table "is currently implemented as a
//! C++ red/black tree whose key is the address of an allocated block"; this
//! is the equivalent structure, arena-backed, with the order queries the
//! runtime needs (`floor`: greatest key ≤ x) and full delete support.
//!
//! Verified against `BTreeMap` by property tests and by an internal
//! invariant checker.

use std::cmp::Ordering;
use std::fmt;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    // `None` only for freed slots: avoids unsafe moves on removal.
    val: Option<V>,
    left: u32,
    right: u32,
    parent: u32,
    color: Color,
}

/// An ordered map implemented as a red/black tree.
#[derive(Clone)]
pub struct RbTree<K, V> {
    nodes: Vec<Node<K, V>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl<K: fmt::Debug + Ord, V: fmt::Debug> fmt::Debug for RbTree<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord, V> Default for RbTree<K, V> {
    fn default() -> RbTree<K, V> {
        RbTree::new()
    }
}

impl<K: Ord, V> RbTree<K, V> {
    /// An empty tree.
    pub fn new() -> RbTree<K, V> {
        RbTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint in bytes (used for the Figure 6 memory
    /// overhead accounting).
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node<K, V>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    fn node(&self, i: u32) -> &Node<K, V> {
        &self.nodes[i as usize]
    }

    fn node_mut(&mut self, i: u32) -> &mut Node<K, V> {
        &mut self.nodes[i as usize]
    }

    fn color(&self, i: u32) -> Color {
        if i == NIL {
            Color::Black
        } else {
            self.node(i).color
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let i = self.find(key)?;
        self.node(i).val.as_ref()
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let i = self.find(key)?;
        self.node_mut(i).val.as_mut()
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.find(key).is_some()
    }

    fn find(&self, key: &K) -> Option<u32> {
        let mut cur = self.root;
        while cur != NIL {
            match key.cmp(&self.node(cur).key) {
                Ordering::Less => cur = self.node(cur).left,
                Ordering::Greater => cur = self.node(cur).right,
                Ordering::Equal => return Some(cur),
            }
        }
        None
    }

    /// Greatest entry with key ≤ `key` — the query the allocation table
    /// uses to find the allocation containing an address.
    pub fn floor(&self, key: &K) -> Option<(&K, &V)> {
        let mut cur = self.root;
        let mut best = NIL;
        while cur != NIL {
            match key.cmp(&self.node(cur).key) {
                Ordering::Less => cur = self.node(cur).left,
                Ordering::Equal => {
                    best = cur;
                    break;
                }
                Ordering::Greater => {
                    best = cur;
                    cur = self.node(cur).right;
                }
            }
        }
        (best != NIL).then(|| {
            let n = self.node(best);
            (&n.key, n.val.as_ref().expect("live node has a value"))
        })
    }

    /// Insert; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        // BST insert.
        let mut parent = NIL;
        let mut cur = self.root;
        while cur != NIL {
            parent = cur;
            match key.cmp(&self.node(cur).key) {
                Ordering::Less => cur = self.node(cur).left,
                Ordering::Greater => cur = self.node(cur).right,
                Ordering::Equal => {
                    return self.node_mut(cur).val.replace(val);
                }
            }
        }
        let fresh = Node {
            key,
            val: Some(val),
            left: NIL,
            right: NIL,
            parent,
            color: Color::Red,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = fresh;
                i
            }
            None => {
                self.nodes.push(fresh);
                (self.nodes.len() - 1) as u32
            }
        };
        if parent == NIL {
            self.root = idx;
        } else if self.node(idx).key < self.node(parent).key {
            self.node_mut(parent).left = idx;
        } else {
            self.node_mut(parent).right = idx;
        }
        self.len += 1;
        self.insert_fixup(idx);
        None
    }

    fn rotate_left(&mut self, x: u32) {
        let y = self.node(x).right;
        let yl = self.node(y).left;
        self.node_mut(x).right = yl;
        if yl != NIL {
            self.node_mut(yl).parent = x;
        }
        let xp = self.node(x).parent;
        self.node_mut(y).parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.node(xp).left == x {
            self.node_mut(xp).left = y;
        } else {
            self.node_mut(xp).right = y;
        }
        self.node_mut(y).left = x;
        self.node_mut(x).parent = y;
    }

    fn rotate_right(&mut self, x: u32) {
        let y = self.node(x).left;
        let yr = self.node(y).right;
        self.node_mut(x).left = yr;
        if yr != NIL {
            self.node_mut(yr).parent = x;
        }
        let xp = self.node(x).parent;
        self.node_mut(y).parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.node(xp).right == x {
            self.node_mut(xp).right = y;
        } else {
            self.node_mut(xp).left = y;
        }
        self.node_mut(y).right = x;
        self.node_mut(x).parent = y;
    }

    fn insert_fixup(&mut self, mut z: u32) {
        while self.color(self.node(z).parent) == Color::Red {
            let p = self.node(z).parent;
            let g = self.node(p).parent;
            if p == self.node(g).left {
                let u = self.node(g).right;
                if self.color(u) == Color::Red {
                    self.node_mut(p).color = Color::Black;
                    self.node_mut(u).color = Color::Black;
                    self.node_mut(g).color = Color::Red;
                    z = g;
                } else {
                    if z == self.node(p).right {
                        z = p;
                        self.rotate_left(z);
                    }
                    let p = self.node(z).parent;
                    let g = self.node(p).parent;
                    self.node_mut(p).color = Color::Black;
                    self.node_mut(g).color = Color::Red;
                    self.rotate_right(g);
                }
            } else {
                let u = self.node(g).left;
                if self.color(u) == Color::Red {
                    self.node_mut(p).color = Color::Black;
                    self.node_mut(u).color = Color::Black;
                    self.node_mut(g).color = Color::Red;
                    z = g;
                } else {
                    if z == self.node(p).left {
                        z = p;
                        self.rotate_right(z);
                    }
                    let p = self.node(z).parent;
                    let g = self.node(p).parent;
                    self.node_mut(p).color = Color::Black;
                    self.node_mut(g).color = Color::Red;
                    self.rotate_left(g);
                }
            }
            if z == self.root {
                break;
            }
        }
        let r = self.root;
        self.node_mut(r).color = Color::Black;
    }

    /// Remove a key; returns its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let z = self.find(key)?;
        self.len -= 1;
        // CLRS delete.
        let mut y = z;
        let mut y_color = self.node(y).color;
        let x;
        let x_parent;
        if self.node(z).left == NIL {
            x = self.node(z).right;
            x_parent = self.node(z).parent;
            self.transplant(z, x);
        } else if self.node(z).right == NIL {
            x = self.node(z).left;
            x_parent = self.node(z).parent;
            self.transplant(z, x);
        } else {
            // y = minimum of right subtree.
            y = self.minimum(self.node(z).right);
            y_color = self.node(y).color;
            x = self.node(y).right;
            if self.node(y).parent == z {
                x_parent = y;
            } else {
                x_parent = self.node(y).parent;
                self.transplant(y, x);
                let zr = self.node(z).right;
                self.node_mut(y).right = zr;
                self.node_mut(zr).parent = y;
            }
            self.transplant(z, y);
            let zl = self.node(z).left;
            self.node_mut(y).left = zl;
            self.node_mut(zl).parent = y;
            self.node_mut(y).color = self.node(z).color;
        }
        if y_color == Color::Black {
            self.delete_fixup(x, x_parent);
        }
        // Reclaim z's slot and move the value out.
        self.free.push(z);
        let node = &mut self.nodes[z as usize];
        node.left = NIL;
        node.right = NIL;
        node.parent = NIL;
        node.val.take()
    }

    fn transplant(&mut self, u: u32, v: u32) {
        let up = self.node(u).parent;
        if up == NIL {
            self.root = v;
        } else if self.node(up).left == u {
            self.node_mut(up).left = v;
        } else {
            self.node_mut(up).right = v;
        }
        if v != NIL {
            self.node_mut(v).parent = up;
        }
    }

    fn minimum(&self, mut i: u32) -> u32 {
        while self.node(i).left != NIL {
            i = self.node(i).left;
        }
        i
    }

    fn delete_fixup(&mut self, mut x: u32, mut parent: u32) {
        while x != self.root && self.color(x) == Color::Black {
            if parent == NIL {
                break;
            }
            if x == self.node(parent).left {
                let mut w = self.node(parent).right;
                if self.color(w) == Color::Red {
                    self.node_mut(w).color = Color::Black;
                    self.node_mut(parent).color = Color::Red;
                    self.rotate_left(parent);
                    w = self.node(parent).right;
                }
                if self.color(self.node(w).left) == Color::Black
                    && self.color(self.node(w).right) == Color::Black
                {
                    self.node_mut(w).color = Color::Red;
                    x = parent;
                    parent = self.node(x).parent;
                } else {
                    if self.color(self.node(w).right) == Color::Black {
                        let wl = self.node(w).left;
                        self.node_mut(wl).color = Color::Black;
                        self.node_mut(w).color = Color::Red;
                        self.rotate_right(w);
                        w = self.node(parent).right;
                    }
                    self.node_mut(w).color = self.node(parent).color;
                    self.node_mut(parent).color = Color::Black;
                    let wr = self.node(w).right;
                    if wr != NIL {
                        self.node_mut(wr).color = Color::Black;
                    }
                    self.rotate_left(parent);
                    x = self.root;
                    parent = NIL;
                }
            } else {
                let mut w = self.node(parent).left;
                if self.color(w) == Color::Red {
                    self.node_mut(w).color = Color::Black;
                    self.node_mut(parent).color = Color::Red;
                    self.rotate_right(parent);
                    w = self.node(parent).left;
                }
                if self.color(self.node(w).right) == Color::Black
                    && self.color(self.node(w).left) == Color::Black
                {
                    self.node_mut(w).color = Color::Red;
                    x = parent;
                    parent = self.node(x).parent;
                } else {
                    if self.color(self.node(w).left) == Color::Black {
                        let wr = self.node(w).right;
                        self.node_mut(wr).color = Color::Black;
                        self.node_mut(w).color = Color::Red;
                        self.rotate_left(w);
                        w = self.node(parent).left;
                    }
                    self.node_mut(w).color = self.node(parent).color;
                    self.node_mut(parent).color = Color::Black;
                    let wl = self.node(w).left;
                    if wl != NIL {
                        self.node_mut(wl).color = Color::Black;
                    }
                    self.rotate_right(parent);
                    x = self.root;
                    parent = NIL;
                }
            }
        }
        if x != NIL {
            self.node_mut(x).color = Color::Black;
        }
    }

    /// In-order iteration.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL {
            stack.push(cur);
            cur = self.node(cur).left;
        }
        Iter { tree: self, stack }
    }

    /// Keys in range `[lo, hi)` (by key order), in order.
    pub fn range_keys(&self, lo: &K, hi: &K) -> Vec<&K>
    where
        K: Clone,
    {
        self.iter()
            .filter(|(k, _)| *k >= lo && *k < hi)
            .map(|(k, _)| k)
            .collect()
    }

    /// Validate red/black invariants (test support): root black, no red
    /// with red child, equal black height on all paths, BST order.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.root != NIL && self.node(self.root).color != Color::Black {
            return Err("root is not black".into());
        }
        fn walk<K: Ord, V>(
            t: &RbTree<K, V>,
            i: u32,
            min: Option<&K>,
            max: Option<&K>,
        ) -> Result<usize, String> {
            if i == NIL {
                return Ok(1);
            }
            let n = t.node(i);
            if let Some(m) = min {
                if n.key <= *m {
                    return Err("BST order violated (min)".into());
                }
            }
            if let Some(m) = max {
                if n.key >= *m {
                    return Err("BST order violated (max)".into());
                }
            }
            if n.color == Color::Red
                && (t.color(n.left) == Color::Red || t.color(n.right) == Color::Red)
            {
                return Err("red node with red child".into());
            }
            let lh = walk(t, n.left, min, Some(&n.key))?;
            let rh = walk(t, n.right, Some(&n.key), max)?;
            if lh != rh {
                return Err("black height mismatch".into());
            }
            Ok(lh + usize::from(n.color == Color::Black))
        }
        walk(self, self.root, None, None).map(|_| ())
    }
}

/// In-order iterator over `(&K, &V)`.
pub struct Iter<'a, K, V> {
    tree: &'a RbTree<K, V>,
    stack: Vec<u32>,
}

impl<'a, K: Ord, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let i = self.stack.pop()?;
        let n = self.tree.node(i);
        let mut cur = n.right;
        while cur != NIL {
            self.stack.push(cur);
            cur = self.tree.node(cur).left;
        }
        Some((&n.key, n.val.as_ref().expect("live node has a value")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_smoke() {
        let mut t = RbTree::new();
        assert!(t.is_empty());
        for i in 0..100u64 {
            assert_eq!(t.insert(i * 7 % 101, i), None);
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(&7), Some(&1));
        for i in 0..50u64 {
            assert!(t.remove(&(i * 7 % 101)).is_some());
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn insert_replaces() {
        let mut t = RbTree::new();
        assert_eq!(t.insert(1u64, "a"), None);
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.get(&1), Some(&"b"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn floor_queries() {
        let mut t = RbTree::new();
        for k in [10u64, 20, 30, 40] {
            t.insert(k, k * 10);
        }
        assert_eq!(t.floor(&5), None);
        assert_eq!(t.floor(&10).map(|(k, _)| *k), Some(10));
        assert_eq!(t.floor(&19).map(|(k, _)| *k), Some(10));
        assert_eq!(t.floor(&20).map(|(k, _)| *k), Some(20));
        assert_eq!(t.floor(&1000).map(|(k, _)| *k), Some(40));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut t = RbTree::new();
        for k in [5u64, 3, 9, 1, 7, 2, 8, 4, 6, 0] {
            t.insert(k, ());
        }
        let keys: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn range_keys_half_open() {
        let mut t = RbTree::new();
        for k in 0..20u64 {
            t.insert(k, ());
        }
        let ks: Vec<u64> = t.range_keys(&5, &9).into_iter().copied().collect();
        assert_eq!(ks, vec![5, 6, 7, 8]);
    }

    proptest! {
        /// Tree behaves exactly like BTreeMap under random workloads, and
        /// invariants hold throughout.
        #[test]
        fn behaves_like_btreemap(ops in proptest::collection::vec(
            (0u8..3, 0u64..64, 0u64..1000), 1..200)) {
            let mut t: RbTree<u64, u64> = RbTree::new();
            let mut m: BTreeMap<u64, u64> = BTreeMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => {
                        prop_assert_eq!(t.insert(k, v), m.insert(k, v));
                    }
                    1 => {
                        prop_assert_eq!(t.remove(&k), m.remove(&k));
                    }
                    _ => {
                        prop_assert_eq!(t.get(&k), m.get(&k));
                        let floor_t = t.floor(&k).map(|(kk, vv)| (*kk, *vv));
                        let floor_m = m.range(..=k).next_back().map(|(kk, vv)| (*kk, *vv));
                        prop_assert_eq!(floor_t, floor_m);
                    }
                }
                t.check_invariants().map_err(TestCaseError::fail)?;
                prop_assert_eq!(t.len(), m.len());
            }
            let tv: Vec<(u64, u64)> = t.iter().map(|(k, v)| (*k, *v)).collect();
            let mv: Vec<(u64, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(tv, mv);
        }
    }
}
