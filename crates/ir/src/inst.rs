//! Instructions, constants and intrinsics of the CARAT IR.

use crate::types::{IntTy, Type};
use std::fmt;

/// Identifies a value (SSA register) within a [`Function`](crate::Function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Identifies a basic block within a [`Function`](crate::Function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifies a function within a [`Module`](crate::Module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifies a global variable within a [`Module`](crate::Module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

impl ValueId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl BlockId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl FuncId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl GlobalId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}
impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A compile-time constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// Integer constant of a given width (value stored sign-extended).
    Int(i64, IntTy),
    /// Floating-point constant.
    F64(f64),
    /// The null pointer.
    Null,
    /// The address of a global variable (bound at load/patch time).
    GlobalAddr(GlobalId),
}

impl Const {
    /// The type of this constant.
    pub fn ty(&self) -> Type {
        match self {
            Const::Int(_, w) => Type::Int(*w),
            Const::F64(_) => Type::F64,
            Const::Null | Const::GlobalAddr(_) => Type::Ptr,
        }
    }
}

/// Binary integer/float operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Signed integer divide.
    Sdiv,
    /// Signed integer remainder.
    Srem,
    /// Unsigned integer divide.
    Udiv,
    /// Unsigned integer remainder.
    Urem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic (sign-preserving) shift right.
    Ashr,
    /// Logical shift right.
    Lshr,
    /// Float add.
    Fadd,
    /// Float subtract.
    Fsub,
    /// Float multiply.
    Fmul,
    /// Float divide.
    Fdiv,
}

impl BinOp {
    /// Whether this operation consumes and produces floats.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::Fadd | BinOp::Fsub | BinOp::Fmul | BinOp::Fdiv)
    }

    /// Textual mnemonic, used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Sdiv => "sdiv",
            BinOp::Srem => "srem",
            BinOp::Udiv => "udiv",
            BinOp::Urem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Ashr => "ashr",
            BinOp::Lshr => "lshr",
            BinOp::Fadd => "fadd",
            BinOp::Fsub => "fsub",
            BinOp::Fmul => "fmul",
            BinOp::Fdiv => "fdiv",
        }
    }

    /// Parse a mnemonic back into an operation.
    pub fn from_mnemonic(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "sdiv" => BinOp::Sdiv,
            "srem" => BinOp::Srem,
            "udiv" => BinOp::Udiv,
            "urem" => BinOp::Urem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "ashr" => BinOp::Ashr,
            "lshr" => BinOp::Lshr,
            "fadd" => BinOp::Fadd,
            "fsub" => BinOp::Fsub,
            "fmul" => BinOp::Fmul,
            "fdiv" => BinOp::Fdiv,
            _ => return None,
        })
    }
}

/// Comparison predicates (used by both integer and float compares).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned greater-or-equal.
    Uge,
}

impl Pred {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Pred::Eq => "eq",
            Pred::Ne => "ne",
            Pred::Slt => "slt",
            Pred::Sle => "sle",
            Pred::Sgt => "sgt",
            Pred::Sge => "sge",
            Pred::Ult => "ult",
            Pred::Uge => "uge",
        }
    }

    /// Parse a mnemonic back into a predicate.
    pub fn from_mnemonic(s: &str) -> Option<Pred> {
        Some(match s {
            "eq" => Pred::Eq,
            "ne" => Pred::Ne,
            "slt" => Pred::Slt,
            "sle" => Pred::Sle,
            "sgt" => Pred::Sgt,
            "sge" => Pred::Sge,
            "ult" => Pred::Ult,
            "uge" => Pred::Uge,
            _ => return None,
        })
    }
}

/// Scalar conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// Sign-extend a narrower integer.
    Sext,
    /// Zero-extend a narrower integer.
    Zext,
    /// Truncate a wider integer.
    Trunc,
    /// Signed integer to float.
    SiToFp,
    /// Float to signed integer (truncating).
    FpToSi,
    /// Pointer to i64.
    PtrToInt,
    /// i64 to pointer.
    ///
    /// Note: the verifier forbids producing *function* addresses, so this
    /// cannot forge control flow — one of the CARAT source restrictions.
    IntToPtr,
}

impl CastKind {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastKind::Sext => "sext",
            CastKind::Zext => "zext",
            CastKind::Trunc => "trunc",
            CastKind::SiToFp => "sitofp",
            CastKind::FpToSi => "fptosi",
            CastKind::PtrToInt => "ptrtoint",
            CastKind::IntToPtr => "inttoptr",
        }
    }

    /// Parse a mnemonic back into a cast kind.
    pub fn from_mnemonic(s: &str) -> Option<CastKind> {
        Some(match s {
            "sext" => CastKind::Sext,
            "zext" => CastKind::Zext,
            "trunc" => CastKind::Trunc,
            "sitofp" => CastKind::SiToFp,
            "fptosi" => CastKind::FpToSi,
            "ptrtoint" => CastKind::PtrToInt,
            "inttoptr" => CastKind::IntToPtr,
            _ => return None,
        })
    }
}

/// Built-in operations the program can invoke without a user-defined callee.
///
/// The CARAT instrumentation passes inject the `Guard*` and `Track*`
/// intrinsics; the rest form the tiny "libc" the Cm front end exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `ptr malloc(i64 size)` — heap allocation.
    Malloc,
    /// `void free(ptr)` — heap deallocation.
    Free,
    /// `void carat.guard.load(ptr addr, i64 len)` — verify a prospective
    /// read of `[addr, addr+len)` against the kernel-supplied regions.
    GuardLoad,
    /// `void carat.guard.store(ptr addr, i64 len)` — as above for writes.
    GuardStore,
    /// `void carat.guard.call(i64 frame_size)` — verify the callee's
    /// maximum stack footprint stays within a valid region.
    GuardCall,
    /// `void carat.guard.range(ptr lo, ptr hi, i64 is_write)` — merged
    /// guard covering `[lo, hi)` produced by Opt 2 (guard merging);
    /// `is_write` selects the permission checked.
    GuardRange,
    /// `void carat.track.alloc(ptr addr, i64 size)` — inform the runtime
    /// of a new allocation.
    TrackAlloc,
    /// `void carat.track.free(ptr addr)` — inform the runtime of a free.
    TrackFree,
    /// `void carat.track.escape(ptr dst)` — inform the runtime that a
    /// pointer was just stored at address `dst`.
    TrackEscape,
    /// `i64 rand()` — deterministic xorshift PRNG supplied by the VM.
    Rand,
    /// `f64 sqrt(f64)`.
    Sqrt,
    /// `f64 exp(f64)`.
    Exp,
    /// `f64 log(f64)`.
    Log,
    /// `void print_i64(i64)` — debugging/verification output.
    PrintI64,
    /// `void print_f64(f64)` — debugging/verification output.
    PrintF64,
    /// `void memcpy(ptr dst, ptr src, i64 len)`.
    Memcpy,
    /// `void memset(ptr dst, i64 byte, i64 len)`.
    Memset,
    /// `void abort()` — terminate with a fault.
    Abort,
    /// `i64 spawn(i64 func_index, i64 arg)` — create a thread running the
    /// module function with that index (additional stacks are allocated in
    /// heap memory, paper §2.2); returns the thread id.
    Spawn,
    /// `i64 join(i64 tid)` — wait for a thread and return its result.
    Join,
}

impl Intrinsic {
    /// Return type, if any.
    pub fn ret_ty(self) -> Option<Type> {
        match self {
            Intrinsic::Malloc => Some(Type::Ptr),
            Intrinsic::Rand | Intrinsic::Spawn | Intrinsic::Join => Some(Type::I64),
            Intrinsic::Sqrt | Intrinsic::Exp | Intrinsic::Log => Some(Type::F64),
            _ => None,
        }
    }

    /// Parameter types.
    pub fn param_tys(self) -> Vec<Type> {
        match self {
            Intrinsic::Malloc => vec![Type::I64],
            Intrinsic::Free | Intrinsic::TrackFree | Intrinsic::TrackEscape => vec![Type::Ptr],
            Intrinsic::GuardLoad | Intrinsic::GuardStore | Intrinsic::TrackAlloc => {
                vec![Type::Ptr, Type::I64]
            }
            Intrinsic::GuardCall => vec![Type::I64],
            Intrinsic::GuardRange => vec![Type::Ptr, Type::Ptr, Type::I64],
            Intrinsic::Rand | Intrinsic::Abort => vec![],
            Intrinsic::Sqrt | Intrinsic::Exp | Intrinsic::Log | Intrinsic::PrintF64 => {
                vec![Type::F64]
            }
            Intrinsic::PrintI64 => vec![Type::I64],
            Intrinsic::Memcpy => vec![Type::Ptr, Type::Ptr, Type::I64],
            Intrinsic::Memset => vec![Type::Ptr, Type::I64, Type::I64],
            Intrinsic::Spawn => vec![Type::I64, Type::I64],
            Intrinsic::Join => vec![Type::I64],
        }
    }

    /// Whether this intrinsic is one of the CARAT protection guards.
    pub fn is_guard(self) -> bool {
        matches!(
            self,
            Intrinsic::GuardLoad
                | Intrinsic::GuardStore
                | Intrinsic::GuardCall
                | Intrinsic::GuardRange
        )
    }

    /// Whether this intrinsic is one of the CARAT tracking callbacks.
    pub fn is_track(self) -> bool {
        matches!(
            self,
            Intrinsic::TrackAlloc | Intrinsic::TrackFree | Intrinsic::TrackEscape
        )
    }

    /// Textual name, used by the printer and parser.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Malloc => "malloc",
            Intrinsic::Free => "free",
            Intrinsic::GuardLoad => "carat.guard.load",
            Intrinsic::GuardStore => "carat.guard.store",
            Intrinsic::GuardCall => "carat.guard.call",
            Intrinsic::GuardRange => "carat.guard.range",
            Intrinsic::TrackAlloc => "carat.track.alloc",
            Intrinsic::TrackFree => "carat.track.free",
            Intrinsic::TrackEscape => "carat.track.escape",
            Intrinsic::Rand => "rand",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::PrintI64 => "print_i64",
            Intrinsic::PrintF64 => "print_f64",
            Intrinsic::Memcpy => "memcpy",
            Intrinsic::Memset => "memset",
            Intrinsic::Abort => "abort",
            Intrinsic::Spawn => "spawn",
            Intrinsic::Join => "join",
        }
    }

    /// Parse a name back into an intrinsic.
    pub fn from_name(s: &str) -> Option<Intrinsic> {
        Some(match s {
            "malloc" => Intrinsic::Malloc,
            "free" => Intrinsic::Free,
            "carat.guard.load" => Intrinsic::GuardLoad,
            "carat.guard.store" => Intrinsic::GuardStore,
            "carat.guard.call" => Intrinsic::GuardCall,
            "carat.guard.range" => Intrinsic::GuardRange,
            "carat.track.alloc" => Intrinsic::TrackAlloc,
            "carat.track.free" => Intrinsic::TrackFree,
            "carat.track.escape" => Intrinsic::TrackEscape,
            "rand" => Intrinsic::Rand,
            "sqrt" => Intrinsic::Sqrt,
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "print_i64" => Intrinsic::PrintI64,
            "print_f64" => Intrinsic::PrintF64,
            "memcpy" => Intrinsic::Memcpy,
            "memset" => Intrinsic::Memset,
            "abort" => Intrinsic::Abort,
            "spawn" => Intrinsic::Spawn,
            "join" => Intrinsic::Join,
            _ => return None,
        })
    }
}

/// The shape of an instruction, independent of its operands — the stable
/// classification used by decoders and per-opcode accounting.
///
/// `Opcode::COUNT` and [`Opcode::index`] make it usable as a dense array
/// index (e.g. an instruction-mix histogram).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// [`Inst::Const`].
    Const,
    /// [`Inst::Alloca`].
    Alloca,
    /// [`Inst::Load`].
    Load,
    /// [`Inst::Store`].
    Store,
    /// [`Inst::PtrAdd`].
    PtrAdd,
    /// [`Inst::FieldAddr`].
    FieldAddr,
    /// [`Inst::Bin`].
    Bin,
    /// [`Inst::Icmp`].
    Icmp,
    /// [`Inst::Fcmp`].
    Fcmp,
    /// [`Inst::Cast`].
    Cast,
    /// [`Inst::Select`].
    Select,
    /// [`Inst::Phi`].
    Phi,
    /// [`Inst::Call`].
    Call,
    /// [`Inst::CallIntrinsic`].
    CallIntrinsic,
    /// [`Inst::Jmp`].
    Jmp,
    /// [`Inst::Br`].
    Br,
    /// [`Inst::Ret`].
    Ret,
    /// [`Inst::Unreachable`].
    Unreachable,
}

impl Opcode {
    /// Number of opcodes (the length of [`Opcode::ALL`]).
    pub const COUNT: usize = 18;

    /// Every opcode, in [`Opcode::index`] order.
    pub const ALL: [Opcode; Opcode::COUNT] = [
        Opcode::Const,
        Opcode::Alloca,
        Opcode::Load,
        Opcode::Store,
        Opcode::PtrAdd,
        Opcode::FieldAddr,
        Opcode::Bin,
        Opcode::Icmp,
        Opcode::Fcmp,
        Opcode::Cast,
        Opcode::Select,
        Opcode::Phi,
        Opcode::Call,
        Opcode::CallIntrinsic,
        Opcode::Jmp,
        Opcode::Br,
        Opcode::Ret,
        Opcode::Unreachable,
    ];

    /// Dense index in `0..Opcode::COUNT`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Const => "const",
            Opcode::Alloca => "alloca",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::PtrAdd => "ptradd",
            Opcode::FieldAddr => "fieldaddr",
            Opcode::Bin => "bin",
            Opcode::Icmp => "icmp",
            Opcode::Fcmp => "fcmp",
            Opcode::Cast => "cast",
            Opcode::Select => "select",
            Opcode::Phi => "phi",
            Opcode::Call => "call",
            Opcode::CallIntrinsic => "intrinsic",
            Opcode::Jmp => "jmp",
            Opcode::Br => "br",
            Opcode::Ret => "ret",
            Opcode::Unreachable => "unreachable",
        }
    }
}

/// An IR instruction.
///
/// Instructions that produce a value do so under the [`ValueId`] they were
/// inserted as; the rest (stores, guards, terminators…) produce none.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Materialize a constant.
    Const(Const),
    /// Reserve `ty.size()` bytes in the current stack frame; yields `ptr`.
    Alloca(Type),
    /// Load a scalar of type `ty` from `addr`.
    Load {
        /// Accessed type (must be scalar).
        ty: Type,
        /// Address operand (must be `ptr`).
        addr: ValueId,
    },
    /// Store scalar `value` of type `ty` to `addr`.
    Store {
        /// Accessed type (must be scalar).
        ty: Type,
        /// Address operand.
        addr: ValueId,
        /// Value operand.
        value: ValueId,
    },
    /// `base + index * elem.stride()`; yields `ptr`. The IR's restricted GEP.
    PtrAdd {
        /// Base pointer.
        base: ValueId,
        /// Element index (i64).
        index: ValueId,
        /// Element type whose stride scales the index.
        elem: Type,
    },
    /// `base + struct.field_offset(field)`; yields `ptr`.
    FieldAddr {
        /// Base pointer to a value of `struct_ty`.
        base: ValueId,
        /// The struct type.
        struct_ty: Type,
        /// Field index.
        field: u32,
    },
    /// Two-operand arithmetic/logic.
    Bin {
        /// Operation.
        op: BinOp,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Integer or pointer comparison; yields `i1`.
    Icmp {
        /// Predicate.
        pred: Pred,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Float comparison; yields `i1`.
    Fcmp {
        /// Predicate (signed predicates = ordered float comparisons).
        pred: Pred,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Scalar conversion.
    Cast {
        /// Conversion kind.
        kind: CastKind,
        /// Operand.
        value: ValueId,
        /// Result type.
        to: Type,
    },
    /// `cond ? if_true : if_false`.
    Select {
        /// i1 condition.
        cond: ValueId,
        /// Value when true.
        if_true: ValueId,
        /// Value when false.
        if_false: ValueId,
    },
    /// SSA phi node; must appear at the head of its block.
    Phi {
        /// Result type.
        ty: Type,
        /// `(predecessor, value)` incomings.
        incomings: Vec<(BlockId, ValueId)>,
    },
    /// Direct call to a user function.
    Call {
        /// Callee.
        callee: FuncId,
        /// Arguments.
        args: Vec<ValueId>,
        /// Cached return type (None for void).
        ret_ty: Option<Type>,
    },
    /// Call to a built-in intrinsic.
    CallIntrinsic {
        /// The intrinsic.
        intr: Intrinsic,
        /// Arguments.
        args: Vec<ValueId>,
    },
    /// Unconditional branch.
    Jmp {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch on an `i1`.
    Br {
        /// Condition.
        cond: ValueId,
        /// Target when true.
        if_true: BlockId,
        /// Target when false.
        if_false: BlockId,
    },
    /// Return from the function.
    Ret {
        /// Optional return value.
        value: Option<ValueId>,
    },
    /// Trap: ends the program with a fault if executed.
    Unreachable,
}

impl Inst {
    /// The [`Opcode`] classifying this instruction.
    pub fn opcode(&self) -> Opcode {
        match self {
            Inst::Const(_) => Opcode::Const,
            Inst::Alloca(_) => Opcode::Alloca,
            Inst::Load { .. } => Opcode::Load,
            Inst::Store { .. } => Opcode::Store,
            Inst::PtrAdd { .. } => Opcode::PtrAdd,
            Inst::FieldAddr { .. } => Opcode::FieldAddr,
            Inst::Bin { .. } => Opcode::Bin,
            Inst::Icmp { .. } => Opcode::Icmp,
            Inst::Fcmp { .. } => Opcode::Fcmp,
            Inst::Cast { .. } => Opcode::Cast,
            Inst::Select { .. } => Opcode::Select,
            Inst::Phi { .. } => Opcode::Phi,
            Inst::Call { .. } => Opcode::Call,
            Inst::CallIntrinsic { .. } => Opcode::CallIntrinsic,
            Inst::Jmp { .. } => Opcode::Jmp,
            Inst::Br { .. } => Opcode::Br,
            Inst::Ret { .. } => Opcode::Ret,
            Inst::Unreachable => Opcode::Unreachable,
        }
    }

    /// The `(predecessor, value)` incomings if this is a phi — a borrow,
    /// unlike [`Inst::operands`], so decoders can walk phis without
    /// allocating.
    pub fn phi_incomings(&self) -> Option<&[(BlockId, ValueId)]> {
        match self {
            Inst::Phi { incomings, .. } => Some(incomings),
            _ => None,
        }
    }

    /// The type of the value this instruction produces, if any.
    ///
    /// `None` for stores, guards, terminators and void calls.
    pub fn result_ty(&self) -> Option<Type> {
        match self {
            Inst::Const(c) => Some(c.ty()),
            Inst::Alloca(_) | Inst::PtrAdd { .. } | Inst::FieldAddr { .. } => Some(Type::Ptr),
            Inst::Load { ty, .. } => Some(ty.clone()),
            Inst::Bin { op, .. } => {
                if op.is_float() {
                    Some(Type::F64)
                } else {
                    None // depends on operand type; resolved by Function::value_type
                }
            }
            Inst::Icmp { .. } | Inst::Fcmp { .. } => Some(Type::I1),
            Inst::Cast { to, .. } => Some(to.clone()),
            Inst::Select { .. } => None, // operand-dependent
            Inst::Phi { ty, .. } => Some(ty.clone()),
            Inst::Call { ret_ty, .. } => ret_ty.clone(),
            Inst::CallIntrinsic { intr, .. } => intr.ret_ty(),
            Inst::Store { .. }
            | Inst::Jmp { .. }
            | Inst::Br { .. }
            | Inst::Ret { .. }
            | Inst::Unreachable => None,
        }
    }

    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. } | Inst::Br { .. } | Inst::Ret { .. } | Inst::Unreachable
        )
    }

    /// Whether this is a memory-accessing instruction that CARAT must guard.
    pub fn is_memory_access(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// All value operands, in a fixed order.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Inst::Const(_) | Inst::Alloca(_) | Inst::Jmp { .. } | Inst::Unreachable => vec![],
            Inst::Load { addr, .. } => vec![*addr],
            Inst::Store { addr, value, .. } => vec![*addr, *value],
            Inst::PtrAdd { base, index, .. } => vec![*base, *index],
            Inst::FieldAddr { base, .. } => vec![*base],
            Inst::Bin { lhs, rhs, .. }
            | Inst::Icmp { lhs, rhs, .. }
            | Inst::Fcmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Cast { value, .. } => vec![*value],
            Inst::Select {
                cond,
                if_true,
                if_false,
            } => vec![*cond, *if_true, *if_false],
            Inst::Phi { incomings, .. } => incomings.iter().map(|(_, v)| *v).collect(),
            Inst::Call { args, .. } | Inst::CallIntrinsic { args, .. } => args.clone(),
            Inst::Br { cond, .. } => vec![*cond],
            Inst::Ret { value } => value.iter().copied().collect(),
        }
    }

    /// Apply `f` to every value operand in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        match self {
            Inst::Const(_) | Inst::Alloca(_) | Inst::Jmp { .. } | Inst::Unreachable => {}
            Inst::Load { addr, .. } => *addr = f(*addr),
            Inst::Store { addr, value, .. } => {
                *addr = f(*addr);
                *value = f(*value);
            }
            Inst::PtrAdd { base, index, .. } => {
                *base = f(*base);
                *index = f(*index);
            }
            Inst::FieldAddr { base, .. } => *base = f(*base),
            Inst::Bin { lhs, rhs, .. }
            | Inst::Icmp { lhs, rhs, .. }
            | Inst::Fcmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Cast { value, .. } => *value = f(*value),
            Inst::Select {
                cond,
                if_true,
                if_false,
            } => {
                *cond = f(*cond);
                *if_true = f(*if_true);
                *if_false = f(*if_false);
            }
            Inst::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    *v = f(*v);
                }
            }
            Inst::Call { args, .. } | Inst::CallIntrinsic { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::Br { cond, .. } => *cond = f(*cond),
            Inst::Ret { value } => {
                if let Some(v) = value {
                    *v = f(*v);
                }
            }
        }
    }

    /// Successor blocks if this is a terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Inst::Jmp { target } => vec![*target],
            Inst::Br {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            _ => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_types() {
        assert_eq!(Const::Int(3, IntTy::I32).ty(), Type::I32);
        assert_eq!(Const::F64(1.5).ty(), Type::F64);
        assert_eq!(Const::Null.ty(), Type::Ptr);
        assert_eq!(Const::GlobalAddr(GlobalId(0)).ty(), Type::Ptr);
    }

    #[test]
    fn binop_mnemonic_roundtrip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Sdiv,
            BinOp::Srem,
            BinOp::Udiv,
            BinOp::Urem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Ashr,
            BinOp::Lshr,
            BinOp::Fadd,
            BinOp::Fsub,
            BinOp::Fmul,
            BinOp::Fdiv,
        ] {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(BinOp::from_mnemonic("nope"), None);
    }

    #[test]
    fn intrinsic_name_roundtrip() {
        for i in [
            Intrinsic::Malloc,
            Intrinsic::Free,
            Intrinsic::GuardLoad,
            Intrinsic::GuardStore,
            Intrinsic::GuardCall,
            Intrinsic::GuardRange,
            Intrinsic::TrackAlloc,
            Intrinsic::TrackFree,
            Intrinsic::TrackEscape,
            Intrinsic::Rand,
            Intrinsic::Sqrt,
            Intrinsic::Exp,
            Intrinsic::Log,
            Intrinsic::PrintI64,
            Intrinsic::PrintF64,
            Intrinsic::Memcpy,
            Intrinsic::Memset,
            Intrinsic::Abort,
        ] {
            assert_eq!(Intrinsic::from_name(i.name()), Some(i));
        }
    }

    #[test]
    fn guard_and_track_classification() {
        assert!(Intrinsic::GuardLoad.is_guard());
        assert!(Intrinsic::GuardRange.is_guard());
        assert!(!Intrinsic::TrackAlloc.is_guard());
        assert!(Intrinsic::TrackEscape.is_track());
        assert!(!Intrinsic::Malloc.is_track());
    }

    #[test]
    fn operands_and_map() {
        let mut i = Inst::Store {
            ty: Type::I64,
            addr: ValueId(1),
            value: ValueId(2),
        };
        assert_eq!(i.operands(), vec![ValueId(1), ValueId(2)]);
        i.map_operands(|v| ValueId(v.0 + 10));
        assert_eq!(i.operands(), vec![ValueId(11), ValueId(12)]);
    }

    #[test]
    fn terminator_successors() {
        let br = Inst::Br {
            cond: ValueId(0),
            if_true: BlockId(1),
            if_false: BlockId(2),
        };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(br.is_terminator());
        assert!(!Inst::Alloca(Type::I64).is_terminator());
        assert!(Inst::Ret { value: None }.successors().is_empty());
    }
}
