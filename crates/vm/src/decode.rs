//! Pre-decoded execution programs: each loaded [`Module`] is compiled
//! once into flat per-function arrays of [`DecodedInst`] — a `Copy`-able
//! instruction with operand register slots, immediate constants, resolved
//! alloca offsets, precomputed per-edge phi copy lists, and direct
//! intrinsic dispatch. The interpreter's hot loop then executes over
//! `(func, block, idx)` cursors into this stream with zero per-step
//! cloning and no hash lookups.
//!
//! Decoding is an engine-side cache, not a semantic transformation: a
//! decoded program must produce the same observable behavior — return
//! value, output, and every [`PerfCounters`](crate::PerfCounters) field —
//! as the reference interpreter walking the IR arena directly. The
//! differential harness in `tests/decoded_differential.rs` enforces this
//! across the full workload suite.

use carat_core::guards::frame_size;
use carat_ir::{BinOp, BlockId, CastKind, Const, Inst, IntTy, Intrinsic, Module, Opcode, Pred};

/// Register slot sentinel for "no value" (absent return value/operand).
pub const NO_REG: u32 = u32::MAX;

/// The scalar class of a memory access, with its size pre-resolved.
#[derive(Debug, Clone, Copy)]
pub enum ScalarClass {
    /// 8-byte float.
    F64,
    /// 8-byte pointer.
    Ptr,
    /// Integer of the given width.
    Int(IntTy),
}

impl ScalarClass {
    /// Access size in bytes.
    #[inline]
    pub fn size(self) -> u64 {
        match self {
            ScalarClass::F64 | ScalarClass::Ptr => 8,
            ScalarClass::Int(w) => w.size(),
        }
    }
}

/// A `(start, len)` window into a [`DecodedFunc`]'s operand pool.
#[derive(Debug, Clone, Copy)]
pub struct OperandRange {
    /// First index in [`DecodedFunc::operands`].
    pub start: u32,
    /// Number of operands.
    pub len: u32,
}

/// One fully resolved instruction. Everything static — immediates, frame
/// offsets, operand register slots, access sizes, result widths — is
/// folded in at decode time; only dynamic state (register values, memory)
/// remains for the interpreter.
#[derive(Debug, Clone, Copy)]
pub enum DecodedInst {
    /// Integer constant, already width-wrapped.
    ConstI {
        /// Destination register.
        dst: u32,
        /// Wrapped value.
        val: i64,
    },
    /// Float constant.
    ConstF {
        /// Destination register.
        dst: u32,
        /// Value.
        val: f64,
    },
    /// The null pointer.
    ConstNull {
        /// Destination register.
        dst: u32,
    },
    /// Address of a global. The *index* is kept (not the address): globals
    /// relocate when their range moves or swaps, so the current address is
    /// read from the image at execution time.
    ConstGlobal {
        /// Destination register.
        dst: u32,
        /// Global index.
        global: u32,
    },
    /// Stack slot address: `sp_base + off`, with `off` resolved at decode
    /// time (this kills the per-function offset `HashMap`).
    Alloca {
        /// Destination register.
        dst: u32,
        /// Byte offset within the frame.
        off: u64,
    },
    /// Scalar load.
    Load {
        /// Destination register.
        dst: u32,
        /// Address register.
        addr: u32,
        /// Access class and size.
        cls: ScalarClass,
    },
    /// Scalar store.
    Store {
        /// Address register.
        addr: u32,
        /// Value register.
        value: u32,
        /// Access class and size.
        cls: ScalarClass,
    },
    /// `base + index * stride` with the element stride pre-resolved.
    PtrAdd {
        /// Destination register.
        dst: u32,
        /// Base pointer register.
        base: u32,
        /// Index register.
        index: u32,
        /// Element stride in bytes.
        stride: u64,
    },
    /// `base + off` with the field offset pre-resolved.
    FieldAddr {
        /// Destination register.
        dst: u32,
        /// Base pointer register.
        base: u32,
        /// Field byte offset.
        off: u64,
    },
    /// Two-operand arithmetic with the result width pre-resolved from the
    /// left operand's type.
    Bin {
        /// Destination register.
        dst: u32,
        /// Operation.
        op: BinOp,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
        /// Integer result width (unused by float ops).
        width: IntTy,
    },
    /// Integer/pointer comparison.
    Icmp {
        /// Destination register.
        dst: u32,
        /// Predicate.
        pred: Pred,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
    },
    /// Float comparison.
    Fcmp {
        /// Destination register.
        dst: u32,
        /// Predicate.
        pred: Pred,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
    },
    /// Scalar conversion with the integer target width pre-resolved.
    Cast {
        /// Destination register.
        dst: u32,
        /// Conversion kind.
        kind: CastKind,
        /// Source register.
        src: u32,
        /// Target integer width (sext/zext/trunc only).
        width: IntTy,
    },
    /// `cond ? if_true : if_false`.
    Select {
        /// Destination register.
        dst: u32,
        /// Condition register.
        cond: u32,
        /// Register taken when true.
        if_true: u32,
        /// Register taken when false.
        if_false: u32,
    },
    /// Execute the whole phi batch at this block's head: one copy list per
    /// predecessor edge, applied in parallel. Counts as one instruction,
    /// exactly like the reference interpreter's en-bloc phi evaluation.
    PhiBatch,
    /// Direct call to a user function.
    Call {
        /// Register receiving the return value (also the call's id).
        dst: u32,
        /// Callee function index.
        callee: u32,
        /// Argument registers.
        args: OperandRange,
    },
    /// Direct-dispatch intrinsic call.
    Intrinsic {
        /// Register receiving the result (if the intrinsic returns one).
        dst: u32,
        /// The intrinsic.
        intr: Intrinsic,
        /// Argument registers.
        args: OperandRange,
    },
    /// Unconditional branch.
    Jmp {
        /// Target block index.
        target: u32,
    },
    /// Conditional branch.
    Br {
        /// Condition register.
        cond: u32,
        /// Block index when true.
        if_true: u32,
        /// Block index when false.
        if_false: u32,
    },
    /// Return ([`NO_REG`] = void).
    Ret {
        /// Returned register or [`NO_REG`].
        value: u32,
    },
    /// Trap if executed.
    Unreachable,
    /// A load/store of an aggregate type: traps when executed (matching
    /// the reference interpreter, which rejects it at execution time, not
    /// load time).
    TrapAggregate {
        /// Whether the faulting access was a store.
        store: bool,
    },
}

impl DecodedInst {
    /// The [`Opcode`] this decoded instruction accounts as — identical to
    /// the classification of the IR instruction it was decoded from.
    #[inline]
    pub fn opcode(self) -> Opcode {
        match self {
            DecodedInst::ConstI { .. }
            | DecodedInst::ConstF { .. }
            | DecodedInst::ConstNull { .. }
            | DecodedInst::ConstGlobal { .. } => Opcode::Const,
            DecodedInst::Alloca { .. } => Opcode::Alloca,
            DecodedInst::Load { .. } => Opcode::Load,
            DecodedInst::Store { .. } => Opcode::Store,
            DecodedInst::PtrAdd { .. } => Opcode::PtrAdd,
            DecodedInst::FieldAddr { .. } => Opcode::FieldAddr,
            DecodedInst::Bin { .. } => Opcode::Bin,
            DecodedInst::Icmp { .. } => Opcode::Icmp,
            DecodedInst::Fcmp { .. } => Opcode::Fcmp,
            DecodedInst::Cast { .. } => Opcode::Cast,
            DecodedInst::Select { .. } => Opcode::Select,
            DecodedInst::PhiBatch => Opcode::Phi,
            DecodedInst::Call { .. } => Opcode::Call,
            DecodedInst::Intrinsic { .. } => Opcode::CallIntrinsic,
            DecodedInst::Jmp { .. } => Opcode::Jmp,
            DecodedInst::Br { .. } => Opcode::Br,
            DecodedInst::Ret { .. } => Opcode::Ret,
            DecodedInst::Unreachable => Opcode::Unreachable,
            DecodedInst::TrapAggregate { store } => {
                if store {
                    Opcode::Store
                } else {
                    Opcode::Load
                }
            }
        }
    }
}

/// The copy list for entering a phi-headed block from one predecessor.
#[derive(Debug, Clone, Copy)]
pub struct PhiEdge {
    /// The predecessor block this edge handles.
    pub pred: BlockId,
    /// First index in [`DecodedFunc::phi_copies`].
    pub start: u32,
    /// Number of `(dst, src)` copies (one per phi).
    pub len: u32,
}

/// One decoded basic block: the leading phis collapse into a single
/// [`DecodedInst::PhiBatch`] slot, the rest map one-to-one.
#[derive(Debug, Clone, Default)]
pub struct DecodedBlock {
    /// The instruction stream. Shared (`Rc`) so the VM can pin the
    /// current block's code in the active frame and fetch with a single
    /// index, instead of re-walking `funcs[f].blocks[b].code` every step.
    pub code: std::rc::Rc<[DecodedInst]>,
    /// Per-predecessor phi copy lists (empty when the block has no phis).
    /// An entry exists only for predecessors every phi covers; entering
    /// from any other block traps, as in the reference interpreter.
    pub phi_edges: Vec<PhiEdge>,
}

/// One decoded function.
#[derive(Debug, Clone)]
pub struct DecodedFunc {
    /// Stack frame size in bytes (allocas + spill margin).
    pub frame_size: u64,
    /// Register file size (args + instruction results).
    pub num_values: usize,
    /// Decoded blocks, indexed by [`BlockId`].
    pub blocks: Vec<DecodedBlock>,
    /// Argument-register pool for calls and intrinsics.
    pub operands: Vec<u32>,
    /// `(dst, src)` register pairs for phi edges.
    pub phi_copies: Vec<(u32, u32)>,
    /// Dense alloca frame offsets by value index ([`u64::MAX`] = not an
    /// alloca). The decoded stream carries offsets inline; this table
    /// serves the reference engine, replacing its per-function `HashMap`.
    pub alloca_offsets: Vec<u64>,
}

impl DecodedFunc {
    /// The frame offset of alloca `value_index`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a placed alloca.
    #[inline]
    pub fn alloca_offset(&self, value_index: usize) -> u64 {
        let off = self.alloca_offsets[value_index];
        assert_ne!(off, u64::MAX, "value is not an alloca");
        off
    }
}

/// A module compiled to its flat executable form.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    /// Decoded functions, indexed by [`FuncId`](carat_ir::FuncId).
    pub funcs: Vec<DecodedFunc>,
}

impl DecodedProgram {
    /// Decode every function of `module`. Pure and infallible: malformed
    /// constructs (aggregate accesses, incomplete phi webs) decode to
    /// trapping forms so behavior stays identical to the reference
    /// interpreter, which also rejects them only upon execution.
    pub fn decode(module: &Module) -> DecodedProgram {
        DecodedProgram {
            funcs: module
                .func_ids()
                .map(|fid| decode_func(module.func(fid)))
                .collect(),
        }
    }
}

fn decode_func(f: &carat_ir::Function) -> DecodedFunc {
    // Alloca offsets: identical layout walk to the seed interpreter's
    // FuncMeta construction (alignment-rounded, 8-byte minimum stride).
    let mut alloca_offsets = vec![u64::MAX; f.num_values()];
    let mut off = 0u64;
    for (_, v, inst) in f.insts_in_layout_order() {
        if let Inst::Alloca(ty) = inst {
            let align = ty.align().max(1);
            off = off.div_ceil(align) * align;
            alloca_offsets[v.index()] = off;
            off += ty.stride().max(8);
        }
    }

    let mut operands: Vec<u32> = Vec::new();
    let mut phi_copies: Vec<(u32, u32)> = Vec::new();
    let mut blocks: Vec<DecodedBlock> = Vec::with_capacity(f.num_blocks());

    for b in f.block_ids() {
        let insts = &f.block(b).insts;
        let mut code: Vec<DecodedInst> = Vec::with_capacity(insts.len());
        let mut phi_edges: Vec<PhiEdge> = Vec::new();

        // Leading phis collapse into one PhiBatch with per-edge copy lists.
        let phis: Vec<(u32, &[(BlockId, carat_ir::ValueId)])> = insts
            .iter()
            .map_while(|&v| {
                f.inst(v)
                    .and_then(Inst::phi_incomings)
                    .map(|inc| (v.0, inc))
            })
            .collect();
        if !phis.is_empty() {
            code.push(DecodedInst::PhiBatch);
            let mut preds: Vec<BlockId> = Vec::new();
            for (_, inc) in &phis {
                for (p, _) in inc.iter() {
                    if !preds.contains(p) {
                        preds.push(*p);
                    }
                }
            }
            for pred in preds {
                // Only complete edges are materialized; a phi missing this
                // predecessor makes entry from it trap at runtime.
                let Some(copies) = phis
                    .iter()
                    .map(|&(dst, inc)| {
                        inc.iter()
                            .find(|(p, _)| *p == pred)
                            .map(|&(_, src)| (dst, src.0))
                    })
                    .collect::<Option<Vec<(u32, u32)>>>()
                else {
                    continue;
                };
                let start = phi_copies.len() as u32;
                let len = copies.len() as u32;
                phi_copies.extend(copies);
                phi_edges.push(PhiEdge { pred, start, len });
            }
        }

        for &v in &insts[phis.len()..] {
            let Some(inst) = f.inst(v) else { continue };
            code.push(decode_inst(f, v.0, inst, &alloca_offsets, &mut operands));
        }
        blocks.push(DecodedBlock {
            code: code.into(),
            phi_edges,
        });
    }

    DecodedFunc {
        frame_size: frame_size(f),
        num_values: f.num_values(),
        blocks,
        operands,
        phi_copies,
        alloca_offsets,
    }
}

fn decode_inst(
    f: &carat_ir::Function,
    dst: u32,
    inst: &Inst,
    alloca_offsets: &[u64],
    operands: &mut Vec<u32>,
) -> DecodedInst {
    let mut pool = |args: &[carat_ir::ValueId]| {
        let start = operands.len() as u32;
        operands.extend(args.iter().map(|a| a.0));
        OperandRange {
            start,
            len: args.len() as u32,
        }
    };
    match inst {
        Inst::Const(c) => match c {
            Const::Int(x, w) => DecodedInst::ConstI {
                dst,
                val: w.wrap(*x),
            },
            Const::F64(x) => DecodedInst::ConstF { dst, val: *x },
            Const::Null => DecodedInst::ConstNull { dst },
            Const::GlobalAddr(g) => DecodedInst::ConstGlobal { dst, global: g.0 },
        },
        Inst::Alloca(_) => DecodedInst::Alloca {
            dst,
            off: alloca_offsets[dst as usize],
        },
        Inst::Load { ty, addr } => match scalar_class(ty) {
            Some(cls) => DecodedInst::Load {
                dst,
                addr: addr.0,
                cls,
            },
            None => DecodedInst::TrapAggregate { store: false },
        },
        Inst::Store { ty, addr, value } => match scalar_class(ty) {
            Some(cls) => DecodedInst::Store {
                addr: addr.0,
                value: value.0,
                cls,
            },
            None => DecodedInst::TrapAggregate { store: true },
        },
        Inst::PtrAdd { base, index, elem } => DecodedInst::PtrAdd {
            dst,
            base: base.0,
            index: index.0,
            stride: elem.stride(),
        },
        Inst::FieldAddr {
            base,
            struct_ty,
            field,
        } => DecodedInst::FieldAddr {
            dst,
            base: base.0,
            off: struct_ty.field_offset(*field as usize),
        },
        Inst::Bin { op, lhs, rhs } => DecodedInst::Bin {
            dst,
            op: *op,
            lhs: lhs.0,
            rhs: rhs.0,
            // Same resolution as the reference interpreter: the result
            // width follows the left operand's type.
            width: f
                .value_type(*lhs)
                .and_then(|t| t.int_width())
                .unwrap_or(IntTy::I64),
        },
        Inst::Icmp { pred, lhs, rhs } => DecodedInst::Icmp {
            dst,
            pred: *pred,
            lhs: lhs.0,
            rhs: rhs.0,
        },
        Inst::Fcmp { pred, lhs, rhs } => DecodedInst::Fcmp {
            dst,
            pred: *pred,
            lhs: lhs.0,
            rhs: rhs.0,
        },
        Inst::Cast { kind, value, to } => DecodedInst::Cast {
            dst,
            kind: *kind,
            src: value.0,
            width: to.int_width().unwrap_or(IntTy::I64),
        },
        Inst::Select {
            cond,
            if_true,
            if_false,
        } => DecodedInst::Select {
            dst,
            cond: cond.0,
            if_true: if_true.0,
            if_false: if_false.0,
        },
        // A phi past the leading run never executes in verified IR; decode
        // it as a batch head so the malformed case still traps or resolves
        // through the block's edge table rather than crashing the decoder.
        Inst::Phi { .. } => DecodedInst::PhiBatch,
        Inst::Call { callee, args, .. } => DecodedInst::Call {
            dst,
            callee: callee.0,
            args: pool(args),
        },
        Inst::CallIntrinsic { intr, args } => DecodedInst::Intrinsic {
            dst,
            intr: *intr,
            args: pool(args),
        },
        Inst::Jmp { target } => DecodedInst::Jmp { target: target.0 },
        Inst::Br {
            cond,
            if_true,
            if_false,
        } => DecodedInst::Br {
            cond: cond.0,
            if_true: if_true.0,
            if_false: if_false.0,
        },
        Inst::Ret { value } => DecodedInst::Ret {
            value: value.map(|v| v.0).unwrap_or(NO_REG),
        },
        Inst::Unreachable => DecodedInst::Unreachable,
    }
}

fn scalar_class(ty: &carat_ir::Type) -> Option<ScalarClass> {
    match ty {
        carat_ir::Type::F64 => Some(ScalarClass::F64),
        carat_ir::Type::Ptr => Some(ScalarClass::Ptr),
        carat_ir::Type::Int(w) => Some(ScalarClass::Int(*w)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{ModuleBuilder, Type};

    #[test]
    fn decodes_constants_and_allocas() {
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            b.switch_to(e);
            let slot = b.alloca(Type::I64);
            let x = b.const_i64(7);
            b.store(Type::I64, slot, x);
            let y = b.load(Type::I64, slot);
            b.ret(Some(y));
        }
        let m = mb.finish();
        let prog = DecodedProgram::decode(&m);
        let f = &prog.funcs[0];
        assert_eq!(f.blocks.len(), 1);
        let code = &f.blocks[0].code;
        assert!(matches!(code[0], DecodedInst::Alloca { off: 0, .. }));
        assert!(matches!(code[1], DecodedInst::ConstI { val: 7, .. }));
        assert!(matches!(code[2], DecodedInst::Store { .. }));
        assert!(matches!(code[3], DecodedInst::Load { .. }));
        assert!(matches!(code[4], DecodedInst::Ret { .. }));
        assert_eq!(f.alloca_offset(code_dst(code[0]) as usize), 0);
    }

    #[test]
    fn phi_blocks_collapse_to_batches() {
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(fid);
            let e = b.block("entry");
            let h = b.block("head");
            let x = b.block("exit");
            b.switch_to(e);
            let z = b.const_i64(0);
            let n = b.const_i64(3);
            let one = b.const_i64(1);
            b.jmp(h);
            b.switch_to(h);
            let i = b.phi(Type::I64, vec![(e, z)]);
            let c = b.icmp(carat_ir::Pred::Slt, i, n);
            let i2 = b.add(i, one);
            b.phi_add_incoming(i, h, i2);
            b.br(c, h, x);
            b.switch_to(x);
            b.ret(Some(i));
        }
        let m = mb.finish();
        let prog = DecodedProgram::decode(&m);
        let head = &prog.funcs[0].blocks[1];
        assert!(matches!(head.code[0], DecodedInst::PhiBatch));
        assert_eq!(head.phi_edges.len(), 2, "one edge per predecessor");
        for e in &head.phi_edges {
            assert_eq!(e.len, 1, "one copy per phi");
        }
    }

    fn code_dst(i: DecodedInst) -> u32 {
        match i {
            DecodedInst::Alloca { dst, .. } => dst,
            _ => panic!("expected alloca"),
        }
    }
}
