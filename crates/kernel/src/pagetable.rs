//! Four-level radix page table — the traditional model's mapping structure
//! (paper §2.1: "current systems represent mappings as radix trees").
//!
//! Used only by the *baseline* (paging) configuration; the CARAT
//! configuration has no page table at all.

/// Page table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Physical page number.
    pub ppn: u64,
    /// Writable.
    pub writable: bool,
}

/// x64-style 4-level radix table, 9 bits per level, 4KiB pages.
#[derive(Debug, Default)]
pub struct PageTable {
    root: Node,
    /// Live (valid) mappings.
    pub mapped: u64,
}

#[derive(Debug, Default)]
struct Node {
    children: carat_runtime::FastMap<u16, Box<Node>>,
    entries: carat_runtime::FastMap<u16, Pte>,
}

/// Result of a walk: the PTE plus how many levels were touched (memory
/// accesses a hardware pagewalker would perform).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Walk {
    /// The translation, if mapped.
    pub pte: Option<Pte>,
    /// Radix levels visited (≤ 4).
    pub levels: u32,
}

const LEVEL_BITS: u64 = 9;
const LEVEL_MASK: u64 = (1 << LEVEL_BITS) - 1;

fn indices(vpn: u64) -> [u16; 4] {
    [
        ((vpn >> (3 * LEVEL_BITS)) & LEVEL_MASK) as u16,
        ((vpn >> (2 * LEVEL_BITS)) & LEVEL_MASK) as u16,
        ((vpn >> LEVEL_BITS) & LEVEL_MASK) as u16,
        (vpn & LEVEL_MASK) as u16,
    ]
}

impl PageTable {
    /// Empty table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Map `vpn -> pte`, replacing any prior mapping.
    pub fn map(&mut self, vpn: u64, pte: Pte) -> Option<Pte> {
        let [i0, i1, i2, i3] = indices(vpn);
        let mut node = &mut self.root;
        for i in [i0, i1, i2] {
            node = node.children.entry(i).or_default();
        }
        let prev = node.entries.insert(i3, pte);
        if prev.is_none() {
            self.mapped += 1;
        }
        prev
    }

    /// Remove the mapping for `vpn`.
    pub fn unmap(&mut self, vpn: u64) -> Option<Pte> {
        let [i0, i1, i2, i3] = indices(vpn);
        let mut node = &mut self.root;
        for i in [i0, i1, i2] {
            node = node.children.get_mut(&i)?;
        }
        let prev = node.entries.remove(&i3);
        if prev.is_some() {
            self.mapped -= 1;
        }
        prev
    }

    /// Walk the radix tree for `vpn`, counting levels touched.
    pub fn walk(&self, vpn: u64) -> Walk {
        let [i0, i1, i2, i3] = indices(vpn);
        let mut node = &self.root;
        let mut levels = 1;
        for i in [i0, i1, i2] {
            match node.children.get(&i) {
                Some(n) => {
                    node = n;
                    levels += 1;
                }
                None => {
                    return Walk { pte: None, levels };
                }
            }
        }
        Walk {
            pte: node.entries.get(&i3).copied(),
            levels,
        }
    }

    /// Convenience: the PTE for `vpn` if mapped.
    pub fn translate(&self, vpn: u64) -> Option<Pte> {
        self.walk(vpn).pte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_walk_unmap() {
        let mut pt = PageTable::new();
        assert_eq!(pt.walk(5).pte, None);
        pt.map(
            5,
            Pte {
                ppn: 1234,
                writable: true,
            },
        );
        assert_eq!(pt.mapped, 1);
        let w = pt.walk(5);
        assert_eq!(w.pte.map(|p| p.ppn), Some(1234));
        assert_eq!(w.levels, 4, "full walk for a mapped page");
        assert!(pt.unmap(5).is_some());
        assert_eq!(pt.mapped, 0);
        assert_eq!(pt.walk(5).pte, None);
    }

    #[test]
    fn distant_vpns_use_distinct_subtrees() {
        let mut pt = PageTable::new();
        let a = 0u64;
        let b = 1u64 << 27; // differs in the top-level index
        pt.map(
            a,
            Pte {
                ppn: 1,
                writable: false,
            },
        );
        pt.map(
            b,
            Pte {
                ppn: 2,
                writable: false,
            },
        );
        assert_eq!(pt.translate(a).map(|p| p.ppn), Some(1));
        assert_eq!(pt.translate(b).map(|p| p.ppn), Some(2));
        // Unmapped page sharing no prefix aborts the walk early.
        let w = pt.walk(2u64 << 27);
        assert_eq!(w.pte, None);
        assert_eq!(w.levels, 1);
    }

    #[test]
    fn remap_replaces() {
        let mut pt = PageTable::new();
        pt.map(
            7,
            Pte {
                ppn: 1,
                writable: false,
            },
        );
        let prev = pt.map(
            7,
            Pte {
                ppn: 9,
                writable: true,
            },
        );
        assert_eq!(prev.map(|p| p.ppn), Some(1));
        assert_eq!(pt.mapped, 1);
        assert_eq!(pt.translate(7).map(|p| p.ppn), Some(9));
    }

    #[test]
    fn dense_mapping_count() {
        let mut pt = PageTable::new();
        for vpn in 0..1000 {
            pt.map(
                vpn,
                Pte {
                    ppn: vpn + 5000,
                    writable: true,
                },
            );
        }
        assert_eq!(pt.mapped, 1000);
        for vpn in (0..1000).step_by(2) {
            pt.unmap(vpn);
        }
        assert_eq!(pt.mapped, 500);
    }
}
