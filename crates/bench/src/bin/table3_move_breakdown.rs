//! Table 3 — worst-case page movement cost breakdown in cycles: Page
//! Expand / Patch Gen.&Exec / Register Patch / Allocation & Movement, plus
//! the derived prototype-cost columns.

use carat_bench::{
    compile, geomean, print_table, scale_from_args, selected_workloads, workers_from_args, Variant,
    FREQ_HZ,
};
use carat_runtime::GuardImpl;
use carat_vm::{MoveDriverConfig, Vm, VmConfig};

fn main() {
    let scale = scale_from_args();
    let workers = workers_from_args();
    println!(
        "Table 3: Worst-case Page Movement Costs in Cycles ({scale:?} scale, {workers} patch worker(s))\n"
    );
    let mut rows = Vec::new();
    let mut cols: [Vec<f64>; 8] = Default::default();
    for w in selected_workloads() {
        let m = compile(&w, scale, Variant::Full);
        // Drive moves at 10k/s so every workload performs many episodes.
        let driver = MoveDriverConfig {
            period_cycles: (FREQ_HZ / 10_000.0) as u64,
            max_moves: 200,
        };
        let cfg = VmConfig {
            mode: Variant::Full.mode(),
            guard_impl: GuardImpl::IfTree,
            move_driver: Some(driver),
            move_workers: workers,
            ..VmConfig::default()
        };
        let r = Vm::new(m, cfg).expect("loads").run().expect("runs");
        let (expand, patch, regs, mv) = r.counters.move_breakdown.averages();
        if r.counters.move_breakdown.episodes == 0 {
            continue;
        }
        let proto = expand + patch + regs;
        let proto_wo = patch + regs;
        let total = proto + mv;
        let frac = if total > 0.0 { proto_wo / total } else { 0.0 };
        let vals = [expand, patch, regs, mv, proto, proto_wo, total, frac];
        for (c, v) in cols.iter_mut().zip(vals) {
            c.push(v);
        }
        rows.push(vec![
            w.name.to_string(),
            format!("{expand:.0}"),
            format!("{patch:.0}"),
            format!("{regs:.0}"),
            format!("{mv:.0}"),
            format!("{proto:.0}"),
            format!("{proto_wo:.0}"),
            format!("{total:.0}"),
            format!("{frac:.4}"),
        ]);
    }
    let mut mean_row = vec!["Geo. Mean".to_string()];
    for c in &cols {
        let g = geomean(c);
        mean_row.push(if g >= 1.0 {
            format!("{g:.0}")
        } else {
            format!("{g:.4}")
        });
    }
    rows.push(mean_row);
    print_table(
        &[
            "benchmark",
            "Page Expand",
            "Patch G&E",
            "Reg Patch",
            "Alloc&Move",
            "Prototype",
            "Proto w/o Exp",
            "Total",
            "w/oExp/Total",
        ],
        &rows,
    );
}
