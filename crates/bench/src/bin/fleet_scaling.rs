//! # fleet_scaling — the 100k-tenant scaling curve
//!
//! Spawns fleets of 10 / 100 / 1k / 10k / 100k microservice-sized
//! tenants (one shared module, one shared decoded program) on one kernel
//! and measures what the slab-indexed process subsystem costs as the
//! fleet grows:
//!
//! * **Context-switch cost per slice** — modeled kernel cycles per
//!   switch must be FLAT across scales (the switch installs a region
//!   set, it never walks the fleet), and the CARAT figure (region
//!   install, no TLB flush) must undercut traditional paging (TLB flush
//!   + amortized ASID refill) at EVERY scale.
//! * **Host ns per slice** — the scheduler's own work per slice
//!   (run-queue pop, table checkout, O(1) tenant materialization) must
//!   not grow with fleet size: the curve gates on the largest scale
//!   staying within a small factor of the smallest. Each slice is timed
//!   individually, so the JSON also carries the **p99 slice latency** —
//!   the tail a latency SLO would see under fan-out.
//! * **Descheduled-tenant memory** — host bytes pinned per parked
//!   tenant (frame stack, thread slots, counters; capsule bytes live in
//!   kernel memory and decoded code is shared) must be flat in fleet
//!   size.
//! * **Pressure-compaction throughput** — journaled CARAT moves + page
//!   outs driven on descheduled victims while the fleet runs.
//! * **Churn soak** — spawn/kill/respawn against tight admission quotas
//!   at the largest scale: refusals are typed `AdmissionError`s, killed
//!   and recycled pids fail lookups with typed `TenancyError`s, and
//!   nothing ever panics.
//! * **Batch admission** — `spawn_batch` vs sequential `spawn_shared`
//!   at every scale: modeled admission cycles must amortize ≥5×, and a
//!   bounded prefix of both fleets must run with bit-identical
//!   per-tenant counters (the counter-divergence gate).
//! * **Capsule arena** — externalize/rehydrate churn through the pooled
//!   arena: high-water marks recorded, and steady-state churn must
//!   allocate nothing (every round after the first reuses slots).
//! * **Epoch pressure scans** — victim picks examine a bounded window
//!   of slab slots per pass (`2 × limit`, externalization + compaction),
//!   independent of fleet size — the per-slice flatness gate.
//!
//! Emits `BENCH_fleet.json` (override with `--out PATH`). Scale presets:
//! `--scale test` runs 10/100, `small` adds 1k, `full` adds 10k and
//! 100k. The tenants' interpreter tier is selectable with
//! `--engine reference|decoded|fused|threaded` (default fused) — the
//! scaling gates must hold on every tier. `--sched quantum|timer`
//! (default quantum) selects the preemption source: the instruction
//! quantum or the CLINT-style cycle-deadline timer.
//! `--spawn batch|seq` (default batch) picks the fleets' admission
//! path, and `--scan-limit N` (default 64; 0 = unbounded full rescan)
//! bounds the epoch pressure scans.

use std::rc::Rc;
use std::time::Instant;

use carat_bench::{engine_from_args, print_table, scale_from_args, Variant};
use carat_core::CaratCompiler;
use carat_ir::Module;
use carat_kernel::{ArenaStats, LoadConfig, Pid, TenantQuotas};
use carat_runtime::CostModel;
use carat_vm::{MultiVm, MultiVmConfig, ProcOutcome, TenancyError, VmConfig, VmError};
use carat_workloads::{fleet_tenant, Scale};

/// Per-tenant capsule sizing: a microservice, not a batch job. The
/// tenant program touches a few hundred heap bytes and a few stack
/// frames, so 8 KiB of stack and 16 KiB of heap leave headroom while
/// keeping a 10k-tenant fleet under 2 GiB of managed memory.
const FLEET_LOAD: LoadConfig = LoadConfig {
    stack_size: 8 * 1024,
    heap_size: 16 * 1024,
    page_size: 4096,
};

/// Slices each live tenant gets in the timed steady-state batch.
const TIMED_SLICES_PER_TENANT: u64 = 2;

fn fleet_sizes(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Test => &[10, 100],
        Scale::Small => &[10, 100, 1000],
        Scale::Full => &[10, 100, 1000, 10000, 100000],
    }
}

/// Which admission path builds the measured fleets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SpawnMode {
    /// One `spawn_batch` call: verify + quota once, stamp per tenant.
    Batch,
    /// N sequential `spawn_shared` calls (the pre-batch path).
    Seq,
}

fn spawn_mode_from_args() -> SpawnMode {
    let args: Vec<String> = std::env::args().collect();
    match args
        .windows(2)
        .find(|w| w[0] == "--spawn")
        .map(|w| w[1].as_str())
    {
        Some("seq") | Some("sequential") => SpawnMode::Seq,
        Some("batch") | None => SpawnMode::Batch,
        Some(other) => {
            eprintln!("fleet_scaling: unknown --spawn {other} (want batch|seq)");
            std::process::exit(2);
        }
    }
}

/// Epoch pressure-scan bound (`--scan-limit N`; 0 = unbounded rescan).
fn scan_limit_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--scan-limit")
        .map(|w| {
            w[1].parse().unwrap_or_else(|_| {
                eprintln!("fleet_scaling: --scan-limit wants a number, got {}", w[1]);
                std::process::exit(2);
            })
        })
        .unwrap_or(64)
}

fn kernel_mem(tenants: usize) -> u64 {
    64 * 1024 * 1024 + tenants as u64 * 128 * 1024
}

fn tenant_cfg(variant: Variant) -> VmConfig {
    VmConfig {
        mode: variant.mode(),
        engine: engine_from_args(),
        load: FLEET_LOAD,
        ..VmConfig::default()
    }
}

fn tenant_module(scale: Scale, variant: Variant, seed: i64) -> Rc<Module> {
    let module = fleet_tenant(scale, seed).expect("fleet tenant compiles");
    Rc::new(
        CaratCompiler::new(variant.options())
            .compile(module)
            .expect("fleet tenant instruments")
            .module,
    )
}

fn build_fleet(
    tenants: usize,
    scale: Scale,
    variant: Variant,
    pressure_every: u64,
) -> (MultiVm, Vec<Pid>) {
    let module = tenant_module(scale, variant, 0);
    let quantum = match scale {
        Scale::Test => 128,
        Scale::Small | Scale::Full => 256,
    };
    let mut mv = MultiVm::new(
        Vec::new(),
        MultiVmConfig {
            quantum,
            // `--sched timer` swaps the instruction quantum for the
            // CLINT-style cycle-deadline comparator; the scaling gates
            // must hold under either preemption source.
            sched: carat_bench::sched_from_args(),
            timer_interval: quantum * 16,
            kernel_mem: kernel_mem(tenants),
            pressure_every,
            pressure_batch: 4,
            pressure_scan_limit: scan_limit_from_args(),
            ..MultiVmConfig::default()
        },
    )
    .expect("empty fleet builds");
    let cfg = tenant_cfg(variant);
    let pids = spawn_fleet(&mut mv, &module, &cfg, tenants, spawn_mode_from_args());
    (mv, pids)
}

/// Admit `tenants` identical tenants named `t0..` via the selected
/// admission path. The two paths stamp bit-identical tenants (the
/// `batch_admission_differential` suite holds them to that), so the
/// scaling arms are comparable whichever one built them.
fn spawn_fleet(
    mv: &mut MultiVm,
    module: &Rc<Module>,
    cfg: &VmConfig,
    tenants: usize,
    mode: SpawnMode,
) -> Vec<Pid> {
    match mode {
        SpawnMode::Batch => mv
            .spawn_batch("t", module.clone(), cfg.clone(), tenants)
            .unwrap_or_else(|e| {
                eprintln!("fleet_scaling: batch-admitting {tenants} tenants failed: {e}");
                std::process::exit(2);
            }),
        SpawnMode::Seq => (0..tenants)
            .map(|i| {
                mv.spawn_shared(&format!("t{i}"), module.clone(), cfg.clone())
                    .unwrap_or_else(|e| {
                        eprintln!("fleet_scaling: admitting tenant {i}/{tenants} failed: {e}");
                        std::process::exit(2);
                    })
            })
            .collect(),
    }
}

/// One measured arm: warm every tenant once, time a steady-state batch,
/// sample descheduled footprints, then drain to completion and fold the
/// kernel accounting.
struct ArmResult {
    ns_per_slice: f64,
    p99_ns_per_slice: u64,
    cycles_per_switch: f64,
    switches: u64,
    tlb_flushes: u64,
    descheduled_bytes_per_tenant: f64,
    outcomes_ok: bool,
}

fn run_arm(tenants: usize, scale: Scale, variant: Variant) -> ArmResult {
    let (mut mv, pids) = build_fleet(tenants, scale, variant, 0);
    // Warmup: one slice per tenant (first switch installs every region
    // set; the timed batch then sees steady-state switching only).
    mv.run_batch(tenants as u64);
    let want = tenants as u64 * TIMED_SLICES_PER_TENANT;
    // Slices are driven one at a time so each gets its own wall-clock
    // sample: the p99 is the tail the mean hides (a pressure pass, an
    // externalization, a cold cache), exactly what a latency SLO sees.
    let mut samples: Vec<u64> = Vec::with_capacity(want as usize);
    let t0 = Instant::now();
    let mut ran = 0u64;
    while ran < want {
        let t = Instant::now();
        let step = mv.run_batch(1);
        if step == 0 {
            break;
        }
        samples.push(t.elapsed().as_nanos() as u64);
        ran += step;
    }
    let elapsed = t0.elapsed();
    let ns_per_slice = elapsed.as_nanos() as f64 / ran.max(1) as f64;
    let p99_ns_per_slice = carat_bench::percentile(&samples, 99.0);
    // Descheduled footprint, sampled while everything is parked.
    let sample: Vec<usize> = pids
        .iter()
        .take(64)
        .map(|&p| mv.descheduled_bytes(p).expect("live tenant"))
        .collect();
    let bytes_per_tenant = sample.iter().sum::<usize>() as f64 / sample.len().max(1) as f64;
    let expected_ret = {
        let solo = fleet_tenant(scale, 0).expect("compiles");
        carat_vm::Vm::new(solo, VmConfig::default())
            .expect("loads")
            .run()
            .expect("runs")
            .ret
    };
    let reports = mv.run();
    let outcomes_ok = reports.len() == tenants
        && reports
            .iter()
            .all(|r| matches!(&r.outcome, ProcOutcome::Finished(rr) if rr.ret == expected_ret));
    let switches: u64 = reports.iter().map(|r| r.accounting.ctx_switches).sum();
    let cycles: u64 = reports.iter().map(|r| r.accounting.ctx_switch_cycles).sum();
    let tlb_flushes: u64 = reports.iter().map(|r| r.accounting.tlb_flushes).sum();
    ArmResult {
        ns_per_slice,
        p99_ns_per_slice,
        cycles_per_switch: cycles as f64 / switches.max(1) as f64,
        switches,
        tlb_flushes,
        descheduled_bytes_per_tenant: bytes_per_tenant,
        outcomes_ok,
    }
}

struct PressureResult {
    moves: u64,
    page_outs: u64,
    cycles_per_relocation: f64,
    /// Slab slots an average pressure pass examined (externalization
    /// scan + compaction victim pick) — the epoch-scan flatness metric:
    /// bounded by `2 × scan limit` whatever the fleet size.
    scan_slots_per_pass: f64,
    scan_cycles_per_pass: f64,
}

/// The compaction arm: same fleet, pressure pass every 8 slices —
/// journaled moves + page-outs on descheduled victims, charged to
/// kernel accounting.
fn run_pressure(tenants: usize, scale: Scale) -> PressureResult {
    let (mut mv, _pids) = build_fleet(tenants, scale, Variant::Full, 8);
    mv.run_batch(tenants as u64);
    mv.run_batch(u64::MAX);
    // Scan accounting is fleet-level state; read it before teardown.
    let passes = (mv.slices() / 8).max(1);
    let scan_slots_per_pass = mv.pressure_scan_slots() as f64 / passes as f64;
    let scan_cycles_per_pass = mv.pressure_scan_cycles() as f64 / passes as f64;
    let reports = mv.run();
    let moves: u64 = reports.iter().map(|r| r.accounting.pressure_moves).sum();
    let outs: u64 = reports
        .iter()
        .map(|r| r.accounting.pressure_page_outs)
        .sum();
    let cycles: u64 = reports.iter().map(|r| r.accounting.compaction_cycles).sum();
    PressureResult {
        moves,
        page_outs: outs,
        cycles_per_relocation: cycles as f64 / (moves + outs).max(1) as f64,
        scan_slots_per_pass,
        scan_cycles_per_pass,
    }
}

struct AdmissionResult {
    batch_cycles: u64,
    seq_cycles: u64,
    /// `seq_cycles / batch_cycles` — the amortization factor (≥5× is
    /// the acceptance bar, at every size).
    ratio: f64,
    ns_per_admit_batch: f64,
    ns_per_admit_seq: f64,
    /// Counter-divergence gate: a bounded prefix of both fleets ran the
    /// same slices with bit-identical per-tenant counters.
    counters_match: bool,
    arena: ArenaStats,
    /// Steady-state gate: externalize/rehydrate rounds after the first
    /// allocated no new arena slots, reuse fired, and the final round
    /// drained the pool back to zero live slots.
    arena_steady: bool,
}

/// The admission arm: build the same fleet through both admission paths
/// and compare the modeled toll, wall-clock per admit, and (bounded)
/// per-tenant counters; then drive externalize/rehydrate churn through
/// the batch fleet to exercise the pooled capsule arena.
fn run_admission(tenants: usize, scale: Scale) -> AdmissionResult {
    let module = tenant_module(scale, Variant::Full, 0);
    let cfg = tenant_cfg(Variant::Full);
    let fleet_cfg = MultiVmConfig {
        quantum: 128,
        kernel_mem: kernel_mem(tenants),
        pressure_scan_limit: scan_limit_from_args(),
        ..MultiVmConfig::default()
    };

    let t0 = Instant::now();
    let mut batch = MultiVm::new(Vec::new(), fleet_cfg.clone()).expect("empty fleet builds");
    let pids = spawn_fleet(&mut batch, &module, &cfg, tenants, SpawnMode::Batch);
    let ns_per_admit_batch = t0.elapsed().as_nanos() as f64 / tenants.max(1) as f64;
    let batch_cycles = batch.admission_cycles();

    let t0 = Instant::now();
    let mut seq = MultiVm::new(Vec::new(), fleet_cfg).expect("empty fleet builds");
    spawn_fleet(&mut seq, &module, &cfg, tenants, SpawnMode::Seq);
    let ns_per_admit_seq = t0.elapsed().as_nanos() as f64 / tenants.max(1) as f64;
    let seq_cycles = seq.admission_cycles();

    // Counter divergence, on a bounded prefix (cheap at any scale): the
    // first ~64 tenants of both fleets run the same slices and must end
    // them with bit-identical counters.
    let probe = pids.len().min(64);
    let slices = probe as u64 * 2;
    batch.run_batch(slices);
    seq.run_batch(slices);
    let counters_match = pids
        .iter()
        .take(probe)
        .all(|&p| batch.counters(p).ok() == seq.counters(p).ok());
    drop(seq);

    // Arena churn: three externalize/rehydrate rounds over a bounded
    // window. Round one populates the size classes; every later round
    // must run entirely on the free lists.
    let window = &pids[..probe];
    let mut allocs_after_first = 0u64;
    for round in 0..3 {
        for &p in window {
            batch.externalize_tenant(p).expect("externalizes");
        }
        for &p in window {
            batch.rehydrate_tenant(p).expect("rehydrates");
        }
        if round == 0 {
            allocs_after_first = batch.arena_stats().allocs;
        }
    }
    let arena = batch.arena_stats();
    let arena_steady =
        arena.allocs == allocs_after_first && arena.reuses > 0 && arena.slots_live == 0;
    AdmissionResult {
        batch_cycles,
        seq_cycles,
        ratio: seq_cycles as f64 / batch_cycles.max(1) as f64,
        ns_per_admit_batch,
        ns_per_admit_seq,
        counters_match,
        arena,
        arena_steady,
    }
}

struct ChurnResult {
    tenants: usize,
    spawned: u64,
    killed: u64,
    admission_refusals: u64,
    stale_lookups_typed: u64,
    slices: u64,
    ok: bool,
}

/// Spawn/kill/respawn churn against tight quotas at the largest scale.
/// Every refusal must be a typed [`VmError::Admission`]; every lookup or
/// kill of a retired pid must fail typed (never alias a recycled slot,
/// never panic).
fn run_churn(tenants: usize, scale: Scale) -> ChurnResult {
    let module = tenant_module(scale, Variant::Full, 1);
    let cfg = tenant_cfg(Variant::Full);
    let mut mv = MultiVm::new(
        Vec::new(),
        MultiVmConfig {
            quantum: 128,
            kernel_mem: kernel_mem(tenants),
            ..MultiVmConfig::default()
        },
    )
    .expect("empty fleet builds");
    // Probe one tenant to learn the capsule size, then set quotas that
    // admit only half the requested fleet — the soak must hit the
    // ceiling and get typed refusals.
    let probe = mv
        .spawn_shared("probe", module.clone(), cfg.clone())
        .expect("probe admits");
    let capsule = mv.kernel.procs.resident_bytes();
    mv.kernel.set_quotas(TenantQuotas {
        max_tenants: tenants,
        max_resident_bytes: capsule * (tenants as u64 / 2).max(2),
    });
    let mut live: Vec<Pid> = vec![probe];
    let mut stale: Vec<Pid> = Vec::new();
    let (mut spawned, mut killed, mut refusals, mut stale_typed, mut slices) =
        (1u64, 0u64, 0u64, 0u64, 0u64);
    let mut ok = true;
    for round in 0..3 {
        // Spawn until the quota refuses (cap attempts at the fleet size).
        for i in 0..tenants {
            match mv.spawn_shared(&format!("c{round}.{i}"), module.clone(), cfg.clone()) {
                Ok(pid) => {
                    live.push(pid);
                    spawned += 1;
                }
                Err(VmError::Admission(_)) => {
                    refusals += 1;
                    break;
                }
                Err(e) => {
                    eprintln!("fleet_scaling: churn spawn died untyped: {e}");
                    ok = false;
                    break;
                }
            }
        }
        slices += mv.run_batch(live.len() as u64 * 2);
        // Kill every other tenant; their pids go stale for good.
        let mut keep = Vec::with_capacity(live.len() / 2 + 1);
        for (i, pid) in live.drain(..).enumerate() {
            if i % 2 == 0 {
                ok &= mv.kill(pid);
                killed += 1;
                stale.push(pid);
            } else {
                keep.push(pid);
            }
        }
        live = keep;
        // Every retired pid (including ones whose slab slot was recycled
        // by this round's spawns) must fail typed, never alias.
        for &pid in &stale {
            match mv.counters(pid) {
                Err(TenancyError::NoSuchTenant(p)) if p == pid => stale_typed += 1,
                other => {
                    eprintln!("fleet_scaling: stale pid {pid} lookup returned {other:?}");
                    ok = false;
                }
            }
            if mv.kill(pid) {
                eprintln!("fleet_scaling: stale pid {pid} killed twice");
                ok = false;
            }
        }
    }
    // `ok` already went false on any untyped refusal, aliased lookup, or
    // double kill; the soak additionally must have hit the quota and run.
    ok &= refusals > 0 && slices > 0 && stale_typed > 0;
    ChurnResult {
        tenants,
        spawned,
        killed,
        admission_refusals: refusals,
        stale_lookups_typed: stale_typed,
        slices,
        ok,
    }
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let sizes = fleet_sizes(scale);
    let cost = CostModel::default();
    let scan_limit = scan_limit_from_args();
    println!(
        "fleet_scaling: fleets of {sizes:?} tenants, scale {scale:?}, engine {}, \
         spawn {:?}, scan limit {} (modeled switch: carat {} vs traditional {})",
        engine_from_args().name(),
        spawn_mode_from_args(),
        scan_limit,
        cost.ctx_switch_carat(),
        cost.ctx_switch_traditional()
    );
    println!();

    let mut rows = Vec::new();
    let mut curve_json = String::new();
    let mut carat_cps = Vec::new();
    let mut trad_cps = Vec::new();
    let mut carat_ns = Vec::new();
    let mut mem_per_tenant = Vec::new();
    let mut gap_every_scale = true;
    let mut outcomes_ok = true;
    let mut admission_ok = true;
    let mut arena_ok = true;
    let mut scan_ok = true;
    let mut p99_ok = true;
    for &n in sizes {
        let carat = run_arm(n, scale, Variant::Full);
        let trad = run_arm(n, scale, Variant::Traditional);
        let pressure = run_pressure(n, scale);
        let admission = run_admission(n, scale);
        gap_every_scale &=
            carat.cycles_per_switch < trad.cycles_per_switch && carat.tlb_flushes == 0;
        outcomes_ok &= carat.outcomes_ok && trad.outcomes_ok;
        // Modeled admission must amortize ≥5× AND match the cost model
        // exactly; the counter probe is the divergence gate.
        admission_ok &= admission.ratio >= 5.0
            && admission.batch_cycles == cost.admit_batch_cost(n as u64)
            && admission.seq_cycles == cost.admit_sequential_cost(n as u64)
            && admission.counters_match;
        arena_ok &= admission.arena_steady;
        // Epoch scans examine at most the externalization window plus
        // the compaction window per pass, whatever the fleet size.
        let scan_bound = if scan_limit == 0 {
            2.0 * n as f64
        } else {
            2.0 * scan_limit as f64
        };
        scan_ok &= pressure.scan_slots_per_pass <= scan_bound + 2.0;
        // The latency tail must stay within two orders of magnitude of
        // the mean: an O(fleet) pass hiding in 1% of slices blows
        // through this at the large scales while the mean stays put.
        p99_ok &= (carat.p99_ns_per_slice as f64) < carat.ns_per_slice * 100.0;
        rows.push(vec![
            n.to_string(),
            format!("{:.0}", carat.ns_per_slice),
            carat.p99_ns_per_slice.to_string(),
            format!("{:.1}", carat.cycles_per_switch),
            format!("{:.1}", trad.cycles_per_switch),
            format!("{:.0}", carat.descheduled_bytes_per_tenant),
            format!("{:.0}", pressure.cycles_per_relocation),
            format!("{:.1}", admission.ratio),
            format!("{:.0}", pressure.scan_slots_per_pass),
            (admission.arena.high_water_bytes / 1024).to_string(),
        ]);
        if !curve_json.is_empty() {
            curve_json.push_str(",\n");
        }
        curve_json.push_str(&format!(
            "    {{\"tenants\": {n}, \
             \"carat\": {{\"ns_per_slice\": {:.1}, \"p99_ns_per_slice\": {}, \"cycles_per_switch\": {:.3}, \"switches\": {}, \"tlb_flushes\": {}}}, \
             \"traditional\": {{\"ns_per_slice\": {:.1}, \"p99_ns_per_slice\": {}, \"cycles_per_switch\": {:.3}, \"switches\": {}, \"tlb_flushes\": {}}}, \
             \"descheduled_bytes_per_tenant\": {:.1}, \
             \"pressure\": {{\"moves\": {}, \"page_outs\": {}, \"cycles_per_relocation\": {:.1}, \"scan_slots_per_pass\": {:.1}, \"scan_cycles_per_pass\": {:.1}}}, \
             \"admission\": {{\"batch_cycles\": {}, \"seq_cycles\": {}, \"ratio\": {:.2}, \"ns_per_admit_batch\": {:.0}, \"ns_per_admit_seq\": {:.0}, \"counters_match\": {}}}, \
             \"arena\": {{\"high_water_bytes\": {}, \"high_water_slots\": {}, \"allocs\": {}, \"reuses\": {}, \"steady\": {}}}}}",
            carat.ns_per_slice,
            carat.p99_ns_per_slice,
            carat.cycles_per_switch,
            carat.switches,
            carat.tlb_flushes,
            trad.ns_per_slice,
            trad.p99_ns_per_slice,
            trad.cycles_per_switch,
            trad.switches,
            trad.tlb_flushes,
            carat.descheduled_bytes_per_tenant,
            pressure.moves,
            pressure.page_outs,
            pressure.cycles_per_relocation,
            pressure.scan_slots_per_pass,
            pressure.scan_cycles_per_pass,
            admission.batch_cycles,
            admission.seq_cycles,
            admission.ratio,
            admission.ns_per_admit_batch,
            admission.ns_per_admit_seq,
            admission.counters_match,
            admission.arena.high_water_bytes,
            admission.arena.high_water_slots,
            admission.arena.allocs,
            admission.arena.reuses,
            admission.arena_steady,
        ));
        carat_cps.push(carat.cycles_per_switch);
        trad_cps.push(trad.cycles_per_switch);
        carat_ns.push(carat.ns_per_slice);
        mem_per_tenant.push(carat.descheduled_bytes_per_tenant);
    }
    print_table(
        &[
            "tenants",
            "ns/slice",
            "p99 ns/slice",
            "carat cyc/sw",
            "trad cyc/sw",
            "bytes/parked",
            "cyc/reloc",
            "adm ratio",
            "scan/pass",
            "arena hw KiB",
        ],
        &rows,
    );

    let spread = |xs: &[f64]| {
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        max / min.max(1e-9)
    };
    // Modeled switch cost is a constant charge: flat means *exactly* flat
    // (1% slack for integer division on unequal switch counts).
    let flat_ctx_ok = spread(&carat_cps) < 1.01 && spread(&trad_cps) < 1.01;
    // Parked tenants are identical programs: their footprint must not
    // grow with fleet size.
    let flat_mem_ok = spread(&mem_per_tenant) < 1.25;
    // Host scheduling work per slice is O(1) in fleet size; allow a
    // generous factor for cache effects at 10k (an O(fleet) scheduler
    // would blow through this by orders of magnitude).
    let o1_sched_ok = spread(&carat_ns) < 10.0;
    println!();
    println!(
        "{}: modeled cycles/switch flat across scales (carat spread {:.4}, trad {:.4})",
        if flat_ctx_ok { "PASS" } else { "FAIL" },
        spread(&carat_cps),
        spread(&trad_cps)
    );
    println!(
        "{}: carat switch undercuts traditional at every scale, 0 TLB flushes",
        if gap_every_scale { "PASS" } else { "FAIL" }
    );
    println!(
        "{}: descheduled bytes/tenant flat across scales (spread {:.3})",
        if flat_mem_ok { "PASS" } else { "FAIL" },
        spread(&mem_per_tenant)
    );
    println!(
        "{}: host ns/slice O(1) in fleet size (spread {:.2}x)",
        if o1_sched_ok { "PASS" } else { "FAIL" },
        spread(&carat_ns)
    );
    println!(
        "{}: every tenant finished with the expected checksum",
        if outcomes_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "{}: batch admission >=5x cheaper than sequential (modeled), counters bit-identical",
        if admission_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "{}: capsule arena steady-state churn allocates nothing (reuse after round one)",
        if arena_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "{}: pressure scans bounded at {} slots/pass whatever the fleet size",
        if scan_ok { "PASS" } else { "FAIL" },
        if scan_limit == 0 {
            "2n".to_string()
        } else {
            format!("{}", 2 * scan_limit)
        }
    );
    println!(
        "{}: p99 slice latency within 100x of the mean at every scale",
        if p99_ok { "PASS" } else { "FAIL" }
    );

    let churn_n = *sizes.last().expect("at least one size");
    let churn = run_churn(churn_n, scale);
    println!(
        "{}: churn soak at {churn_n} tenants — {} spawned, {} killed, {} typed refusals, {} typed stale lookups, {} slices, 0 panics",
        if churn.ok { "PASS" } else { "FAIL" },
        churn.spawned,
        churn.killed,
        churn.admission_refusals,
        churn.stale_lookups_typed,
        churn.slices
    );

    let pass = flat_ctx_ok
        && gap_every_scale
        && flat_mem_ok
        && o1_sched_ok
        && outcomes_ok
        && admission_ok
        && arena_ok
        && scan_ok
        && p99_ok
        && churn.ok;
    let json = format!(
        "{{\n  \"benchmark\": \"fleet_scaling\",\n  \"scale\": \"{scale:?}\",\n  \
         \"engine\": \"{eng}\",\n  \"spawn_mode\": \"{sm:?}\",\n  \"scan_limit\": {scan_limit},\n  \
         \"modeled_ctx\": {{\"carat\": {mc}, \"traditional\": {mt}}},\n  \"curve\": [\n{curve_json}\n  ],\n  \
         \"flat_ctx_ok\": {flat_ctx_ok},\n  \"gap_every_scale\": {gap_every_scale},\n  \
         \"flat_mem_ok\": {flat_mem_ok},\n  \"o1_sched_ok\": {o1_sched_ok},\n  \
         \"outcomes_ok\": {outcomes_ok},\n  \"admission_ok\": {admission_ok},\n  \
         \"arena_ok\": {arena_ok},\n  \"scan_ok\": {scan_ok},\n  \"p99_ok\": {p99_ok},\n  \
         \"churn\": {{\"tenants\": {cn}, \"spawned\": {csp}, \
         \"killed\": {ck}, \"admission_refusals\": {cr}, \"stale_lookups_typed\": {cs}, \
         \"slices\": {csl}, \"ok\": {cok}}},\n  \"pass\": {pass}\n}}\n",
        sm = spawn_mode_from_args(),
        eng = engine_from_args().name(),
        mc = cost.ctx_switch_carat(),
        mt = cost.ctx_switch_traditional(),
        cn = churn.tenants,
        csp = churn.spawned,
        ck = churn.killed,
        cr = churn.admission_refusals,
        cs = churn.stale_lookups_typed,
        csl = churn.slices,
        cok = churn.ok,
    );
    std::fs::write(&out_path, json).expect("write json");
    println!("\nwrote {out_path}");
    if !pass {
        std::process::exit(1);
    }
}
