//! Differential tests for the pre-decoded execution engine.
//!
//! The decoded engine is a pure performance refactor: for every workload,
//! in every execution mode, it must produce byte-for-byte the same
//! observable behavior as the retained reference interpreter — the same
//! return value and the same `PerfCounters` (instructions, cycles,
//! guard/tracking/move accounting, and the per-opcode histogram).

use carat_suite::core::{CaratCompiler, CompileOptions};
use carat_suite::frontend::compile_cm;
use carat_suite::ir::Module;
use carat_suite::vm::{Engine, Mode, MoveDriverConfig, RunResult, Vm, VmConfig};
use carat_suite::workloads::{all_workloads, Scale};

/// Run `module` under `cfg` with the given engine.
fn run_engine(module: Module, cfg: &VmConfig, engine: Engine) -> RunResult {
    let cfg = VmConfig {
        engine,
        ..cfg.clone()
    };
    Vm::new(module, cfg).expect("load").run().expect("run")
}

/// Assert that the decoded and reference engines agree on every
/// observable of a run.
fn assert_identical(module: &Module, cfg: &VmConfig, what: &str) {
    let dec = run_engine(module.clone(), cfg, Engine::Decoded);
    let refr = run_engine(module.clone(), cfg, Engine::Reference);
    assert_eq!(dec.ret, refr.ret, "{what}: return value");
    assert_eq!(dec.counters, refr.counters, "{what}: counters");
    assert_eq!(dec.output, refr.output, "{what}: output");
    assert_eq!(dec.track_stats, refr.track_stats, "{what}: tracking stats");
    assert_eq!(dec.page_allocs, refr.page_allocs, "{what}: page allocs");
    assert_eq!(dec.page_moves, refr.page_moves, "{what}: page moves");
    assert_eq!(dec.dtlb_misses, refr.dtlb_misses, "{what}: DTLB misses");
    assert_eq!(dec.pagewalks, refr.pagewalks, "{what}: pagewalks");
}

fn compile(module: Module, options: CompileOptions) -> Module {
    CaratCompiler::new(options)
        .compile(module)
        .expect("carat compile")
        .module
}

/// Every workload, traditional paging mode (uninstrumented baseline
/// build): identical TLB/pagewalk accounting under both engines.
#[test]
fn all_workloads_agree_in_traditional_mode() {
    for w in all_workloads() {
        let module = w.module(Scale::Test).expect("frontend");
        let m = compile(module, CompileOptions::baseline());
        let cfg = VmConfig {
            mode: Mode::Traditional,
            ..VmConfig::default()
        };
        assert_identical(&m, &cfg, &format!("{} (traditional)", w.name));
    }
}

/// Every workload, CARAT mode with full instrumentation (guards +
/// tracking + optimizations): identical guard and tracking accounting
/// under both engines.
#[test]
fn all_workloads_agree_in_carat_mode() {
    for w in all_workloads() {
        let module = w.module(Scale::Test).expect("frontend");
        let m = compile(module, CompileOptions::default());
        let cfg = VmConfig::default();
        assert_identical(&m, &cfg, &format!("{} (carat)", w.name));
    }
}

/// Page moves exercise the world-stop machinery (register snapshot,
/// escape patching, poison handling); both engines must drive it to the
/// same cycle.
#[test]
fn moves_agree_across_engines() {
    for name in ["mcf", "canneal", "freqmine"] {
        let w = carat_suite::workloads::by_name(name).expect("workload");
        let module = w.module(Scale::Test).expect("frontend");
        let m = compile(module, CompileOptions::default());
        let cfg = VmConfig {
            move_driver: Some(MoveDriverConfig {
                period_cycles: 15_000,
                max_moves: 40,
            }),
            ..VmConfig::default()
        };
        let dec = run_engine(m.clone(), &cfg, Engine::Decoded);
        assert!(dec.counters.moves > 0, "{name}: moves actually happened");
        assert_identical(&m, &cfg, &format!("{name} (moves)"));
    }
}

/// Thread world-stops: with live threads and `extra_threads > 0`, a
/// forced move snapshots and patches every thread's registers and stack
/// pointer (the `SnapshotMap` path). The decoded engine must reproduce
/// the seed interpreter's patching exactly — same move episodes, same
/// per-phase breakdown (register-patch cycles scale with the snapshot
/// size), same final memory image.
#[test]
fn thread_world_stops_agree_across_engines() {
    let src = "
        int* shared;
        int work(int lo) {
            for (int i = lo; i < lo + 300; i += 1) { shared[i] = i * 7; }
            return lo;
        }
        int main() {
            shared = (int*) malloc(1200 * sizeof(int));
            int t0 = spawn(work, 0);
            int t1 = spawn(work, 300);
            int t2 = spawn(work, 600);
            int done = join(t0) + join(t1) + join(t2);
            for (int i = 900; i < 1200; i += 1) { shared[i] = i * 7; }
            int s = done * 0;
            for (int i = 0; i < 1200; i += 1) { s += shared[i]; }
            free(shared);
            return s % 1000000;
        }
    ";
    let module = compile_cm("stops", src).expect("frontend");
    let m = compile(module, CompileOptions::default());
    let cfg = VmConfig {
        move_driver: Some(MoveDriverConfig {
            period_cycles: 20_000,
            max_moves: 60,
        }),
        extra_threads: 2,
        ..VmConfig::default()
    };
    let dec = run_engine(m.clone(), &cfg, Engine::Decoded);
    let refr = run_engine(m.clone(), &cfg, Engine::Reference);
    assert!(dec.counters.moves > 0, "moves happened during threaded run");
    assert_eq!(dec.ret, refr.ret, "threaded result");
    assert_eq!(
        dec.counters.move_breakdown, refr.counters.move_breakdown,
        "per-phase move costs (register patch reflects SnapshotMap size)"
    );
    assert_eq!(dec.counters, refr.counters, "full counters");
}

/// The opcode histogram is recorded by both engines and must agree —
/// including the convention that a run of phis counts as one
/// instruction.
#[test]
fn opcode_mix_agrees_and_sums_to_instructions() {
    let w = carat_suite::workloads::by_name("hpccg").expect("workload");
    let module = w.module(Scale::Test).expect("frontend");
    let m = compile(module, CompileOptions::default());
    let cfg = VmConfig::default();
    let dec = run_engine(m.clone(), &cfg, Engine::Decoded);
    let refr = run_engine(m, &cfg, Engine::Reference);
    assert_eq!(dec.counters.opcode_mix, refr.counters.opcode_mix);
    assert_eq!(
        dec.counters.opcode_mix.total(),
        dec.counters.instructions,
        "histogram covers every retired instruction"
    );
    assert!(!dec.counters.opcode_mix.sorted().is_empty());
}
