//! Lexer for Cm, the C-subset front-end language.

use std::error::Error;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Character literal (value).
    Char(i8),
    /// Identifier.
    Ident(String),
    /// Keyword.
    Kw(Kw),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// Keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    /// `int`
    Int,
    /// `double`
    Double,
    /// `char`
    Char,
    /// `bool`
    Bool,
    /// `void`
    Void,
    /// `struct`
    Struct,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `true`
    True,
    /// `false`
    False,
    /// `sizeof`
    Sizeof,
    /// `null`
    Null,
}

/// A token plus its source line (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line.
    pub line: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl Error for LexError {}

const PUNCTS: &[&str] = &[
    // longest first
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "(", ")", "{", "}", "[", "]", ";", ",", ".", "+",
    "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~", "?", ":",
];

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "int" => Kw::Int,
        "double" => Kw::Double,
        "char" => Kw::Char,
        "bool" => Kw::Bool,
        "void" => Kw::Void,
        "struct" => Kw::Struct,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "for" => Kw::For,
        "return" => Kw::Return,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "true" => Kw::True,
        "false" => Kw::False,
        "sizeof" => Kw::Sizeof,
        "null" | "NULL" => Kw::Null,
        _ => return None,
    })
}

/// Tokenize Cm source.
///
/// # Errors
///
/// Returns a [`LexError`] on malformed literals or unknown characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(LexError {
                        line,
                        message: "unterminated block comment".into(),
                    });
                }
                i += 2;
                continue;
            }
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] | 32) == b'x' {
                i += 2;
                while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                    i += 1;
                }
                let text = &src[start + 2..i];
                let v = i64::from_str_radix(text, 16).map_err(|_| LexError {
                    line,
                    message: format!("bad hex literal `{text}`"),
                })?;
                out.push(Spanned {
                    tok: Tok::Int(v),
                    line,
                });
                continue;
            }
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len()
                && bytes[i] == b'.'
                && i + 1 < bytes.len()
                && (bytes[i + 1] as char).is_ascii_digit()
            {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] | 32) == b'e' {
                let save = i;
                i += 1;
                if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                    i += 1;
                }
                if i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    is_float = true;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                } else {
                    i = save;
                }
            }
            let text = &src[start..i];
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|_| LexError {
                    line,
                    message: format!("bad float literal `{text}`"),
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| LexError {
                    line,
                    message: format!("bad int literal `{text}`"),
                })?)
            };
            out.push(Spanned { tok, line });
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let text = &src[start..i];
            let tok = match keyword(text) {
                Some(k) => Tok::Kw(k),
                None => Tok::Ident(text.to_string()),
            };
            out.push(Spanned { tok, line });
            continue;
        }
        // Character literal.
        if c == '\'' {
            i += 1;
            let val = if i < bytes.len() && bytes[i] == b'\\' {
                i += 1;
                let esc = bytes.get(i).copied().ok_or_else(|| LexError {
                    line,
                    message: "unterminated char literal".into(),
                })?;
                i += 1;
                match esc {
                    b'n' => b'\n' as i8,
                    b't' => b'\t' as i8,
                    b'0' => 0,
                    b'\\' => b'\\' as i8,
                    b'\'' => b'\'' as i8,
                    other => {
                        return Err(LexError {
                            line,
                            message: format!("unknown escape \\{}", other as char),
                        })
                    }
                }
            } else {
                let v = bytes.get(i).copied().ok_or_else(|| LexError {
                    line,
                    message: "unterminated char literal".into(),
                })? as i8;
                i += 1;
                v
            };
            if bytes.get(i) != Some(&b'\'') {
                return Err(LexError {
                    line,
                    message: "unterminated char literal".into(),
                });
            }
            i += 1;
            out.push(Spanned {
                tok: Tok::Char(val),
                line,
            });
            continue;
        }
        // Punctuation.
        let rest = &src[i..];
        let mut matched = false;
        for p in PUNCTS {
            if rest.starts_with(p) {
                out.push(Spanned {
                    tok: Tok::Punct(p),
                    line,
                });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(LexError {
                line,
                message: format!("unexpected character `{c}`"),
            });
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_program_fragment() {
        let t = toks("int main() { return 42; }");
        assert_eq!(
            t,
            vec![
                Tok::Kw(Kw::Int),
                Tok::Ident("main".into()),
                Tok::Punct("("),
                Tok::Punct(")"),
                Tok::Punct("{"),
                Tok::Kw(Kw::Return),
                Tok::Int(42),
                Tok::Punct(";"),
                Tok::Punct("}"),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("1 2.5 1e3 0x1f 7e"),
            vec![
                Tok::Int(1),
                Tok::Float(2.5),
                Tok::Float(1000.0),
                Tok::Int(31),
                Tok::Int(7),
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_multichar_operators() {
        assert_eq!(
            toks("a->b <= c && d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("->"),
                Tok::Ident("b".into()),
                Tok::Punct("<="),
                Tok::Ident("c".into()),
                Tok::Punct("&&"),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_counts_lines() {
        let spanned = lex("// hi\n/* multi\nline */ int x;").unwrap();
        assert_eq!(spanned[0].tok, Tok::Kw(Kw::Int));
        assert_eq!(spanned[0].line, 3);
    }

    #[test]
    fn char_literals() {
        assert_eq!(
            toks("'a' '\\n' '\\0'"),
            vec![Tok::Char(97), Tok::Char(10), Tok::Char(0), Tok::Eof]
        );
    }

    #[test]
    fn reports_unknown_character() {
        let e = lex("int @").unwrap_err();
        assert!(e.message.contains('@'));
    }
}
