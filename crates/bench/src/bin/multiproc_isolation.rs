//! # multiproc_isolation — the multi-tenant process-model benchmark
//!
//! Runs the six-workload server mix as concurrent processes on one
//! [`MultiVm`] and measures the costs the process subsystem adds:
//!
//! * **Context switches** — kernel cycles per switch under CARAT
//!   (register state only, no translation state to flush) versus
//!   traditional paging (modeled TLB flush + ASID rollover per switch).
//!   The headline claim: the CARAT figure is strictly below.
//! * **Isolation-guard overhead** — per-tenant slowdown of the guarded
//!   mix over the same mix uninstrumented (guards are what enforce
//!   cross-process isolation in CARAT; paging gets it from hardware).
//! * **Cross-process shared-region moves** — cycles per journaled move
//!   of a block mapped into 2/4/6 owners, every owner patched.
//! * **Differential check** — every tenant's [`PerfCounters`] under
//!   time slicing must be bit-identical to a sequential run; any
//!   divergence fails the run (nonzero exit — CI smoke semantics).
//!
//! Emits `BENCH_multiproc.json` (override with `--out PATH`).
//!
//! [`PerfCounters`]: carat_vm::PerfCounters

use carat_bench::{compile, geomean, print_table, scale_from_args, Variant};
use carat_core::{CaratCompiler, CompileOptions};
use carat_ir::{GlobalInit, Module, ModuleBuilder, Type};
use carat_kernel::Pid;
use carat_runtime::CostModel;
use carat_vm::{MultiVm, MultiVmConfig, ProcOutcome, ProcReport, ProcSpec, RunResult, VmConfig};
use carat_workloads::{by_name, Scale, SERVER_MIX};

/// Shared-kernel arena: six default capsules round up to 64 MiB buddy
/// blocks each, so the mix needs 384 MiB of managed memory.
const KERNEL_MEM: u64 = 1 << 30;

/// Journaled moves performed per shared-region configuration.
const SHARED_MOVES: u64 = 8;

fn mix_specs(variant: Variant, scale: Scale) -> Vec<ProcSpec> {
    SERVER_MIX
        .iter()
        .map(|name| {
            let w = by_name(name).expect("server-mix workload exists");
            ProcSpec {
                name: (*name).to_string(),
                module: compile(&w, scale, variant),
                cfg: VmConfig {
                    mode: variant.mode(),
                    ..VmConfig::default()
                },
            }
        })
        .collect()
}

fn run_mix(variant: Variant, scale: Scale, quantum: u64) -> Vec<ProcReport> {
    let mv = MultiVm::new(
        mix_specs(variant, scale),
        MultiVmConfig {
            quantum,
            kernel_mem: KERNEL_MEM,
            ..MultiVmConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("multiproc_isolation: admitting the mix failed: {e}");
        std::process::exit(2);
    });
    mv.run()
}

fn finished(r: &ProcReport) -> &RunResult {
    match &r.outcome {
        ProcOutcome::Finished(rr) => rr,
        other => {
            eprintln!("multiproc_isolation: {} did not finish: {other:?}", r.name);
            std::process::exit(1);
        }
    }
}

/// Per-process sliced-vs-sequential comparison; prints one line per
/// divergent tenant and returns whether everything matched.
fn differential_ok(sliced: &[ProcReport], seq: &[ProcReport], label: &str) -> bool {
    let mut ok = true;
    for (s, q) in sliced.iter().zip(seq) {
        let (rs, rq) = (finished(s), finished(q));
        if rs.ret != rq.ret {
            println!(
                "FAIL [{label}] {}: result diverges under slicing ({} vs {})",
                s.name, rs.ret, rq.ret
            );
            ok = false;
        }
        if rs.counters != rq.counters {
            println!(
                "FAIL [{label}] {}: per-process counters diverge under slicing",
                s.name
            );
            ok = false;
        }
    }
    ok
}

/// Sums the first four u64s of the shared block published in global 0.
fn shared_reader_module() -> Module {
    let mut mb = ModuleBuilder::new("shared_reader");
    let cell = mb.global("shm", Type::Ptr, GlobalInit::Zero);
    let f = mb.declare("main", vec![], Some(Type::I64));
    {
        let mut b = mb.define(f);
        let e = b.block("entry");
        b.switch_to(e);
        let ga = b.global_addr(cell);
        let p = b.load(Type::Ptr, ga);
        let mut sum = b.const_i64(0);
        for i in 0..4i64 {
            let idx = b.const_i64(i);
            let pi = b.ptr_add(p, idx, Type::I64);
            let v = b.load(Type::I64, pi);
            sum = b.add(sum, v);
        }
        b.ret(Some(sum));
    }
    mb.finish()
}

/// Map one shared block into `owners` tenants, move it [`SHARED_MOVES`]
/// times (patching every owner), then run and check every reader sums
/// the block through its patched pointer. Returns (cycles/move, ok).
fn shared_move_cost(owners: usize) -> (f64, bool) {
    let reader = CaratCompiler::new(CompileOptions::default())
        .compile(shared_reader_module())
        .expect("reader instruments")
        .module;
    let specs = (0..owners)
        .map(|i| ProcSpec {
            name: format!("reader-{i}"),
            module: reader.clone(),
            cfg: VmConfig::default(),
        })
        .collect();
    let mut mv = MultiVm::new(
        specs,
        MultiVmConfig {
            quantum: 512,
            kernel_mem: KERNEL_MEM,
            ..MultiVmConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("multiproc_isolation: admitting readers failed: {e}");
        std::process::exit(2);
    });
    let id = mv.shared_create(4096).expect("frames available");
    let base = mv.kernel.procs.shared(id).unwrap().base;
    for (i, v) in [11u64, 22, 33, 44].into_iter().enumerate() {
        mv.kernel.mem.write_uint(base + 8 * i as u64, v, 8);
    }
    for pid in 0..owners {
        mv.shared_map(Pid(pid as u64), id, 0)
            .expect("maps into live tenant");
    }
    for _ in 0..SHARED_MOVES {
        mv.move_shared(id).expect("clean move");
    }
    let per_move = mv.kernel.procs.shared_move_cycles as f64 / mv.kernel.procs.shared_moves as f64;
    let ok = mv
        .run()
        .iter()
        .all(|r| matches!(&r.outcome, ProcOutcome::Finished(rr) if rr.ret == 11 + 22 + 33 + 44));
    (per_move, ok)
}

struct CtxStats {
    switches: u64,
    cycles: u64,
    tlb_flushes: u64,
}

fn ctx_stats(reports: &[ProcReport]) -> CtxStats {
    CtxStats {
        switches: reports.iter().map(|r| r.accounting.ctx_switches).sum(),
        cycles: reports.iter().map(|r| r.accounting.ctx_switch_cycles).sum(),
        tlb_flushes: reports.iter().map(|r| r.accounting.tlb_flushes).sum(),
    }
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_multiproc.json".to_string());
    // Short slices at test scale so even the quickest tenants get
    // preempted; longer at full scale to keep switch counts sane.
    let quantum: u64 = match scale {
        Scale::Test => 1024,
        Scale::Small => 8192,
        Scale::Full => 65536,
    };

    println!(
        "multiproc_isolation: {} tenants ({}), quantum {quantum}, scale {scale:?}",
        SERVER_MIX.len(),
        SERVER_MIX.join(", ")
    );
    println!();

    // --- the five mix runs ------------------------------------------------
    let carat_sliced = run_mix(Variant::Full, scale, quantum);
    let carat_seq = run_mix(Variant::Full, scale, u64::MAX);
    let trad_sliced = run_mix(Variant::Traditional, scale, quantum);
    let trad_seq = run_mix(Variant::Traditional, scale, u64::MAX);
    let base_sliced = run_mix(Variant::Baseline, scale, quantum);

    // --- context-switch cost ---------------------------------------------
    let cost = CostModel::default();
    let carat_ctx = ctx_stats(&carat_sliced);
    let trad_ctx = ctx_stats(&trad_sliced);
    let carat_per_switch = carat_ctx.cycles as f64 / carat_ctx.switches.max(1) as f64;
    let trad_per_switch = trad_ctx.cycles as f64 / trad_ctx.switches.max(1) as f64;
    println!("Context-switch cost (kernel accounting, never guest counters):");
    print_table(
        &[
            "world",
            "switches",
            "kernel cycles",
            "cycles/switch",
            "TLB flushes",
        ],
        &[
            vec![
                "carat".to_string(),
                carat_ctx.switches.to_string(),
                carat_ctx.cycles.to_string(),
                format!("{carat_per_switch:.1}"),
                carat_ctx.tlb_flushes.to_string(),
            ],
            vec![
                "traditional".to_string(),
                trad_ctx.switches.to_string(),
                trad_ctx.cycles.to_string(),
                format!("{trad_per_switch:.1}"),
                trad_ctx.tlb_flushes.to_string(),
            ],
        ],
    );
    println!(
        "modeled: carat {} cyc/switch vs traditional {} cyc/switch",
        cost.ctx_switch_carat(),
        cost.ctx_switch_traditional()
    );
    let ctx_ok = carat_per_switch < trad_per_switch && carat_ctx.tlb_flushes == 0;
    println!(
        "{}: carat context switch pays no TLB flush and undercuts paging",
        if ctx_ok { "PASS" } else { "FAIL" }
    );
    println!();

    // --- isolation-guard overhead -----------------------------------------
    println!("Isolation-guard overhead (guarded mix vs uninstrumented mix):");
    let mut guard_rows = Vec::new();
    let mut overheads = Vec::new();
    let mut guard_json = String::new();
    for (g, b) in carat_sliced.iter().zip(&base_sliced) {
        let (rg, rb) = (finished(g), finished(b));
        let ratio = rg.counters.cycles as f64 / rb.counters.cycles.max(1) as f64;
        let share = 100.0 * rg.counters.guard_cycles as f64 / rg.counters.cycles.max(1) as f64;
        overheads.push(ratio);
        guard_rows.push(vec![
            g.name.clone(),
            rb.counters.cycles.to_string(),
            rg.counters.cycles.to_string(),
            format!("{:+.1}%", (ratio - 1.0) * 100.0),
            format!("{share:.1}%"),
        ]);
        if !guard_json.is_empty() {
            guard_json.push_str(",\n");
        }
        guard_json.push_str(&format!(
            "      {{\"name\": \"{}\", \"overhead_pct\": {:.3}, \"guard_cycle_share_pct\": {:.3}}}",
            g.name,
            (ratio - 1.0) * 100.0,
            share
        ));
    }
    print_table(
        &[
            "workload",
            "base cycles",
            "guarded cycles",
            "overhead",
            "guard share",
        ],
        &guard_rows,
    );
    let guard_geomean_pct = (geomean(&overheads) - 1.0) * 100.0;
    println!("geomean isolation-guard overhead: {guard_geomean_pct:+.1}%");
    println!();

    // --- cross-process shared-region moves ---------------------------------
    println!("Cross-process shared-region move latency (journaled, all owners patched):");
    let mut move_rows = Vec::new();
    let mut move_json = String::new();
    let mut shared_ok = true;
    for owners in [2usize, 4, 6] {
        let (per_move, ok) = shared_move_cost(owners);
        shared_ok &= ok;
        move_rows.push(vec![
            owners.to_string(),
            SHARED_MOVES.to_string(),
            format!("{per_move:.1}"),
            if ok {
                "ok".to_string()
            } else {
                "FAIL".to_string()
            },
        ]);
        if !move_json.is_empty() {
            move_json.push_str(",\n");
        }
        move_json.push_str(&format!(
            "      {{\"owners\": {owners}, \"moves\": {SHARED_MOVES}, \"cycles_per_move\": {per_move:.3}}}"
        ));
    }
    print_table(&["owners", "moves", "cycles/move", "readers"], &move_rows);
    println!(
        "{}: every owner reads correctly through the patched pointer",
        if shared_ok { "PASS" } else { "FAIL" }
    );
    println!();

    // --- differential: slicing is invisible to the guest -------------------
    let diff_carat = differential_ok(&carat_sliced, &carat_seq, "carat");
    let diff_trad = differential_ok(&trad_sliced, &trad_seq, "traditional");
    let diff_ok = diff_carat && diff_trad;
    println!(
        "{}: per-process counters identical under slicing ({} tenants x 2 worlds)",
        if diff_ok { "PASS" } else { "FAIL" },
        SERVER_MIX.len()
    );

    let pass = ctx_ok && shared_ok && diff_ok;
    let json = format!(
        "{{\n  \"benchmark\": \"multiproc_isolation\",\n  \"scale\": \"{scale:?}\",\n  \
         \"processes\": {nproc},\n  \"quantum\": {quantum},\n  \"ctx_switch\": {{\n    \
         \"carat\": {{\"switches\": {cs}, \"kernel_cycles\": {cc}, \"cycles_per_switch\": {cps:.3}, \"tlb_flushes\": {cf}}},\n    \
         \"traditional\": {{\"switches\": {ts}, \"kernel_cycles\": {tc}, \"cycles_per_switch\": {tps:.3}, \"tlb_flushes\": {tf}}},\n    \
         \"modeled_carat\": {mc},\n    \"modeled_traditional\": {mt},\n    \
         \"carat_below_traditional\": {ctx_ok}\n  }},\n  \"isolation_guard_overhead\": {{\n    \
         \"geomean_pct\": {gg:.3},\n    \"per_process\": [\n{guard_json}\n    ]\n  }},\n  \
         \"shared_region_moves\": [\n{move_json}\n  ],\n  \"differential\": {{\n    \
         \"carat_counters_identical\": {diff_carat},\n    \
         \"traditional_counters_identical\": {diff_trad}\n  }},\n  \"pass\": {pass}\n}}\n",
        nproc = SERVER_MIX.len(),
        cs = carat_ctx.switches,
        cc = carat_ctx.cycles,
        cps = carat_per_switch,
        cf = carat_ctx.tlb_flushes,
        ts = trad_ctx.switches,
        tc = trad_ctx.cycles,
        tps = trad_per_switch,
        tf = trad_ctx.tlb_flushes,
        mc = cost.ctx_switch_carat(),
        mt = cost.ctx_switch_traditional(),
        gg = guard_geomean_pct,
    );
    std::fs::write(&out_path, json).expect("write json");
    println!("\nwrote {out_path}");
    if !pass {
        std::process::exit(1);
    }
}
