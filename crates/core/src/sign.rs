//! Code signing (paper §2.2, §4.1).
//!
//! The CARAT compiler signs the binary it produces "with the credentials of
//! the compiler toolchain, so that it is easy to validate that a specific
//! compiler made the binary"; the kernel then decides whether to trust the
//! compiler based on provenance. The paper's prototype reuses the
//! Microsoft .NET strong-name scheme; we substitute a keyed-hash MAC over
//! the serialized module text (see DESIGN.md), which provides the same
//! validate-provenance behavior with a shared toolchain/kernel key.

use crate::sha256::{sha256, to_hex, Sha256};
use carat_ir::{print_module, Module};
use std::error::Error;
use std::fmt;

/// A toolchain signing identity: a name plus a secret key shared with
/// kernels that trust this toolchain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigningKey {
    /// Human-readable toolchain identity (e.g. `"carat-cc 0.1"`).
    pub toolchain: String,
    key: [u8; 32],
}

impl SigningKey {
    /// Derive a signing key from a passphrase.
    pub fn from_passphrase(toolchain: impl Into<String>, passphrase: &str) -> SigningKey {
        SigningKey {
            toolchain: toolchain.into(),
            key: sha256(passphrase.as_bytes()),
        }
    }

    fn mac(&self, data: &[u8]) -> [u8; 32] {
        // HMAC-SHA256.
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..32 {
            ipad[i] ^= self.key[i];
            opad[i] ^= self.key[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        inner.update(data);
        let inner_digest = inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&opad);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// A signed module: serialized text plus provenance and MAC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedModule {
    /// The serialized module ("bitcode").
    pub text: String,
    /// Toolchain identity that produced it.
    pub toolchain: String,
    /// HMAC-SHA256 over `toolchain || text`.
    pub signature: [u8; 32],
}

impl SignedModule {
    /// Hex rendering of the signature.
    pub fn signature_hex(&self) -> String {
        to_hex(&self.signature)
    }
}

/// Signature validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignatureError {
    /// The MAC does not match the text (corruption or tampering).
    Mismatch,
    /// The kernel does not trust this toolchain identity.
    UntrustedToolchain(String),
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::Mismatch => write!(f, "signature does not match module contents"),
            SignatureError::UntrustedToolchain(t) => {
                write!(f, "toolchain `{t}` is not trusted by this kernel")
            }
        }
    }
}

impl Error for SignatureError {}

/// Sign `module` with `key`.
pub fn sign_module(module: &Module, key: &SigningKey) -> SignedModule {
    let text = print_module(module);
    let signature = key.mac(&signed_payload(&key.toolchain, &text));
    SignedModule {
        text,
        toolchain: key.toolchain.clone(),
        signature,
    }
}

/// Verify `signed` against `key` (the kernel's copy of the trusted
/// toolchain's key).
///
/// # Errors
///
/// [`SignatureError::UntrustedToolchain`] if the identities differ,
/// [`SignatureError::Mismatch`] if the MAC fails.
pub fn verify_signature(signed: &SignedModule, key: &SigningKey) -> Result<(), SignatureError> {
    if signed.toolchain != key.toolchain {
        return Err(SignatureError::UntrustedToolchain(signed.toolchain.clone()));
    }
    let expect = key.mac(&signed_payload(&signed.toolchain, &signed.text));
    if expect == signed.signature {
        Ok(())
    } else {
        Err(SignatureError::Mismatch)
    }
}

fn signed_payload(toolchain: &str, text: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(toolchain.len() + 1 + text.len());
    p.extend_from_slice(toolchain.as_bytes());
    p.push(0);
    p.extend_from_slice(text.as_bytes());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_ir::{ModuleBuilder, Type};

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("signed");
        let f = mb.declare("main", vec![], Some(Type::I64));
        {
            let mut b = mb.define(f);
            let e = b.block("entry");
            b.switch_to(e);
            let c = b.const_i64(0);
            b.ret(Some(c));
        }
        mb.finish()
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = SigningKey::from_passphrase("carat-cc", "hunter2");
        let signed = sign_module(&sample(), &key);
        verify_signature(&signed, &key).expect("valid signature verifies");
    }

    #[test]
    fn tampering_is_detected() {
        let key = SigningKey::from_passphrase("carat-cc", "hunter2");
        let mut signed = sign_module(&sample(), &key);
        signed.text = signed.text.replace("const i64 0", "const i64 1");
        assert_eq!(
            verify_signature(&signed, &key),
            Err(SignatureError::Mismatch)
        );
    }

    #[test]
    fn wrong_key_is_detected() {
        let key = SigningKey::from_passphrase("carat-cc", "hunter2");
        let other = SigningKey::from_passphrase("carat-cc", "password");
        let signed = sign_module(&sample(), &key);
        assert_eq!(
            verify_signature(&signed, &other),
            Err(SignatureError::Mismatch)
        );
    }

    #[test]
    fn untrusted_toolchain_is_rejected() {
        let key = SigningKey::from_passphrase("carat-cc", "hunter2");
        let evil = SigningKey::from_passphrase("evil-cc", "hunter2");
        let signed = sign_module(&sample(), &evil);
        assert!(matches!(
            verify_signature(&signed, &key),
            Err(SignatureError::UntrustedToolchain(_))
        ));
    }

    #[test]
    fn signature_depends_on_toolchain_name() {
        let k1 = SigningKey::from_passphrase("a", "same");
        let k2 = SigningKey::from_passphrase("b", "same");
        let m = sample();
        assert_ne!(
            sign_module(&m, &k1).signature,
            sign_module(&m, &k2).signature
        );
    }
}
