//! MMU-notifier-style paging event trace (paper §3, "Typical Mappings
//! Change Slowly with Time").
//!
//! The feasibility study instruments Linux with an MMU-notifier kernel
//! module to count page allocations and page moves; this is the simulated
//! kernel's equivalent, feeding Table 2.

use carat_runtime::FastSet;

/// Page ids below this bound live in the flat bitmap; anything above
/// (poison-range ids and other outliers) spills to a hash set. 1<<24
/// pages caps the bitmap at 2 MiB while covering any arena the simulated
/// kernel can address (512 MiB / 4 KiB = 131072 pages).
const DENSE_PAGE_LIMIT: u64 = 1 << 24;

/// First-touch membership set on the per-access hot path
/// ([`PagingTrace::record_first_touch`] runs once per interpreted memory
/// access in CARAT mode). A flat bitmap makes the common probe a single
/// load+mask instead of a hash-set lookup — the hash probe was the
/// `dedup` workload's profile outlier, because its per-instruction thread
/// interleaving defeats the kernel's one-entry last-page cache and
/// funnels every access here.
#[derive(Debug, Clone, Default)]
struct TouchedSet {
    /// One bit per page id below [`DENSE_PAGE_LIMIT`], grown on demand.
    bits: Vec<u64>,
    /// Outlier page ids (at or above the dense limit).
    spill: FastSet<u64>,
    /// Exact member count across both representations.
    count: usize,
}

impl TouchedSet {
    #[inline]
    fn contains(&self, page: u64) -> bool {
        if page < DENSE_PAGE_LIMIT {
            let w = (page >> 6) as usize;
            self.bits
                .get(w)
                .is_some_and(|&b| b & (1u64 << (page & 63)) != 0)
        } else {
            self.spill.contains(&page)
        }
    }

    /// Insert `page`; returns whether it was new.
    fn insert(&mut self, page: u64) -> bool {
        let fresh = if page < DENSE_PAGE_LIMIT {
            let w = (page >> 6) as usize;
            if w >= self.bits.len() {
                self.bits.resize(w + 1, 0);
            }
            let m = 1u64 << (page & 63);
            let fresh = self.bits[w] & m == 0;
            self.bits[w] |= m;
            fresh
        } else {
            self.spill.insert(page)
        };
        if fresh {
            self.count += 1;
        }
        fresh
    }

    fn len(&self) -> usize {
        self.count
    }
}

/// One paging event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagingEvent {
    /// A physical page was allocated (demand paging, CoW resolution,
    /// initial load…). `page` is the page-aligned address (CARAT) or VPN
    /// (traditional).
    Alloc {
        /// Page identifier.
        page: u64,
    },
    /// A page's contents moved to a different physical page.
    Move {
        /// Source page.
        from: u64,
        /// Destination page.
        to: u64,
    },
    /// A TLB-invalidation-style event over a page range.
    Invalidate {
        /// First page.
        first: u64,
        /// Number of pages.
        count: u64,
    },
}

/// Event counters plus a bounded event log.
#[derive(Debug, Clone, Default)]
pub struct PagingTrace {
    /// Total page allocations.
    pub allocs: u64,
    /// Total page moves.
    pub moves: u64,
    /// Total invalidation events.
    pub invalidations: u64,
    /// Distinct pages ever allocated.
    touched: TouchedSet,
    log: Vec<PagingEvent>,
    log_cap: usize,
}

impl PagingTrace {
    /// Trace keeping at most `log_cap` raw events (counters are exact
    /// regardless).
    pub fn new(log_cap: usize) -> PagingTrace {
        PagingTrace {
            log_cap,
            ..PagingTrace::default()
        }
    }

    /// Record an event.
    pub fn record(&mut self, e: PagingEvent) {
        match e {
            PagingEvent::Alloc { page } => {
                self.allocs += 1;
                self.touched.insert(page);
            }
            PagingEvent::Move { .. } => self.moves += 1,
            PagingEvent::Invalidate { .. } => self.invalidations += 1,
        }
        if self.log.len() < self.log_cap {
            self.log.push(e);
        }
    }

    /// Record an allocation only the first time `page` is touched;
    /// returns whether it was new (a demand-paging "fault").
    pub fn record_first_touch(&mut self, page: u64) -> bool {
        if self.touched.contains(page) {
            return false;
        }
        self.record(PagingEvent::Alloc { page });
        true
    }

    /// Distinct pages allocated.
    pub fn distinct_pages(&self) -> usize {
        self.touched.len()
    }

    /// The retained event log.
    pub fn log(&self) -> &[PagingEvent] {
        &self.log
    }

    /// Allocation rate given elapsed simulated seconds.
    pub fn alloc_rate(&self, seconds: f64) -> f64 {
        if seconds > 0.0 {
            self.allocs as f64 / seconds
        } else {
            0.0
        }
    }

    /// Move rate given elapsed simulated seconds.
    pub fn move_rate(&self, seconds: f64) -> f64 {
        if seconds > 0.0 {
            self.moves as f64 / seconds
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_log() {
        let mut t = PagingTrace::new(2);
        t.record(PagingEvent::Alloc { page: 1 });
        t.record(PagingEvent::Alloc { page: 2 });
        t.record(PagingEvent::Move { from: 1, to: 3 });
        assert_eq!(t.allocs, 2);
        assert_eq!(t.moves, 1);
        assert_eq!(t.log().len(), 2, "log capped");
        assert_eq!(t.distinct_pages(), 2);
    }

    #[test]
    fn first_touch_counts_once() {
        let mut t = PagingTrace::new(0);
        assert!(t.record_first_touch(7));
        assert!(!t.record_first_touch(7));
        assert!(t.record_first_touch(8));
        assert_eq!(t.allocs, 2);
    }

    #[test]
    fn first_touch_spills_past_dense_limit() {
        // Poison-range page ids land above the bitmap; both representations
        // must agree on membership and the combined count must stay exact.
        let mut t = PagingTrace::new(0);
        let dense = 12u64;
        let sparse = DENSE_PAGE_LIMIT + 12;
        assert!(t.record_first_touch(dense));
        assert!(t.record_first_touch(sparse));
        assert!(!t.record_first_touch(dense));
        assert!(!t.record_first_touch(sparse));
        assert_eq!(t.allocs, 2);
        assert_eq!(t.distinct_pages(), 2);
    }

    #[test]
    fn rates() {
        let mut t = PagingTrace::new(0);
        for p in 0..100 {
            t.record_first_touch(p);
        }
        assert!((t.alloc_rate(10.0) - 10.0).abs() < 1e-9);
        assert_eq!(t.move_rate(10.0), 0.0);
        assert_eq!(t.alloc_rate(0.0), 0.0, "no division by zero");
    }
}
