//! The Allocation Table and Allocation-to-Escape Map (paper §4.2).
//!
//! The runtime's hard-state: every live allocation (static, stack, heap),
//! keyed by start address in a red/black tree, each carrying the set of
//! memory cells that hold a pointer into it (its *escapes*). Escapes are
//! registered in batches, as in the prototype ("we use the first method
//! when tracking allocations, and the second when tracking the escapes").

use crate::fast_hash::{FastMap, FastSet};
use crate::rbtree::RbTree;
use std::collections::HashMap;

/// Where an allocation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// Global / bss (recorded at load time).
    Static,
    /// Stack slot (alloca) or thread stack.
    Stack,
    /// Heap (`malloc`).
    Heap,
}

/// Metadata for one allocation.
#[derive(Debug, Clone)]
pub struct AllocInfo {
    /// Length in bytes.
    pub len: u64,
    /// Origin.
    pub kind: AllocKind,
    /// Addresses of cells currently holding a pointer into this
    /// allocation — the Allocation-to-Escape Map entry.
    pub escapes: FastSet<u64>,
    /// Escapes ever recorded against this allocation (Figure 5 histogram
    /// counts total escapes over the program run, not just live ones).
    pub escapes_ever: u64,
}

/// Aggregate tracking statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrackStats {
    /// Allocations ever registered.
    pub allocs: u64,
    /// Frees processed.
    pub frees: u64,
    /// Escape events enqueued.
    pub escape_events: u64,
    /// Escapes resolved to a live allocation at flush time.
    pub escapes_resolved: u64,
    /// High-water mark of live allocations.
    pub max_live: usize,
    /// Histogram of total escapes per allocation, recorded when an
    /// allocation dies (see [`AllocationTable::finish`] for live ones).
    pub escape_histogram: HashMap<u64, u64>,
}

/// The allocation table.
#[derive(Debug, Default)]
pub struct AllocationTable {
    tree: RbTree<u64, AllocInfo>,
    /// Reverse map: escape cell address → allocation start it points into.
    escape_owner: FastMap<u64, u64>,
    /// Batched escapes not yet resolved.
    pending: Vec<u64>,
    /// Σ capacity bytes of all live escape sets, maintained incrementally
    /// (sets only ever grow or are dropped whole) so the Figure 6 overhead
    /// query is O(1) instead of a walk over every live allocation.
    escape_set_bytes: usize,
    /// Statistics.
    pub stats: TrackStats,
}

impl AllocationTable {
    /// Empty table.
    pub fn new() -> AllocationTable {
        AllocationTable::default()
    }

    /// Number of live allocations.
    pub fn live(&self) -> usize {
        self.tree.len()
    }

    /// Register a new allocation.
    ///
    /// Overlapping registrations indicate a substrate bug; the new entry
    /// replaces any entry at the identical start address.
    pub fn track_alloc(&mut self, start: u64, len: u64, kind: AllocKind) {
        self.stats.allocs += 1;
        let replaced = self.tree.insert(
            start,
            AllocInfo {
                len,
                kind,
                escapes: FastSet::default(),
                escapes_ever: 0,
            },
        );
        if let Some(old) = replaced {
            self.escape_set_bytes -= old.escapes.capacity() * std::mem::size_of::<u64>();
        }
        self.stats.max_live = self.stats.max_live.max(self.tree.len());
    }

    /// Deregister an allocation; returns its metadata. Records its final
    /// escape count in the lifetime histogram and drops its escape cells
    /// from the reverse map.
    pub fn track_free(&mut self, start: u64) -> Option<AllocInfo> {
        let info = self.tree.remove(&start)?;
        self.escape_set_bytes -= info.escapes.capacity() * std::mem::size_of::<u64>();
        self.stats.frees += 1;
        for e in &info.escapes {
            self.escape_owner.remove(e);
        }
        *self
            .stats
            .escape_histogram
            .entry(info.escapes_ever)
            .or_insert(0) += 1;
        Some(info)
    }

    /// The allocation containing `addr`, if any.
    pub fn find_containing(&self, addr: u64) -> Option<(u64, &AllocInfo)> {
        let (&start, info) = self.tree.floor(&addr)?;
        (addr < start + info.len).then_some((start, info))
    }

    /// Queue an escape event: a pointer was stored at cell `dst`.
    pub fn track_escape(&mut self, dst: u64) {
        self.stats.escape_events += 1;
        self.pending.push(dst);
    }

    /// Number of queued, unprocessed escapes.
    pub fn pending_escapes(&self) -> usize {
        self.pending.len()
    }

    /// Resolve all queued escapes. `read_ptr(cell)` returns the pointer
    /// value currently stored at `cell` (the VM/kernel reads simulated
    /// memory). Returns the number of escapes resolved.
    ///
    /// Later writes to the same cell override earlier ones — the batch is
    /// processed in order, and a cell is re-pointed to its newest target.
    pub fn flush_escapes(&mut self, mut read_ptr: impl FnMut(u64) -> u64) -> usize {
        let pending = std::mem::take(&mut self.pending);
        let mut resolved = 0;
        for cell in pending {
            // Remove a previous binding of this cell.
            if let Some(prev_start) = self.escape_owner.remove(&cell) {
                if let Some(info) = self.tree.get_mut(&prev_start) {
                    let cap_before = info.escapes.capacity();
                    info.escapes.remove(&cell);
                    self.escape_set_bytes += info.escapes.capacity() * std::mem::size_of::<u64>();
                    self.escape_set_bytes -= cap_before * std::mem::size_of::<u64>();
                }
            }
            let ptr = read_ptr(cell);
            let Some((start, _)) = self.find_containing(ptr) else {
                continue; // null or points outside tracked memory
            };
            let info = self.tree.get_mut(&start).expect("found above");
            let cap_before = info.escapes.capacity();
            if info.escapes.insert(cell) {
                info.escapes_ever += 1;
            }
            self.escape_set_bytes += info.escapes.capacity() * std::mem::size_of::<u64>();
            self.escape_set_bytes -= cap_before * std::mem::size_of::<u64>();
            self.escape_owner.insert(cell, start);
            resolved += 1;
        }
        self.stats.escapes_resolved += resolved as u64;
        resolved
    }

    /// Start addresses of allocations overlapping `[lo, hi)`.
    pub fn overlapping(&self, lo: u64, hi: u64) -> Vec<u64> {
        self.overlapping_infos(lo, hi).map(|(s, _)| s).collect()
    }

    /// Allocations overlapping `[lo, hi)` as `(start, &info)` pairs, in
    /// ascending start order (a straddler from below comes first). The
    /// patch planner and expansion loops iterate this directly, avoiding
    /// both the intermediate start vector and the per-start re-lookup
    /// through [`Self::info`].
    pub fn overlapping_infos(
        &self,
        lo: u64,
        hi: u64,
    ) -> impl Iterator<Item = (u64, &AllocInfo)> + '_ {
        // An allocation starting strictly before `lo` may straddle into the
        // range.
        let straddler = if lo > 0 {
            self.tree.floor(&(lo - 1)).and_then(|(&start, info)| {
                (start < lo && start + info.len > lo).then_some((start, info))
            })
        } else {
            None
        };
        straddler.into_iter().chain(
            self.tree
                .iter()
                .skip_while(move |&(&start, _)| start < lo)
                .take_while(move |&(&start, _)| start < hi)
                .map(|(&start, info)| (start, info)),
        )
    }

    /// Borrow an allocation's metadata by start address.
    pub fn info(&self, start: u64) -> Option<&AllocInfo> {
        self.tree.get(&start)
    }

    /// Mutable metadata access (used by the patching engine).
    pub fn info_mut(&mut self, start: u64) -> Option<&mut AllocInfo> {
        self.tree.get_mut(&start)
    }

    /// Hand an existing escape set (e.g. salvaged from [`Self::track_free`])
    /// to the allocation at `start`, keeping the incremental byte
    /// accounting behind [`Self::memory_overhead_bytes`] consistent.
    pub fn adopt_escapes(&mut self, start: u64, escapes: FastSet<u64>, escapes_ever: u64) {
        if let Some(info) = self.tree.get_mut(&start) {
            let cap_before = info.escapes.capacity();
            info.escapes = escapes;
            info.escapes_ever = escapes_ever;
            self.escape_set_bytes += info.escapes.capacity() * std::mem::size_of::<u64>();
            self.escape_set_bytes -= cap_before * std::mem::size_of::<u64>();
        }
    }

    /// Relocate allocation `start` to `start + delta`, rebasing its key.
    /// Escape-cell rebasing is the patch engine's job; this moves only the
    /// table entry.
    pub fn relocate(&mut self, start: u64, delta: i64) {
        if let Some(info) = self.tree.remove(&start) {
            let new_start = start.wrapping_add(delta as u64);
            for e in &info.escapes {
                self.escape_owner.insert(*e, new_start);
            }
            self.tree.insert(new_start, info);
        }
    }

    /// Rebase escape cells that themselves live inside `[lo, hi)` by
    /// `delta` (their containing allocation moved, so the cells moved).
    pub fn rebase_escape_cells(&mut self, lo: u64, hi: u64, delta: i64) -> usize {
        let moved: Vec<(u64, u64)> = self
            .escape_owner
            .iter()
            .filter(|(&cell, _)| cell >= lo && cell < hi)
            .map(|(&c, &o)| (c, o))
            .collect();
        for &(cell, owner) in &moved {
            let new_cell = cell.wrapping_add(delta as u64);
            self.escape_owner.remove(&cell);
            self.escape_owner.insert(new_cell, owner);
            if let Some(info) = self.tree.get_mut(&owner) {
                let cap_before = info.escapes.capacity();
                info.escapes.remove(&cell);
                info.escapes.insert(new_cell);
                // remove+insert can shrink capacity() by a tombstone, so
                // apply the delta as add-then-subtract (never underflows:
                // the total includes this set's previous contribution).
                self.escape_set_bytes += info.escapes.capacity() * std::mem::size_of::<u64>();
                self.escape_set_bytes -= cap_before * std::mem::size_of::<u64>();
            }
        }
        moved.len()
    }

    /// Total live escapes across every allocation, read off the reverse
    /// map in O(1). This is the compaction-victim score: the kernel ranks
    /// descheduled tenants by it without walking their allocation trees.
    pub fn live_escapes(&self) -> usize {
        self.escape_owner.len()
    }

    /// All live allocations as `(start, len, escapes_live, escapes_ever)`.
    pub fn snapshot(&self) -> Vec<(u64, u64, usize, u64)> {
        self.tree
            .iter()
            .map(|(&s, i)| (s, i.len, i.escapes.len(), i.escapes_ever))
            .collect()
    }

    /// Fold live allocations into the lifetime escape histogram (call at
    /// program end before reading [`TrackStats::escape_histogram`]).
    pub fn finish(&mut self) {
        let counts: Vec<u64> = self.tree.iter().map(|(_, i)| i.escapes_ever).collect();
        for c in counts {
            *self.stats.escape_histogram.entry(c).or_insert(0) += 1;
        }
    }

    /// Approximate bytes of tracking state — the Figure 6 memory overhead.
    ///
    /// O(1): the escape-set component is maintained incrementally, so the
    /// VM can sample this on every tracking callback without a table walk.
    pub fn memory_overhead_bytes(&self) -> usize {
        let tree = self.tree.heap_bytes();
        let reverse = self.escape_owner.capacity()
            * (std::mem::size_of::<u64>() * 2 + std::mem::size_of::<usize>());
        let pending = self.pending.capacity() * std::mem::size_of::<u64>();
        tree + self.escape_set_bytes + reverse + pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_lifecycle() {
        let mut t = AllocationTable::new();
        t.track_alloc(0x1000, 256, AllocKind::Heap);
        t.track_alloc(0x2000, 512, AllocKind::Heap);
        assert_eq!(t.live(), 2);
        assert_eq!(t.find_containing(0x10ff).map(|(s, _)| s), Some(0x1000));
        assert!(t.find_containing(0x1100).is_none(), "past the end");
        let info = t.track_free(0x1000).expect("tracked");
        assert_eq!(info.len, 256);
        assert_eq!(t.live(), 1);
        assert_eq!(t.stats.allocs, 2);
        assert_eq!(t.stats.frees, 1);
    }

    #[test]
    fn escapes_resolve_in_batches() {
        let mut t = AllocationTable::new();
        t.track_alloc(0x1000, 256, AllocKind::Heap);
        // Cells 0x5000 and 0x5008 hold pointers into the allocation.
        let mem: HashMap<u64, u64> = [(0x5000, 0x1000), (0x5008, 0x10f0), (0x5010, 0x9999)].into();
        t.track_escape(0x5000);
        t.track_escape(0x5008);
        t.track_escape(0x5010); // dangling target: ignored
        assert_eq!(t.pending_escapes(), 3);
        let n = t.flush_escapes(|c| mem[&c]);
        assert_eq!(n, 2);
        assert_eq!(t.pending_escapes(), 0);
        let info = t.info(0x1000).unwrap();
        assert_eq!(info.escapes.len(), 2);
        assert_eq!(info.escapes_ever, 2);
    }

    #[test]
    fn overwriting_a_cell_rebinds_the_escape() {
        let mut t = AllocationTable::new();
        t.track_alloc(0x1000, 256, AllocKind::Heap);
        t.track_alloc(0x2000, 256, AllocKind::Heap);
        t.track_escape(0x5000);
        t.flush_escapes(|_| 0x1000);
        assert_eq!(t.info(0x1000).unwrap().escapes.len(), 1);
        // Same cell now stores a pointer to the other allocation.
        t.track_escape(0x5000);
        t.flush_escapes(|_| 0x2000);
        assert_eq!(t.info(0x1000).unwrap().escapes.len(), 0);
        assert_eq!(t.info(0x2000).unwrap().escapes.len(), 1);
    }

    #[test]
    fn overlapping_includes_straddlers() {
        let mut t = AllocationTable::new();
        t.track_alloc(0x0f00, 0x200, AllocKind::Heap); // straddles 0x1000
        t.track_alloc(0x1000, 0x100, AllocKind::Heap);
        t.track_alloc(0x3000, 0x100, AllocKind::Heap);
        let hits = t.overlapping(0x1000, 0x2000);
        assert_eq!(hits, vec![0x0f00, 0x1000]);
    }

    #[test]
    fn relocate_moves_key_and_reverse_map() {
        let mut t = AllocationTable::new();
        t.track_alloc(0x1000, 256, AllocKind::Heap);
        t.track_escape(0x5000);
        t.flush_escapes(|_| 0x1080);
        t.relocate(0x1000, 0x7000);
        assert!(t.info(0x1000).is_none());
        let info = t.info(0x8000).expect("moved");
        assert_eq!(info.escapes.len(), 1);
        // The escape cell still points at the allocation logically.
        t.track_escape(0x5000);
        t.flush_escapes(|_| 0x8080);
        assert_eq!(t.info(0x8000).unwrap().escapes.len(), 1);
    }

    #[test]
    fn rebase_escape_cells_moves_cells_within_range() {
        let mut t = AllocationTable::new();
        t.track_alloc(0x1000, 0x100, AllocKind::Heap);
        t.track_alloc(0x2000, 0x100, AllocKind::Heap);
        // A cell at 0x1010 (inside alloc A) points into alloc B.
        t.track_escape(0x1010);
        t.flush_escapes(|_| 0x2050);
        assert!(t.info(0x2000).unwrap().escapes.contains(&0x1010));
        // Alloc A's range moves by +0x7000.
        let n = t.rebase_escape_cells(0x1000, 0x1100, 0x7000);
        assert_eq!(n, 1);
        let esc = &t.info(0x2000).unwrap().escapes;
        assert!(esc.contains(&0x8010));
        assert!(!esc.contains(&0x1010));
    }

    #[test]
    fn histogram_counts_lifetime_escapes() {
        let mut t = AllocationTable::new();
        t.track_alloc(0x1000, 64, AllocKind::Heap);
        t.track_escape(0x5000);
        t.track_escape(0x5008);
        t.flush_escapes(|c| if c == 0x5000 { 0x1000 } else { 0x1008 });
        t.track_free(0x1000);
        t.track_alloc(0x2000, 64, AllocKind::Heap); // zero escapes, stays live
        t.finish();
        assert_eq!(t.stats.escape_histogram.get(&2), Some(&1));
        assert_eq!(t.stats.escape_histogram.get(&0), Some(&1));
    }

    #[test]
    fn memory_overhead_grows_with_tracking() {
        let mut t = AllocationTable::new();
        let before = t.memory_overhead_bytes();
        for i in 0..1000 {
            t.track_alloc(0x10000 + i * 64, 64, AllocKind::Heap);
        }
        assert!(t.memory_overhead_bytes() > before);
    }

    /// The incrementally-maintained escape-set byte count must equal a
    /// from-scratch fold over every live allocation.
    #[test]
    fn incremental_escape_bytes_match_full_fold() {
        let mut t = AllocationTable::new();
        for i in 0..64u64 {
            t.track_alloc(0x10000 + i * 0x100, 0x100, AllocKind::Heap);
        }
        // Scatter escapes across allocations, rebind some cells, free a few.
        for c in 0..500u64 {
            t.track_escape(0x90000 + c * 8);
        }
        t.flush_escapes(|cell| 0x10000 + (cell % 64) * 0x100);
        for c in 0..100u64 {
            t.track_escape(0x90000 + c * 8); // rebind to a different target
        }
        t.flush_escapes(|cell| 0x10000 + ((cell + 7) % 64) * 0x100);
        for i in 0..16u64 {
            t.track_free(0x10000 + i * 0x100);
        }
        t.rebase_escape_cells(0x90000, 0x90400, 0x1_0000);
        let fold: usize = (0..64u64)
            .filter_map(|i| t.info(0x10000 + i * 0x100))
            .map(|info| info.escapes.capacity() * std::mem::size_of::<u64>())
            .sum();
        let tree = t.tree.heap_bytes();
        let reverse = t.escape_owner.capacity()
            * (std::mem::size_of::<u64>() * 2 + std::mem::size_of::<usize>());
        let pending = t.pending.capacity() * std::mem::size_of::<u64>();
        assert_eq!(t.memory_overhead_bytes(), tree + fold + reverse + pending);
    }
}
