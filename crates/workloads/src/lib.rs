//! # carat-workloads — the benchmark suite
//!
//! Twenty-one Cm programs standing in for the paper's Mantevo, NAS, PARSEC
//! and SPEC2017 benchmarks (see DESIGN.md for the substitution argument).
//! What each reproduces is its model's *memory behavior*: footprint,
//! access pattern, allocation rate, and escape density.
//!
//! ## Example
//!
//! ```
//! use carat_workloads::{all_workloads, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let suite = all_workloads();
//! assert!(suite.len() >= 16);
//! let hpccg = suite.iter().find(|w| w.name == "hpccg").unwrap();
//! let module = hpccg.module(Scale::Test)?;
//! assert!(module.main().is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod programs;

use carat_frontend::{compile_cm, CmError};
use carat_ir::Module;

/// Problem-size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Tiny: unit-test sized (sub-second interpreted, debug builds).
    Test,
    /// Small: quick benchmark runs.
    #[default]
    Small,
    /// Full: the sizes the committed EXPERIMENTS.md numbers use.
    Full,
}

/// One benchmark program.
pub struct Workload {
    /// Suite-unique name (lowercase, matching the paper's figures).
    pub name: &'static str,
    /// The benchmark it models and that benchmark's suite.
    pub models: &'static str,
    /// One-line memory-behavior characterization.
    pub behavior: &'static str,
    source: fn(Scale) -> String,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Workload({})", self.name)
    }
}

impl Workload {
    /// The Cm source at the given scale.
    pub fn source(&self, scale: Scale) -> String {
        (self.source)(scale)
    }

    /// Compile to an IR module.
    ///
    /// # Errors
    ///
    /// Front-end failures (a workload bug).
    pub fn module(&self, scale: Scale) -> Result<Module, CmError> {
        compile_cm(self.name, &self.source(scale))
    }
}

macro_rules! workload {
    ($name:literal, $models:literal, $behavior:literal, |$s:ident| $src:expr) => {
        Workload {
            name: $name,
            models: $models,
            behavior: $behavior,
            source: {
                fn f($s: Scale) -> String {
                    $src
                }
                f
            },
        }
    };
}

/// The full suite, in the paper's figure order.
pub fn all_workloads() -> Vec<Workload> {
    use programs::*;
    vec![
        workload!(
            "hpccg",
            "HPCCG (Mantevo)",
            "strided sparse-CG sweeps over medium arrays",
            |s| {
                match s {
                    Scale::Test => hpccg(256, 3),
                    Scale::Small => hpccg(4096, 10),
                    Scale::Full => hpccg(16384, 25),
                }
            }
        ),
        workload!(
            "cg",
            "CG (NAS)",
            "indirect sparse matvec over a large footprint",
            |s| {
                match s {
                    Scale::Test => cg(128, 4, 2),
                    Scale::Small => cg(2048, 8, 5),
                    Scale::Full => cg(8192, 12, 10),
                }
            }
        ),
        workload!(
            "ep",
            "EP (NAS)",
            "pure compute, almost no memory traffic",
            |s| {
                match s {
                    Scale::Test => ep(2_000),
                    Scale::Small => ep(100_000),
                    Scale::Full => ep(600_000),
                }
            }
        ),
        workload!(
            "ft",
            "FT (NAS)",
            "global bss arrays, scatter + strided butterflies",
            |s| {
                match s {
                    Scale::Test => ft(8, 2),
                    Scale::Small => ft(13, 4),
                    Scale::Full => ft(16, 6),
                }
            }
        ),
        workload!(
            "lu",
            "LU (NAS)",
            "dense triangular sweeps, perfectly regular",
            |s| {
                match s {
                    Scale::Test => lu(24, 1),
                    Scale::Small => lu(64, 2),
                    Scale::Full => lu(128, 3),
                }
            }
        ),
        workload!(
            "blackscholes",
            "blackscholes (PARSEC)",
            "streaming array-of-structs, transcendental heavy",
            |s| {
                match s {
                    Scale::Test => blackscholes(128, 2),
                    Scale::Small => blackscholes(2048, 10),
                    Scale::Full => blackscholes(8192, 25),
                }
            }
        ),
        workload!(
            "bodytrack",
            "bodytrack (PARSEC)",
            "multi-pass image pyramid with per-frame temporaries",
            |s| {
                match s {
                    Scale::Test => bodytrack(16, 3),
                    Scale::Small => bodytrack(64, 12),
                    Scale::Full => bodytrack(128, 30),
                }
            }
        ),
        workload!(
            "canneal",
            "canneal (PARSEC)",
            "uniform random swaps — worst-case locality",
            |s| {
                match s {
                    Scale::Test => canneal(1024, 2_000),
                    Scale::Small => canneal(65_536, 50_000),
                    Scale::Full => canneal(1_048_576, 250_000),
                }
            }
        ),
        workload!(
            "fluidanimate",
            "fluidanimate (PARSEC)",
            "grid neighbor sweeps with double buffering",
            |s| {
                match s {
                    Scale::Test => fluidanimate(16, 3),
                    Scale::Small => fluidanimate(96, 10),
                    Scale::Full => fluidanimate(256, 20),
                }
            }
        ),
        workload!(
            "freqmine",
            "freqmine (PARSEC)",
            "FP-tree of small allocations, child-list escapes",
            |s| {
                match s {
                    Scale::Test => freqmine(200, 4),
                    Scale::Small => freqmine(4_000, 6),
                    Scale::Full => freqmine(20_000, 8),
                }
            }
        ),
        workload!(
            "streamcluster",
            "streamcluster (PARSEC)",
            "early escape burst, then pure distance compute",
            |s| {
                match s {
                    Scale::Test => streamcluster(32, 8, 4),
                    Scale::Small => streamcluster(256, 16, 20),
                    Scale::Full => streamcluster(1024, 32, 40),
                }
            }
        ),
        workload!(
            "swaptions",
            "swaptions (PARSEC)",
            "many short-lived allocations — tracking-memory outlier",
            |s| {
                match s {
                    Scale::Test => swaptions(50, 32),
                    Scale::Small => swaptions(2_000, 64),
                    Scale::Full => swaptions(10_000, 128),
                }
            }
        ),
        workload!(
            "x264",
            "x264 (PARSEC/SPEC)",
            "16x16 block SADs + conditional copies",
            |s| {
                match s {
                    Scale::Test => x264(64, 32, 2),
                    Scale::Small => x264(320, 192, 4),
                    Scale::Full => x264(640, 384, 8),
                }
            }
        ),
        workload!(
            "deepsjeng",
            "deepsjeng_s (SPEC2017)",
            "random transposition-table probes",
            |s| {
                match s {
                    Scale::Test => deepsjeng(10, 5_000),
                    Scale::Small => deepsjeng(16, 150_000),
                    Scale::Full => deepsjeng(20, 800_000),
                }
            }
        ),
        workload!(
            "lbm",
            "lbm_s (SPEC2017)",
            "huge working set swept linearly every step",
            |s| {
                match s {
                    Scale::Test => lbm(4_096, 3),
                    Scale::Small => lbm(262_144, 6),
                    Scale::Full => lbm(2_097_152, 8),
                }
            }
        ),
        workload!(
            "mcf",
            "mcf_s (SPEC2017)",
            "pointer-chasing node/arc lists — unoptimizable guards",
            |s| {
                match s {
                    Scale::Test => mcf(128, 3, 3),
                    Scale::Small => mcf(2_048, 6, 10),
                    Scale::Full => mcf(8_192, 8, 25),
                }
            }
        ),
        workload!(
            "nab",
            "nab_s (SPEC2017)",
            "one block accumulating many escapes (Fig 5 outlier)",
            |s| {
                match s {
                    Scale::Test => nab(128, 5),
                    Scale::Small => nab(2_048, 25),
                    Scale::Full => nab(8_192, 60),
                }
            }
        ),
        workload!(
            "namd",
            "namd_r (SPEC2017)",
            "pairwise force loops, compute bound",
            |s| {
                match s {
                    Scale::Test => namd(64, 2),
                    Scale::Small => namd(512, 5),
                    Scale::Full => namd(1_024, 12),
                }
            }
        ),
        workload!(
            "xalancbmk",
            "xalancbmk_s (SPEC2017)",
            "DOM tree of small nodes, repeated traversals",
            |s| {
                match s {
                    Scale::Test => xalancbmk(3, 4, 3),
                    Scale::Small => xalancbmk(4, 6, 10),
                    Scale::Full => xalancbmk(4, 8, 20),
                }
            }
        ),
        workload!(
            "xz",
            "xz_s (SPEC2017)",
            "byte-level match copy over char buffers",
            |s| {
                match s {
                    Scale::Test => xz(4_096, 2),
                    Scale::Small => xz(131_072, 4),
                    Scale::Full => xz(1_048_576, 6),
                }
            }
        ),
        workload!(
            "dedup",
            "dedup (PARSEC)",
            "4 threads hashing disjoint slices of a shared buffer",
            |s| {
                match s {
                    Scale::Test => dedup(64, 8),
                    Scale::Small => dedup(512, 32),
                    Scale::Full => dedup(2_048, 64),
                }
            }
        ),
    ]
}

/// Find a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

/// Compile the fleet tenant at `scale`: the microservice-sized program
/// behind the `fleet_scaling` bench's 10/100/1k/10k curve. Deliberately
/// tiny — a few dozen heap cells, a pointer-cell array (live escapes for
/// the compaction victim scan), and a multi-slice instruction count —
/// so the bench measures the *process subsystem* (context switches,
/// slab recycling, admission), not the tenant's own compute. `seed`
/// differentiates tenants compiled from one shared module call-site.
///
/// # Errors
///
/// Front-end failures (a workload bug).
pub fn fleet_tenant(scale: Scale, seed: i64) -> Result<Module, CmError> {
    let (slots, passes) = match scale {
        Scale::Test => (16, 4),
        Scale::Small => (32, 16),
        Scale::Full => (32, 32),
    };
    compile_cm("fleet_tenant", &programs::fleet_tenant(slots, passes, seed))
}

/// Compile the chaos tenant at `scale`: the `chaos_soak` bench's storm
/// subject. The fleet tenant's storm-hardened sibling — its malloc
/// sites stay hot through the whole run (so `TenantOom` injections can
/// land anywhere in a tenant's life) and its pointer list keeps live
/// escapes in every pass (move/compaction fault material). The result
/// is a pure function of the inputs, so a supervised respawn-from-image
/// must reproduce it bit-exactly.
///
/// # Errors
///
/// Front-end failures (a workload bug).
pub fn chaos_tenant(scale: Scale, seed: i64) -> Result<Module, CmError> {
    let (slots, passes) = match scale {
        Scale::Test => (16, 6),
        Scale::Small => (32, 16),
        Scale::Full => (32, 32),
    };
    compile_cm("chaos_tenant", &programs::chaos_tenant(slots, passes, seed))
}

/// Compile the I/O server tenant at `scale`: the `io_latency` bench's
/// request/response worker. Its global #0 (`int* dmabuf`) is the DMA
/// buffer pointer the host publishes with `shared_map` — the block the
/// modeled device reads and writes must be **pinned** while requests
/// are in flight, so this tenant is also the chaos battery's subject
/// for "storm compaction never moves a pinned cell". `seed`
/// differentiates tenants sharing one module.
///
/// # Errors
///
/// Front-end failures (a workload bug).
pub fn io_server(scale: Scale, seed: i64) -> Result<Module, CmError> {
    let (words, passes) = match scale {
        Scale::Test => (16, 4),
        Scale::Small => (64, 16),
        Scale::Full => (256, 32),
    };
    compile_cm("io_server", &programs::io_server(words, passes, seed))
}

/// The multi-tenant server-mix: the tenants the multi-process bench
/// co-schedules on one kernel. Deliberately heterogeneous — pure compute
/// (`ep`), pointer chasing (`mcf`), allocation/churn (`dedup`),
/// indirect sparse sweeps (`cg`), streaming (`lbm`), and a
/// medium-footprint solver (`hpccg`) — the shape of a consolidated
/// server, so scheduling effects are not dominated by one memory
/// behavior.
pub const SERVER_MIX: [&str; 6] = ["hpccg", "cg", "ep", "mcf", "lbm", "dedup"];

/// Compile the server-mix tenants at `scale`, in scheduling (pid) order.
///
/// # Errors
///
/// Front-end failures (a workload bug).
pub fn server_mix(scale: Scale) -> Result<Vec<(&'static str, Module)>, CmError> {
    SERVER_MIX
        .iter()
        .map(|&n| {
            let w = by_name(n).expect("server-mix names exist in the suite");
            w.module(scale).map(|m| (n, m))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_core::{CaratCompiler, CompileOptions, OptPreset};
    use carat_vm::{Vm, VmConfig};

    #[test]
    fn suite_is_complete_and_named_uniquely() {
        let ws = all_workloads();
        assert!(ws.len() >= 16, "suite has at least 16 workloads");
        let mut names: Vec<_> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ws.len(), "names are unique");
        assert!(by_name("mcf").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn server_mix_is_valid_and_heterogeneous() {
        let mix = server_mix(Scale::Test).unwrap();
        assert_eq!(mix.len(), SERVER_MIX.len());
        let mut names: Vec<_> = mix.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SERVER_MIX.len(), "tenants are distinct");
        for (n, m) in &mix {
            assert!(m.main().is_some(), "{n} has a main");
        }
    }

    #[test]
    fn fleet_tenant_compiles_runs_and_seeds_differentiate() {
        let a = fleet_tenant(Scale::Test, 1).unwrap();
        let b = fleet_tenant(Scale::Test, 2).unwrap();
        let ra = Vm::new(a, VmConfig::default()).unwrap().run().unwrap();
        let rb = Vm::new(b, VmConfig::default()).unwrap().run().unwrap();
        assert_ne!(ra.ret, rb.ret, "seeds differentiate tenants");
    }

    #[test]
    fn io_server_compiles_runs_and_tolerates_unmapped_buffer() {
        // Unhosted (dmabuf never published) the null guard skips the
        // scan: the tenant must still finish deterministically, since
        // the differential scheduler test runs it without a device.
        let a = io_server(Scale::Test, 3).unwrap();
        let b = io_server(Scale::Test, 4).unwrap();
        let ra = Vm::new(a.clone(), VmConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let ra2 = Vm::new(a, VmConfig::default()).unwrap().run().unwrap();
        let rb = Vm::new(b, VmConfig::default()).unwrap().run().unwrap();
        assert_eq!(ra.ret, ra2.ret, "deterministic");
        assert_ne!(ra.ret, rb.ret, "seeds differentiate tenants");
    }

    #[test]
    fn every_workload_compiles_at_test_scale() {
        for w in all_workloads() {
            w.module(Scale::Test)
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", w.name));
        }
    }

    #[test]
    fn every_workload_compiles_at_all_scales() {
        for w in all_workloads() {
            for s in [Scale::Small, Scale::Full] {
                w.module(s)
                    .unwrap_or_else(|e| panic!("{} failed at {s:?}: {e}", w.name));
            }
        }
    }

    #[test]
    fn every_workload_runs_and_is_deterministic() {
        for w in all_workloads() {
            let m = w.module(Scale::Test).unwrap();
            let r1 = Vm::new(m.clone(), VmConfig::default())
                .unwrap()
                .run()
                .unwrap_or_else(|e| panic!("{} failed to run: {e}", w.name));
            let r2 = Vm::new(m, VmConfig::default()).unwrap().run().unwrap();
            assert_eq!(r1.ret, r2.ret, "{} must be deterministic", w.name);
        }
    }

    #[test]
    fn instrumentation_preserves_semantics_for_every_workload() {
        for w in all_workloads() {
            let base = w.module(Scale::Test).unwrap();
            let rb = Vm::new(base.clone(), VmConfig::default())
                .unwrap()
                .run()
                .unwrap();
            let inst = CaratCompiler::new(CompileOptions::default())
                .compile(base)
                .unwrap_or_else(|e| panic!("{} failed to instrument: {e}", w.name))
                .module;
            let ri = Vm::new(inst, VmConfig::default())
                .unwrap()
                .run()
                .unwrap_or_else(|e| panic!("{} faulted under CARAT: {e}", w.name));
            assert_eq!(rb.ret, ri.ret, "{}: CARAT changed the result", w.name);
        }
    }

    #[test]
    fn guard_optimization_reduces_dynamic_guards_on_regular_workloads() {
        for name in ["hpccg", "lu", "lbm"] {
            let w = by_name(name).unwrap();
            let base = w.module(Scale::Test).unwrap();
            let naive = CaratCompiler::new(CompileOptions::guards_only(OptPreset::None))
                .compile(base.clone())
                .unwrap()
                .module;
            let optd = CaratCompiler::new(CompileOptions::guards_only(OptPreset::CaratSpecific))
                .compile(base)
                .unwrap()
                .module;
            let rn = Vm::new(naive, VmConfig::default()).unwrap().run().unwrap();
            let ro = Vm::new(optd, VmConfig::default()).unwrap().run().unwrap();
            assert_eq!(rn.ret, ro.ret, "{name}: opts changed semantics");
            assert!(
                ro.counters.guards_executed < rn.counters.guards_executed,
                "{name}: opts should cut dynamic guards ({} -> {})",
                rn.counters.guards_executed,
                ro.counters.guards_executed
            );
        }
    }
}
